//! # parallel-kcore
//!
//! A Rust implementation of *“Parallel k-Core Decomposition: Theory and
//! Practice”* (SIGMOD 2025): a simple, work-efficient (`O(n + m)`) parallel
//! framework for k-core decomposition, together with the paper's three
//! practical techniques — a **sampling scheme** that reduces contention on
//! high-degree vertices, **vertical granularity control (VGC)** that
//! collapses peeling subrounds on sparse graphs, and a **hierarchical
//! bucketing structure (HBS)** that manages the active set on graphs with
//! large coreness.
//!
//! The framework is not k-core-specific: the workspace factors it into
//! a problem-agnostic **peel engine** (`kcore::PeelEngine` +
//! `kcore::PeelProblem`) with k-core as its first client, plus
//! **k-truss** decomposition (edge peeling by triangle support),
//! **greedy densest subgraph** (min-degree peeling with running density
//! tracking, a 2-approximation), the **(k,h)-core**
//! (distance-generalized cores with recomputed h-hop priorities), and
//! the batched **(2+ε)-approximate densest subgraph**
//! (threshold-batched rounds, `O(log₁₊ε n)` of them) on the same
//! engine, techniques, and bucket structures.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`graph`] — CSR graphs, builders, synthetic generators, I/O, and
//!   the edge-id / triangle primitives behind edge peeling
//!   ([`kcore_graph`]).
//! * [`parallel`] — parallel primitives: pack, scan, histogram, sorted
//!   intersection, the parallel hash bag, and scheduling
//!   instrumentation ([`kcore_parallel`]).
//! * [`buckets`] — bucketing structures over opaque elements and
//!   priorities, including HBS ([`kcore_buckets`]).
//! * [`obs`] — first-party tracing and metrics: `span!`/`counter!`
//!   macros over lock-free per-thread rings, `KCORE_TRACE` runtime
//!   gating, Chrome-trace and metrics-JSON export ([`kcore_obs`]).
//! * [`core`] — the peel engine and its problems: k-core, k-truss,
//!   densest subgraph, and the sequential oracles they are tested
//!   against ([`kcore`]).
//!
//! ## Quickstart
//!
//! Every decomposition starts from the [`core::Decomposition`] builder;
//! [`core::DynamicGraph`] maintains a standing k-core decomposition
//! under batches of edge insertions and deletions.
//!
//! ```
//! use parallel_kcore::core::Decomposition;
//! use parallel_kcore::graph::gen;
//!
//! // A 100x100 grid: interior vertices have degree 4, the whole graph is a
//! // 2-core after the corners peel away.
//! let g = gen::grid2d(100, 100);
//! let result = Decomposition::kcore(&g).run();
//! assert_eq!(result.kmax(), 2);
//!
//! // The same engine peels edges and tracks densities.
//! assert_eq!(Decomposition::ktruss(&g).run().max_trussness(), 2);
//! assert!(Decomposition::densest(&g).run().density() > 1.9);
//!
//! // ...and runs other round structures: threshold-batched rounds
//! // ((2+ε)-approx densest, O(log n) rounds) and recomputed h-hop
//! // priorities (the (k,h)-core).
//! let approx = Decomposition::approx_densest(&g, 0.5).run();
//! assert!(approx.density() * 2.5 >= 1.9);
//! assert!(Decomposition::khcore(&g, 2).run().kmax() >= 2);
//!
//! // Maintenance: delete an edge, splice only the affected region.
//! use parallel_kcore::core::DynamicGraph;
//! let mut dyn_g = DynamicGraph::new(gen::grid2d(30, 30), Default::default());
//! let v1 = dyn_g.apply_batch(&[], &[(0, 1)]);
//! assert_eq!(v1.get(), 1);
//! ```
pub use kcore as core;
pub use kcore_buckets as buckets;
pub use kcore_graph as graph;
pub use kcore_obs as obs;
pub use kcore_parallel as parallel;

/// Convenience re-export of the most common entry points.
pub mod prelude {
    pub use kcore::{
        ApproxDensestResult, Config, CorenessResult, Decomposition, DecompositionResult,
        DensestResult, DynamicGraph, KhCoreResult, MaintainStats, PeelEngine, PeelProblem,
        TrussnessResult, Version,
    };
    pub use kcore_graph::{CsrGraph, EdgeIndex, GraphBuilder, VertexId};
}
