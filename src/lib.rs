//! # parallel-kcore
//!
//! A Rust implementation of *“Parallel k-Core Decomposition: Theory and
//! Practice”* (SIGMOD 2025): a simple, work-efficient (`O(n + m)`) parallel
//! framework for k-core decomposition, together with the paper's three
//! practical techniques — a **sampling scheme** that reduces contention on
//! high-degree vertices, **vertical granularity control (VGC)** that
//! collapses peeling subrounds on sparse graphs, and a **hierarchical
//! bucketing structure (HBS)** that manages the active set on graphs with
//! large coreness.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`graph`] — CSR graphs, builders, synthetic generators, and I/O
//!   ([`kcore_graph`]).
//! * [`parallel`] — parallel primitives: pack, scan, histogram, the
//!   parallel hash bag, and scheduling instrumentation ([`kcore_parallel`]).
//! * [`buckets`] — bucketing structures, including HBS
//!   ([`kcore_buckets`]).
//! * [`core`] — the decomposition algorithms: the work-efficient parallel
//!   peeling framework and the sequential BZ baseline ([`kcore`]); the
//!   sampling scheme, VGC, and the remaining baselines are tracked in
//!   `ROADMAP.md`.
//!
//! ## Quickstart
//!
//! ```
//! use parallel_kcore::core::{KCore, Config};
//! use parallel_kcore::graph::gen;
//!
//! // A 100x100 grid: interior vertices have degree 4, the whole graph is a
//! // 2-core after the corners peel away.
//! let g = gen::grid2d(100, 100);
//! let result = KCore::new(Config::default()).run(&g);
//! assert_eq!(result.kmax(), 2);
//! ```
pub use kcore as core;
pub use kcore_buckets as buckets;
pub use kcore_graph as graph;
pub use kcore_parallel as parallel;

/// Convenience re-export of the most common entry points.
pub mod prelude {
    pub use kcore::{Config, CorenessResult, KCore};
    pub use kcore_graph::{CsrGraph, GraphBuilder, VertexId};
}
