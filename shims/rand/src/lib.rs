//! Offline shim for the `rand` 0.8 API subset this workspace uses:
//! `SmallRng::seed_from_u64`, `gen`, `gen_bool`, and `gen_range` over
//! integer ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! family the real `SmallRng` uses on 64-bit targets. Sequences are NOT
//! bit-identical to the real crate's; all in-tree users only rely on
//! determinism per seed, which this provides.

use std::ops::Range;

pub mod rngs {
    /// Small, fast, non-cryptographic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        pub(crate) state: [u64; 4],
    }
}

use rngs::SmallRng;

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full state, as
        // recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng { state: [next(), next(), next(), next()] }
    }
}

/// Types samplable uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                // Modulo sampling: the bias at these span sizes is far
                // below anything the synthetic generators can observe.
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u32, u64, usize);

/// Types samplable from the "standard" distribution by [`Rng::gen`].
pub trait StandardSample {
    fn sample(rng: &mut dyn RngCore) -> Self;
}

impl StandardSample for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u32 {
    fn sample(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for u64 {
    fn sample(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Object-safe core: just the raw 64-bit stream.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The user-facing sampling interface, mirroring `rand::Rng`.
#[allow(keyword_idents_2024)] // `gen` matches the rand 0.8 method name
pub trait Rng: RngCore + Sized {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::sample(self) < p
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..10).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    fn gen_bool_rate_is_roughly_p() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hit rate {hits} far from 25%");
    }

    #[test]
    fn uniformity_over_small_range_is_plausible() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from uniform");
        }
    }
}
