//! Offline shim for the `criterion` API subset this workspace uses:
//! `Criterion::bench_function`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — warm up, then run batches until
//! a fixed wall-clock budget and report mean ns/iter — no statistics,
//! plots, or baselines. Good enough to compare orders of magnitude and
//! to keep `cargo bench` runnable offline; swap in the real criterion
//! via the workspace `[workspace.dependencies]` entry for real numbers.

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const MAX_ITERS: u64 = 10_000;

/// Per-benchmark wall-clock budget: `KCORE_BENCH_BUDGET_MS` env
/// override, default 300ms. Raise it when comparing close pairs whose
/// per-iteration time leaves the default with only a handful of
/// samples (e.g. the ingest A/B in `bench_build`).
fn measure_budget() -> Duration {
    static MS: OnceLock<u64> = OnceLock::new();
    let ms = *MS.get_or_init(|| {
        std::env::var("KCORE_BENCH_BUDGET_MS").ok().and_then(|s| s.parse().ok()).unwrap_or(300)
    });
    Duration::from_millis(ms)
}

/// One completed benchmark measurement.
#[derive(Debug, Clone)]
pub struct Report {
    /// Benchmark id as passed to `bench_function`.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: u64,
    /// Iterations measured (after warmup).
    pub iters: u64,
}

/// Process-global measurement log. The real criterion persists results
/// itself; the shim instead exposes them so a harness (see
/// `kcore_bench::summary`) can emit machine-readable output.
static REPORTS: Mutex<Vec<Report>> = Mutex::new(Vec::new());

/// Drains every measurement recorded so far in this process.
pub fn take_reports() -> Vec<Report> {
    std::mem::take(&mut *REPORTS.lock().unwrap())
}

/// Entry point handed to each benchmark function.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>` filters benchmarks, as with the
        // real harness. Flags (`--bench`, `--exact`, ...) are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    /// Runs `f` as the benchmark `id`, unless filtered out.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher { total: Duration::ZERO, iters: 0 };
        f(&mut b);
        let per_iter = (b.total.as_nanos() as u64).checked_div(b.iters).unwrap_or(0);
        println!("{id:<50} {per_iter:>12} ns/iter ({} iters)", b.iters);
        REPORTS.lock().unwrap().push(Report {
            id: id.to_string(),
            ns_per_iter: per_iter,
            iters: b.iters,
        });
        self
    }
}

/// Timing loop driver.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated runs of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let budget = measure_budget();
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget && iters < MAX_ITERS {
            black_box(routine());
            iters += 1;
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine() {
        let mut c = Criterion { filter: None };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { filter: Some("nope".into()) };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(!ran);
    }
}
