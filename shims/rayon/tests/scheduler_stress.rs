//! Deterministic stress tests for the work-stealing scheduler: nested
//! `install`, `join` under recursion depth, and steal-heavy skewed
//! workloads driven by a seeded power-law cost model. Everything here
//! asserts exact results — the scheduler may order execution however it
//! likes, but the answers must be oracle-identical run after run.

use kcore_check::sync::atomic::{AtomicU64, Ordering};
use rayon::prelude::*;
use rayon::{current_num_threads, join, stats, ThreadPoolBuilder};

/// xorshift64* — a tiny seeded generator so the skew pattern is
/// reproducible across runs and platforms.
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Per-item cost following a discrete power law: most items are cheap,
/// a seeded few are orders of magnitude heavier — the shape of a peel
/// frontier on a power-law graph, where one contiguous block holds the
/// hubs. Contiguous-block schedules serialize on the heavy block; the
/// splitting scheduler must still produce exact results.
fn power_law_cost(i: usize, seed: u64) -> u64 {
    let mut state = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let r = xorshift64(&mut state);
    // Zipf-ish: cost 2^k with probability ~2^-k, capped.
    let k = (r.trailing_ones()).min(10);
    1u64 << k
}

/// Burns `cost` units of deterministic arithmetic and returns a value
/// derived from them (so the work cannot be optimized away).
fn spin_work(i: usize, cost: u64) -> u64 {
    let mut acc = i as u64;
    for step in 0..cost {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(step);
    }
    acc
}

#[test]
fn skewed_power_law_workload_is_exact() {
    let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let n = 50_000usize;
    let seed = 0xC0FF_EE11;
    let expected: u64 =
        (0..n).map(|i| spin_work(i, power_law_cost(i, seed))).fold(0, u64::wrapping_add);
    for round in 0..4 {
        let got: u64 = pool.install(|| {
            (0..n)
                .into_par_iter()
                .map(|i| spin_work(i, power_law_cost(i, seed)))
                .collect::<Vec<u64>>()
                .into_iter()
                .fold(0, u64::wrapping_add)
        });
        assert_eq!(got, expected, "round {round} diverged on the skewed workload");
    }
}

#[test]
fn hub_block_workload_splits_for_thieves() {
    // All the weight in the first 1% of the index space: a static
    // contiguous partition would serialize this on worker 0. Assert
    // exactness and that the scheduler actually published splits.
    let before = stats::snapshot();
    let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let n = 40_000usize;
    let expected: u64 = (0..n)
        .map(|i| if i < n / 100 { spin_work(i, 2_000) } else { spin_work(i, 1) })
        .fold(0, u64::wrapping_add);
    let got: u64 = pool.install(|| {
        (0..n)
            .into_par_iter()
            .map(|i| if i < n / 100 { spin_work(i, 2_000) } else { spin_work(i, 1) })
            .collect::<Vec<u64>>()
            .into_iter()
            .fold(0, u64::wrapping_add)
    });
    assert_eq!(got, expected);
    let after = stats::snapshot();
    assert!(after.splits > before.splits, "hub-heavy job must split into stealable pieces");
}

#[test]
fn nested_install_uses_innermost_pool() {
    let outer = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    outer.install(|| {
        assert_eq!(current_num_threads(), 4);
        inner.install(|| {
            assert_eq!(current_num_threads(), 2);
            let sum: u64 = (0..10_000u64).into_par_iter().sum();
            assert_eq!(sum, 10_000 * 9_999 / 2);
        });
        // Restored after the inner scope, even from inside a closure.
        assert_eq!(current_num_threads(), 4);
        let count = (0..30_000usize).into_par_iter().filter(|&i| i % 3 == 0).count();
        assert_eq!(count, 10_000);
    });
}

#[test]
fn install_restores_on_panic() {
    let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    let baseline = current_num_threads();
    let result =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.install(|| panic!("boom"))));
    assert!(result.is_err());
    assert_eq!(current_num_threads(), baseline, "install override leaked past a panic");
}

/// Binary fork–join recursion: sums `lo..hi` purely through nested
/// `join` calls, exercising deque push/pop/steal under depth.
fn join_sum(lo: u64, hi: u64) -> u64 {
    if hi - lo <= 64 {
        return (lo..hi).sum();
    }
    let mid = lo + (hi - lo) / 2;
    let (a, b) = join(|| join_sum(lo, mid), || join_sum(mid, hi));
    a + b
}

#[test]
fn join_under_depth_is_exact() {
    let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    // Depth ~14 of nested joins, thousands of tasks.
    let n = 1u64 << 20;
    let got = pool.install(|| join_sum(0, n));
    assert_eq!(got, n * (n - 1) / 2);
}

#[test]
fn join_mixed_with_parallel_iterators() {
    let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
    let (left, right) = pool.install(|| {
        join(
            || (0..20_000u64).into_par_iter().map(|x| x * 2).sum::<u64>(),
            || (0..20_000usize).into_par_iter().filter(|&x| x % 2 == 0).count(),
        )
    });
    assert_eq!(left, (0..20_000u64).map(|x| x * 2).sum::<u64>());
    assert_eq!(right, 10_000);
}

#[test]
fn join_propagates_branch_panics() {
    let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    let touched = AtomicU64::new(0);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.install(|| {
            join(
                || touched.fetch_add(1, Ordering::Relaxed),
                || -> u64 { panic!("second branch fails") },
            )
        })
    }));
    assert!(result.is_err(), "panic in the stolen branch must reach the caller");
    assert_eq!(touched.load(Ordering::Relaxed), 1, "first branch still ran");
}

#[test]
fn per_worker_counters_relate_sanely() {
    // A fresh pool starts with zeroed per-worker tallies, so the sums
    // observed inside `install` are attributable to this pool alone.
    let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    const OPS: u64 = 3;
    let per = pool.install(|| {
        for _ in 0..OPS {
            let sum: u64 = (0..60_000u64).into_par_iter().map(|x| x ^ 5).sum();
            assert_eq!(sum, (0..60_000u64).map(|x| x ^ 5).sum());
        }
        stats::per_worker()
    });
    assert_eq!(per.len(), 4, "one tally set per worker");
    let steals: u64 = per.iter().map(|w| w.steals).sum();
    let splits: u64 = per.iter().map(|w| w.splits).sum();
    assert!(splits > 0, "60k-element jobs on 4 threads must split");
    // Everything ever stolen was published on a deque either by a
    // split or as one of the OPS seeded root tasks — there is no other
    // deque producer, so steals can never outrun splits by more than
    // the root-task count.
    assert!(
        steals <= splits + OPS,
        "steals ({steals}) exceed published stealable tasks (splits {splits} + {OPS} roots)"
    );
    for (i, w) in per.iter().enumerate() {
        assert!(w.wakes <= w.parks, "worker {i}: wake ({}) without a park ({})", w.wakes, w.parks);
    }
}

#[test]
fn concurrent_pools_do_not_interfere() {
    // Two pools driven from two OS threads at once: jobs must stay in
    // their own registries and both must produce exact results.
    std::thread::scope(|s| {
        for seed in [1u64, 2] {
            s.spawn(move || {
                let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
                let expected: u64 = (0..30_000)
                    .map(|i| spin_work(i, power_law_cost(i, seed)))
                    .fold(0, u64::wrapping_add);
                let got: u64 = pool.install(|| {
                    (0..30_000usize)
                        .into_par_iter()
                        .map(|i| spin_work(i, power_law_cost(i, seed)))
                        .collect::<Vec<u64>>()
                        .into_iter()
                        .fold(0, u64::wrapping_add)
                });
                assert_eq!(got, expected, "pool with seed {seed} diverged");
            });
        }
    });
}
