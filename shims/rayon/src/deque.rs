//! The Chase–Lev work-stealing deque backing each pool worker.
//!
//! Owner-side `push`/`take` operate on the bottom end without CAS in the
//! common case; thieves `steal` from the top end with a CAS. The
//! implementation follows Lê, Pop, Cohen & Zappa Nardelli, *"Correct and
//! Efficient Work-Stealing for Weak Memory Models"* (PPoPP '13), with a
//! fixed-capacity circular buffer instead of a growable one: the number
//! of outstanding tasks per worker is bounded by the split depth of
//! block jobs plus the `join` nesting depth, both logarithmic, so a
//! fixed buffer never fills in practice. If it ever does, [`Deque::push`]
//! reports failure and the scheduler degrades gracefully by running the
//! task inline instead of publishing it.
//!
//! # Memory-ordering contract (checker-enforced)
//!
//! All atomics go through the `kcore-check` facade, and the two
//! load-bearing orderings are named mutation sites:
//!
//! * `deque.push.publish` — the `Release` fence in [`Deque::push`]
//!   orders the slot write before the `bottom` publication, so a thief
//!   that observes the new `bottom` also observes the element. Weakened
//!   to `Relaxed`, a thief can steal an unwritten slot; the model tests
//!   in this module catch it as a committed racy read.
//! * `deque.take.fence` — the `SeqCst` fence in [`Deque::take`]
//!   arbitrates the owner's `bottom` decrement against thieves' `top`
//!   CASes. Weakened, the owner can observe a stale `top`, take a slot
//!   a thief already stole without the last-element CAS, and the model
//!   conservation test observes the duplicated task.
//!
//! A thief's read of the element slot is *speculative*: it may race the
//! owner rewriting the slot after a wrap, and is valid only if the
//! subsequent `top` CAS succeeds. Under the model checker this is an
//! explicit [`annotate::speculative`] scope whose verdict is delivered
//! by [`annotate::commit_speculation`] — a racy read that is *used*
//! (CAS succeeded) still fails the model. Miri and ThreadSanitizer
//! cannot express that argument, so those runs (`cfg(miri)` /
//! `cfg(kcore_tsan)`) swap in [`strict`], a mutex-backed deque with the
//! same API and LIFO/FIFO semantics, instead of excluding the tests.

#[cfg(not(any(miri, kcore_tsan)))]
pub(crate) use lockfree::Deque;
#[cfg(any(miri, kcore_tsan))]
pub(crate) use strict::Deque;

#[cfg(not(any(miri, kcore_tsan)))]
mod lockfree {
    use crate::registry::Task;
    use kcore_check::cell::UnsafeCell;
    use kcore_check::sync::atomic::{fence, AtomicIsize, Ordering};
    use kcore_check::{annotate, mutate};
    use std::mem::MaybeUninit;

    /// Slots per deque. Must be a power of two. Tiny under the model
    /// checker so wrap-around (the speculative-read hazard) is reached
    /// within a few operations.
    #[cfg(not(kcore_check))]
    const CAPACITY: usize = 1024;
    #[cfg(kcore_check)]
    const CAPACITY: usize = 4;
    const MASK: usize = CAPACITY - 1;

    /// A fixed-capacity Chase–Lev deque of [`Task`]s.
    pub(crate) struct Deque {
        /// Next slot the owner will push into (owner-written).
        bottom: AtomicIsize,
        /// Next slot thieves will steal from (CAS-advanced).
        top: AtomicIsize,
        buffer: Box<[UnsafeCell<MaybeUninit<Task>>]>,
    }

    // SAFETY: all cross-thread access to `buffer` follows the Chase–Lev
    // protocol: a slot is read by at most one party (the owner's `take`
    // or the thief whose `top` CAS succeeds), and the fences below order
    // the element writes against the index publications.
    unsafe impl Sync for Deque {}
    unsafe impl Send for Deque {}

    impl Deque {
        pub(crate) fn new() -> Self {
            Self {
                bottom: AtomicIsize::new(0),
                top: AtomicIsize::new(0),
                buffer: (0..CAPACITY).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect(),
            }
        }

        /// Owner-only: publishes `task` at the bottom. Fails (returning
        /// the task) when the buffer is full.
        pub(crate) fn push(&self, task: Task) -> Result<(), Task> {
            let b = self.bottom.load(Ordering::Relaxed);
            let t = self.top.load(Ordering::Acquire);
            if b.wrapping_sub(t) >= CAPACITY as isize {
                return Err(task);
            }
            self.buffer[b as usize & MASK].with_mut(|p| unsafe { (*p).write(task) });
            // Publish the element before the new bottom becomes visible
            // to thieves.
            fence(mutate::ordering("deque.push.publish", Ordering::Release));
            self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            Ok(())
        }

        /// Owner-only: pops the most recently pushed task (LIFO end).
        pub(crate) fn take(&self) -> Option<Task> {
            let b = self.bottom.load(Ordering::Relaxed).wrapping_sub(1);
            self.bottom.store(b, Ordering::Relaxed);
            // Order the bottom decrement against the top read: a
            // concurrent thief must either see the lowered bottom or
            // lose the CAS race.
            fence(mutate::ordering("deque.take.fence", Ordering::SeqCst));
            let t = self.top.load(Ordering::Relaxed);
            if t <= b {
                // Non-empty.
                let task =
                    self.buffer[b as usize & MASK].with(|p| unsafe { (*p).assume_init_read() });
                if t == b {
                    // Last element: race the thieves for it.
                    let won = self
                        .top
                        .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                        .is_ok();
                    self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
                    won.then_some(task)
                } else {
                    Some(task)
                }
            } else {
                // Empty: restore bottom.
                self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
                None
            }
        }

        /// Any thread: steals the oldest task (FIFO end). Returns
        /// `None` when the deque is observed empty; internally retries
        /// lost CAS races against other thieves.
        pub(crate) fn steal(&self) -> Option<Task> {
            loop {
                let t = self.top.load(Ordering::Acquire);
                fence(Ordering::SeqCst);
                let b = self.bottom.load(Ordering::Acquire);
                if t >= b {
                    return None;
                }
                // Speculative read; only valid if the CAS below
                // confirms the slot was still ours to take. (`Task` is
                // plain data, so the duplicate read is dropped without
                // effect when the CAS loses.)
                let task = annotate::speculative(|| {
                    self.buffer[t as usize & MASK].with(|p| unsafe { (*p).assume_init_read() })
                });
                let won = self
                    .top
                    .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                annotate::commit_speculation(won);
                if won {
                    return Some(task);
                }
                // Lost the race (another thief or the owner's
                // last-element pop); re-examine the deque.
            }
        }
    }
}

/// Strict fallback for Miri / ThreadSanitizer builds: same API and
/// LIFO-owner/FIFO-thief semantics, one mutex-protected ring. The
/// scheduler exercises identical control flow; only the lock-free slot
/// protocol (whose speculative read those tools reject by design) is
/// replaced.
#[cfg(any(miri, kcore_tsan))]
mod strict {
    use crate::registry::Task;
    use std::collections::VecDeque;
    use std::sync::Mutex;

    const CAPACITY: usize = 1024;

    pub(crate) struct Deque {
        inner: Mutex<VecDeque<Task>>,
    }

    impl Deque {
        pub(crate) fn new() -> Self {
            Self { inner: Mutex::new(VecDeque::with_capacity(CAPACITY)) }
        }

        pub(crate) fn push(&self, task: Task) -> Result<(), Task> {
            let mut q = self.inner.lock().expect("deque poisoned");
            if q.len() >= CAPACITY {
                return Err(task);
            }
            q.push_back(task);
            Ok(())
        }

        pub(crate) fn take(&self) -> Option<Task> {
            self.inner.lock().expect("deque poisoned").pop_back()
        }

        pub(crate) fn steal(&self) -> Option<Task> {
            self.inner.lock().expect("deque poisoned").pop_front()
        }
    }
}

/// Model tests: only meaningful (and only compiled) under
/// `RUSTFLAGS="--cfg kcore_check"`, where the facade routes to the
/// instrumented runtime.
#[cfg(all(test, kcore_check, not(any(miri, kcore_tsan))))]
mod model_tests {
    use super::Deque;
    use crate::registry::Task;
    use kcore_check::sync::Arc;
    use kcore_check::{mutate, thread, Checker};

    /// A tagged no-op task; the tag rides in `lo` so tests can track
    /// which logical task each pop observed.
    fn task(tag: usize) -> Task {
        unsafe fn noop(_job: *const (), _lo: usize, _hi: usize) {}
        Task { job: std::ptr::null(), runner: noop, lo: tag, hi: tag, grain: 1 }
    }

    /// Owner pushes N tasks and drains with `take` while a thief
    /// steals: every task is delivered exactly once (conservation), and
    /// the thief observes the owner's push order (FIFO at the top end).
    fn owner_vs_thief(pushes: usize) {
        let q = Arc::new(Deque::new());
        let thief_q = q.clone();
        let thief = thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..2 {
                if let Some(t) = thief_q.steal() {
                    got.push(t.lo);
                }
            }
            got
        });
        let mut mine = Vec::new();
        for i in 0..pushes {
            q.push(task(i)).unwrap_or_else(|_| panic!("deque full"));
        }
        while let Some(t) = q.take() {
            mine.push(t.lo);
        }
        let stolen = thief.join().unwrap();
        let mut all = mine.clone();
        all.extend(&stolen);
        all.sort_unstable();
        let expect: Vec<usize> = (0..pushes).collect();
        assert_eq!(all, expect, "conservation violated: mine={mine:?} stolen={stolen:?}");
        // FIFO at the steal end: the thief's tags must be increasing.
        assert!(stolen.windows(2).all(|w| w[0] < w[1]), "steals out of FIFO order: {stolen:?}");
    }

    #[test]
    fn chase_lev_conservation() {
        Checker::new().check(|| owner_vs_thief(3));
    }

    /// Wrap-around: more pushes than `CAPACITY` (4 under the model)
    /// with interleaved takes, so thieves race the owner rewriting
    /// slots — the speculative-read hazard. Every schedule must still
    /// conserve tasks.
    #[test]
    fn chase_lev_wraparound_conservation() {
        Checker::new().check(|| {
            let q = Arc::new(Deque::new());
            let thief_q = q.clone();
            let thief = thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..2 {
                    if let Some(t) = thief_q.steal() {
                        got.push(t.lo);
                    }
                }
                got
            });
            let mut mine = Vec::new();
            for i in 0..6usize {
                q.push(task(i)).unwrap_or_else(|_| panic!("deque full"));
                if i % 2 == 1 {
                    if let Some(t) = q.take() {
                        mine.push(t.lo);
                    }
                }
            }
            while let Some(t) = q.take() {
                mine.push(t.lo);
            }
            let stolen = thief.join().unwrap();
            let mut all = mine.clone();
            all.extend(&stolen);
            all.sort_unstable();
            all.dedup();
            assert_eq!(
                all.len(),
                mine.len() + stolen.len(),
                "task duplicated: mine={mine:?} stolen={stolen:?}"
            );
            assert_eq!(
                all,
                (0..6).collect::<Vec<_>>(),
                "task lost: mine={mine:?} stolen={stolen:?}"
            );
        });
    }

    /// Two thieves racing the owner for the last element: exactly one
    /// party wins it.
    #[test]
    fn chase_lev_last_element_race() {
        Checker::new().check(|| {
            let q = Arc::new(Deque::new());
            q.push(task(7)).unwrap_or_else(|_| panic!("deque full"));
            let t1_q = q.clone();
            let t1 = thread::spawn(move || t1_q.steal().map(|t| t.lo));
            let mine = q.take().map(|t| t.lo);
            let stolen = t1.join().unwrap();
            let winners = usize::from(mine.is_some()) + usize::from(stolen.is_some());
            assert_eq!(
                winners, 1,
                "last element taken {winners} times (mine={mine:?} stolen={stolen:?})"
            );
        });
    }

    /// Mutation: weakening the push-publish fence must let a thief
    /// observe `bottom` without the slot contents — a racy speculative
    /// read that gets *committed*, which the checker rejects.
    #[test]
    fn mutation_push_publish_has_teeth() {
        let _m = mutate::weaken("deque.push.publish");
        let report = Checker::new().check_fails(|| owner_vs_thief(3));
        assert!(
            report.contains("speculative racy read") || report.contains("data race"),
            "unexpected failure mode: {report}"
        );
    }

    /// Mutation: weakening the take fence lets the owner read a stale
    /// `top` and take a slot a thief already stole (no last-element
    /// CAS), violating conservation.
    #[test]
    fn mutation_take_fence_has_teeth() {
        let _m = mutate::weaken("deque.take.fence");
        Checker::new().check_fails(|| {
            let q = Arc::new(Deque::new());
            for i in 0..2usize {
                q.push(task(i)).unwrap_or_else(|_| panic!("deque full"));
            }
            let thief_q = q.clone();
            let thief = thread::spawn(move || {
                let a = thief_q.steal().map(|t| t.lo);
                let b = thief_q.steal().map(|t| t.lo);
                (a, b)
            });
            let mine = q.take().map(|t| t.lo);
            let (a, b) = thief.join().unwrap();
            let mut seen = [false; 2];
            for tag in [mine, a, b].into_iter().flatten() {
                assert!(!seen[tag], "task {tag} delivered twice");
                seen[tag] = true;
            }
        });
    }
}
