//! The Chase–Lev work-stealing deque backing each pool worker.
//!
//! Owner-side `push`/`take` operate on the bottom end without CAS in the
//! common case; thieves `steal` from the top end with a CAS. The
//! implementation follows Lê, Pop, Cohen & Zappa Nardelli, *"Correct and
//! Efficient Work-Stealing for Weak Memory Models"* (PPoPP '13), with a
//! fixed-capacity circular buffer instead of a growable one: the number
//! of outstanding tasks per worker is bounded by the split depth of
//! block jobs plus the `join` nesting depth, both logarithmic, so a
//! fixed buffer never fills in practice. If it ever does, [`Deque::push`]
//! reports failure and the scheduler degrades gracefully by running the
//! task inline instead of publishing it.
//!
//! Element slots are plain memory read with `ptr::read` under the
//! protocol's fences; a thief's speculative read racing an owner wrap is
//! discarded when its `top` CAS fails, the same benign-race argument
//! crossbeam-deque relies on. This is a **deliberate, documented
//! exception** to the C++11 data-race rules (the racing read's value is
//! never used): Miri and ThreadSanitizer will flag it, so exclude this
//! module from such runs rather than treating a report here as a new
//! bug. Removing it would require per-word atomic slot reads at a cost
//! on every push/take.

use crate::registry::Task;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, Ordering};

/// Slots per deque. Must be a power of two.
const CAPACITY: usize = 1024;
const MASK: usize = CAPACITY - 1;

/// A fixed-capacity Chase–Lev deque of [`Task`]s.
pub(crate) struct Deque {
    /// Next slot the owner will push into (owner-written).
    bottom: AtomicIsize,
    /// Next slot thieves will steal from (CAS-advanced).
    top: AtomicIsize,
    buffer: Box<[UnsafeCell<MaybeUninit<Task>>]>,
}

// SAFETY: all cross-thread access to `buffer` follows the Chase–Lev
// protocol: a slot is read by at most one party (the owner's `take` or
// the thief whose `top` CAS succeeds), and the fences below order the
// element writes against the index publications.
unsafe impl Sync for Deque {}
unsafe impl Send for Deque {}

impl Deque {
    pub(crate) fn new() -> Self {
        Self {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buffer: (0..CAPACITY).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect(),
        }
    }

    /// Owner-only: publishes `task` at the bottom. Fails (returning the
    /// task) when the buffer is full.
    pub(crate) fn push(&self, task: Task) -> Result<(), Task> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b.wrapping_sub(t) >= CAPACITY as isize {
            return Err(task);
        }
        unsafe { (*self.buffer[b as usize & MASK].get()).write(task) };
        // Publish the element before the new bottom becomes visible to
        // thieves.
        fence(Ordering::Release);
        self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
        Ok(())
    }

    /// Owner-only: pops the most recently pushed task (LIFO end).
    pub(crate) fn take(&self) -> Option<Task> {
        let b = self.bottom.load(Ordering::Relaxed).wrapping_sub(1);
        self.bottom.store(b, Ordering::Relaxed);
        // Order the bottom decrement against the top read: a concurrent
        // thief must either see the lowered bottom or lose the CAS race.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            // Non-empty.
            let task = unsafe { (*self.buffer[b as usize & MASK].get()).assume_init_read() };
            if t == b {
                // Last element: race the thieves for it.
                let won = self
                    .top
                    .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
                won.then_some(task)
            } else {
                Some(task)
            }
        } else {
            // Empty: restore bottom.
            self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            None
        }
    }

    /// Any thread: steals the oldest task (FIFO end). Returns `None`
    /// when the deque is observed empty; internally retries lost CAS
    /// races against other thieves.
    pub(crate) fn steal(&self) -> Option<Task> {
        loop {
            let t = self.top.load(Ordering::Acquire);
            fence(Ordering::SeqCst);
            let b = self.bottom.load(Ordering::Acquire);
            if t >= b {
                return None;
            }
            // Speculative read; only valid if the CAS below confirms the
            // slot was still ours to take.
            let task = unsafe { (*self.buffer[t as usize & MASK].get()).assume_init_read() };
            if self
                .top
                .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                return Some(task);
            }
            // Lost the race (another thief or the owner's last-element
            // pop); re-examine the deque.
        }
    }
}
