//! Offline shim for the `rayon` API subset this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate
//! stands in for rayon behind the same paths (`rayon::prelude::*`,
//! `ThreadPoolBuilder`, `join`, `current_num_threads`). Unlike the
//! earlier revisions of this shim — which spawned scoped OS threads per
//! operation over statically partitioned blocks — scheduling now runs
//! on a **persistent work-stealing pool**: one Chase–Lev deque per
//! worker ([`mod@deque`]), lazy binary splitting of index ranges, and a
//! global injector ([`mod@registry`]). A parallel operation submits one
//! task covering its whole index space; executors peel halves off onto
//! their own deques down to a grain, so skewed workloads (power-law
//! frontiers where a few blocks hold most of the work) rebalance by
//! stealing instead of serializing on one thread.
//!
//! Thread-count semantics: the lazily created global pool is sized by
//! `RAYON_NUM_THREADS` / `available_parallelism`; every
//! [`ThreadPool`] owns its own equally real pool, and
//! [`ThreadPool::install`] runs the closure *on a pool worker* (as the
//! real rayon does), so its parallel operations — nested ones included
//! — stay on that pool and inherit its thread count. The old
//! per-operation design stored the install override in a `thread_local`
//! that spawned workers did not inherit, silently reverting nested
//! calls to the machine default; workers now carry their registry, so
//! the count cannot be lost. [`join`] reuses pool workers — the second
//! closure becomes a stealable task — instead of spawning an OS thread
//! per call.
//!
//! Supported surface:
//! * `into_par_iter()` on integer ranges, `par_iter()` on slices/`Vec`
//! * adapters: `map`, `filter`, `filter_map`, `enumerate`
//! * consumers: `collect` (into `Vec`), `for_each`, `count`, `sum`,
//!   `max`, `min`, `any`, `all`
//! * `par_sort_unstable` on slices (join-based parallel mergesort)
//! * `ThreadPoolBuilder` / `ThreadPool::install`, `current_num_threads`,
//!   `join`
//! * [`stats`] — steal/split counters (shim-specific; consumed by
//!   `kcore_parallel::pool`)
//!
//! Swap back to the real rayon by editing the workspace
//! `[workspace.dependencies]` entry; call sites need no changes (only
//! the shim-specific [`stats`] consumers would need gating).

mod deque;
mod registry;

use kcore_check::cell::UnsafeCell;
use kcore_check::sync::atomic::{AtomicUsize, Ordering};
use kcore_check::sync::{Arc, Mutex};
use registry::{Latch, RegistryShared, Task};
use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

pub mod prelude {
    pub use crate::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator,
        IntoParallelRefIterator, ParallelIterator, ParallelSliceMut,
    };
}

/// Scheduler introspection: process-wide and per-worker
/// steal/split/park/wake counters. Not part of the real rayon API —
/// consumers must gate on the shim.
pub mod stats {
    pub use crate::registry::WorkerSnapshot;

    /// Monotonic counters since process start, summed over every
    /// registry (global pool and explicit [`crate::ThreadPool`]s).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Snapshot {
        /// Tasks taken from another worker's deque.
        pub steals: u64,
        /// Range tasks halved to publish stealable work.
        pub splits: u64,
        /// Worker sleep episodes entered (condvar parks).
        pub parks: u64,
        /// Worker sleep episodes returned from; `wakes <= parks`
        /// always, with equality once a pool is idle or shut down.
        pub wakes: u64,
    }

    /// Reads the current counter values.
    pub fn snapshot() -> Snapshot {
        Snapshot {
            steals: crate::registry::steal_count(),
            splits: crate::registry::split_count(),
            parks: crate::registry::park_count(),
            wakes: crate::registry::wake_count(),
        }
    }

    /// Per-worker tallies of the *effective* registry: the calling
    /// worker's own pool on a pool thread (e.g. inside
    /// [`crate::ThreadPool::install`]), else the lazily created
    /// global pool. Indexed by worker.
    pub fn per_worker() -> Vec<WorkerSnapshot> {
        crate::effective_registry().worker_snapshots()
    }
}

/// Sources shorter than this run on the calling thread: scheduling costs
/// more than it saves.
const MIN_PAR_LEN: usize = 2048;

/// Target number of grain-sized leaf tasks per worker. More leaves mean
/// finer stealing granularity at slightly higher task overhead.
const TASKS_PER_THREAD: usize = 8;

/// Smallest range a task is split down to.
const MIN_GRAIN: usize = 128;

/// Number of worker threads parallel operations on this thread will use.
///
/// Like the real rayon, the `RAYON_NUM_THREADS` environment variable
/// overrides the machine default (useful to force the multi-threaded
/// code paths on single-core runners and vice versa). On a pool worker
/// (including inside [`ThreadPool::install`], whose closure runs on
/// one) this is the owning pool's thread count.
pub fn current_num_threads() -> usize {
    if let Some((worker, _)) = registry::current_worker() {
        return worker.num_threads();
    }
    default_threads()
}

pub(crate) fn default_threads() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    })
}

/// The registry new jobs from this thread are submitted to: the
/// worker's own registry on a pool thread, else the global one.
fn effective_registry() -> Arc<RegistryShared> {
    if let Some((worker, _)) = registry::current_worker() {
        return worker;
    }
    registry::global_registry()
}

// ---- block jobs ------------------------------------------------------

/// Shared state of one `run_blocks` invocation, referenced (type-erased)
/// by every task of the job. The submitting thread keeps it alive on its
/// stack until the latch fires, which happens only after every index has
/// been executed — so the erased references never dangle. The latch
/// itself is `Arc`-owned: the finishing executor holds its own clone
/// across [`Latch::set`], which outlives the job's stack frame (see the
/// latch's lifetime protocol).
struct BlockJob<'f, R> {
    f: &'f (dyn Fn(Range<usize>) -> R + Sync),
    /// `(range start, result)` per executed leaf; sorted on completion.
    results: Mutex<Vec<(usize, R)>>,
    /// Indices not yet executed; the job is done at zero.
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    latch: Arc<Latch>,
}

unsafe fn run_block<R: Send>(job: *const (), lo: usize, hi: usize) {
    let job = unsafe { &*(job as *const BlockJob<'_, R>) };
    match catch_unwind(AssertUnwindSafe(|| (job.f)(lo..hi))) {
        Ok(result) => {
            job.results.lock().expect("block job poisoned").push((lo, result));
        }
        Err(payload) => {
            let mut first = job.panic.lock().expect("block job poisoned");
            if first.is_none() {
                *first = Some(payload);
            }
        }
    }
    // Clone BEFORE the decrement: once `remaining` hits zero and `set`
    // stores `done`, the submitting thread may free `job` at any moment.
    // The owned clone keeps the latch alive through `set`'s notify; `job`
    // itself must not be touched past the final decrement.
    let latch = job.latch.clone();
    if job.remaining.fetch_sub(hi - lo, Ordering::AcqRel) == hi - lo {
        latch.set();
    }
}

/// Runs `f` over `0..n` on the effective pool as one splittable job and
/// returns the per-leaf results ordered by range start (a partition of
/// the source). Falls back to a single inline call when parallelism
/// cannot pay off.
fn run_blocks<R: Send>(n: usize, f: &(dyn Fn(Range<usize>) -> R + Sync)) -> Vec<R> {
    if n == 0 {
        return Vec::new();
    }
    let threads = current_num_threads();
    if threads <= 1 || n < MIN_PAR_LEN {
        return vec![f(0..n)];
    }
    let grain = (n / (threads * TASKS_PER_THREAD)).max(MIN_GRAIN);
    let job = BlockJob {
        f,
        results: Mutex::new(Vec::new()),
        remaining: AtomicUsize::new(n),
        panic: Mutex::new(None),
        latch: Arc::new(Latch::new()),
    };
    let task = Task {
        job: &job as *const BlockJob<'_, R> as *const (),
        runner: run_block::<R>,
        lo: 0,
        hi: n,
        grain,
    };
    let pool = effective_registry();
    match registry::current_worker() {
        Some((worker, index)) if Arc::ptr_eq(&worker, &pool) => {
            // Nested call on a pool worker: seed our own deque and keep
            // executing (our job's tasks, or anyone else's) until done.
            if worker.push_local(index, task).is_ok() {
                registry::work_until(&worker, index, || job.latch.probe());
            } else {
                unsafe { run_block::<R>(task.job, 0, n) };
            }
        }
        _ => {
            pool.inject(task);
            job.latch.wait();
        }
    }
    if let Some(payload) = job.panic.into_inner().expect("block job poisoned") {
        resume_unwind(payload);
    }
    let mut results = job.results.into_inner().expect("block job poisoned");
    results.sort_unstable_by_key(|&(lo, _)| lo);
    results.into_iter().map(|(_, r)| r).collect()
}

// ---- join ------------------------------------------------------------

/// Shared state of one `join` call's second closure, referenced
/// (type-erased) by the task handed to the pool. The latch is
/// `Arc`-owned so the executor can outlive the caller's stack frame
/// while notifying (see the latch's lifetime protocol).
struct JoinJob<B, RB> {
    closure: UnsafeCell<Option<B>>,
    result: UnsafeCell<Option<RB>>,
    panic: UnsafeCell<Option<Box<dyn Any + Send>>>,
    latch: Arc<Latch>,
}

// SAFETY: the cells are touched by exactly one executor (whoever runs
// the task), and the caller reads them only after the latch's
// release/acquire handshake.
unsafe impl<B: Send, RB: Send> Sync for JoinJob<B, RB> {}

unsafe fn run_join<B, RB>(job: *const (), _lo: usize, _hi: usize)
where
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    let job = unsafe { &*(job as *const JoinJob<B, RB>) };
    let closure =
        job.closure.with_mut(|p| unsafe { (*p).take() }).expect("join task executed twice");
    match catch_unwind(AssertUnwindSafe(closure)) {
        Ok(result) => job.result.with_mut(|p| unsafe { *p = Some(result) }),
        Err(payload) => job.panic.with_mut(|p| unsafe { *p = Some(payload) }),
    }
    // Owned clone across `set`: the caller may free `job` the instant
    // `done` becomes visible, while `set` is still notifying.
    let latch = job.latch.clone();
    latch.set();
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
///
/// `b` becomes a stealable pool task; `a` runs on the calling thread.
/// On a worker, `b` goes onto the worker's own deque (and is usually
/// popped right back — the cheap fork–join fast path); from outside the
/// pool it is injected. No OS thread is spawned either way.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let job = JoinJob::<B, RB> {
        closure: UnsafeCell::new(Some(b)),
        result: UnsafeCell::new(None),
        panic: UnsafeCell::new(None),
        latch: Arc::new(Latch::new()),
    };
    let job_ptr = &job as *const JoinJob<B, RB> as *const ();
    let task = Task { job: job_ptr, runner: run_join::<B, RB>, lo: 0, hi: 0, grain: 0 };
    let pool = effective_registry();
    let ra = match registry::current_worker() {
        Some((worker, index)) if Arc::ptr_eq(&worker, &pool) => {
            if worker.push_local(index, task).is_err() {
                // Deque full (pathological nesting): run sequentially.
                let ra = a();
                unsafe { run_join::<B, RB>(job_ptr, 0, 0) };
                return unpack_join(Ok(ra), &job);
            }
            let ra = catch_unwind(AssertUnwindSafe(a));
            // Reclaim `b`: pop our deque back down to it. Anything above
            // it is other jobs' pending work pushed while we executed
            // `a` — run it, it cannot be ours. If the deque runs out,
            // `b` was stolen (or already ran in a nested wait): keep the
            // pool busy until its latch fires.
            while !job.latch.probe() {
                match worker.take_local(index) {
                    Some(t) if std::ptr::eq(t.job, job_ptr) => {
                        registry::execute(&worker, index, t);
                        break;
                    }
                    Some(t) => registry::execute(&worker, index, t),
                    None => {
                        registry::work_until(&worker, index, || job.latch.probe());
                        break;
                    }
                }
            }
            ra
        }
        _ => {
            pool.inject(task);
            let ra = catch_unwind(AssertUnwindSafe(a));
            job.latch.wait();
            ra
        }
    };
    unpack_join(ra, &job)
}

/// Resolves a `join` call once both branches have settled: `a`'s panic
/// wins (it happened first), then `b`'s, then both results.
fn unpack_join<B, RA, RB>(ra: Result<RA, Box<dyn Any + Send>>, job: &JoinJob<B, RB>) -> (RA, RB) {
    let ra = match ra {
        Ok(v) => v,
        Err(payload) => resume_unwind(payload),
    };
    if let Some(payload) = job.panic.with_mut(|p| unsafe { (*p).take() }) {
        resume_unwind(payload);
    }
    let rb =
        job.result.with_mut(|p| unsafe { (*p).take() }).expect("join: second branch never ran");
    (ra, rb)
}

// ---- thread pools ----------------------------------------------------

/// Error type for [`ThreadPoolBuilder::build`]; never actually produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` means "use the default" (as in rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { default_threads() } else { self.num_threads };
        Ok(ThreadPool { registry: registry::Registry::new(n) })
    }
}

/// A real pool: `num_threads` persistent workers with their own deques.
/// Dropping the pool joins its workers.
pub struct ThreadPool {
    registry: registry::Registry,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.registry.shared.num_threads()
    }

    /// Executes `op` **on a pool worker** (as the real rayon does) and
    /// returns its result; the caller blocks meanwhile. Every parallel
    /// operation `op` issues therefore takes the cheap worker path —
    /// pushed on the worker's own deque and executed in place, with no
    /// cross-thread wakeup per operation — and inherits this pool's
    /// thread count, nested or not. Called from a worker of this very
    /// pool, `op` just runs in place.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        if let Some((worker, _)) = registry::current_worker() {
            if Arc::ptr_eq(&worker, &self.registry.shared) {
                return op();
            }
        }
        let job = JoinJob::<OP, R> {
            closure: UnsafeCell::new(Some(op)),
            result: UnsafeCell::new(None),
            panic: UnsafeCell::new(None),
            latch: Arc::new(Latch::new()),
        };
        let task = Task {
            job: &job as *const JoinJob<OP, R> as *const (),
            runner: run_join::<OP, R>,
            lo: 0,
            hi: 0,
            grain: 0,
        };
        self.registry.shared.inject(task);
        job.latch.wait();
        unpack_join(Ok(()), &job).1
    }
}

/// The core shim trait. Every iterator is backed by an indexed source of
/// known length; `drive` evaluates one contiguous block of source
/// indices sequentially, feeding produced items to `sink` in order.
pub trait ParallelIterator: Sized + Send + Sync {
    type Item: Send;

    /// Length of the underlying indexed source (items *before* any
    /// filtering).
    fn source_len(&self) -> usize;

    /// Evaluates source indices `range`, pushing each produced item into
    /// `sink` in source order.
    fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut(Self::Item));

    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Send + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    fn filter<P>(self, pred: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Send + Sync,
    {
        Filter { base: self, pred }
    }

    fn filter_map<F, R>(self, f: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Item) -> Option<R> + Send + Sync,
        R: Send,
    {
        FilterMap { base: self, f }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        run_blocks(self.source_len(), &|range| self.drive(range, &mut |item| f(item)));
    }

    fn count(self) -> usize {
        run_blocks(self.source_len(), &|range| {
            let mut c = 0usize;
            self.drive(range, &mut |_| c += 1);
            c
        })
        .into_iter()
        .sum()
    }

    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        run_blocks(self.source_len(), &|range| {
            // Fold incrementally through the two Sum impls — no
            // per-block buffer of the items.
            let mut acc: Option<S> = None;
            self.drive(range, &mut |item| {
                let one = std::iter::once(item).sum::<S>();
                acc = Some(match acc.take() {
                    None => one,
                    Some(a) => [a, one].into_iter().sum::<S>(),
                });
            });
            acc
        })
        .into_iter()
        .flatten()
        .sum()
    }

    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        run_blocks(self.source_len(), &|range| {
            let mut best: Option<Self::Item> = None;
            self.drive(range, &mut |item| {
                if best.as_ref().is_none_or(|b| *b < item) {
                    best = Some(item);
                }
            });
            best
        })
        .into_iter()
        .flatten()
        .max()
    }

    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        run_blocks(self.source_len(), &|range| {
            let mut best: Option<Self::Item> = None;
            self.drive(range, &mut |item| {
                if best.as_ref().is_none_or(|b| *b > item) {
                    best = Some(item);
                }
            });
            best
        })
        .into_iter()
        .flatten()
        .min()
    }

    fn any<P>(self, pred: P) -> bool
    where
        P: Fn(Self::Item) -> bool + Send + Sync,
    {
        run_blocks(self.source_len(), &|range| {
            let mut hit = false;
            self.drive(range, &mut |item| hit = hit || pred(item));
            hit
        })
        .into_iter()
        .any(|b| b)
    }

    fn all<P>(self, pred: P) -> bool
    where
        P: Fn(Self::Item) -> bool + Send + Sync,
    {
        run_blocks(self.source_len(), &|range| {
            let mut ok = true;
            self.drive(range, &mut |item| ok = ok && pred(item));
            ok
        })
        .into_iter()
        .all(|b| b)
    }

    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Marker + helpers for iterators whose items correspond 1:1, in order,
/// to source indices (no filtering upstream).
pub trait IndexedParallelIterator: ParallelIterator {
    fn len(&self) -> usize {
        self.source_len()
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }
}

pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter(&'a self) -> Self::Iter;
}

pub trait FromParallelIterator<T: Send> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let blocks = run_blocks(iter.source_len(), &|range| {
            let mut items = Vec::new();
            iter.drive(range, &mut |item| items.push(item));
            items
        });
        let mut out = Vec::with_capacity(blocks.iter().map(Vec::len).sum());
        for b in blocks {
            out.extend(b);
        }
        out
    }
}

// ---- sources ---------------------------------------------------------

/// Parallel iterator over an integer range.
pub struct IterRange<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = IterRange<$t>;
            fn into_par_iter(self) -> IterRange<$t> {
                let len = if self.end > self.start { (self.end - self.start) as usize } else { 0 };
                IterRange { start: self.start, len }
            }
        }

        impl ParallelIterator for IterRange<$t> {
            type Item = $t;
            fn source_len(&self) -> usize {
                self.len
            }
            fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut($t)) {
                for i in range {
                    sink(self.start + i as $t);
                }
            }
        }

        impl IndexedParallelIterator for IterRange<$t> {}
    )*};
}

impl_range_par_iter!(u32, u64, usize);

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn source_len(&self) -> usize {
        self.slice.len()
    }
    fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut(&'a T)) {
        for item in &self.slice[range] {
            sink(item);
        }
    }
}

impl<T: Sync> IndexedParallelIterator for SliceIter<'_, T> {}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

// ---- adapters --------------------------------------------------------

pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;
    fn source_len(&self) -> usize {
        self.base.source_len()
    }
    fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut(R)) {
        self.base.drive(range, &mut |item| sink((self.f)(item)));
    }
}

impl<I, F, R> IndexedParallelIterator for Map<I, F>
where
    I: IndexedParallelIterator,
    F: Fn(I::Item) -> R + Send + Sync,
    R: Send,
{
}

pub struct Filter<I, P> {
    base: I,
    pred: P,
}

impl<I, P> ParallelIterator for Filter<I, P>
where
    I: ParallelIterator,
    P: Fn(&I::Item) -> bool + Send + Sync,
{
    type Item = I::Item;
    fn source_len(&self) -> usize {
        self.base.source_len()
    }
    fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut(I::Item)) {
        self.base.drive(range, &mut |item| {
            if (self.pred)(&item) {
                sink(item);
            }
        });
    }
}

pub struct FilterMap<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for FilterMap<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> Option<R> + Send + Sync,
    R: Send,
{
    type Item = R;
    fn source_len(&self) -> usize {
        self.base.source_len()
    }
    fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut(R)) {
        self.base.drive(range, &mut |item| {
            if let Some(mapped) = (self.f)(item) {
                sink(mapped);
            }
        });
    }
}

pub struct Enumerate<I> {
    base: I,
}

impl<I> ParallelIterator for Enumerate<I>
where
    I: IndexedParallelIterator,
{
    type Item = (usize, I::Item);
    fn source_len(&self) -> usize {
        self.base.source_len()
    }
    fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut((usize, I::Item))) {
        // Indexed upstream: items map 1:1 to source indices, so the
        // global index is the block-local position plus the block start.
        let mut idx = range.start;
        self.base.drive(range, &mut |item| {
            sink((idx, item));
            idx += 1;
        });
    }
}

impl<I: IndexedParallelIterator> IndexedParallelIterator for Enumerate<I> {}

// ---- parallel sort ---------------------------------------------------

pub trait ParallelSliceMut<T: Send> {
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
}

/// Raw pointer that may cross threads; the mergesort recursion hands
/// each branch a disjoint region.
struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the
    /// whole `Send` wrapper, not the raw pointer field.
    fn get(self) -> *mut T {
        self.0
    }
}

// SAFETY: the recursion below only ever touches disjoint index ranges
// through copies of the same pointer.
unsafe impl<T: Send> Send for SendPtr<T> {}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        let n = self.len();
        let threads = current_num_threads();
        if threads <= 1 || n < MIN_PAR_LEN {
            self.sort_unstable();
            return;
        }
        // Join-based parallel mergesort through a scratch buffer.
        // Elements are moved bitwise (never dropped): scratch keeps
        // len = 0 and is used as raw storage only. A panicking `Ord`
        // impl during the merge would leak/duplicate elements of a
        // non-Copy `T`; all users in this workspace sort Copy types.
        let mut scratch: Vec<T> = Vec::with_capacity(n);
        let grain = (n / (threads * 2)).max(MIN_PAR_LEN / 2);
        // SAFETY: base and scratch are disjoint allocations of n slots.
        unsafe { par_merge_sort(self.as_mut_ptr(), scratch.as_mut_ptr(), 0, n, grain) };
    }
}

/// Sorts `base[lo..hi]`: recursively sorts both halves (in parallel via
/// [`join`]) and merges them through `tmp[lo..hi]`.
///
/// # Safety
///
/// `base` and `tmp` must each be valid for reads/writes over `lo..hi`
/// and must not overlap; no other thread may touch that region of
/// either for the duration of the call.
unsafe fn par_merge_sort<T: Ord + Send>(
    base: *mut T,
    tmp: *mut T,
    lo: usize,
    hi: usize,
    grain: usize,
) {
    let len = hi - lo;
    if len <= grain {
        unsafe { std::slice::from_raw_parts_mut(base.add(lo), len) }.sort_unstable();
        return;
    }
    let mid = lo + len / 2;
    let base_ptr = SendPtr(base);
    let tmp_ptr = SendPtr(tmp);
    join(
        // SAFETY: the two branches own disjoint ranges of both buffers.
        move || unsafe { par_merge_sort(base_ptr.get(), tmp_ptr.get(), lo, mid, grain) },
        move || unsafe { par_merge_sort(base_ptr.get(), tmp_ptr.get(), mid, hi, grain) },
    );
    unsafe { merge_runs(base, tmp, lo, mid, hi) };
}

/// Merges the sorted runs `base[lo..mid]` and `base[mid..hi]` in place,
/// using `tmp[lo..hi]` as scratch (so sibling merges in the parallel
/// recursion touch disjoint scratch regions).
///
/// # Safety
///
/// `base` and `tmp` must be valid for reads/writes over `lo..hi`, and
/// the two allocations must not overlap.
unsafe fn merge_runs<T: Ord>(base: *mut T, tmp: *mut T, lo: usize, mid: usize, hi: usize) {
    let mut i = lo;
    let mut j = mid;
    let mut k = lo;
    while i < mid && j < hi {
        if *base.add(j) < *base.add(i) {
            std::ptr::copy_nonoverlapping(base.add(j), tmp.add(k), 1);
            j += 1;
        } else {
            std::ptr::copy_nonoverlapping(base.add(i), tmp.add(k), 1);
            i += 1;
        }
        k += 1;
    }
    if i < mid {
        std::ptr::copy_nonoverlapping(base.add(i), tmp.add(k), mid - i);
        k += mid - i;
    }
    if j < hi {
        std::ptr::copy_nonoverlapping(base.add(j), tmp.add(k), hi - j);
        k += hi - j;
    }
    std::ptr::copy_nonoverlapping(tmp.add(lo), base.add(lo), k - lo);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_collect_preserves_order() {
        let v: Vec<u32> = (0u32..10_000).into_par_iter().collect();
        assert_eq!(v, (0u32..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn map_filter_chain() {
        let v: Vec<usize> =
            (0usize..10_000).into_par_iter().map(|i| i * 2).filter(|&x| x % 3 == 0).collect();
        let want: Vec<usize> = (0usize..10_000).map(|i| i * 2).filter(|&x| x % 3 == 0).collect();
        assert_eq!(v, want);
    }

    #[test]
    fn slice_enumerate_matches_sequential() {
        let data: Vec<u32> = (0..5000u32).rev().collect();
        let got: Vec<(usize, u32)> = data.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        let want: Vec<(usize, u32)> = data.iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn reductions() {
        assert_eq!((0u64..1_000).into_par_iter().sum::<u64>(), 499_500);
        assert_eq!((0u32..9_999).into_par_iter().max(), Some(9_998));
        assert_eq!((0u32..9_999).into_par_iter().min(), Some(0));
        assert_eq!((0usize..10_000).into_par_iter().filter(|&i| i % 7 == 0).count(), 1429);
        assert!((0u32..10_000).into_par_iter().any(|i| i == 9_999));
        assert!(!(0u32..10_000).into_par_iter().any(|i| i == 10_000));
        assert!((0u32..10_000).into_par_iter().all(|i| i < 10_000));
    }

    #[test]
    fn par_sort_matches_std_sort() {
        let mut v: Vec<u64> = (0..100_000u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
        let mut want = v.clone();
        want.sort_unstable();
        v.par_sort_unstable();
        assert_eq!(v, want);
    }

    #[test]
    fn par_sort_under_forced_threads() {
        // Force the multi-threaded merge path even on 1-CPU machines.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let mut v: Vec<u32> = (0..50_000u32).map(|i| i.wrapping_mul(2654435761)).collect();
            let mut want = v.clone();
            want.sort_unstable();
            v.par_sort_unstable();
            assert_eq!(v, want);
        });
    }

    #[test]
    fn high_thread_count_never_overruns_the_source() {
        // Regression (static-partition era): trailing blocks computed
        // from the thread count used to run past the end of the source.
        // The splitting scheduler partitions `0..n` by construction, but
        // keep the boundary case covered.
        let pool = ThreadPoolBuilder::new().num_threads(64).build().unwrap();
        pool.install(|| {
            let data: Vec<u32> = (0..2500u32).collect();
            let doubled: Vec<u32> = data.par_iter().map(|&x| x * 2).collect();
            assert_eq!(doubled.len(), 2500);
            assert_eq!(doubled[2499], 4998);
            assert_eq!(data.par_iter().map(|&x| x as u64).sum::<u64>(), 2499 * 2500 / 2);
        });
    }

    #[test]
    fn sum_of_empty_and_filtered_blocks() {
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        pool.install(|| {
            assert_eq!((0u64..0).into_par_iter().sum::<u64>(), 0);
            // Whole blocks filter to nothing; their accumulators stay empty.
            assert_eq!((0u64..10_000).into_par_iter().filter(|&x| x == 1).sum::<u64>(), 1);
        });
    }

    #[test]
    fn pool_install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
    }

    #[test]
    fn join_returns_both() {
        assert_eq!(join(|| 1 + 1, || "x"), (2, "x"));
    }

    #[test]
    fn workers_inherit_pool_thread_count() {
        // Regression: the per-operation design stored the install
        // override in a plain thread_local that spawned workers did not
        // inherit, so nested parallel calls inside a worker closure
        // reverted to the machine default. Workers now carry their
        // registry: every leaf must observe the pool's thread count.
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let counts: Vec<usize> = pool.install(|| {
            (0..2 * MIN_PAR_LEN).into_par_iter().map(|_| current_num_threads()).collect()
        });
        assert!(counts.iter().all(|&c| c == 3), "a worker saw the wrong thread count");
    }

    #[test]
    fn nested_parallel_ops_stay_in_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let total: u64 = pool.install(|| {
            (0..4 * MIN_PAR_LEN as u64)
                .into_par_iter()
                .map(|_| {
                    // Nested op from (usually) a worker thread; must see
                    // 2 threads and produce the exact sum.
                    assert_eq!(current_num_threads(), 2);
                    1u64
                })
                .sum()
        });
        assert_eq!(total, 4 * MIN_PAR_LEN as u64);
    }

    #[test]
    fn steal_and_split_counters_advance() {
        let before = stats::snapshot();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let sum: u64 = (0..100_000u64).into_par_iter().map(|x| x % 7).sum();
            assert_eq!(sum, (0..100_000u64).map(|x| x % 7).sum());
        });
        let after = stats::snapshot();
        assert!(after.splits > before.splits, "large jobs must split");
    }
}
