//! Offline shim for the `rayon` API subset this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate
//! stands in for rayon behind the same paths (`rayon::prelude::*`,
//! `ThreadPoolBuilder`, `join`, `current_num_threads`). It is a *real*
//! data-parallel implementation — consumers split the source index
//! space into contiguous blocks and run them on `std::thread::scope`
//! threads — just without work stealing: blocks are statically
//! partitioned, which is adequate for the regular, flat loops in this
//! workspace. Swap back to the real rayon by editing the workspace
//! `[workspace.dependencies]` entry; no call site changes.
//!
//! Supported surface:
//! * `into_par_iter()` on integer ranges, `par_iter()` on slices/`Vec`
//! * adapters: `map`, `filter`, `filter_map`, `enumerate`
//! * consumers: `collect` (into `Vec`), `for_each`, `count`, `sum`,
//!   `max`, `min`, `any`, `all`
//! * `par_sort_unstable` on slices
//! * `ThreadPoolBuilder` / `ThreadPool::install` (scoped thread-count
//!   override), `current_num_threads`, `join`

use std::cell::Cell;
use std::ops::Range;

pub mod prelude {
    pub use crate::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator,
        IntoParallelRefIterator, ParallelIterator, ParallelSliceMut,
    };
}

/// Sources shorter than this run on the calling thread: spawning costs
/// more than it saves.
const MIN_PAR_LEN: usize = 2048;

thread_local! {
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel operations on this thread will use.
///
/// Like the real rayon, the `RAYON_NUM_THREADS` environment variable
/// overrides the machine default (useful to force the multi-threaded
/// code paths on single-core runners and vice versa).
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(|c| c.get()).unwrap_or_else(default_threads)
}

fn default_threads() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    })
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon-shim: join task panicked"))
    })
}

/// Error type for [`ThreadPoolBuilder::build`]; never actually produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` means "use the default" (as in rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A "pool": parallel operations run under [`ThreadPool::install`] use
/// exactly this many threads. Threads are spawned per operation (scoped),
/// not kept alive — acceptable for the coarse-grained loops here.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let prev = POOL_THREADS.with(|c| c.replace(Some(self.num_threads)));
        let result = op();
        POOL_THREADS.with(|c| c.set(prev));
        result
    }
}

/// Splits `0..n` into at most `current_num_threads()` contiguous blocks
/// and evaluates `f` on each, in parallel when it pays off. Results come
/// back in block order.
fn run_blocks<R: Send>(n: usize, f: &(dyn Fn(Range<usize>) -> R + Sync)) -> Vec<R> {
    if n == 0 {
        return Vec::new();
    }
    let threads = current_num_threads();
    if threads <= 1 || n < MIN_PAR_LEN {
        return vec![f(0..n)];
    }
    let chunk = n.div_ceil(threads.min(n));
    // Recompute from the rounded-up chunk size: ceil(n/chunk) can be
    // smaller than the thread count, and a block count based on threads
    // would put trailing blocks past the end of the source.
    let blocks = n.div_ceil(chunk);
    let mut results: Vec<Option<R>> = (0..blocks).map(|_| None).collect();
    std::thread::scope(|s| {
        for (b, slot) in results.iter_mut().enumerate() {
            let lo = b * chunk;
            let hi = ((b + 1) * chunk).min(n);
            s.spawn(move || *slot = Some(f(lo..hi)));
        }
    });
    results.into_iter().map(|r| r.expect("rayon-shim: worker block panicked")).collect()
}

/// The core shim trait. Every iterator is backed by an indexed source of
/// known length; `drive` evaluates one contiguous block of source
/// indices sequentially, feeding produced items to `sink` in order.
pub trait ParallelIterator: Sized + Send + Sync {
    type Item: Send;

    /// Length of the underlying indexed source (items *before* any
    /// filtering).
    fn source_len(&self) -> usize;

    /// Evaluates source indices `range`, pushing each produced item into
    /// `sink` in source order.
    fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut(Self::Item));

    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Send + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    fn filter<P>(self, pred: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Send + Sync,
    {
        Filter { base: self, pred }
    }

    fn filter_map<F, R>(self, f: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Item) -> Option<R> + Send + Sync,
        R: Send,
    {
        FilterMap { base: self, f }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        run_blocks(self.source_len(), &|range| self.drive(range, &mut |item| f(item)));
    }

    fn count(self) -> usize {
        run_blocks(self.source_len(), &|range| {
            let mut c = 0usize;
            self.drive(range, &mut |_| c += 1);
            c
        })
        .into_iter()
        .sum()
    }

    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        run_blocks(self.source_len(), &|range| {
            // Fold incrementally through the two Sum impls — no
            // per-block buffer of the items.
            let mut acc: Option<S> = None;
            self.drive(range, &mut |item| {
                let one = std::iter::once(item).sum::<S>();
                acc = Some(match acc.take() {
                    None => one,
                    Some(a) => [a, one].into_iter().sum::<S>(),
                });
            });
            acc
        })
        .into_iter()
        .flatten()
        .sum()
    }

    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        run_blocks(self.source_len(), &|range| {
            let mut best: Option<Self::Item> = None;
            self.drive(range, &mut |item| {
                if best.as_ref().is_none_or(|b| *b < item) {
                    best = Some(item);
                }
            });
            best
        })
        .into_iter()
        .flatten()
        .max()
    }

    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        run_blocks(self.source_len(), &|range| {
            let mut best: Option<Self::Item> = None;
            self.drive(range, &mut |item| {
                if best.as_ref().is_none_or(|b| *b > item) {
                    best = Some(item);
                }
            });
            best
        })
        .into_iter()
        .flatten()
        .min()
    }

    fn any<P>(self, pred: P) -> bool
    where
        P: Fn(Self::Item) -> bool + Send + Sync,
    {
        run_blocks(self.source_len(), &|range| {
            let mut hit = false;
            self.drive(range, &mut |item| hit = hit || pred(item));
            hit
        })
        .into_iter()
        .any(|b| b)
    }

    fn all<P>(self, pred: P) -> bool
    where
        P: Fn(Self::Item) -> bool + Send + Sync,
    {
        run_blocks(self.source_len(), &|range| {
            let mut ok = true;
            self.drive(range, &mut |item| ok = ok && pred(item));
            ok
        })
        .into_iter()
        .all(|b| b)
    }

    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Marker + helpers for iterators whose items correspond 1:1, in order,
/// to source indices (no filtering upstream).
pub trait IndexedParallelIterator: ParallelIterator {
    fn len(&self) -> usize {
        self.source_len()
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }
}

pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter(&'a self) -> Self::Iter;
}

pub trait FromParallelIterator<T: Send> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let blocks = run_blocks(iter.source_len(), &|range| {
            let mut items = Vec::new();
            iter.drive(range, &mut |item| items.push(item));
            items
        });
        let mut out = Vec::with_capacity(blocks.iter().map(Vec::len).sum());
        for b in blocks {
            out.extend(b);
        }
        out
    }
}

// ---- sources ---------------------------------------------------------

/// Parallel iterator over an integer range.
pub struct IterRange<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = IterRange<$t>;
            fn into_par_iter(self) -> IterRange<$t> {
                let len = if self.end > self.start { (self.end - self.start) as usize } else { 0 };
                IterRange { start: self.start, len }
            }
        }

        impl ParallelIterator for IterRange<$t> {
            type Item = $t;
            fn source_len(&self) -> usize {
                self.len
            }
            fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut($t)) {
                for i in range {
                    sink(self.start + i as $t);
                }
            }
        }

        impl IndexedParallelIterator for IterRange<$t> {}
    )*};
}

impl_range_par_iter!(u32, u64, usize);

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn source_len(&self) -> usize {
        self.slice.len()
    }
    fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut(&'a T)) {
        for item in &self.slice[range] {
            sink(item);
        }
    }
}

impl<T: Sync> IndexedParallelIterator for SliceIter<'_, T> {}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

// ---- adapters --------------------------------------------------------

pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;
    fn source_len(&self) -> usize {
        self.base.source_len()
    }
    fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut(R)) {
        self.base.drive(range, &mut |item| sink((self.f)(item)));
    }
}

impl<I, F, R> IndexedParallelIterator for Map<I, F>
where
    I: IndexedParallelIterator,
    F: Fn(I::Item) -> R + Send + Sync,
    R: Send,
{
}

pub struct Filter<I, P> {
    base: I,
    pred: P,
}

impl<I, P> ParallelIterator for Filter<I, P>
where
    I: ParallelIterator,
    P: Fn(&I::Item) -> bool + Send + Sync,
{
    type Item = I::Item;
    fn source_len(&self) -> usize {
        self.base.source_len()
    }
    fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut(I::Item)) {
        self.base.drive(range, &mut |item| {
            if (self.pred)(&item) {
                sink(item);
            }
        });
    }
}

pub struct FilterMap<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for FilterMap<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> Option<R> + Send + Sync,
    R: Send,
{
    type Item = R;
    fn source_len(&self) -> usize {
        self.base.source_len()
    }
    fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut(R)) {
        self.base.drive(range, &mut |item| {
            if let Some(mapped) = (self.f)(item) {
                sink(mapped);
            }
        });
    }
}

pub struct Enumerate<I> {
    base: I,
}

impl<I> ParallelIterator for Enumerate<I>
where
    I: IndexedParallelIterator,
{
    type Item = (usize, I::Item);
    fn source_len(&self) -> usize {
        self.base.source_len()
    }
    fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut((usize, I::Item))) {
        // Indexed upstream: items map 1:1 to source indices, so the
        // global index is the block-local position plus the block start.
        let mut idx = range.start;
        self.base.drive(range, &mut |item| {
            sink((idx, item));
            idx += 1;
        });
    }
}

impl<I: IndexedParallelIterator> IndexedParallelIterator for Enumerate<I> {}

// ---- parallel sort ---------------------------------------------------

pub trait ParallelSliceMut<T: Send> {
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        let n = self.len();
        let threads = current_num_threads();
        if threads <= 1 || n < MIN_PAR_LEN {
            self.sort_unstable();
            return;
        }
        let runs = threads.min(n);
        let chunk = n.div_ceil(runs);
        std::thread::scope(|s| {
            for piece in self.chunks_mut(chunk) {
                s.spawn(move || piece.sort_unstable());
            }
        });
        // Bottom-up merge of the sorted runs through a scratch buffer.
        // Elements are moved bitwise (never dropped): scratch keeps
        // len = 0 and is used as raw storage only. A panicking `Ord`
        // impl during the merge would leak/duplicate elements of a
        // non-Copy `T`; all users in this workspace sort Copy types.
        let mut scratch: Vec<T> = Vec::with_capacity(n);
        let base = self.as_mut_ptr();
        let tmp = scratch.as_mut_ptr();
        let mut width = chunk;
        while width < n {
            let mut lo = 0;
            while lo + width < n {
                let mid = lo + width;
                let hi = (lo + 2 * width).min(n);
                // SAFETY: lo < mid < hi <= n; merge_runs moves each
                // element of self[lo..hi] exactly once via tmp.
                unsafe { merge_runs(base, tmp, lo, mid, hi) };
                lo = hi;
            }
            width *= 2;
        }
    }
}

/// Merges the sorted runs `base[lo..mid]` and `base[mid..hi]` in place,
/// using `tmp` (capacity >= hi - lo) as scratch.
///
/// # Safety
///
/// `base` must be valid for reads/writes over `lo..hi`, `tmp` for
/// writes over `0..hi - lo`, and the two allocations must not overlap.
unsafe fn merge_runs<T: Ord>(base: *mut T, tmp: *mut T, lo: usize, mid: usize, hi: usize) {
    let mut i = lo;
    let mut j = mid;
    let mut k = 0usize;
    while i < mid && j < hi {
        if *base.add(j) < *base.add(i) {
            std::ptr::copy_nonoverlapping(base.add(j), tmp.add(k), 1);
            j += 1;
        } else {
            std::ptr::copy_nonoverlapping(base.add(i), tmp.add(k), 1);
            i += 1;
        }
        k += 1;
    }
    if i < mid {
        std::ptr::copy_nonoverlapping(base.add(i), tmp.add(k), mid - i);
        k += mid - i;
    }
    if j < hi {
        std::ptr::copy_nonoverlapping(base.add(j), tmp.add(k), hi - j);
        k += hi - j;
    }
    std::ptr::copy_nonoverlapping(tmp, base.add(lo), k);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_collect_preserves_order() {
        let v: Vec<u32> = (0u32..10_000).into_par_iter().collect();
        assert_eq!(v, (0u32..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn map_filter_chain() {
        let v: Vec<usize> =
            (0usize..10_000).into_par_iter().map(|i| i * 2).filter(|&x| x % 3 == 0).collect();
        let want: Vec<usize> = (0usize..10_000).map(|i| i * 2).filter(|&x| x % 3 == 0).collect();
        assert_eq!(v, want);
    }

    #[test]
    fn slice_enumerate_matches_sequential() {
        let data: Vec<u32> = (0..5000u32).rev().collect();
        let got: Vec<(usize, u32)> = data.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        let want: Vec<(usize, u32)> = data.iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn reductions() {
        assert_eq!((0u64..1_000).into_par_iter().sum::<u64>(), 499_500);
        assert_eq!((0u32..9_999).into_par_iter().max(), Some(9_998));
        assert_eq!((0u32..9_999).into_par_iter().min(), Some(0));
        assert_eq!((0usize..10_000).into_par_iter().filter(|&i| i % 7 == 0).count(), 1429);
        assert!((0u32..10_000).into_par_iter().any(|i| i == 9_999));
        assert!(!(0u32..10_000).into_par_iter().any(|i| i == 10_000));
        assert!((0u32..10_000).into_par_iter().all(|i| i < 10_000));
    }

    #[test]
    fn par_sort_matches_std_sort() {
        let mut v: Vec<u64> = (0..100_000u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
        let mut want = v.clone();
        want.sort_unstable();
        v.par_sort_unstable();
        assert_eq!(v, want);
    }

    #[test]
    fn par_sort_under_forced_threads() {
        // Force the multi-threaded merge path even on 1-CPU machines.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let mut v: Vec<u32> = (0..50_000u32).map(|i| i.wrapping_mul(2654435761)).collect();
            let mut want = v.clone();
            want.sort_unstable();
            v.par_sort_unstable();
            assert_eq!(v, want);
        });
    }

    #[test]
    fn high_thread_count_never_overruns_the_source() {
        // Regression: with chunk = ceil(n / threads), the number of
        // non-empty blocks can be below the thread count; a block count
        // based on threads put trailing blocks past the slice end.
        // n = 2500 @ 64 threads: chunk = 40, 63 blocks — block 63 would
        // start at 2520 > 2500.
        let pool = ThreadPoolBuilder::new().num_threads(64).build().unwrap();
        pool.install(|| {
            let data: Vec<u32> = (0..2500u32).collect();
            let doubled: Vec<u32> = data.par_iter().map(|&x| x * 2).collect();
            assert_eq!(doubled.len(), 2500);
            assert_eq!(doubled[2499], 4998);
            assert_eq!(data.par_iter().map(|&x| x as u64).sum::<u64>(), 2499 * 2500 / 2);
        });
    }

    #[test]
    fn sum_of_empty_and_filtered_blocks() {
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        pool.install(|| {
            assert_eq!((0u64..0).into_par_iter().sum::<u64>(), 0);
            // Whole blocks filter to nothing; their accumulators stay empty.
            assert_eq!((0u64..10_000).into_par_iter().filter(|&x| x == 1).sum::<u64>(), 1);
        });
    }

    #[test]
    fn pool_install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
    }

    #[test]
    fn join_returns_both() {
        assert_eq!(join(|| 1 + 1, || "x"), (2, "x"));
    }
}
