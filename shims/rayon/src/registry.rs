//! The persistent work-stealing runtime behind the shim's public API.
//!
//! A [`Registry`] owns a set of worker threads, one Chase–Lev deque per
//! worker, and a global injector queue. Parallel operations submit
//! *tasks* — erased `(job pointer, runner fn, index range)` triples —
//! and workers execute them, splitting large ranges in half as they go
//! so idle workers always find something to steal. There is one lazily
//! created global registry (sized by `RAYON_NUM_THREADS` /
//! `available_parallelism`), plus one registry per [`crate::ThreadPool`].
//!
//! Scheduling protocol:
//! * Block jobs enter as a single task covering the whole index range.
//!   Whoever executes a task first peels halves off onto its own deque
//!   until the remaining piece is at or below the job's grain, then runs
//!   it. Untouched halves are exactly what thieves steal — on a balanced
//!   workload the owner pops them back itself (cheap LIFO `take`), on a
//!   skewed one they migrate to idle workers, which re-split them
//!   locally. This is the lazy binary splitting that makes power-law
//!   frontiers load-balance instead of serializing on one thread.
//! * `join` pushes its second closure as a stealable task and runs the
//!   first inline; see [`crate::join`].
//! * Idle workers search own deque → injector → other deques, then
//!   park on a generation-stamped condvar. Producers bump the
//!   generation only when a sleeper is registered (Dekker-style
//!   store/load fencing keeps the handshake missed-wakeup-free).
//!
//! The [`steal_count`]/[`split_count`]/[`park_count`]/[`wake_count`]
//! totals (and the per-worker breakdowns on each registry) feed
//! `kcore_parallel::pool::scheduler_stats`.

use crate::deque::Deque;
use kcore_check::mutate;
use kcore_check::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use kcore_check::sync::{Arc, Condvar, Mutex};
use kcore_check::thread;
use std::collections::VecDeque;
use std::sync::OnceLock;

/// Process-wide count of successful steals (tasks taken from another
/// worker's deque).
static STEALS: AtomicU64 = AtomicU64::new(0);
/// Process-wide count of task splits (a range task halved to publish
/// stealable work).
static SPLITS: AtomicU64 = AtomicU64::new(0);
/// Process-wide count of worker sleep episodes (a worker committing to
/// the condvar after finding no work).
static PARKS: AtomicU64 = AtomicU64::new(0);
/// Process-wide count of workers returning from a sleep episode.
static WAKES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the scheduler's global counters.
pub fn steal_count() -> u64 {
    STEALS.load(Ordering::Relaxed)
}

/// See [`steal_count`].
pub fn split_count() -> u64 {
    SPLITS.load(Ordering::Relaxed)
}

/// See [`steal_count`].
pub fn park_count() -> u64 {
    PARKS.load(Ordering::Relaxed)
}

/// See [`steal_count`].
pub fn wake_count() -> u64 {
    WAKES.load(Ordering::Relaxed)
}

/// Per-worker scheduler tallies, one set per deque of a registry.
/// The process-wide statics above are the sums of these across every
/// registry ever created.
#[derive(Default)]
pub(crate) struct WorkerCounters {
    steals: AtomicU64,
    splits: AtomicU64,
    parks: AtomicU64,
    wakes: AtomicU64,
}

/// Plain-value copy of one worker's [`WorkerCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerSnapshot {
    /// Tasks this worker took from a sibling's deque.
    pub steals: u64,
    /// Range tasks this worker halved to publish stealable work.
    pub splits: u64,
    /// Sleep episodes (condvar waits) this worker entered.
    pub parks: u64,
    /// Sleep episodes this worker returned from.
    pub wakes: u64,
}

/// A unit of schedulable work: an erased job pointer plus the index
/// range to run. `grain == 0` marks an unsplittable task (a `join`
/// closure); block tasks carry the job's grain so any holder — owner or
/// thief — can keep splitting.
#[derive(Clone, Copy)]
pub(crate) struct Task {
    pub(crate) job: *const (),
    pub(crate) runner: unsafe fn(*const (), usize, usize),
    pub(crate) lo: usize,
    pub(crate) hi: usize,
    pub(crate) grain: usize,
}

// SAFETY: a Task is only constructed from jobs whose closures are
// `Sync` (block jobs) or `Send` (join jobs), and the submitting thread
// blocks until every task of the job has finished executing, so the
// erased pointer never dangles while reachable from a queue.
unsafe impl Send for Task {}

/// One-shot completion flag with blocking wait.
///
/// Lifetime protocol: jobs hold the latch in an `Arc`, and the thread
/// that completes a job must clone that `Arc` *before* the step that can
/// make [`Latch::probe`]/[`Latch::wait`] return (the final `remaining`
/// decrement, or `set` itself). The waiter frees the job — typically a
/// stack frame — as soon as `done` reads true, which races the tail of
/// `set` (condvar lock + notify); the completer's own clone keeps the
/// latch alive through that window, so `set` never touches freed memory.
///
/// Checker contract (see `model_tests`): the Release store in [`set`]
/// paired with the Acquire load in [`probe`] is what publishes the
/// job's results to a probing waiter — both sides are registered
/// mutation sites (`latch.done.release`, `latch.probe.acquire`) and
/// weakening either to Relaxed makes the payload read a detected data
/// race. The clone-before-set lifetime rule is enforced as a
/// use-after-free regression test (the PR 3 bug shape).
pub(crate) struct Latch {
    done: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Latch {
    pub(crate) fn new() -> Self {
        Self { done: AtomicBool::new(false), lock: Mutex::new(()), cv: Condvar::new() }
    }

    pub(crate) fn probe(&self) -> bool {
        self.done.load(mutate::ordering("latch.probe.acquire", Ordering::Acquire))
    }

    /// Marks the latch done and wakes blocked waiters. Callers must own
    /// an `Arc` keeping `self` alive (see the type docs): waiters may
    /// free the enclosing job the instant the store becomes visible.
    pub(crate) fn set(&self) {
        // Store inside the critical section: a `wait`er that read
        // done=false under the lock is guaranteed to be parked on the
        // condvar before the store+notify happen, so no wakeup is lost.
        let _guard = self.lock.lock().expect("latch lock poisoned");
        self.done.store(true, mutate::ordering("latch.done.release", Ordering::Release));
        self.cv.notify_all();
    }

    /// Blocks the calling thread until [`Latch::set`].
    pub(crate) fn wait(&self) {
        let mut guard = self.lock.lock().expect("latch lock poisoned");
        while !self.done.load(Ordering::Acquire) {
            guard = self.cv.wait(guard).expect("latch lock poisoned");
        }
    }
}

/// Sleep/wake state shared by a registry's workers.
struct Sleep {
    /// Wakeup generation; bumped under the lock whenever new work may
    /// concern a sleeper.
    generation: Mutex<u64>,
    cv: Condvar,
    /// Number of workers at or past the sleep handshake.
    sleepers: AtomicUsize,
}

pub(crate) struct RegistryShared {
    threads: usize,
    deques: Vec<Deque>,
    /// Per-worker steal/split/park/wake tallies, indexed like `deques`.
    workers: Vec<WorkerCounters>,
    injected: Mutex<VecDeque<Task>>,
    /// Fast-path emptiness check for the injector (len of `injected`).
    injected_len: AtomicUsize,
    sleep: Sleep,
    shutdown: AtomicBool,
}

impl RegistryShared {
    /// Worker-thread count this registry was built for; doubles as the
    /// parallelism degree of jobs submitted to it.
    pub(crate) fn num_threads(&self) -> usize {
        self.threads
    }

    /// Publishes `task` on worker `index`'s own deque and wakes any
    /// sleepers. Must be called from that worker's thread. Fails when
    /// the deque is full.
    pub(crate) fn push_local(&self, index: usize, task: Task) -> Result<(), Task> {
        self.deques[index].push(task)?;
        self.signal_stealable();
        Ok(())
    }

    /// Pops the newest task from worker `index`'s own deque. Must be
    /// called from that worker's thread.
    pub(crate) fn take_local(&self, index: usize) -> Option<Task> {
        self.deques[index].take()
    }

    fn pop_injected(&self) -> Option<Task> {
        if self.injected_len.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let mut q = self.injected.lock().expect("injector poisoned");
        let task = q.pop_front();
        self.injected_len.store(q.len(), Ordering::Relaxed);
        task
    }

    /// Queues a task from outside any worker and wakes the pool.
    pub(crate) fn inject(&self, task: Task) {
        {
            let mut q = self.injected.lock().expect("injector poisoned");
            q.push_back(task);
            self.injected_len.store(q.len(), Ordering::Relaxed);
        }
        // Unconditional wake: injection is once-per-operation, not hot.
        let mut generation = self.sleep.generation.lock().expect("sleep lock poisoned");
        *generation = generation.wrapping_add(1);
        self.sleep.cv.notify_all();
    }

    /// Wakes sleepers after work was made stealable (split-push). The
    /// SeqCst fence pairs with the one in the worker's sleep handshake:
    /// either the producer sees the registered sleeper, or the sleeper's
    /// post-registration recheck sees the pushed task.
    pub(crate) fn signal_stealable(&self) {
        fence(Ordering::SeqCst);
        if self.sleep.sleepers.load(Ordering::Relaxed) > 0 {
            let mut generation = self.sleep.generation.lock().expect("sleep lock poisoned");
            *generation = generation.wrapping_add(1);
            // One new task, one woken thief: waking the whole pool for
            // every split just burns context switches (notably on
            // single-core machines, where a woken thief preempts the
            // worker producing the work).
            self.sleep.cv.notify_one();
        }
    }

    /// Steals from any worker of this registry. Used by members after
    /// their own deque and the injector come up empty. There is no
    /// cross-pool stealing: a worker of pool A blocked in pool B's
    /// `install` waits on the latch without helping B, so mutually
    /// recursive `install` between two pools can deadlock if every
    /// worker of each pool blocks on the other (no workspace call site
    /// nests pools this way).
    fn steal_any(&self, thief: usize) -> Option<Task> {
        let n = self.deques.len();
        for off in 0..n {
            if let Some(task) = self.deques[(thief + 1 + off) % n].steal() {
                STEALS.fetch_add(1, Ordering::Relaxed);
                self.workers[thief].steals.fetch_add(1, Ordering::Relaxed);
                return Some(task);
            }
        }
        None
    }

    /// Plain-value copy of every worker's tallies (indexed by worker).
    pub(crate) fn worker_snapshots(&self) -> Vec<WorkerSnapshot> {
        self.workers
            .iter()
            .map(|w| WorkerSnapshot {
                steals: w.steals.load(Ordering::Relaxed),
                splits: w.splits.load(Ordering::Relaxed),
                parks: w.parks.load(Ordering::Relaxed),
                wakes: w.wakes.load(Ordering::Relaxed),
            })
            .collect()
    }
}

thread_local! {
    /// Set for the lifetime of a worker thread: its registry and index.
    static WORKER: std::cell::RefCell<Option<(Arc<RegistryShared>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The registry the current thread belongs to, if it is a pool worker.
pub(crate) fn current_worker() -> Option<(Arc<RegistryShared>, usize)> {
    WORKER.with(|w| w.borrow().clone())
}

/// Splits `task` down to its grain, publishing the upper halves on the
/// deque `deques[index]` (which must be owned by the calling thread),
/// then runs the remaining piece.
pub(crate) fn execute(shared: &RegistryShared, index: usize, mut task: Task) {
    if task.grain > 0 {
        while task.hi - task.lo > task.grain {
            let mid = task.lo + (task.hi - task.lo) / 2;
            let upper = Task { lo: mid, ..task };
            match shared.deques[index].push(upper) {
                Ok(()) => {
                    SPLITS.fetch_add(1, Ordering::Relaxed);
                    shared.workers[index].splits.fetch_add(1, Ordering::Relaxed);
                    task.hi = mid;
                    shared.signal_stealable();
                }
                // Deque full (pathological nesting): run oversized.
                Err(_) => break,
            }
        }
    }
    unsafe { (task.runner)(task.job, task.lo, task.hi) };
}

/// Worker-side task search: own deque (LIFO), then the injector, then
/// steals from siblings.
pub(crate) fn find_task(shared: &RegistryShared, index: usize) -> Option<Task> {
    if let Some(task) = shared.deques[index].take() {
        return Some(task);
    }
    if let Some(task) = shared.pop_injected() {
        return Some(task);
    }
    shared.steal_any(index)
}

/// Runs tasks until `done` reports true. Must be called on the worker
/// thread owning `deques[index]`; used by nested waits so a blocked
/// worker keeps the pool productive instead of deadlocking it.
pub(crate) fn work_until(shared: &RegistryShared, index: usize, done: impl Fn() -> bool) {
    while !done() {
        match find_task(shared, index) {
            Some(task) => execute(shared, index, task),
            // Remaining tasks are in flight on other workers; let them
            // run (they may be timesharing this core).
            None => thread::yield_now(),
        }
    }
}

fn worker_main(shared: Arc<RegistryShared>, index: usize) {
    WORKER.with(|w| *w.borrow_mut() = Some((shared.clone(), index)));
    loop {
        if let Some(task) = find_task(&shared, index) {
            execute(&shared, index, task);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        // Sleep handshake. Register, fence, recheck, then wait for a
        // generation bump. See `signal_stealable` for the pairing.
        shared.sleep.sleepers.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if let Some(task) = find_task(&shared, index) {
            shared.sleep.sleepers.fetch_sub(1, Ordering::SeqCst);
            execute(&shared, index, task);
            continue;
        }
        let generation = *shared.sleep.generation.lock().expect("sleep lock poisoned");
        // A producer may have bumped the generation between the recheck
        // above and the read; its task is visible now (release/acquire
        // via the lock), so check one more time before committing.
        if let Some(task) = find_task(&shared, index) {
            shared.sleep.sleepers.fetch_sub(1, Ordering::SeqCst);
            execute(&shared, index, task);
            continue;
        }
        // One park/wake pair per committed sleep episode (spurious
        // condvar wakeups inside the loop are not separate episodes).
        PARKS.fetch_add(1, Ordering::Relaxed);
        shared.workers[index].parks.fetch_add(1, Ordering::Relaxed);
        let mut guard = shared.sleep.generation.lock().expect("sleep lock poisoned");
        while *guard == generation && !shared.shutdown.load(Ordering::Acquire) {
            guard = shared.sleep.cv.wait(guard).expect("sleep lock poisoned");
        }
        drop(guard);
        WAKES.fetch_add(1, Ordering::Relaxed);
        shared.workers[index].wakes.fetch_add(1, Ordering::Relaxed);
        shared.sleep.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
    WORKER.with(|w| *w.borrow_mut() = None);
}

/// A worker pool: shared scheduling state plus owned join handles.
pub(crate) struct Registry {
    pub(crate) shared: Arc<RegistryShared>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl Registry {
    /// Spawns `threads` workers.
    pub(crate) fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(RegistryShared {
            threads,
            deques: (0..threads).map(|_| Deque::new()).collect(),
            workers: (0..threads).map(|_| WorkerCounters::default()).collect(),
            injected: Mutex::new(VecDeque::new()),
            injected_len: AtomicUsize::new(0),
            sleep: Sleep {
                generation: Mutex::new(0),
                cv: Condvar::new(),
                sleepers: AtomicUsize::new(0),
            },
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|index| {
                let shared = shared.clone();
                thread::Builder::new()
                    .name(format!("rayon-shim-{index}"))
                    .spawn(move || worker_main(shared, index))
                    .expect("rayon-shim: failed to spawn worker")
            })
            .collect();
        Self { shared, handles }
    }
}

impl Drop for Registry {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let mut generation = self.shared.sleep.generation.lock().expect("sleep lock poisoned");
            *generation = generation.wrapping_add(1);
            self.shared.sleep.cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Model-checked tests of the latch protocol, compiled only under the
/// instrumented facade (`RUSTFLAGS="--cfg kcore_check"`). These pin the
/// two properties the runtime leans on:
///
/// * publication — a waiter that observes [`Latch::probe`] `== true`
///   also observes every write the completer made before [`Latch::set`]
///   (Release store / Acquire load pairing; both sides have mutation
///   teeth);
/// * lifetime — the completer must own an `Arc` handle on the latch
///   (the PR 3 use-after-free regression: a completer touching a latch
///   it does not own dies the moment the waiter frees it).
#[cfg(all(test, kcore_check, not(any(miri, kcore_tsan))))]
mod model_tests {
    use super::Latch;
    use kcore_check::cell::UnsafeCell;
    use kcore_check::hint::spin_loop;
    use kcore_check::sync::Arc;
    use kcore_check::{mutate, thread, Checker};

    /// Writer fills a payload and `set`s the latch; reader spins on
    /// `probe` and then reads the payload. The exact shape `join` and
    /// block jobs rely on when the submitting thread polls instead of
    /// parking.
    fn probe_publishes_payload() {
        let payload = Arc::new(UnsafeCell::new(0u64));
        let latch = Arc::new(Latch::new());
        let (p2, l2) = (payload.clone(), latch.clone());
        let t = thread::spawn(move || {
            p2.with_mut(|p| unsafe { *p = 7 });
            l2.set();
        });
        while !latch.probe() {
            spin_loop();
        }
        let v = payload.with(|p| unsafe { *p });
        assert_eq!(v, 7, "probe observed done but not the completer's payload");
        t.join().unwrap();
    }

    #[test]
    fn latch_probe_publishes_payload() {
        Checker::new().check(probe_publishes_payload);
    }

    /// The blocking path: `wait` must never sleep through a `set`
    /// (store + notify inside the critical section), in any schedule.
    /// A lost wakeup would surface as a model deadlock.
    #[test]
    fn latch_wait_never_misses_set() {
        Checker::new().check(|| {
            let latch = Arc::new(Latch::new());
            let l2 = latch.clone();
            let t = thread::spawn(move || l2.set());
            latch.wait();
            assert!(latch.probe());
            t.join().unwrap();
        });
    }

    /// PR 3 regression, buggy shape: the completer holds only a raw
    /// pointer, so when the waiter frees the latch right after `probe`
    /// flips, the tail of `set` (notify under the latch mutex) touches
    /// freed memory. The checker must find that schedule.
    #[test]
    fn latch_completer_without_handle_is_use_after_free() {
        let report = Checker::new().check_fails(|| {
            let latch = Arc::new(Latch::new());
            let p = &*latch as *const Latch as usize;
            let t = thread::spawn(move || {
                // SAFETY: deliberately unsound — models the pre-fix
                // protocol where the completer does not own the latch.
                unsafe { (*(p as *const Latch)).set() };
            });
            while !latch.probe() {
                spin_loop();
            }
            drop(latch);
            t.join().unwrap();
        });
        assert!(report.contains("use-after-free"), "unexpected report: {report}");
    }

    /// The fixed protocol: the completer clones the `Arc` before `set`,
    /// so the waiter-side free can never strand it. Every schedule is
    /// clean.
    #[test]
    fn latch_completer_with_handle_passes() {
        Checker::new().check(|| {
            let latch = Arc::new(Latch::new());
            let l2 = latch.clone();
            let t = thread::spawn(move || l2.set());
            while !latch.probe() {
                spin_loop();
            }
            drop(latch);
            t.join().unwrap();
        });
    }

    /// Mutation teeth: weakening the `set`-side Release store to
    /// Relaxed severs the publication edge — the payload read races.
    #[test]
    fn mutation_latch_done_release_has_teeth() {
        let _weaken = mutate::weaken("latch.done.release");
        let report = Checker::new().check_fails(probe_publishes_payload);
        assert!(report.contains("data race"), "unexpected report: {report}");
    }

    /// Mutation teeth: weakening the `probe`-side Acquire load to
    /// Relaxed severs the same edge from the reader's end.
    #[test]
    fn mutation_latch_probe_acquire_has_teeth() {
        let _weaken = mutate::weaken("latch.probe.acquire");
        let report = Checker::new().check_fails(probe_publishes_payload);
        assert!(report.contains("data race"), "unexpected report: {report}");
    }
}

/// The process-global registry, created on first use and never torn
/// down. Sized by `RAYON_NUM_THREADS` / `available_parallelism` (via
/// [`crate::default_threads`]).
pub(crate) fn global_registry() -> Arc<RegistryShared> {
    static GLOBAL: OnceLock<Arc<RegistryShared>> = OnceLock::new();
    GLOBAL
        .get_or_init(|| {
            let registry = Registry::new(crate::default_threads());
            let shared = registry.shared.clone();
            // Leak the handles: global workers live for the process.
            std::mem::forget(registry);
            shared
        })
        .clone()
}
