//! Offline shim for the `proptest` API subset this workspace uses.
//!
//! Provides the `proptest!` macro, `Strategy` (ranges, tuples, `Just`,
//! `any`, `prop_flat_map`, `prop_map`), `proptest::collection::vec`,
//! and the `prop_assert*` macros. Differences from the real crate:
//!
//! * **No shrinking.** A failing case reports its seed and case number;
//!   re-running is deterministic, so the failure reproduces exactly.
//! * Case count defaults to 64 (env `PROPTEST_CASES` overrides), seeds
//!   derive from the test's module path + case index (env
//!   `PROPTEST_RNG_SEED` perturbs all of them).

pub mod test_runner {
    /// RNG driving value generation: xoshiro-style, seeded per test
    /// case so failures replay deterministically.
    pub struct TestRng {
        state: [u64; 4],
    }

    impl TestRng {
        /// Deterministic RNG for `(test name, case index)`.
        pub fn for_case(test_path: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let global: u64 =
                std::env::var("PROPTEST_RNG_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0);
            let mut sm = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ global;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { state: [next(), next(), next(), next()] }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Number of cases each property runs (`PROPTEST_CASES`, default 64).
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(64)
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Generate an intermediate value, then generate from the
        /// strategy it selects (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Transform generated values.
        fn prop_map<T, F>(self, f: F) -> PropMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            PropMap { base: self, f }
        }
    }

    /// Strategy yielding one fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct FlatMap<B, F> {
        base: B,
        f: F,
    }

    impl<B, S, F> Strategy for FlatMap<B, F>
    where
        B: Strategy,
        S: Strategy,
        F: Fn(B::Value) -> S,
    {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            let mid = self.base.new_value(rng);
            (self.f)(mid).new_value(rng)
        }
    }

    pub struct PropMap<B, F> {
        base: B,
        f: F,
    }

    impl<B, T, F> Strategy for PropMap<B, F>
    where
        B: Strategy,
        F: Fn(B::Value) -> T,
    {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.f)(self.base.new_value(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, usize);

    impl Strategy for Range<u64> {
        type Value = u64;
        fn new_value(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let span = self.end - self.start;
            self.start + rng.next_u64() % span
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }

    /// Full-domain strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T> {
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    macro_rules! impl_any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any_uint!(u8, u16, u32, u64, usize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;

    /// Strategy over `T`'s full value domain.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: crate::strategy::Strategy<Value = T>,
    {
        Any { _marker: std::marker::PhantomData }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with length drawn from `size` and elements
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::new_value(&self.size, rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn` runs [`test_runner::cases`] cases
/// with arguments freshly generated from the given strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cases = $crate::test_runner::cases();
                for case in 0..cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                    $body
                }
            }
        )+
    };
}

/// `assert!` under a name the real proptest exports.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a name the real proptest exports.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a name the real proptest exports.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn tuples_and_vecs((n, xs) in (2usize..10).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0..n as u32, 0..64))
        })) {
            prop_assert!((2..10).contains(&n));
            for &x in &xs {
                prop_assert!((x as usize) < n);
            }
        }

        #[test]
        fn any_is_not_constant(seed in any::<u64>()) {
            // Trivially true; exercises the Any strategy plumbing.
            let _ = seed;
        }
    }

    #[test]
    fn cases_env_default() {
        assert!(crate::test_runner::cases() >= 1);
    }

    #[test]
    fn same_case_same_value() {
        use crate::strategy::Strategy;
        let s = 0u32..1000;
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
    }
}
