//! Interleaving-free invariant tests for the lock-free `SegQueue`: no
//! matter how the scheduler interleaves producers and consumers, (1)
//! push/pop counts conserve — every pushed value is popped exactly
//! once, none invented, none lost — and (2) pops respect per-producer
//! FIFO. The assertions hold for *every* interleaving, so the tests are
//! deterministic even though the schedule is not (the loom-style
//! discipline, without a model checker to drive the schedule).

use crossbeam::queue::SegQueue;
use kcore_check::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Encodes (producer, sequence) into one u64 so conservation and order
/// can be checked from the popped values alone.
fn encode(producer: u64, seq: u64) -> u64 {
    (producer << 32) | seq
}

#[test]
fn mpmc_push_pop_conserves_every_value() {
    const PRODUCERS: u64 = 4;
    const CONSUMERS: usize = 4;
    const PER_PRODUCER: u64 = 20_000;
    let q = SegQueue::new();
    let produced_done = AtomicBool::new(false);
    let popped: Vec<std::sync::Mutex<Vec<u64>>> =
        (0..CONSUMERS).map(|_| std::sync::Mutex::new(Vec::new())).collect();
    std::thread::scope(|s| {
        let q = &q;
        let produced_done = &produced_done;
        let producer_handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                s.spawn(move || {
                    for seq in 0..PER_PRODUCER {
                        q.push(encode(p, seq));
                    }
                })
            })
            .collect();
        for (c, sink) in popped.iter().enumerate() {
            s.spawn(move || {
                let mut local = Vec::new();
                loop {
                    match q.pop() {
                        Some(v) => local.push(v),
                        None if produced_done.load(Ordering::Acquire) => {
                            // Final drain: producers are finished, so a
                            // None now means genuinely empty.
                            while let Some(v) = q.pop() {
                                local.push(v);
                            }
                            break;
                        }
                        None => kcore_check::hint::spin_loop(),
                    }
                }
                let _ = c;
                *sink.lock().unwrap() = local;
            });
        }
        for h in producer_handles {
            h.join().unwrap();
        }
        produced_done.store(true, Ordering::Release);
    });
    // Conservation: exactly the pushed multiset came out.
    let mut all: Vec<u64> = popped.iter().flat_map(|m| m.lock().unwrap().clone()).collect();
    assert_eq!(all.len() as u64, PRODUCERS * PER_PRODUCER, "pop count != push count");
    all.sort_unstable();
    let mut expected: Vec<u64> =
        (0..PRODUCERS).flat_map(|p| (0..PER_PRODUCER).map(move |s| encode(p, s))).collect();
    expected.sort_unstable();
    assert_eq!(all, expected, "popped multiset differs from pushed multiset");
    // Per-producer FIFO within each consumer's stream: a single
    // consumer must see every producer's values in increasing sequence
    // order (global FIFO implies this projection is ordered).
    for sink in &popped {
        let mut last = [None::<u64>; PRODUCERS as usize];
        for &v in sink.lock().unwrap().iter() {
            let (p, seq) = ((v >> 32) as usize, v & 0xFFFF_FFFF);
            if let Some(prev) = last[p] {
                assert!(seq > prev, "producer {p}: consumer saw {seq} after {prev}");
            }
            last[p] = Some(seq);
        }
    }
}

#[test]
fn alternating_churn_never_loses_or_invents() {
    // Push/pop churn around segment boundaries from two threads while a
    // third audits is_empty/len monotonic sanity. The queue length
    // observed by the auditor can never exceed pushes issued or go
    // negative (saturating), and the final count must balance.
    let q = SegQueue::new();
    let pushes = AtomicUsize::new(0);
    let pops = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let q = &q;
        let (pushes, pops, stop) = (&pushes, &pops, &stop);
        let worker = s.spawn(move || {
            for i in 0..100_000u64 {
                q.push(i);
                pushes.fetch_add(1, Ordering::Release);
                if i % 3 == 0 && q.pop().is_some() {
                    pops.fetch_add(1, Ordering::Release);
                }
            }
        });
        s.spawn(move || {
            while !stop.load(Ordering::Acquire) {
                // Upper bound: len can never exceed completed pushes
                // (pops only shrink it; in-flight reservations belong
                // to pushes not yet counted in `pushes`... count them
                // by reading pushes *after* len).
                let len = q.len();
                let pushed_after = pushes.load(Ordering::Acquire) + 1; // +1 in-flight slack
                assert!(len <= pushed_after, "len {len} > pushes {pushed_after}");
            }
        });
        worker.join().unwrap();
        stop.store(true, Ordering::Release);
    });
    let balance = pushes.load(Ordering::Acquire) - pops.load(Ordering::Acquire);
    assert_eq!(q.len(), balance, "final len must equal pushes - pops");
    let mut drained = 0usize;
    while q.pop().is_some() {
        drained += 1;
    }
    assert_eq!(drained, balance, "drain must yield exactly the balance");
    assert!(q.is_empty());
}

#[test]
fn single_thread_fifo_across_segment_boundaries() {
    // Strict FIFO with interleaved partial drains crossing segment
    // installs: a sliding-window producer/consumer with a fixed lag.
    let q = SegQueue::new();
    let mut next_pop = 0u64;
    for i in 0..50_000u64 {
        q.push(i);
        if i >= 1_000 {
            assert_eq!(q.pop(), Some(next_pop), "FIFO violated at lag window {i}");
            next_pop += 1;
        }
    }
    while let Some(v) = q.pop() {
        assert_eq!(v, next_pop);
        next_pop += 1;
    }
    assert_eq!(next_pop, 50_000);
    assert!(q.is_empty());
    assert_eq!(q.len(), 0);
}
