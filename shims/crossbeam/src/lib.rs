//! Offline shim for the `crossbeam` API subset this workspace uses:
//! [`queue::SegQueue`], a concurrent FIFO queue.
//!
//! The real crate implements a lock-free segmented queue. This shim
//! shards the queue across per-thread home shards: each pushing thread
//! owns a cache-line-aligned shard (assigned round-robin on first use)
//! and pushes touch only that shard's lock, so concurrent pushes from
//! different threads proceed without contending — the property that
//! matters for the bucket structures, whose `DecreaseKey` pushes are
//! the hot path while pops happen in exclusive phases. An earlier
//! revision used a single `Mutex<VecDeque>`; its per-push lock traffic
//! made HBS *slower* than the 1-bucket baseline on `hcns` (see
//! ROADMAP.md).
//!
//! Ordering: FIFO per pushing thread (its shard preserves insertion
//! order); interleavings across threads are unordered, exactly like
//! concurrent pushes racing into the real `SegQueue`. Swap in the real
//! crate via the workspace `[workspace.dependencies]` entry when
//! crates.io access is available.

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Shard count; power of two so the home-shard modulo is a mask.
    const SHARDS: usize = 8;

    static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

    thread_local! {
        /// This thread's home shard, assigned round-robin at first use.
        static HOME: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
    }

    /// One shard, padded to a cache line so neighboring shards' locks
    /// never false-share.
    #[repr(align(64))]
    #[derive(Debug)]
    struct Shard<T> {
        items: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Shard<T> {
        fn default() -> Self {
            Self { items: Mutex::new(VecDeque::new()) }
        }
    }

    /// Concurrent FIFO queue mirroring `crossbeam::queue::SegQueue`,
    /// sharded by pushing thread.
    #[derive(Debug)]
    pub struct SegQueue<T> {
        shards: Box<[Shard<T>]>,
        /// Shard where the last successful pop landed; scans start here
        /// so drain loops cost O(1) amortized per element instead of
        /// O(SHARDS).
        cursor: AtomicUsize,
        /// Upper bound on the element count (incremented *before* the
        /// push lands, decremented after a successful pop). Makes
        /// pop-on-empty and `len` O(1) — bucket structures drain every
        /// queue once per round, most of them empty, so the empty case
        /// is the hot one.
        count: AtomicUsize,
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> SegQueue<T> {
        pub fn new() -> Self {
            Self {
                shards: (0..SHARDS).map(|_| Shard::default()).collect(),
                cursor: AtomicUsize::new(0),
                count: AtomicUsize::new(0),
            }
        }

        pub fn push(&self, value: T) {
            let home = HOME.with(|h| *h);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.shards[home].items.lock().expect("SegQueue poisoned").push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            if self.count.load(Ordering::Relaxed) == 0 {
                return None;
            }
            let start = self.cursor.load(Ordering::Relaxed);
            for i in 0..SHARDS {
                let shard = (start + i) & (SHARDS - 1);
                let popped =
                    self.shards[shard].items.lock().expect("SegQueue poisoned").pop_front();
                if popped.is_some() {
                    self.cursor.store(shard, Ordering::Relaxed);
                    self.count.fetch_sub(1, Ordering::Relaxed);
                    return popped;
                }
            }
            None
        }

        /// Element count. Exact when the queue is quiescent; while
        /// pushes are in flight it may transiently overcount (like the
        /// real `SegQueue`, whose `len` is also racy under concurrency).
        pub fn len(&self) -> usize {
            self.count.load(Ordering::Relaxed)
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            q.push(3);
            assert_eq!(q.len(), 3);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), Some(3));
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());
        }

        #[test]
        fn concurrent_pushes_all_arrive() {
            let q = SegQueue::new();
            std::thread::scope(|s| {
                for t in 0..4u32 {
                    let q = &q;
                    s.spawn(move || {
                        for i in 0..1000u32 {
                            q.push(t * 1000 + i);
                        }
                    });
                }
            });
            assert_eq!(q.len(), 4000);
            let mut all: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
            all.sort_unstable();
            assert_eq!(all, (0..4000u32).collect::<Vec<_>>());
        }

        #[test]
        fn per_thread_order_is_preserved() {
            let q = SegQueue::new();
            std::thread::scope(|s| {
                for t in 0..4u32 {
                    let q = &q;
                    s.spawn(move || {
                        for i in 0..500u32 {
                            q.push((t, i));
                        }
                    });
                }
            });
            // Within each pushing thread, pops must come out in push
            // order (FIFO per shard).
            let mut last = [None::<u32>; 4];
            while let Some((t, i)) = q.pop() {
                if let Some(prev) = last[t as usize] {
                    assert!(i > prev, "thread {t}: {i} popped after {prev}");
                }
                last[t as usize] = Some(i);
            }
            assert!(last.iter().all(|l| *l == Some(499)));
        }

        #[test]
        fn interleaved_push_pop() {
            let q = SegQueue::new();
            for round in 0..100u32 {
                q.push(round);
                q.push(round + 1000);
                assert!(q.pop().is_some());
            }
            assert_eq!(q.len(), 100);
            let drained: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
            assert_eq!(drained.len(), 100);
        }
    }
}
