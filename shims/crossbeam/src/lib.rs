//! Offline shim for the `crossbeam` API subset this workspace uses:
//! [`queue::SegQueue`], a concurrent FIFO queue.
//!
//! The real crate implements a lock-free segmented queue; this shim
//! uses a `Mutex<VecDeque>`, which has the same interface and ordering
//! semantics with coarser contention behavior. Bucket-structure inserts
//! are low-frequency relative to the peeling work around them, so this
//! is adequate until the real crate is available (swap via the
//! workspace `[workspace.dependencies]` entry).

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Concurrent FIFO queue mirroring `crossbeam::queue::SegQueue`.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        pub fn new() -> Self {
            Self { inner: Mutex::new(VecDeque::new()) }
        }

        pub fn push(&self, value: T) {
            self.inner.lock().expect("SegQueue poisoned").push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("SegQueue poisoned").pop_front()
        }

        pub fn len(&self) -> usize {
            self.inner.lock().expect("SegQueue poisoned").len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            q.push(3);
            assert_eq!(q.len(), 3);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), Some(3));
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());
        }

        #[test]
        fn concurrent_pushes_all_arrive() {
            let q = SegQueue::new();
            std::thread::scope(|s| {
                for t in 0..4u32 {
                    let q = &q;
                    s.spawn(move || {
                        for i in 0..1000u32 {
                            q.push(t * 1000 + i);
                        }
                    });
                }
            });
            assert_eq!(q.len(), 4000);
            let mut all: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
            all.sort_unstable();
            assert_eq!(all, (0..4000u32).collect::<Vec<_>>());
        }
    }
}
