//! Offline shim for the `crossbeam` API subset this workspace uses:
//! [`queue::SegQueue`], a concurrent FIFO queue.
//!
//! Like the real crate, the queue is **lock-free and segmented**: values
//! live in fixed-size segments linked by CAS-published `next` pointers.
//! A push reserves a slot with one `fetch_add` on the tail segment's
//! cursor, writes the value, and flips the slot's ready flag — no lock,
//! no allocation except once per segment, so concurrent `DecreaseKey`
//! pushes from different workers proceed without lock traffic (the
//! property the bucket structures' hot path needs; earlier revisions
//! used a single `Mutex<VecDeque>`, then per-thread Mutex shards — see
//! ROADMAP.md for the benchmark history).
//!
//! Segment capacity is sized from `available_parallelism` at first use,
//! so wide machines get proportionally fewer segment handoffs per
//! element (the old shim hard-coded 8 shards regardless of core count).
//!
//! Ordering: strictly FIFO in slot-reservation order — in particular
//! FIFO per pushing thread, like the real `SegQueue`. [`queue::SegQueue::len`]
//! and [`queue::SegQueue::is_empty`] are linearizable with respect to
//! *completed* pushes: once a `push` has returned, the element is
//! counted until popped (the old sharded design could report empty
//! while a completed push sat in an unscanned shard). Pushes still in
//! flight (slot reserved, value not yet published) may or may not be
//! counted — they are concurrent with the query, so either answer is
//! linearizable.
//!
//! Memory reclamation: drained segments are kept on the chain and freed
//! when the queue drops, instead of epoch-based reclamation — a few
//! hundred bytes per `seg_capacity` elements ever pushed, for a shim
//! whose queues live one decomposition. Swap in the real crate via the
//! workspace `[workspace.dependencies]` entry when crates.io access is
//! available.
//!
//! Checker contract (see `queue::model_tests`, compiled under
//! `RUSTFLAGS="--cfg kcore_check"`): the reserve-to-publish handshake —
//! slot reserved by `fetch_add`, value written, then the `ready` flag
//! flipped with Release and spun on with Acquire — is what hands the
//! value across threads. Both flag sides are registered mutation sites
//! (`segq.push.ready.release`, `segq.pop.ready.acquire`); weakening
//! either to Relaxed makes the slot read a detected data race. Model
//! tests also pin element conservation across segment installation,
//! per-producer FIFO, and `is_empty`/`len` linearizability for
//! completed pushes.

pub mod queue {
    use kcore_check::cell::UnsafeCell;
    use kcore_check::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
    use kcore_check::{hint, mutate, thread};
    use std::mem::MaybeUninit;
    use std::sync::OnceLock;

    /// Bounded spin-then-yield backoff (crossbeam's `Backoff` pattern)
    /// for the two reserve-to-publish windows below. A pure `spin_loop`
    /// wait burns the whole timeslice if the thread holding the window
    /// open was preempted — the common case on single-core boxes —
    /// whereas yielding hands the core back to that thread.
    struct Backoff {
        spins: u32,
    }

    impl Backoff {
        /// Spin budget before falling back to `yield_now`. Tiny under
        /// the checker: a model spin is already a full scheduling
        /// point, so two are enough to exercise the transition without
        /// inflating the schedule tree.
        const SPIN_LIMIT: u32 = if cfg!(kcore_check) { 2 } else { 64 };

        fn new() -> Self {
            Self { spins: 0 }
        }

        /// Both arms are checker-visible yield points (the facade's
        /// `spin_loop` maps to a spin-flagged yield inside a model), so
        /// a reserve-to-publish wait can never wedge an exploration.
        fn snooze(&mut self) {
            if self.spins < Self::SPIN_LIMIT {
                self.spins += 1;
                hint::spin_loop();
            } else {
                thread::yield_now();
            }
        }

        /// Whether the spin budget is exhausted (every further `snooze`
        /// yields the core). Exposed for the bound assertions in tests.
        #[cfg(test)]
        fn is_yielding(&self) -> bool {
            self.spins >= Self::SPIN_LIMIT
        }
    }

    /// Slots per segment: scaled by the machine's parallelism so more
    /// concurrent pushers amortize more pushes per segment installation.
    fn seg_capacity() -> usize {
        // Two-slot segments under the checker: model tests cross a
        // segment installation within a handful of pushes, keeping the
        // interesting path inside a tractable schedule tree.
        if cfg!(kcore_check) {
            return 2;
        }
        static CAP: OnceLock<usize> = OnceLock::new();
        *CAP.get_or_init(|| {
            let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            (threads * 64).next_power_of_two().clamp(64, 2048)
        })
    }

    struct Slot<T> {
        value: UnsafeCell<MaybeUninit<T>>,
        /// Set (release) once `value` is written; a pop that claimed
        /// this slot spins on it to close the reserve→write window.
        ready: AtomicBool,
    }

    /// A fixed-size block of slots, linked to its successor once full.
    struct Segment<T> {
        /// Pop cursor: slots below it are claimed. Capped at capacity.
        low: AtomicUsize,
        /// Push cursor: reservations ≥ capacity mean "segment full, go
        /// to the next one" (the reserver of exactly `capacity`
        /// installs it).
        high: AtomicUsize,
        slots: Box<[Slot<T>]>,
        next: AtomicPtr<Segment<T>>,
    }

    impl<T> Segment<T> {
        fn new() -> Box<Self> {
            Box::new(Self {
                low: AtomicUsize::new(0),
                high: AtomicUsize::new(0),
                slots: (0..seg_capacity())
                    .map(|_| Slot {
                        value: UnsafeCell::new(MaybeUninit::uninit()),
                        ready: AtomicBool::new(false),
                    })
                    .collect(),
                next: AtomicPtr::new(std::ptr::null_mut()),
            })
        }
    }

    /// Concurrent lock-free FIFO queue mirroring
    /// `crossbeam::queue::SegQueue`.
    pub struct SegQueue<T> {
        /// Segment pops come from (drained segments stay linked behind
        /// it for reclamation at drop).
        head: AtomicPtr<Segment<T>>,
        /// Segment pushes go into.
        tail: AtomicPtr<Segment<T>>,
        /// Start of the whole chain; only walked by `drop`.
        first: AtomicPtr<Segment<T>>,
    }

    // SAFETY: values are handed across threads (push on one, pop on
    // another) — `T: Send` suffices; the queue's own state is all
    // atomics plus slots governed by the reserve/ready protocol.
    unsafe impl<T: Send> Send for SegQueue<T> {}
    unsafe impl<T: Send> Sync for SegQueue<T> {}

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> std::fmt::Debug for SegQueue<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("SegQueue").field("len", &self.len()).finish()
        }
    }

    impl<T> SegQueue<T> {
        pub fn new() -> Self {
            let seg = Box::into_raw(Segment::new());
            Self {
                head: AtomicPtr::new(seg),
                tail: AtomicPtr::new(seg),
                first: AtomicPtr::new(seg),
            }
        }

        pub fn push(&self, value: T) {
            loop {
                let tail_ptr = self.tail.load(Ordering::Acquire);
                let tail = unsafe { &*tail_ptr };
                let cap = tail.slots.len();
                let i = tail.high.fetch_add(1, Ordering::Relaxed);
                if i < cap {
                    tail.slots[i].value.with_mut(|p| unsafe { (*p).write(value) });
                    tail.slots[i].ready.store(
                        true,
                        mutate::ordering("segq.push.ready.release", Ordering::Release),
                    );
                    return;
                }
                if i == cap {
                    // Sole winner of the first overshoot: install the
                    // next segment and publish it as the tail. SeqCst so
                    // a pop observing a drained head (`low == cap`)
                    // also observes the link (linearizable emptiness).
                    // CAS, not store: helping pushers may already have
                    // advanced the tail (even several segments ahead if
                    // this thread was preempted), and a blind store
                    // would drag it backwards onto a full segment.
                    let next = Box::into_raw(Segment::new());
                    tail.next.store(next, Ordering::SeqCst);
                    let _ = self.tail.compare_exchange(
                        tail_ptr,
                        next,
                        Ordering::SeqCst,
                        Ordering::Relaxed,
                    );
                } else {
                    // Another pusher is installing; wait for the link,
                    // help advance the tail, and retry there.
                    let mut backoff = Backoff::new();
                    let mut next;
                    loop {
                        next = tail.next.load(Ordering::Acquire);
                        if !next.is_null() {
                            break;
                        }
                        backoff.snooze();
                    }
                    let _ = self.tail.compare_exchange(
                        tail_ptr,
                        next,
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    );
                }
            }
        }

        pub fn pop(&self) -> Option<T> {
            loop {
                let head_ptr = self.head.load(Ordering::Acquire);
                let head = unsafe { &*head_ptr };
                let cap = head.slots.len();
                loop {
                    let low = head.low.load(Ordering::Relaxed);
                    if low >= cap {
                        break; // segment drained; advance below
                    }
                    let high = head.high.load(Ordering::Acquire).min(cap);
                    if low >= high {
                        return None; // nothing reserved past `low` anywhere
                    }
                    if head
                        .low
                        .compare_exchange_weak(low, low + 1, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                    {
                        // Claimed slot `low` exclusively; wait out the
                        // pusher's reserve→write window if it is still
                        // open (usually two instructions wide, but the
                        // pusher may be preempted mid-window — hence the
                        // yielding backoff).
                        let mut backoff = Backoff::new();
                        while !head.slots[low]
                            .ready
                            .load(mutate::ordering("segq.pop.ready.acquire", Ordering::Acquire))
                        {
                            backoff.snooze();
                        }
                        return Some(
                            head.slots[low].value.with(|p| unsafe { (*p).assume_init_read() }),
                        );
                    }
                }
                // Fully-claimed segment: move to the successor. A
                // completed push in a later segment implies the link is
                // visible (SeqCst pairing with the installer), so a
                // null `next` here really means empty.
                let next = head.next.load(Ordering::SeqCst);
                if next.is_null() {
                    return None;
                }
                let _ =
                    self.head.compare_exchange(head_ptr, next, Ordering::AcqRel, Ordering::Relaxed);
            }
        }

        /// Number of elements: completed pushes not yet popped, plus
        /// possibly pushes whose slot is reserved but still being
        /// written (those are concurrent, so counting them is
        /// linearizable). Cost is O(live segments).
        pub fn len(&self) -> usize {
            let mut seg_ptr = self.head.load(Ordering::Acquire);
            let mut total = 0usize;
            while !seg_ptr.is_null() {
                let seg = unsafe { &*seg_ptr };
                let cap = seg.slots.len();
                let high = seg.high.load(Ordering::Acquire).min(cap);
                let low = seg.low.load(Ordering::Acquire).min(cap);
                total += high.saturating_sub(low);
                seg_ptr = seg.next.load(Ordering::Acquire);
            }
            total
        }

        /// Whether the queue holds no elements. Linearizable with
        /// respect to completed pushes: once `push` returns, this is
        /// `false` until the element is popped.
        pub fn is_empty(&self) -> bool {
            let mut seg_ptr = self.head.load(Ordering::Acquire);
            while !seg_ptr.is_null() {
                let seg = unsafe { &*seg_ptr };
                let cap = seg.slots.len();
                let high = seg.high.load(Ordering::Acquire).min(cap);
                if seg.low.load(Ordering::Acquire).min(cap) < high {
                    return false;
                }
                seg_ptr = seg.next.load(Ordering::Acquire);
            }
            true
        }
    }

    impl<T> Drop for SegQueue<T> {
        fn drop(&mut self) {
            // Walk the whole chain from `first`, dropping unpopped
            // values (only segments at or after `head` can hold any)
            // and freeing every segment.
            let head = *self.head.get_mut();
            let mut seg_ptr = *self.first.get_mut();
            let mut at_or_after_head = false;
            while !seg_ptr.is_null() {
                at_or_after_head |= seg_ptr == head;
                let mut seg = unsafe { Box::from_raw(seg_ptr) };
                if at_or_after_head {
                    let cap = seg.slots.len();
                    let low = (*seg.low.get_mut()).min(cap);
                    let high = (*seg.high.get_mut()).min(cap);
                    for slot in &mut seg.slots[low..high] {
                        // With `&mut self` no push is in flight, so
                        // every reserved slot is ready.
                        debug_assert!(*slot.ready.get_mut());
                        unsafe { slot.value.get_mut().assume_init_drop() };
                    }
                }
                seg_ptr = *seg.next.get_mut();
            }
        }
    }

    /// Model-checked tests of the reserve-to-publish protocol, compiled
    /// only under the instrumented facade.
    #[cfg(all(test, kcore_check))]
    mod model_tests {
        use super::*;
        use kcore_check::sync::Arc;
        use kcore_check::Checker;

        /// Two producers, two pushes each (crossing a segment boundary
        /// at `seg_capacity() == 2`), the main thread draining
        /// concurrently: nothing lost, nothing duplicated, and each
        /// producer's elements pop in push order.
        #[test]
        fn segq_conservation_and_per_producer_fifo() {
            Checker::new().check(|| {
                let q = Arc::new(SegQueue::new());
                let handles: Vec<_> = (0..2u32)
                    .map(|t| {
                        let q = q.clone();
                        thread::spawn(move || {
                            q.push((t, 0u32));
                            q.push((t, 1u32));
                        })
                    })
                    .collect();
                let mut got: Vec<(u32, u32)> = Vec::new();
                while got.len() < 4 {
                    match q.pop() {
                        Some(v) => got.push(v),
                        None => thread::yield_now(),
                    }
                }
                for h in handles {
                    h.join().unwrap();
                }
                assert!(q.pop().is_none(), "popped more than was pushed");
                for t in 0..2u32 {
                    let seq: Vec<u32> =
                        got.iter().filter(|&&(p, _)| p == t).map(|&(_, i)| i).collect();
                    assert_eq!(seq, [0, 1], "producer {t} FIFO violated: {got:?}");
                }
                let mut uniq = got.clone();
                uniq.sort_unstable();
                uniq.dedup();
                assert_eq!(uniq.len(), 4, "lost or duplicated element: {got:?}");
            });
        }

        /// Linearizability of the emptiness queries: once a push has
        /// completed (observed through a Release/Acquire flag), no
        /// schedule may let `is_empty` answer true or `len` answer 0.
        #[test]
        fn segq_completed_push_visible_to_queries() {
            Checker::new().check(|| {
                let q = Arc::new(SegQueue::new());
                let done = Arc::new(AtomicBool::new(false));
                let (q2, d2) = (q.clone(), done.clone());
                let t = thread::spawn(move || {
                    q2.push(1u32);
                    d2.store(true, Ordering::Release);
                });
                if done.load(Ordering::Acquire) {
                    assert!(!q.is_empty(), "completed push invisible to is_empty");
                    assert_eq!(q.len(), 1, "completed push not counted by len");
                }
                t.join().unwrap();
            });
        }

        /// The Backoff satellite: its spin budget is bounded — after
        /// `SPIN_LIMIT` snoozes every further one is a yield — and each
        /// snooze is a scheduling point the checker can preempt at.
        #[test]
        fn backoff_spin_budget_is_bounded() {
            Checker::new().check(|| {
                let mut backoff = Backoff::new();
                for _ in 0..Backoff::SPIN_LIMIT {
                    assert!(!backoff.is_yielding(), "yielded inside the spin budget");
                    backoff.snooze();
                }
                assert!(backoff.is_yielding(), "spin budget not exhausted at the limit");
                backoff.snooze();
            });
        }

        /// One producer, the main thread popping until the value lands:
        /// the minimal shape whose only cross-thread edge is the
        /// `ready` flag — the mutation tests below sever each side.
        fn push_pop_once() {
            let q = Arc::new(SegQueue::new());
            let q2 = q.clone();
            let t = thread::spawn(move || q2.push(7u32));
            let v = loop {
                match q.pop() {
                    Some(v) => break v,
                    None => thread::yield_now(),
                }
            };
            assert_eq!(v, 7);
            t.join().unwrap();
        }

        #[test]
        fn segq_push_pop_once_passes() {
            Checker::new().check(push_pop_once);
        }

        /// Mutation teeth: a Relaxed publish lets the popper read the
        /// slot without the pusher's write ordered before it.
        #[test]
        fn mutation_segq_push_ready_release_has_teeth() {
            let _weaken = mutate::weaken("segq.push.ready.release");
            let report = Checker::new().check_fails(push_pop_once);
            assert!(report.contains("data race"), "unexpected report: {report}");
        }

        /// Mutation teeth: a Relaxed drain-side load severs the same
        /// edge from the popper's end.
        #[test]
        fn mutation_segq_pop_ready_acquire_has_teeth() {
            let _weaken = mutate::weaken("segq.pop.ready.acquire");
            let report = Checker::new().check_fails(push_pop_once);
            assert!(report.contains("data race"), "unexpected report: {report}");
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            q.push(3);
            assert_eq!(q.len(), 3);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), Some(3));
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());
        }

        /// Per-producer push count; shrunk under Miri, whose
        /// interpreter makes the full-size runs take minutes.
        const PER_THREAD: u32 = if cfg!(miri) { 50 } else { 1000 };

        #[test]
        fn concurrent_pushes_all_arrive() {
            let q = SegQueue::new();
            std::thread::scope(|s| {
                for t in 0..4u32 {
                    let q = &q;
                    s.spawn(move || {
                        for i in 0..PER_THREAD {
                            q.push(t * PER_THREAD + i);
                        }
                    });
                }
            });
            assert_eq!(q.len(), 4 * PER_THREAD as usize);
            let mut all: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
            all.sort_unstable();
            assert_eq!(all, (0..4 * PER_THREAD).collect::<Vec<_>>());
        }

        #[test]
        fn backoff_spins_then_yields() {
            let mut backoff = Backoff::new();
            for _ in 0..Backoff::SPIN_LIMIT {
                assert!(!backoff.is_yielding());
                backoff.snooze();
            }
            assert!(backoff.is_yielding());
        }

        #[test]
        fn per_thread_order_is_preserved() {
            let q = SegQueue::new();
            let per_thread = if cfg!(miri) { 50 } else { 500 };
            std::thread::scope(|s| {
                for t in 0..4u32 {
                    let q = &q;
                    s.spawn(move || {
                        for i in 0..per_thread {
                            q.push((t, i));
                        }
                    });
                }
            });
            // Within each pushing thread, pops must come out in push
            // order (global FIFO implies per-producer FIFO).
            let mut last = [None::<u32>; 4];
            while let Some((t, i)) = q.pop() {
                if let Some(prev) = last[t as usize] {
                    assert!(i > prev, "thread {t}: {i} popped after {prev}");
                }
                last[t as usize] = Some(i);
            }
            assert!(last.iter().all(|l| *l == Some(per_thread - 1)));
        }

        #[test]
        fn interleaved_push_pop() {
            let q = SegQueue::new();
            for round in 0..100u32 {
                q.push(round);
                q.push(round + 1000);
                assert!(q.pop().is_some());
            }
            assert_eq!(q.len(), 100);
            let drained: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
            assert_eq!(drained.len(), 100);
        }

        #[test]
        fn crosses_many_segments() {
            // Push far past several segment installations, then drain
            // and verify strict FIFO across every boundary.
            let q = SegQueue::new();
            let n = (seg_capacity() * 5 + 7) as u32;
            for i in 0..n {
                q.push(i);
            }
            assert_eq!(q.len(), n as usize);
            for i in 0..n {
                assert_eq!(q.pop(), Some(i), "FIFO broke at {i}");
            }
            assert!(q.is_empty());
        }

        #[test]
        fn drop_releases_unpopped_values() {
            // Heap values left in the queue (across segment boundaries)
            // must be dropped exactly once — run under the test harness
            // this doubles as a leak/double-free canary for Drop.
            let q = SegQueue::new();
            for i in 0..(seg_capacity() * 2 + 3) {
                q.push(Box::new(i));
            }
            for _ in 0..seg_capacity() {
                q.pop();
            }
            drop(q);
        }

        #[test]
        fn completed_pushes_are_visible_to_is_empty() {
            // Linearizability: once a push has *returned* (observed via
            // the `completed` counter, bumped after each push), nothing
            // ever pops here, so `is_empty` must answer false and `len`
            // must be at least the completed count.
            use kcore_check::sync::atomic::{AtomicUsize, Ordering};
            let pushes = if cfg!(miri) { 300 } else { 20_000 };
            let q = SegQueue::new();
            let completed = AtomicUsize::new(0);
            std::thread::scope(|s| {
                let q = &q;
                let completed = &completed;
                s.spawn(move || {
                    for i in 0..pushes {
                        q.push(i);
                        completed.fetch_add(1, Ordering::Release);
                    }
                });
                s.spawn(move || loop {
                    let done = completed.load(Ordering::Acquire);
                    if done > 0 {
                        assert!(!q.is_empty(), "{done} pushes completed, none popped");
                        assert!(q.len() >= done, "len {} < completed {done}", q.len());
                    }
                    if done == pushes {
                        break;
                    }
                    hint::spin_loop();
                });
            });
            assert_eq!(q.len(), pushes);
        }
    }
}
