//! Shared helpers for the benchmark suite.
//!
//! The paper benchmarks laptop-scale analogs of its graph families
//! (see `kcore_graph::gen`); this crate centralizes the instances every
//! bench file uses so Tab. 2 / Tab. 3 style sweeps stay consistent.

use kcore_graph::CsrGraph;

/// A named benchmark instance.
pub struct BenchGraph {
    pub name: &'static str,
    pub graph: CsrGraph,
}

/// The standard small suite: one representative per family, sized so a
/// full sweep stays in CI budget.
pub fn standard_suite() -> Vec<BenchGraph> {
    use kcore_graph::gen;
    vec![
        BenchGraph { name: "grid2d-100x100", graph: gen::grid2d(100, 100) },
        BenchGraph { name: "cube-20x20x20", graph: gen::grid3d(20, 20, 20) },
        BenchGraph { name: "mesh-80x80", graph: gen::mesh(80, 80) },
        BenchGraph { name: "road-100x100", graph: gen::road(100, 100, 0.15, 0.05, 42) },
        BenchGraph { name: "rmat-s12", graph: gen::rmat(12, 8, 0.57, 0.19, 0.19, 42) },
        BenchGraph { name: "ba-5000", graph: gen::barabasi_albert(5000, 4, 42) },
        BenchGraph { name: "knn-4000-k5", graph: gen::knn(4000, 5, 42) },
        BenchGraph { name: "planted-core-2000", graph: gen::planted_core(2000, 3, 80, 42) },
        BenchGraph { name: "hcns-150", graph: gen::hcns(150) },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_nonempty_and_valid() {
        let suite = standard_suite();
        assert!(suite.len() >= 5);
        for bg in &suite {
            assert!(bg.graph.num_vertices() > 0, "{} is empty", bg.name);
            bg.graph.validate();
        }
    }
}
