//! Shared helpers for the benchmark suite.
//!
//! The paper benchmarks laptop-scale analogs of its graph families
//! (see `kcore_graph::gen`); this crate centralizes the instances every
//! bench file uses so Tab. 2 / Tab. 3 style sweeps stay consistent,
//! and provides [`summary`] — the machine-readable results emitter that
//! turns every `cargo bench` run into a `BENCH_results.json` entry so
//! the perf trajectory is tracked across PRs.
//!
//! Bench binaries end with [`bench_main!`] instead of
//! `criterion_main!`; it runs the groups and then flushes the shim's
//! collected measurements through [`summary::emit`].

use kcore_graph::CsrGraph;

/// A named benchmark instance.
pub struct BenchGraph {
    pub name: &'static str,
    pub graph: CsrGraph,
}

/// The standard small suite: one representative per family, sized so a
/// full sweep stays in CI budget.
pub fn standard_suite() -> Vec<BenchGraph> {
    use kcore_graph::gen;
    vec![
        BenchGraph { name: "grid2d-100x100", graph: gen::grid2d(100, 100) },
        BenchGraph { name: "cube-20x20x20", graph: gen::grid3d(20, 20, 20) },
        BenchGraph { name: "mesh-80x80", graph: gen::mesh(80, 80) },
        BenchGraph { name: "road-100x100", graph: gen::road(100, 100, 0.15, 0.05, 42) },
        BenchGraph { name: "rmat-s12", graph: gen::rmat(12, 8, 0.57, 0.19, 0.19, 42) },
        BenchGraph { name: "ba-5000", graph: gen::barabasi_albert(5000, 4, 42) },
        BenchGraph { name: "knn-4000-k5", graph: gen::knn(4000, 5, 42) },
        BenchGraph { name: "planted-core-2000", graph: gen::planted_core(2000, 3, 80, 42) },
        BenchGraph { name: "hcns-150", graph: gen::hcns(150) },
    ]
}

/// Runs the given criterion groups, then emits the collected
/// measurements as JSON ([`summary::emit`]) and — when `KCORE_TRACE`
/// recorded anything and `KCORE_TRACE_OUT` names a path — a Chrome
/// trace of the run ([`summary::export_trace`]). Drop-in replacement
/// for `criterion_main!` in this workspace's bench binaries.
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::summary::emit();
            $crate::summary::export_trace();
        }
    };
}

pub mod summary {
    //! Machine-readable benchmark summaries.
    //!
    //! Every bench binary (via [`crate::bench_main!`]) drains the
    //! criterion shim's measurement log and merges it into a single
    //! `BENCH_results.json` at the workspace root (override the path
    //! with `KCORE_BENCH_JSON`). Entries are keyed by bench binary:
    //! re-running a binary replaces its own entries and leaves the
    //! others, so one `cargo bench` sweep — or several partial ones —
    //! converges to a complete snapshot. CI uploads the file as an
    //! artifact per run, giving the perf trajectory over time.
    //!
    //! The file is a single JSON object with one entry line per
    //! measurement (see [`Entry`]); the merge parser only accepts files
    //! this module wrote (anything else is overwritten wholesale).

    use std::io::Write;
    use std::path::{Path, PathBuf};

    const SCHEMA: &str = "kcore-bench-summary/v1";

    /// One benchmark measurement, as serialized into the results file.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Entry {
        /// Bench binary stem (e.g. `bench_buckets`).
        pub bin: String,
        /// Benchmark id as printed by the harness.
        pub bench: String,
        /// Mean nanoseconds per iteration.
        pub ns_per_iter: u64,
        /// Iterations measured.
        pub iters: u64,
        /// Worker threads the measurement ran with: `RAYON_NUM_THREADS`
        /// when set, else the actual default pool width — never empty.
        pub rayon_threads: String,
        /// `KCORE_TECHNIQUES` at measurement time; `default` when the
        /// override is unset (the baseline configuration).
        pub techniques: String,
    }

    impl Entry {
        fn to_json_line(&self) -> String {
            format!(
                "    {{\"bin\":{},\"bench\":{},\"ns_per_iter\":{},\"iters\":{},\
                 \"rayon_threads\":{},\"techniques\":{}}}",
                json_str(&self.bin),
                json_str(&self.bench),
                self.ns_per_iter,
                self.iters,
                json_str(&self.rayon_threads),
                json_str(&self.techniques),
            )
        }
    }

    /// Drains the criterion shim's reports and merges them into the
    /// results file. Never panics: benchmarks should not fail because
    /// the summary could not be written (a warning goes to stderr).
    pub fn emit() {
        let reports = criterion::take_reports();
        if reports.is_empty() {
            return;
        }
        let bin = current_bin_stem();
        // Resolve the environment to what *effectively* ran, so entries
        // never carry empty fields: an unset thread override means the
        // default pool width, an unset techniques override means the
        // baseline configuration.
        let set = |k: &str| std::env::var(k).ok().filter(|v| !v.is_empty());
        let rayon_threads =
            set("RAYON_NUM_THREADS").unwrap_or_else(|| rayon::current_num_threads().to_string());
        let techniques = set("KCORE_TECHNIQUES").unwrap_or_else(|| "default".to_string());
        let entries: Vec<Entry> = reports
            .into_iter()
            .map(|r| Entry {
                bin: bin.clone(),
                bench: r.id,
                ns_per_iter: r.ns_per_iter,
                iters: r.iters,
                rayon_threads: rayon_threads.clone(),
                techniques: techniques.clone(),
            })
            .collect();
        let path = output_path();
        match merge_into(&path, &bin, entries) {
            Ok(total) => eprintln!("bench summary: {total} entries in {}", path.display()),
            Err(e) => eprintln!("bench summary: cannot write {}: {e}", path.display()),
        }
    }

    /// Merges `entries` (all belonging to bench binary `bin`) into the
    /// results file at `path`: an existing entry is replaced only when
    /// this run re-measured the same `(bin, bench)` pair, so a
    /// *filtered* run (`cargo bench --bench b some-substring`) updates
    /// just the benches it executed and the rest of the snapshot
    /// survives. Returns the total entry count written.
    pub fn merge_into(path: &Path, bin: &str, entries: Vec<Entry>) -> std::io::Result<usize> {
        let bin_marker = format!("\"bin\":{}", json_str(bin));
        let fresh: Vec<String> =
            entries.iter().map(|e| format!("\"bench\":{}", json_str(&e.bench))).collect();
        let mut kept: Vec<String> = Vec::new();
        if let Ok(existing) = std::fs::read_to_string(path) {
            if existing.contains(SCHEMA) {
                for line in existing.lines() {
                    let t = line.trim();
                    let replaced =
                        t.contains(&bin_marker) && fresh.iter().any(|m| t.contains(m.as_str()));
                    if t.starts_with('{') && t.contains("\"bench\":") && !replaced {
                        kept.push(format!("    {}", t.trim_end_matches(',')));
                    }
                }
            }
        }
        kept.extend(entries.iter().map(Entry::to_json_line));
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{{")?;
        writeln!(f, "  \"schema\": \"{SCHEMA}\",")?;
        writeln!(f, "  \"results\": [")?;
        writeln!(f, "{}", kept.join(",\n"))?;
        writeln!(f, "  ]")?;
        writeln!(f, "}}")?;
        Ok(kept.len())
    }

    /// Writes the Chrome Trace Event export of everything `kcore-obs`
    /// recorded during this bench binary to the path in
    /// `KCORE_TRACE_OUT`. No-op when the variable is unset; a warning
    /// when it is set but tracing was off (run with
    /// `KCORE_TRACE=spans` to get a timeline). Load the file in
    /// `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn export_trace() {
        let Ok(path) = std::env::var("KCORE_TRACE_OUT") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        // Fold the scheduler tallies in so the trace's counter track
        // carries the steal/split/park story next to the spans.
        kcore_parallel::pool::publish_scheduler_metrics();
        let report = kcore_obs::TraceReport::capture();
        if report.is_empty() {
            eprintln!(
                "bench trace: nothing recorded (KCORE_TRACE={}); writing an empty trace to {path}",
                kcore_obs::level().as_str()
            );
        }
        match std::fs::write(&path, report.chrome_trace()) {
            Ok(()) => eprintln!("bench trace: wrote {path}"),
            Err(e) => eprintln!("bench trace: cannot write {path}: {e}"),
        }
    }

    /// Results path: `KCORE_BENCH_JSON` if set, else
    /// `BENCH_results.json` at the workspace root (found by walking up
    /// from the bench crate's manifest to the directory holding
    /// `Cargo.lock`), else the current directory.
    fn output_path() -> PathBuf {
        if let Ok(p) = std::env::var("KCORE_BENCH_JSON") {
            return PathBuf::from(p);
        }
        let start = std::env::var("CARGO_MANIFEST_DIR")
            .map(PathBuf::from)
            .or_else(|_| std::env::current_dir())
            .unwrap_or_default();
        let mut dir = start.as_path();
        loop {
            if dir.join("Cargo.lock").exists() {
                return dir.join("BENCH_results.json");
            }
            match dir.parent() {
                Some(p) => dir = p,
                None => return PathBuf::from("BENCH_results.json"),
            }
        }
    }

    /// The running binary's file stem with cargo's trailing `-<hash>`
    /// stripped (e.g. `bench_buckets-1a2b3c` → `bench_buckets`).
    fn current_bin_stem() -> String {
        let exe = std::env::current_exe().unwrap_or_default();
        let stem = exe.file_stem().and_then(|s| s.to_str()).unwrap_or("bench").to_string();
        match stem.rsplit_once('-') {
            Some((name, hash))
                if !name.is_empty()
                    && hash.len() == 16
                    && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
            {
                name.to_string()
            }
            _ => stem,
        }
    }

    /// Minimal JSON string encoder (ids are ASCII; escape the basics).
    fn json_str(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn entry(bin: &str, bench: &str, ns: u64) -> Entry {
            Entry {
                bin: bin.into(),
                bench: bench.into(),
                ns_per_iter: ns,
                iters: 10,
                rayon_threads: String::new(),
                techniques: String::new(),
            }
        }

        #[test]
        fn merge_replaces_remeasured_entries_and_keeps_the_rest() {
            let dir = std::env::temp_dir().join(format!("kcore-bench-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("merge_test.json");
            let _ = std::fs::remove_file(&path);

            let n = merge_into(&path, "a", vec![entry("a", "a/one", 1), entry("a", "a/two", 2)])
                .unwrap();
            assert_eq!(n, 2);
            let n = merge_into(&path, "b", vec![entry("b", "b/one", 3)]).unwrap();
            assert_eq!(n, 3, "b's entry joins a's");
            // A filtered re-run of `a` measuring only a/one: a/one is
            // replaced in place, a/two and b/one survive.
            let n = merge_into(&path, "a", vec![entry("a", "a/one", 9)]).unwrap();
            assert_eq!(n, 3, "only the re-measured entry is replaced");

            let text = std::fs::read_to_string(&path).unwrap();
            assert!(text.contains(SCHEMA));
            assert!(text.contains("a/two") && text.contains("b/one"));
            assert!(text.contains("\"ns_per_iter\":9"), "a/one must carry the fresh value");
            assert!(!text.contains("\"ns_per_iter\":1,"), "the stale a/one value must be gone");
            std::fs::remove_file(&path).unwrap();
        }

        #[test]
        fn merge_overwrites_foreign_files() {
            let dir = std::env::temp_dir().join(format!("kcore-bench-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("foreign_test.json");
            std::fs::write(&path, "not our format at all").unwrap();
            let n = merge_into(&path, "a", vec![entry("a", "a/one", 1)]).unwrap();
            assert_eq!(n, 1);
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(text.contains(SCHEMA) && !text.contains("not our format"));
            std::fs::remove_file(&path).unwrap();
        }

        #[test]
        fn json_strings_are_escaped() {
            assert_eq!(json_str("plain/id-1"), "\"plain/id-1\"");
            assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_nonempty_and_valid() {
        let suite = standard_suite();
        assert!(suite.len() >= 5);
        for bg in &suite {
            assert!(bg.graph.num_vertices() > 0, "{} is empty", bg.name);
            bg.graph.validate();
        }
    }
}
