//! Cross-problem sweep: the same graphs through every peeling problem
//! the engine ships — k-core (vertex peeling), k-truss (edge peeling,
//! two-phase snapshot rule), greedy densest subgraph (min-degree
//! peeling + density curve), (k,h)-core (recompute incidence over
//! h-hop balls), and the batched (2+ε)-approximate densest subgraph
//! (threshold-policy rounds, swept over ε) — under the default
//! adaptive strategy and, for the cheapest graph, the offline driver.
//!
//! This is the engine-generality benchmark: one loop, five element
//! universes / round structures. k-truss is reported in three cuts so
//! the trajectory record can attribute wins: `ktruss` (end-to-end:
//! fused setup + peel), `ktruss-setup` (the fused one-pass
//! orientation + edge index + supports build alone), and `ktruss-peel`
//! (peel over a pre-built [`TriangleCtx`], what
//! `Decomposition::with_ctx` makes possible). A per-kernel ablation
//! (`ktruss-kernel-*`, forced via [`TriangleCtx::build_with_kernel`])
//! runs on the two power-law-ish graphs where kernel choice actually
//! varies. The approx-densest ε sweep is the timing side of the
//! rounds-vs-ε law (`O(log₁₊ε n)` rounds, asserted in
//! `tests/proptest_problems.rs`): larger ε → fewer, fatter rounds.

use criterion::{black_box, criterion_group, Criterion};
use kcore::{Config, Decomposition, Techniques, TriKernel, TriangleCtx};
use kcore_graph::gen;

fn bench_problems(c: &mut Criterion) {
    let graphs = [
        ("ba-3000", gen::barabasi_albert(3000, 4, 42)),
        ("planted-core-1500", gen::planted_core(1500, 3, 70, 42)),
        ("grid2d-60x60", gen::grid2d(60, 60)),
    ];
    let config = Config { collect_stats: false, ..Config::default() };
    for (name, g) in &graphs {
        c.bench_function(&format!("problems/{name}/kcore"), |b| {
            b.iter(|| black_box(Decomposition::kcore(g).exact_config(config).run()))
        });
        c.bench_function(&format!("problems/{name}/densest"), |b| {
            b.iter(|| black_box(Decomposition::densest(g).exact_config(config).run()))
        });
        c.bench_function(&format!("problems/{name}/ktruss"), |b| {
            b.iter(|| black_box(Decomposition::ktruss(g).exact_config(config).run()))
        });
        c.bench_function(&format!("problems/{name}/ktruss-setup"), |b| {
            b.iter(|| black_box(TriangleCtx::build(g)))
        });
        let ctx = TriangleCtx::build(g);
        c.bench_function(&format!("problems/{name}/ktruss-peel"), |b| {
            b.iter(|| black_box(Decomposition::ktruss(g).with_ctx(&ctx).exact_config(config).run()))
        });
        for eps in kcore::SWEPT_EPSILONS {
            c.bench_function(&format!("problems/{name}/approx-densest-eps{eps}"), |b| {
                b.iter(|| {
                    black_box(Decomposition::approx_densest(g, eps).exact_config(config).run())
                })
            });
        }
    }
    // Kernel ablation: end-to-end k-truss (forced-kernel fused setup +
    // peel) on the graphs where pair skew makes the choice matter —
    // the BA power-law graph and the adversarial HCNS construction
    // (one kmax-clique of hubs plus a low-degree chain).
    let ablation = [("ba-3000", &graphs[0].1), ("hcns-150", &gen::hcns(150))];
    for (name, g) in ablation {
        for kernel in [TriKernel::Auto, TriKernel::Merge, TriKernel::Gallop, TriKernel::Bitset] {
            c.bench_function(&format!("problems/{name}/ktruss-kernel-{}", kernel.as_str()), |b| {
                b.iter(|| {
                    let ctx = TriangleCtx::build_with_kernel(g, kernel);
                    black_box(Decomposition::ktruss(g).with_ctx(&ctx).exact_config(config).run())
                })
            });
        }
    }
    // (k,h)-core: ball recomputes are the dominant cost (each is
    // O(|ball|) via the epoch-stamped scratch), so keep to the two
    // structured graphs where 2-hop balls stay bounded — BA hubs'
    // balls span the graph and would measure the BFS, not the engine.
    for (name, g) in [&graphs[1], &graphs[2]] {
        c.bench_function(&format!("problems/{name}/khcore-h2"), |b| {
            b.iter(|| black_box(Decomposition::khcore(g, 2).exact_config(config).run()))
        });
    }
    // Offline driver comparison on one representative.
    let (name, g) = &graphs[1];
    let offline =
        Config { collect_stats: false, techniques: Techniques::offline(), ..Config::default() };
    c.bench_function(&format!("problems/{name}/kcore-offline"), |b| {
        b.iter(|| black_box(Decomposition::kcore(g).exact_config(offline).run()))
    });
    c.bench_function(&format!("problems/{name}/ktruss-offline"), |b| {
        b.iter(|| black_box(Decomposition::ktruss(g).exact_config(offline).run()))
    });
}

criterion_group!(benches, bench_problems);
kcore_bench::bench_main!(benches);
