fn main() {}
