//! Bucketing-structure comparison (the paper's Fig. 8 axis): the same
//! decomposition under each frontier-management strategy, on the graphs
//! that stress them — HCNS for bucket depth, a dense planted core for
//! high `k_max`, and a grid for the sparse regime.

use criterion::{black_box, criterion_group, Criterion};
use kcore::{BucketStrategy, Config, Decomposition};
use kcore_graph::gen;

fn bench_strategies(c: &mut Criterion) {
    let graphs = [
        ("hcns-120", gen::hcns(120)),
        ("planted-core-1500", gen::planted_core(1500, 3, 70, 42)),
        ("grid2d-80x80", gen::grid2d(80, 80)),
    ];
    let strategies = [
        BucketStrategy::Single,
        BucketStrategy::Fixed(16),
        BucketStrategy::Hierarchical,
        BucketStrategy::Adaptive,
    ];
    for (name, g) in &graphs {
        for strategy in strategies {
            let config = Config { collect_stats: false, ..Config::with_strategy(strategy) };
            c.bench_function(&format!("buckets/{name}/{strategy}"), |b| {
                b.iter(|| black_box(Decomposition::kcore(g).config(config).run()))
            });
        }
    }
}

criterion_group!(benches, bench_strategies);
kcore_bench::bench_main!(benches);
