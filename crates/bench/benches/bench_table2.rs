//! Tab. 2 analog: decomposition time and structure (k_max, peeling
//! complexity rho) across every graph family, default configuration.

use criterion::{black_box, criterion_group, Criterion};
use kcore::{Config, Decomposition};
use kcore_bench::standard_suite;

fn bench_families(c: &mut Criterion) {
    for bg in standard_suite() {
        // Print the table row once (n, m, k_max, rho) so bench output
        // doubles as the Tab. 2 data source.
        let result = Decomposition::kcore(&bg.graph).run();
        println!(
            "table2: {:<20} n={:<8} m={:<9} kmax={:<5} rho={}",
            bg.name,
            bg.graph.num_vertices(),
            bg.graph.num_edges(),
            result.kmax(),
            result.stats().subrounds,
        );
        let config = Config { collect_stats: false, ..Config::default() };
        c.bench_function(&format!("table2/{}", bg.name), |b| {
            b.iter(|| black_box(Decomposition::kcore(&bg.graph).config(config).run()))
        });
    }
}

criterion_group!(benches, bench_families);
kcore_bench::bench_main!(benches);
