//! Technique ablation (the paper's Tab. 3 axes): the plain framework
//! against each Sec. 4 technique alone, the combined online design, and
//! the offline histogram driver — plus the sequential BZ baseline that
//! every speedup is judged by.

use criterion::{black_box, criterion_group, Criterion};
use kcore::bz::bz_coreness;
use kcore::{Config, Decomposition, Sampling, Techniques, Vgc};
use kcore_graph::gen;

fn variants() -> Vec<(&'static str, Techniques)> {
    let sampling = Some(Sampling::default());
    let vgc = Some(Vgc::default());
    vec![
        ("baseline", Techniques::default()),
        ("sampling", Techniques { sampling, ..Techniques::default() }),
        ("vgc", Techniques { vgc, ..Techniques::default() }),
        ("sampling+vgc", Techniques { sampling, vgc, ..Techniques::default() }),
        ("offline", Techniques::offline()),
    ]
}

fn bench_technique_ablation(c: &mut Criterion) {
    let graphs = [
        ("mesh-60x60", gen::mesh(60, 60)),
        ("rmat-s11", gen::rmat(11, 8, 0.57, 0.19, 0.19, 42)),
        ("ba-8000", gen::barabasi_albert(8000, 8, 42)),
    ];
    for (name, g) in &graphs {
        for (vname, techniques) in variants() {
            // Exact config: a stray KCORE_TECHNIQUES in the environment
            // must not silently rewrite the ablation rows.
            let config = Config { collect_stats: false, techniques, ..Config::default() };
            c.bench_function(&format!("techniques/{name}/{vname}"), |b| {
                b.iter(|| black_box(Decomposition::kcore(g).exact_config(config).run()))
            });
        }
        c.bench_function(&format!("techniques/{name}/bz-sequential"), |b| {
            b.iter(|| black_box(bz_coreness(g)))
        });
    }
}

criterion_group!(benches, bench_technique_ablation);
kcore_bench::bench_main!(benches);
