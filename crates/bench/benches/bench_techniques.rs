//! Technique ablation scaffold (the paper's Tab. 3 axes). Sampling and
//! VGC are not implemented yet (see ROADMAP.md); until they land, this
//! harness measures the framework baseline against the sequential BZ
//! algorithm — the speedup denominator every technique is judged by.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kcore::bz::bz_coreness;
use kcore::{Config, KCore};
use kcore_graph::gen;

fn bench_framework_vs_bz(c: &mut Criterion) {
    let graphs =
        [("mesh-60x60", gen::mesh(60, 60)), ("rmat-s11", gen::rmat(11, 8, 0.57, 0.19, 0.19, 42))];
    for (name, g) in &graphs {
        let config = Config { collect_stats: false, ..Config::default() };
        c.bench_function(&format!("techniques/{name}/framework"), |b| {
            b.iter(|| black_box(KCore::new(config).run(g)))
        });
        c.bench_function(&format!("techniques/{name}/bz-sequential"), |b| {
            b.iter(|| black_box(bz_coreness(g)))
        });
    }
}

criterion_group!(benches, bench_framework_vs_bz);
criterion_main!(benches);
