//! Batch-dynamic maintenance vs. recompute-from-scratch.
//!
//! The maintenance path exists to beat a full re-peel on small batches:
//! `DynamicGraph::apply_batch` confines the re-peel to the affected
//! region, so its cost should track the region size, not the graph
//! size. This bench measures the steady state on ba-3000: each
//! iteration applies ONE batch of B real edges — alternating between
//! deleting a batch and re-inserting the same batch, so the graph
//! oscillates around its starting state and iterations don't drift —
//! for B in {1, 16, 256}, next to the full-recompute baseline a batch
//! would otherwise pay. The ns/iter numbers compare directly: one
//! maintained batch vs. one fresh decomposition.
//!
//! Expected shape: B = 1 and B = 16 sit well under the one-shot
//! decomposition; B = 256 widens the confinement range until the
//! region — or the full-recompute fallback — approaches the whole
//! graph, and the advantage fades. That crossover is the point of the
//! batch-size axis.

use criterion::{black_box, criterion_group, Criterion};
use kcore::{Config, Decomposition, DynamicGraph};
use kcore_graph::gen;

/// Spread batches across the edge list: every stride-th edge, wrapping.
fn pick_batch(edges: &[(u32, u32)], start: usize, size: usize) -> Vec<(u32, u32)> {
    let stride = (edges.len() / size.max(1)).max(1) | 1;
    (0..size).map(|i| edges[(start + i * stride) % edges.len()]).collect()
}

fn bench_dynamic(c: &mut Criterion) {
    let g = gen::barabasi_albert(3000, 4, 42);
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let config = Config { collect_stats: false, ..Config::default() };

    // Baseline: what a batch costs if every change triggers a fresh
    // one-shot decomposition of the full graph.
    c.bench_function("dynamic/ba-3000/full-recompute", |b| {
        b.iter(|| black_box(Decomposition::kcore(&g).exact_config(config).run()))
    });

    for batch in [1usize, 16, 256] {
        let mut dg = DynamicGraph::with_exact_config(g.clone(), config);
        let mut start = 0usize;
        let mut deleted: Option<Vec<(u32, u32)>> = None;
        c.bench_function(&format!("dynamic/ba-3000/apply-batch-{batch}"), |b| {
            b.iter(|| match deleted.take() {
                Some(changes) => black_box(dg.apply_batch(&changes, &[])),
                None => {
                    let changes = pick_batch(&edges, start, batch);
                    start = start.wrapping_add(1);
                    let v = dg.apply_batch(&[], &changes);
                    deleted = Some(changes);
                    black_box(v)
                }
            })
        });
        // Leave the graph whole for the next batch size.
        if let Some(changes) = deleted.take() {
            dg.apply_batch(&changes, &[]);
        }
    }
}

criterion_group!(benches, bench_dynamic);
kcore_bench::bench_main!(benches);
