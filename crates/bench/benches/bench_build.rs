//! Build-path and memory-layout benchmarks for the billion-edge
//! ingest story.
//!
//! Three questions, each answered as an interleaved A/B pair so the
//! comparison shares cache and frequency state:
//!
//! * **ingest**: `StreamBuilder` (sharded counting-sort build) vs the
//!   historical collect-then-`par_sort` path, on the same ≥1.2M-edge
//!   synthetic stream. The two paths are asserted bit-identical once
//!   before timing.
//! * **peel**: k-core over plain CSR vs the same graph re-encoded as
//!   [`CompressedCsr`] (decode-on-the-fly peeling) — the acceptance
//!   pair on ba-3000. The memory footprints and the neighbor-bytes
//!   compression ratio are printed alongside.
//! * **load**: `load_binary` (copying reader) vs `map_binary`
//!   (zero-copy mmap) on the serialized stream graph.

use criterion::{black_box, criterion_group, Criterion};
use kcore::{Config, Decomposition};
use kcore_graph::builder::{from_symmetric_arcs_by_sort, StreamBuilder};
use kcore_graph::{gen, io, CompressedCsr, GraphStats, VertexId};

/// Vertex count of the synthetic stream (power-law-ish degree skew via
/// quadratic collision of a multiplicative hash).
const STREAM_N: usize = 1 << 19;
/// Input edge count of the synthetic stream: 1.25M directed pairs
/// before symmetrization/dedup.
const STREAM_M: usize = 1_250_000;

/// Deterministic pseudo-random edge stream, regenerated identically
/// for every consumer — stands in for a file-backed edge list without
/// timing the parse.
fn stream_edges() -> impl Iterator<Item = (VertexId, VertexId)> {
    let n = STREAM_N as u64;
    (0..STREAM_M as u64).map(move |i| {
        let h1 = i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
        let h2 = i.wrapping_mul(0xc2b2_ae3d_27d4_eb4f).rotate_left(31);
        // Square one coordinate's hash down so low ids are hit far more
        // often: a crude power-law source that makes dedup non-trivial.
        let u = ((h1 % n) * (h1 % n)) / n;
        let v = h2 % n;
        (u as VertexId, v as VertexId)
    })
}

fn build_by_stream() -> kcore_graph::CsrGraph {
    let mut sb = StreamBuilder::new(STREAM_N);
    sb.push_chunk(stream_edges());
    sb.build()
}

fn build_by_sort() -> kcore_graph::CsrGraph {
    let mut arcs = Vec::with_capacity(2 * STREAM_M);
    for (u, v) in stream_edges() {
        if u != v {
            arcs.push((u, v));
            arcs.push((v, u));
        }
    }
    from_symmetric_arcs_by_sort(STREAM_N, arcs)
}

fn bench_ingest(c: &mut Criterion) {
    // Both paths must produce the same graph before the race starts.
    let a = build_by_stream();
    let b = build_by_sort();
    assert_eq!(a, b, "counting-sort build diverged from the sort path");
    let m = a.num_edges();
    println!(
        "build/ingest: {STREAM_M} streamed pairs -> n = {}, m = {m} after dedup",
        a.num_vertices()
    );

    // Interleaved A/B: criterion alternates the two bench closures in
    // program order, so both see the same thermal/cache regime.
    c.bench_function("build/ingest/stream-countsort", |bch| {
        bch.iter(|| black_box(build_by_stream()))
    });
    c.bench_function("build/ingest/collect-parsort", |bch| bch.iter(|| black_box(build_by_sort())));
}

fn bench_peel_backends(c: &mut Criterion) {
    let g = gen::barabasi_albert(3000, 4, 42);
    let compressed = CompressedCsr::from_graph(&g);
    let plain_fp = GraphStats::memory(&g);
    let comp_fp = GraphStats::memory(&compressed);
    println!("build/peel: plain      {plain_fp}");
    println!("build/peel: compressed {comp_fp}");
    println!(
        "build/peel: neighbor-bytes ratio {:.3} (compressed / plain)",
        comp_fp.neighbor_bytes as f64 / plain_fp.neighbor_bytes as f64
    );

    let config = Config { collect_stats: false, ..Config::default() };
    c.bench_function("build/peel/ba-3000/plain", |b| {
        b.iter(|| black_box(Decomposition::kcore(&g).exact_config(config).run()))
    });
    c.bench_function("build/peel/ba-3000/compressed", |b| {
        b.iter(|| black_box(Decomposition::kcore(&compressed).exact_config(config).run()))
    });

    // Raw neighbor-scan sweeps isolate the decode tax from the peel
    // logic: the same full-graph traversal, slice-read vs
    // decode-on-the-fly.
    c.bench_function("build/peel/ba-3000/sweep-plain", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in 0..g.num_vertices() as VertexId {
                for &w in g.neighbors(v) {
                    acc = acc.wrapping_add(u64::from(w));
                }
            }
            black_box(acc)
        })
    });
    c.bench_function("build/peel/ba-3000/sweep-compressed", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in 0..compressed.num_vertices() as VertexId {
                for &w in compressed.neighbors(v) {
                    acc = acc.wrapping_add(u64::from(w));
                }
            }
            black_box(acc)
        })
    });
}

fn bench_load(c: &mut Criterion) {
    let g = build_by_stream();
    let dir = std::env::temp_dir().join(format!("kcore-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let path = dir.join("bench_build.kcg");
    io::save_binary(&g, &path).expect("save binary");

    c.bench_function("build/load/read-copy", |b| {
        b.iter(|| black_box(io::load_binary(&path).expect("load")))
    });
    c.bench_function("build/load/mmap", |b| {
        b.iter(|| black_box(io::map_binary(&path).expect("map")))
    });

    let _ = std::fs::remove_file(&path);
}

// Peel first: the ba-3000 A/B pair is sensitive to allocator state
// left behind by the half-gigabyte ingest benches (plain-CSR layout
// shifts by tens of percent), so it measures on a fresh heap.
criterion_group!(benches, bench_peel_backends, bench_ingest, bench_load);
kcore_bench::bench_main!(benches);
