//! Scalability sweep (the paper's Fig. 10 analog): wall-clock runtime
//! under pinned worker-thread counts via
//! `kcore_parallel::pool::with_threads`, techniques on and off, next to
//! the model-predicted self-relative speedup from the run's work /
//! burdened-span counters (`RunStats::predicted_speedup`). The paper
//! sweeps 1..96h cores; this laptop-scale analog recovers the *shape*
//! of the curve — measured time should track the predicted speedup
//! until the machine runs out of cores.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kcore::{Config, KCore, Techniques};
use kcore_graph::gen;
use kcore_parallel::pool::with_threads;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
const MODEL_CORES: [u64; 6] = [1, 2, 4, 8, 16, 96];

fn bench_scalability(c: &mut Criterion) {
    let graphs = [
        ("rmat-s12", gen::rmat(12, 8, 0.57, 0.19, 0.19, 42)),
        ("mesh-80x80", gen::mesh(80, 80)),
        ("ba-10000", gen::barabasi_albert(10_000, 6, 42)),
    ];
    let variants = [("baseline", Techniques::default()), ("techniques", Techniques::all_online())];
    for (gname, g) in &graphs {
        for (vname, techniques) in variants {
            // Model-predicted speedup from one instrumented run: the
            // Fig. 10 curve the measured sweep is compared against.
            let instrumented = KCore::with_exact_config(Config::with_techniques(techniques)).run(g);
            let stats = instrumented.stats();
            let predicted: Vec<String> = MODEL_CORES
                .iter()
                .map(|&p| format!("{p}:{:.2}", stats.predicted_speedup(p)))
                .collect();
            println!("scalability/{gname}/{vname} predicted speedup {}", predicted.join(" "));

            let config = Config { collect_stats: false, techniques, ..Config::default() };
            for threads in THREAD_SWEEP {
                c.bench_function(&format!("scalability/{gname}/{vname}/t{threads}"), |b| {
                    // The pool lives outside the timing loop: iterations
                    // measure the decomposition, not thread spawn/join.
                    with_threads(threads, || {
                        b.iter(|| black_box(KCore::with_exact_config(config).run(g)))
                    })
                });
            }
        }
    }
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
