//! Scalability sweep (the paper's Fig. 10 analog): wall-clock runtime
//! under pinned worker-thread counts via
//! `kcore_parallel::pool::with_threads`, techniques on and off, next to
//! the model-predicted self-relative speedup from the run's work /
//! burdened-span counters (`RunStats::predicted_speedup`). The paper
//! sweeps 1..96h cores; this laptop-scale analog recovers the *shape*
//! of the curve — measured time should track the predicted speedup
//! until the machine runs out of cores.
//!
//! The **skewed-frontier sweep** isolates the parallel substrate
//! itself: repeated peel-style passes over a power-law (Barabási–
//! Albert) graph, whose hub vertices cluster at the low end of the
//! index space — the worst case for contiguous static partitioning,
//! where one block holds most of the arc work. Two schedules of the
//! identical computation are compared at each thread count:
//!
//! * `static-spawn` — the rayon shim's *previous* design, reproduced
//!   verbatim: spawn one scoped OS thread per contiguous equal block,
//!   every pass (no work stealing, no pool reuse);
//! * `stealing` — the shim's persistent Chase–Lev pool (blocks split
//!   lazily; idle workers steal), pool built outside the timing loop
//!   exactly as a real decomposition holds it across subrounds.
//!
//! On a single hardware core the win is the eliminated per-pass
//! spawn/join cost; with real cores the steal counters printed next to
//! the timings turn into wall-clock rebalancing of the hub block as
//! well. Steal/split deltas come from
//! `kcore_parallel::pool::scheduler_delta`.

use criterion::{black_box, criterion_group, Criterion};
use kcore::{Config, Decomposition, Techniques};
use kcore_graph::{gen, CsrGraph};
use kcore_parallel::pool::{scheduler_delta, with_threads};
use rayon::prelude::*;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
const MODEL_CORES: [u64; 6] = [1, 2, 4, 8, 16, 96];

/// Passes per measured iteration of the skewed-frontier sweep — one
/// "pass" stands in for one peeling subround's frontier scan.
const SKEW_PASSES: usize = 20;

fn bench_scalability(c: &mut Criterion) {
    let graphs = [
        ("rmat-s12", gen::rmat(12, 8, 0.57, 0.19, 0.19, 42)),
        ("mesh-80x80", gen::mesh(80, 80)),
        ("ba-10000", gen::barabasi_albert(10_000, 6, 42)),
    ];
    let variants = [("baseline", Techniques::default()), ("techniques", Techniques::all_online())];
    for (gname, g) in &graphs {
        for (vname, techniques) in variants {
            // Model-predicted speedup from one instrumented run: the
            // Fig. 10 curve the measured sweep is compared against.
            let instrumented =
                Decomposition::kcore(g).exact_config(Config::with_techniques(techniques)).run();
            let stats = instrumented.stats();
            let predicted: Vec<String> = MODEL_CORES
                .iter()
                .map(|&p| format!("{p}:{:.2}", stats.predicted_speedup(p)))
                .collect();
            println!("scalability/{gname}/{vname} predicted speedup {}", predicted.join(" "));

            let config = Config { collect_stats: false, techniques, ..Config::default() };
            for threads in THREAD_SWEEP {
                c.bench_function(&format!("scalability/{gname}/{vname}/t{threads}"), |b| {
                    // The pool lives outside the timing loop: iterations
                    // measure the decomposition, not thread spawn/join.
                    with_threads(threads, || {
                        b.iter(|| black_box(Decomposition::kcore(g).exact_config(config).run()))
                    })
                });
            }
        }
    }
}

/// Per-vertex frontier work: a neighbor scan whose cost is the vertex's
/// degree — heavily skewed on a power-law graph. Masked to 32 bits so
/// sums over the whole graph stay far from overflow.
#[inline]
fn scan_vertex(g: &CsrGraph, v: u32) -> u64 {
    let mut acc = v as u64;
    for &u in g.neighbors(v) {
        acc = acc.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(u as u64);
    }
    acc & 0xFFFF_FFFF
}

/// One static block, executed through the shim's own sequential drive
/// path: sub-2048 chunks are below the shim's inline threshold, so they
/// always run on the calling thread through the identical dyn-sink
/// iterator machinery. Both schedules therefore pay the same per-item
/// cost, and the comparison isolates *scheduling* — spawn-per-pass
/// static blocks vs the persistent stealing pool.
fn static_block_sum(g: &CsrGraph, lo: usize, hi: usize) -> u64 {
    let mut acc = 0u64;
    let mut a = lo;
    while a < hi {
        let b = (a + 2047).min(hi);
        let part: u64 = (a as u32..b as u32).into_par_iter().map(|v| scan_vertex(g, v)).sum();
        acc = acc.wrapping_add(part);
        a = b;
    }
    acc
}

/// The old shim's schedule, reproduced: per pass, spawn one scoped OS
/// thread per contiguous equal block. Hubs share a block, so the skew
/// serializes there; the spawn/join cost recurs every pass.
fn skewed_static(g: &CsrGraph, threads: usize) -> u64 {
    let n = g.num_vertices();
    let mut total = 0u64;
    for _ in 0..SKEW_PASSES {
        let chunk = n.div_ceil(threads);
        let blocks = n.div_ceil(chunk);
        let mut partials = vec![0u64; blocks];
        std::thread::scope(|s| {
            for (b, slot) in partials.iter_mut().enumerate() {
                let lo = b * chunk;
                let hi = ((b + 1) * chunk).min(n);
                s.spawn(move || *slot = static_block_sum(g, lo, hi));
            }
        });
        for p in &partials {
            total = total.wrapping_add(*p);
        }
    }
    total
}

/// The same computation on the work-stealing pool (installed by the
/// caller): one splittable task per pass, workers rebalance the hub
/// block by stealing.
fn skewed_stealing(g: &CsrGraph) -> u64 {
    let n = g.num_vertices() as u32;
    let mut total = 0u64;
    for _ in 0..SKEW_PASSES {
        let pass: u64 = (0..n).into_par_iter().map(|v| scan_vertex(g, v)).sum();
        total = total.wrapping_add(pass);
    }
    total
}

fn bench_skewed_frontier(c: &mut Criterion) {
    let g = gen::barabasi_albert(60_000, 8, 7);
    let expected = skewed_static(&g, 1);
    for threads in [2usize, 4] {
        c.bench_function(&format!("skewed-frontier/ba-60000/static-spawn/t{threads}"), |b| {
            b.iter(|| black_box(skewed_static(&g, threads)))
        });
        with_threads(threads, || {
            c.bench_function(&format!("skewed-frontier/ba-60000/stealing/t{threads}"), |b| {
                b.iter(|| black_box(skewed_stealing(&g)))
            });
        });
        // Same answer either way, and the balancing activity on record.
        let (check, delta) = scheduler_delta(|| with_threads(threads, || skewed_stealing(&g)));
        assert_eq!(check, expected, "schedules must agree on the result");
        println!(
            "skewed-frontier/ba-60000/t{threads} steals={} splits={}",
            delta.steals, delta.splits
        );
    }
}

criterion_group!(benches, bench_scalability, bench_skewed_frontier);
kcore_bench::bench_main!(benches);
