//! Configuration sweep: bucket strategy x statistics collection across
//! the standard suite — the grid the Tab. 3 "combination" rows come
//! from once sampling and VGC land.

use criterion::{black_box, criterion_group, Criterion};
use kcore::{BucketStrategy, Config, Decomposition};
use kcore_bench::standard_suite;

fn bench_combos(c: &mut Criterion) {
    let strategies = [BucketStrategy::Single, BucketStrategy::Adaptive];
    for bg in standard_suite() {
        for strategy in strategies {
            for collect_stats in [false, true] {
                let config = Config { collect_stats, ..Config::with_strategy(strategy) };
                let stats = if collect_stats { "stats" } else { "nostats" };
                c.bench_function(&format!("combos/{}/{strategy}/{stats}", bg.name), |b| {
                    b.iter(|| black_box(Decomposition::kcore(&bg.graph).config(config).run()))
                });
            }
        }
    }
}

criterion_group!(benches, bench_combos);
kcore_bench::bench_main!(benches);
