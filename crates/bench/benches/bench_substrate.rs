//! Substrate microbenchmarks: pack, scan, histogram, and the parallel
//! hash bag — the primitives whose constants dominate the peeling loop.

use criterion::{black_box, criterion_group, Criterion};
use kcore_parallel::histogram::{histogram_atomic, histogram_sort};
use kcore_parallel::primitives::{exclusive_scan, pack, pack_index};
use kcore_parallel::HashBag;

const N: usize = 1 << 16;

fn bench_pack(c: &mut Criterion) {
    let input: Vec<u32> = (0..N as u32).collect();
    c.bench_function("substrate/pack/even", |b| {
        b.iter(|| pack(black_box(&input), |&x| x % 2 == 0))
    });
    c.bench_function("substrate/pack_index/even", |b| {
        b.iter(|| pack_index(black_box(N), |i| i % 2 == 0))
    });
}

fn bench_scan(c: &mut Criterion) {
    let counts: Vec<usize> = (0..4096).map(|i| i % 7).collect();
    c.bench_function("substrate/exclusive_scan/4096", |b| {
        b.iter(|| exclusive_scan(black_box(&counts)))
    });
}

fn bench_histogram(c: &mut Criterion) {
    let keys: Vec<u32> = (0..N as u32).map(|i| i.wrapping_mul(2654435761) % 1024).collect();
    c.bench_function("substrate/histogram_sort", |b| {
        b.iter(|| histogram_sort(black_box(keys.clone())))
    });
    c.bench_function("substrate/histogram_atomic", |b| {
        b.iter(|| histogram_atomic(black_box(&keys), 1024))
    });
}

fn bench_hashbag(c: &mut Criterion) {
    c.bench_function("substrate/hashbag/insert_extract_64k", |b| {
        b.iter(|| {
            let mut bag = HashBag::new(N);
            for v in 0..N as u32 {
                bag.insert(v);
            }
            black_box(bag.extract_all())
        })
    });
}

criterion_group!(benches, bench_pack, bench_scan, bench_histogram, bench_hashbag);
kcore_bench::bench_main!(benches);
