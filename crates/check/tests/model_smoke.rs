//! Self-tests for the model checker, runnable under plain `cargo test`
//! (the instrumented `checked` types are always compiled; only the
//! facade aliasing is cfg-gated). Each test is a litmus shape with a
//! known verdict: correct synchronization must explore clean, and the
//! deliberately-weakened variant must produce a failure whose report
//! carries a replayable schedule — the same teeth the mutation harness
//! relies on for the ported primitives.

use kcore_check::checked::{
    fence, spin_loop, thread, Arc, AtomicBool, AtomicUsize, Condvar, Mutex, UnsafeCell,
};
use kcore_check::Checker;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};

/// Release-store / acquire-spin message passing: the payload write must
/// be visible once the flag is, including through a bounded spin loop
/// (which also exercises the scheduler's voluntary-yield points).
#[test]
fn message_passing_release_acquire_passes() {
    Checker::new().check(|| {
        let data = Arc::new(UnsafeCell::new(0u64));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (data.clone(), flag.clone());
        let t = thread::spawn(move || {
            d2.with_mut(|p| unsafe { *p = 42 });
            f2.store(true, Release);
        });
        while !flag.load(Acquire) {
            spin_loop();
        }
        let v = data.with(|p| unsafe { *p });
        assert_eq!(v, 42, "acquire load saw the flag but not the payload");
        t.join().unwrap();
    });
}

/// Same shape with a Relaxed flag: the payload read races the write,
/// and the checker must say so with a replayable schedule.
#[test]
fn message_passing_relaxed_fails() {
    let report = Checker::new().check_fails(|| {
        let data = Arc::new(UnsafeCell::new(0u64));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (data.clone(), flag.clone());
        let t = thread::spawn(move || {
            d2.with_mut(|p| unsafe { *p = 42 });
            f2.store(true, Relaxed);
        });
        while !flag.load(Relaxed) {
            spin_loop();
        }
        let _ = data.with(|p| unsafe { *p });
        t.join().unwrap();
    });
    assert!(report.contains("data race"), "unexpected report: {report}");
    assert!(report.contains("KCORE_CHECK_REPLAY"), "report lacks replay line: {report}");
}

/// Store-buffering litmus: with SeqCst on both sides, both threads
/// cannot read 0.
#[test]
fn store_buffering_seq_cst_passes() {
    Checker::new().check(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (x.clone(), y.clone());
        let t = thread::spawn(move || {
            x2.store(1, SeqCst);
            y2.load(SeqCst)
        });
        y.store(1, SeqCst);
        let r1 = x.load(SeqCst);
        let r2 = t.join().unwrap();
        assert!(r1 == 1 || r2 == 1, "store buffering under SeqCst: both threads read 0");
    });
}

/// The same litmus with Release/Acquire pairs genuinely allows the
/// r1 == r2 == 0 outcome; the checker must find it via its store
/// histories (i.e. it models weak memory, not just interleavings).
#[test]
fn store_buffering_release_acquire_fails() {
    let report = Checker::new().check_fails(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (x.clone(), y.clone());
        let t = thread::spawn(move || {
            x2.store(1, Release);
            y2.load(Acquire)
        });
        y.store(1, Release);
        let r1 = x.load(Acquire);
        let r2 = t.join().unwrap();
        assert!(r1 == 1 || r2 == 1, "observed store-buffering reordering");
    });
    assert!(report.contains("store-buffering"), "unexpected report: {report}");
}

/// SeqCst fences restore the SB guarantee even with Relaxed accesses.
#[test]
fn store_buffering_seq_cst_fences_pass() {
    Checker::new().check(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (x.clone(), y.clone());
        let t = thread::spawn(move || {
            x2.store(1, Relaxed);
            fence(SeqCst);
            y2.load(Relaxed)
        });
        y.store(1, Relaxed);
        fence(SeqCst);
        let r1 = x.load(Relaxed);
        let r2 = t.join().unwrap();
        assert!(r1 == 1 || r2 == 1, "store buffering despite SeqCst fences");
    });
}

/// Mutex mutual exclusion and happens-before: unsynchronized counter
/// updates under a lock must never lose increments.
#[test]
fn mutex_counter_passes() {
    Checker::new().check(|| {
        let n = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                thread::spawn(move || {
                    let mut g = n.lock().unwrap();
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 2);
    });
}

/// Condvar protocol done right: predicate checked under the mutex that
/// the notifier also holds — no schedule loses the wakeup.
#[test]
fn condvar_no_lost_wakeup_passes() {
    Checker::new().check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = thread::spawn(move || {
            let (m, cv) = (&p2.0, &p2.1);
            let mut g = m.lock().unwrap();
            *g = true;
            cv.notify_one();
        });
        let (m, cv) = (&pair.0, &pair.1);
        let mut g = m.lock().unwrap();
        while !*g {
            g = cv.wait(g).unwrap();
        }
        drop(g);
        t.join().unwrap();
    });
}

/// The classic lost wakeup: the flag lives outside the mutex, so the
/// notifier can fire between the waiter's check and its wait. The
/// checker must report the resulting deadlock.
#[test]
fn condvar_lost_wakeup_fails() {
    let report = Checker::new().check_fails(|| {
        let pair = Arc::new((Mutex::new(()), Condvar::new(), AtomicBool::new(false)));
        let p2 = pair.clone();
        let t = thread::spawn(move || {
            p2.2.store(true, SeqCst);
            p2.1.notify_one();
        });
        let g = pair.0.lock().unwrap();
        if !pair.2.load(SeqCst) {
            let _g = pair.1.wait(g).unwrap();
        }
        t.join().unwrap();
    });
    assert!(report.contains("deadlock"), "unexpected report: {report}");
}

/// Use-after-free detection: a thread touching the payload through a
/// raw pointer while the last Arc handle drops is the PR 3 latch shape.
#[test]
fn arc_use_after_free_fails() {
    let report = Checker::new().check_fails(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let p = &*a as *const AtomicUsize as usize;
        let t = thread::spawn(move || {
            // SAFETY: deliberately unsound — this models the buggy
            // protocol where the finisher touches a latch it does not
            // own; the checker must catch the dangling access.
            unsafe { (*(p as *const AtomicUsize)).store(1, Release) };
        });
        drop(a);
        t.join().unwrap();
    });
    assert!(report.contains("use-after-free"), "unexpected report: {report}");
}

/// Same shape but the thread owns a clone (the PR 3 fix): every
/// schedule is clean because the allocation outlives the access.
#[test]
fn arc_owned_access_passes() {
    Checker::new().check(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let a2 = a.clone();
        let t = thread::spawn(move || {
            a2.store(1, Release);
        });
        drop(a);
        t.join().unwrap();
    });
}

/// Deterministic replay: re-running with the failing schedule's choice
/// list reproduces the same failure immediately.
#[test]
fn replay_reproduces_failure() {
    fn racy() {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = x.clone();
        let t = thread::spawn(move || {
            let v = x2.load(Relaxed);
            x2.store(v + 1, Relaxed);
        });
        let v = x.load(Relaxed);
        x.store(v + 1, Relaxed);
        t.join().unwrap();
        assert_eq!(x.load(Relaxed), 2, "lost update");
    }
    let report = Checker::new().check_fails(racy);
    let line = report
        .lines()
        .find(|l| l.contains("KCORE_CHECK_REPLAY"))
        .expect("report has a replay line");
    let choices: Vec<usize> = line
        .split('"')
        .nth(1)
        .expect("quoted choice list")
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    // A fresh checker given only the replay prefix must fail on its
    // very first execution.
    let replayed = Checker::new().replay_prefix(choices).check_fails(racy);
    assert!(replayed.contains("lost update"), "replay diverged: {replayed}");
    assert!(replayed.contains("1 schedule"), "replay was not single-shot: {replayed}");
}
