//! `kcore-check` — first-party deterministic concurrency model checker
//! (in the spirit of loom/CDSChecker, no external dependencies) plus
//! the **sync facade** the workspace's lock-free primitives are written
//! against.
//!
//! # The facade
//!
//! Production code imports atomics, `UnsafeCell`, fences, spin hints,
//! and thread spawn/yield from [`sync`]/[`cell`]/[`hint`]/[`thread`]
//! here instead of `std`. In a normal build these are zero-cost
//! aliases (plain re-exports and `#[inline(always)]`
//! `#[repr(transparent)]` wrappers). Compiled with
//! `RUSTFLAGS="--cfg kcore_check"`, they route to the instrumented
//! [`checked`] types, which a [`Checker`] can then drive through every
//! interesting interleaving:
//!
//! ```text
//! RUSTFLAGS="--cfg kcore_check" cargo test -p rayon -p crossbeam -p kcore-obs
//! ```
//!
//! # The checker
//!
//! [`Checker::check`] runs a closure once per schedule under a
//! cooperative scheduler (bounded-exhaustive DFS with a CHESS-style
//! preemption bound and conflict-prioritized alternatives). Atomics
//! keep per-location store histories with release/acquire vector
//! clocks, so loads *observe* stale values that the memory model
//! permits — assertion failures, data races on `UnsafeCell`s,
//! use-after-free of retired [`checked::Arc`] allocations, deadlocks,
//! and lost wakeups all fail the execution, and the panic report
//! carries a replayable schedule (`KCORE_CHECK_REPLAY`).
//!
//! Knobs (env): `KCORE_CHECK_MAX_SCHEDULES` (default 20000),
//! `KCORE_CHECK_PREEMPTIONS` (default 3), `KCORE_CHECK_MAX_STEPS`
//! (default 50000), `KCORE_CHECK_REPLAY` (comma-separated choice list
//! from a failure report).
//!
//! # The mutation harness
//!
//! Each ported primitive names its load-bearing orderings through
//! [`mutate::ordering`] — e.g. the Chase–Lev publication fence is
//! `mutate::ordering("deque.push.publish", Ordering::Release)`. Under
//! `cfg(kcore_check)` a test can [`mutate::weaken`] one site to
//! `Relaxed`; the acceptance bar is that at least one model test then
//! fails for every site in the table, proving the checker actually
//! guards each contract. In normal builds `mutate::ordering` is an
//! `#[inline(always)]` passthrough of the default.

#![forbid(unsafe_op_in_unsafe_fn)]
// This crate *implements* the facade, so it is the one place allowed
// to name the raw std concurrency types the workspace lint gate bans.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

mod clock;
mod exec;
mod explore;

pub mod checked;

pub use explore::Checker;

/// Explores `f` with default bounds, panicking with a replayable
/// schedule on the first failing interleaving.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Checker::new().check(f)
}

/// Zero-cost (or instrumented, under `cfg(kcore_check)`) aliases of the
/// `std::sync` concurrency vocabulary. This is the only module
/// production code should import atomics and locks from.
pub mod sync {
    pub mod atomic {
        #[cfg(kcore_check)]
        pub use crate::checked::{
            fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
        };
        pub use std::sync::atomic::Ordering;
        #[cfg(not(kcore_check))]
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
        };
    }

    #[cfg(kcore_check)]
    pub use crate::checked::{Arc, Condvar, Mutex, MutexGuard};
    #[cfg(not(kcore_check))]
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard};
}

/// `UnsafeCell` with the loom-style `with`/`with_mut` access API, so
/// the same call sites are instrumentable under `cfg(kcore_check)`.
pub mod cell {
    #[cfg(kcore_check)]
    pub use crate::checked::UnsafeCell;

    #[cfg(not(kcore_check))]
    mod zero_cost {
        /// Transparent wrapper over [`std::cell::UnsafeCell`]; every
        /// method is an `#[inline(always)]` forwarder.
        #[derive(Debug, Default)]
        #[repr(transparent)]
        pub struct UnsafeCell<T: ?Sized>(std::cell::UnsafeCell<T>);

        // SAFETY: same contract as the std type it wraps; callers
        // uphold exclusion (and prove it under kcore_check).
        unsafe impl<T: ?Sized + Send> Send for UnsafeCell<T> {}
        unsafe impl<T: ?Sized + Send> Sync for UnsafeCell<T> {}

        impl<T> UnsafeCell<T> {
            #[inline(always)]
            pub const fn new(value: T) -> Self {
                Self(std::cell::UnsafeCell::new(value))
            }

            #[inline(always)]
            pub fn into_inner(self) -> T {
                self.0.into_inner()
            }
        }

        impl<T: ?Sized> UnsafeCell<T> {
            #[inline(always)]
            pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
                f(self.0.get())
            }

            #[inline(always)]
            pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
                f(self.0.get())
            }

            #[inline(always)]
            pub fn get_mut(&mut self) -> &mut T {
                // SAFETY: `&mut self` guarantees exclusivity.
                unsafe { &mut *self.0.get() }
            }
        }
    }
    #[cfg(not(kcore_check))]
    pub use zero_cost::UnsafeCell;
}

pub mod hint {
    #[cfg(kcore_check)]
    pub use crate::checked::spin_loop;
    #[cfg(not(kcore_check))]
    pub use std::hint::spin_loop;
}

pub mod thread {
    #[cfg(kcore_check)]
    pub use crate::checked::thread::{spawn, yield_now, Builder, JoinHandle};
    #[cfg(not(kcore_check))]
    pub use std::thread::{spawn, yield_now, Builder, JoinHandle};
}

/// Checker annotations for accesses whose correctness argument is not
/// plain happens-before. Zero-cost in normal builds.
pub mod annotate {
    /// Marks a *speculative* read: the Chase–Lev steal reads the slot
    /// before the `top` CAS confirms ownership, so the read may race a
    /// concurrent `take` — benign only because a losing CAS discards
    /// the value. Inside a model, a race observed in this scope is
    /// deferred instead of failing immediately.
    #[cfg(kcore_check)]
    pub fn speculative<R>(f: impl FnOnce() -> R) -> R {
        if let Some((e, t)) = crate::exec::current() {
            e.begin_speculation(t);
        }
        f()
    }

    /// Delivers the deferred verdict: `used == true` (the validating
    /// CAS succeeded) turns an observed race into a model failure;
    /// `used == false` discards it. Must follow every
    /// [`speculative`] scope on all paths.
    #[cfg(kcore_check)]
    pub fn commit_speculation(used: bool) {
        if let Some((e, t)) = crate::exec::current() {
            e.commit_speculation(t, used);
        }
    }

    #[cfg(not(kcore_check))]
    #[inline(always)]
    pub fn speculative<R>(f: impl FnOnce() -> R) -> R {
        f()
    }

    #[cfg(not(kcore_check))]
    #[inline(always)]
    pub fn commit_speculation(_used: bool) {}
}

/// Test-only ordering mutation table. Every load-bearing `Ordering` in
/// the ported primitives is declared through [`mutate::ordering`] with
/// a stable site name; [`mutate::weaken`] (only under
/// `cfg(kcore_check)`) downgrades one site to `Relaxed` for the
/// duration of a guard, and the model-test suite must then catch the
/// resulting bug.
///
/// Seeded sites:
///
/// | site | default | primitive |
/// |------|---------|-----------|
/// | `deque.push.publish`     | `Release` fence | Chase–Lev push → steal visibility |
/// | `deque.take.fence`       | `SeqCst` fence  | Chase–Lev take/steal arbitration |
/// | `segq.push.ready.release`| `Release` store | SegQueue slot publication |
/// | `segq.pop.ready.acquire` | `Acquire` load  | SegQueue slot consumption |
/// | `latch.done.release`     | `Release` store | latch completion publication |
/// | `latch.probe.acquire`    | `Acquire` load  | latch completion observation |
/// | `ring.push.pos.release`  | `Release` store | obs ring slot publication |
/// | `ring.drain.pos.acquire` | `Acquire` load  | obs ring drain |
pub mod mutate {
    use std::sync::atomic::Ordering;

    /// Resolves the effective ordering for a named site. Passthrough in
    /// normal builds; consults the weakened-site table under
    /// `cfg(kcore_check)`.
    #[cfg(not(kcore_check))]
    #[inline(always)]
    pub fn ordering(_site: &'static str, default: Ordering) -> Ordering {
        default
    }

    #[cfg(kcore_check)]
    pub fn ordering(site: &'static str, default: Ordering) -> Ordering {
        if state::is_weakened(site) {
            Ordering::Relaxed
        } else {
            default
        }
    }

    /// Downgrades `site` to `Relaxed` until the guard drops. Takes a
    /// process-global writer lock: explorations without a mutation hold
    /// the reader side, so a weakened site can never leak into an
    /// unrelated concurrently-running model test.
    #[cfg(kcore_check)]
    pub fn weaken(site: &'static str) -> MutationGuard {
        state::weaken(site)
    }

    #[cfg(kcore_check)]
    pub use state::MutationGuard;

    #[cfg(kcore_check)]
    pub(crate) mod state {
        use std::collections::HashSet;
        use std::sync::{Mutex, OnceLock, RwLock, RwLockWriteGuard};

        struct Table {
            gate: RwLock<()>,
            weakened: Mutex<HashSet<&'static str>>,
        }

        fn table() -> &'static Table {
            static T: OnceLock<Table> = OnceLock::new();
            T.get_or_init(|| Table { gate: RwLock::new(()), weakened: Mutex::new(HashSet::new()) })
        }

        thread_local! {
            static HOLDS_WRITE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
        }

        pub(crate) fn is_weakened(site: &'static str) -> bool {
            table().weakened.lock().unwrap_or_else(|p| p.into_inner()).contains(site)
        }

        /// Reader-side guard taken by every exploration not itself
        /// running under a mutation (see [`crate::explore`]).
        pub(crate) fn shared_guard() -> Option<std::sync::RwLockReadGuard<'static, ()>> {
            if HOLDS_WRITE.with(|h| h.get()) {
                None
            } else {
                Some(table().gate.read().unwrap_or_else(|p| p.into_inner()))
            }
        }

        pub struct MutationGuard {
            site: &'static str,
            _write: RwLockWriteGuard<'static, ()>,
        }

        pub(crate) fn weaken(site: &'static str) -> MutationGuard {
            let write = table().gate.write().unwrap_or_else(|p| p.into_inner());
            HOLDS_WRITE.with(|h| h.set(true));
            table().weakened.lock().unwrap_or_else(|p| p.into_inner()).insert(site);
            MutationGuard { site, _write: write }
        }

        impl Drop for MutationGuard {
            fn drop(&mut self) {
                table().weakened.lock().unwrap_or_else(|p| p.into_inner()).remove(self.site);
                HOLDS_WRITE.with(|h| h.set(false));
            }
        }
    }
}
