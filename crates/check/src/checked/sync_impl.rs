//! Instrumented `Mutex`/`Condvar`/`Arc`.
//!
//! * `Mutex`/`Condvar` wrap their `std` counterparts; inside a model,
//!   lock acquisition and condvar wait/notify are scheduling points
//!   with exact happens-before edges, and `wait` registration is atomic
//!   with the mutex release — so lost-wakeup windows are explorable.
//!   The real lock is only ever taken after the model has granted it,
//!   hence never contended inside a model.
//! * `Arc` keeps its own *instrumented* strong count beside the real
//!   one. When the modeled count hits zero the allocation's address
//!   range is retired: any later instrumented access to it fails the
//!   execution as a use-after-free — the exact shape of the PR 3 latch
//!   bug, where a waiter could free the job while the finisher was
//!   mid-`set`. (The backing memory is kept alive until the execution
//!   ends so retired-range checks can never misfire on reused
//!   addresses.)

use crate::checked::AtomicUsize;
use crate::exec;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering;
use std::sync::{LockResult, PoisonError};

pub struct Mutex<T: ?Sized> {
    real: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self { real: std::sync::Mutex::new(value) }
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    fn addr(&self) -> usize {
        self as *const Self as *const () as usize
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match exec::current() {
            Some((e, t)) => {
                e.mutex_lock(t, self.addr());
                // The model granted us the lock, so the real mutex is
                // free (and poisoning cannot happen inside a model:
                // panicking threads abort the whole execution).
                let real = self.real.lock().unwrap_or_else(|p| p.into_inner());
                Ok(MutexGuard { lock: self, real: Some(real) })
            }
            None => match self.real.lock() {
                Ok(real) => Ok(MutexGuard { lock: self, real: Some(real) }),
                Err(p) => {
                    Err(PoisonError::new(MutexGuard { lock: self, real: Some(p.into_inner()) }))
                }
            },
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        match self.real.get_mut() {
            Ok(v) => Ok(v),
            Err(p) => Err(PoisonError::new(p.into_inner())),
        }
    }

    pub fn into_inner(self) -> LockResult<T>
    where
        T: Sized,
    {
        match self.real.into_inner() {
            Ok(v) => Ok(v),
            Err(p) => Err(PoisonError::new(p.into_inner())),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    real: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.real.as_ref().unwrap()
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.real.as_mut().unwrap()
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before the model-unlock scheduling
        // point: while we are parked there, no other model thread can
        // be granted this mutex (the model still records it held).
        drop(self.real.take());
        if let Some((e, t)) = exec::current() {
            e.mutex_unlock(t, self.lock.addr());
        }
    }
}

pub struct Condvar {
    real: std::sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Self { real: std::sync::Condvar::new() }
    }

    #[inline]
    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match exec::current() {
            Some((e, t)) => {
                let lock = guard.lock;
                // Drop the real lock without running the guard's model
                // unlock: the wait op releases the model mutex
                // *atomically* with waiter registration, which is what
                // makes lost wakeups impossible to miss.
                drop(guard.real.take());
                std::mem::forget(guard);
                e.cond_wait(t, self.addr(), lock.addr());
                let real = lock.real.lock().unwrap_or_else(|p| p.into_inner());
                Ok(MutexGuard { lock, real: Some(real) })
            }
            None => {
                let lock = guard.lock;
                let real = guard.real.take().unwrap();
                std::mem::forget(guard);
                match self.real.wait(real) {
                    Ok(real) => Ok(MutexGuard { lock, real: Some(real) }),
                    Err(p) => {
                        Err(PoisonError::new(MutexGuard { lock, real: Some(p.into_inner()) }))
                    }
                }
            }
        }
    }

    pub fn notify_one(&self) {
        match exec::current() {
            Some((e, t)) => e.cond_notify(t, self.addr(), false),
            None => self.real.notify_one(),
        }
    }

    pub fn notify_all(&self) {
        match exec::current() {
            Some((e, t)) => e.cond_notify(t, self.addr(), true),
            None => self.real.notify_all(),
        }
    }
}

struct ArcBox<T> {
    refs: AtomicUsize,
    value: T,
}

pub struct Arc<T> {
    inner: std::sync::Arc<ArcBox<T>>,
}

impl<T> Arc<T> {
    pub fn new(value: T) -> Self {
        Self { inner: std::sync::Arc::new(ArcBox { refs: AtomicUsize::new(1), value }) }
    }

    pub fn ptr_eq(this: &Self, other: &Self) -> bool {
        std::sync::Arc::ptr_eq(&this.inner, &other.inner)
    }
}

impl<T> Deref for Arc<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner.value
    }
}

impl<T> Clone for Arc<T> {
    fn clone(&self) -> Self {
        // Same contract as std: cloning an existing handle needs no
        // ordering (the handle itself proves the count is nonzero).
        self.inner.refs.fetch_add(1, Ordering::Relaxed);
        Self { inner: self.inner.clone() }
    }
}

impl<T> Drop for Arc<T> {
    fn drop(&mut self) {
        // std's protocol: Release decrement, Acquire fence before
        // dropping the payload, so every handle's writes are visible to
        // the destructor.
        if self.inner.refs.fetch_sub(1, Ordering::Release) != 1 {
            return;
        }
        crate::checked::fence(Ordering::Acquire);
        if let Some((e, t)) = exec::current() {
            // Retire the allocation in the model and keep the memory
            // alive for the remainder of the execution: a forgotten
            // extra handle pins the real refcount above zero, so the
            // address range can never be recycled and confuse the
            // freed-range check. (Bounded leak, test-process only.)
            let lo = std::sync::Arc::as_ptr(&self.inner) as usize;
            let hi = lo + std::mem::size_of::<ArcBox<T>>();
            e.retire_range(t, lo, hi);
            std::mem::forget(self.inner.clone());
        }
    }
}
