//! Instrumented thread spawn/join/yield.
//!
//! Inside a model, `spawn` registers a *model thread* hosted on a real
//! OS thread under the cooperative scheduler: the spawn is a scheduling
//! point carrying the parent→child happens-before edge, and `join`
//! blocks the joiner (in the model sense — it stays schedulable only
//! once the target finished) and joins the child's clock. Outside a
//! model these are the plain `std::thread` calls.

use crate::exec::{self, Exec};
use std::sync::{Arc, Mutex};

pub fn yield_now() {
    match exec::current() {
        Some((e, t)) => e.yield_op(t, false),
        None => std::thread::yield_now(),
    }
}

enum Inner<T> {
    Real(std::thread::JoinHandle<T>),
    Model {
        exec: Arc<Exec>,
        target: usize,
        os: std::thread::JoinHandle<()>,
        slot: Arc<Mutex<Option<T>>>,
    },
}

pub struct JoinHandle<T> {
    inner: Inner<T>,
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Real(h) => h.join(),
            Inner::Model { exec, target, os, slot } => {
                let (_, tid) = exec::current()
                    .expect("joining a model thread from outside its model execution");
                // Parks until `target` finished; if the child panicked
                // the execution is already failing and this unwinds.
                exec.join_op(tid, target);
                let _ = os.join();
                let v = slot
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .take()
                    .expect("joined model thread left no result");
                Ok(v)
            }
        }
    }
}

pub struct Builder {
    real: std::thread::Builder,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

impl Builder {
    pub fn new() -> Self {
        Builder { real: std::thread::Builder::new() }
    }

    /// Only visible on the fallback path: model threads are named by
    /// the checker for panic-hook routing.
    pub fn name(mut self, name: String) -> Self {
        self.real = self.real.name(name);
        self
    }

    pub fn stack_size(mut self, size: usize) -> Self {
        self.real = self.real.stack_size(size);
        self
    }

    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match exec::current() {
            Some((e, t)) => {
                let child = e.spawn_child(t);
                let slot = Arc::new(Mutex::new(None));
                let out = slot.clone();
                let os = crate::explore::spawn_model_thread(e.clone(), child, move || {
                    let v = f();
                    *out.lock().unwrap_or_else(|p| p.into_inner()) = Some(v);
                });
                e.wait_thread_settled(child);
                Ok(JoinHandle { inner: Inner::Model { exec: e, target: child, os, slot } })
            }
            None => self.real.spawn(f).map(|h| JoinHandle { inner: Inner::Real(h) }),
        }
    }
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}
