//! Instrumented [`std::cell::UnsafeCell`] with a `with`/`with_mut`
//! access discipline (the loom API shape). Inside a model, every access
//! runs the vector-clock race detector; two accesses (at least one a
//! write) unordered by happens-before fail the execution. The
//! zero-cost facade alias in [`crate::sync`] exposes the same API, so
//! production code compiles identically either way.

use crate::exec;

#[derive(Debug, Default)]
pub struct UnsafeCell<T: ?Sized> {
    inner: std::cell::UnsafeCell<T>,
}

// Same unsafe contract as std's UnsafeCell-based types: the *user*
// promises exclusion; the checker exists to verify that promise.
unsafe impl<T: ?Sized + Send> Send for UnsafeCell<T> {}
unsafe impl<T: ?Sized + Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    pub const fn new(value: T) -> Self {
        Self { inner: std::cell::UnsafeCell::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> UnsafeCell<T> {
    #[inline]
    fn addr(&self) -> usize {
        self as *const Self as *const () as usize
    }

    /// Immutable (read) access. Races with unordered writes.
    #[inline]
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        if let Some((e, t)) = exec::current() {
            e.cell_access(t, self.addr(), false);
        }
        f(self.inner.get())
    }

    /// Mutable (write) access. Races with any unordered access.
    #[inline]
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        if let Some((e, t)) = exec::current() {
            e.cell_access(t, self.addr(), true);
        }
        f(self.inner.get())
    }

    /// Exclusive access through `&mut self`: statically race-free, not
    /// instrumented.
    pub fn get_mut(&mut self) -> &mut T {
        // SAFETY: `&mut self` guarantees exclusivity.
        unsafe { &mut *self.inner.get() }
    }
}
