//! Instrumented atomics. Each wraps the real `std` atomic; inside a
//! model, operations park at a scheduling point and run against the
//! location's store history (so loads can observe stale-but-coherent
//! values), and the newest modeled value is mirrored back into the real
//! atomic so `get_mut`/`into_inner`/`Drop` stay consistent at
//! quiescence. `compare_exchange_weak` never fails spuriously inside a
//! model (modeled as the strong variant; sound for bug *finding*).

use crate::exec;
use std::sync::atomic::Ordering;

macro_rules! checked_atomic_int {
    ($name:ident, $ty:ty) => {
        #[derive(Debug, Default)]
        pub struct $name {
            real: std::sync::atomic::$name,
        }

        impl $name {
            pub const fn new(v: $ty) -> Self {
                Self { real: std::sync::atomic::$name::new(v) }
            }

            #[inline]
            fn addr(&self) -> usize {
                self as *const Self as usize
            }

            #[inline]
            fn seed(&self) -> u64 {
                self.real.load(Ordering::Relaxed) as u64
            }

            pub fn load(&self, ord: Ordering) -> $ty {
                match exec::current() {
                    Some((e, t)) => e.atomic_load(t, self.addr(), ord, self.seed()) as $ty,
                    None => self.real.load(ord),
                }
            }

            pub fn store(&self, v: $ty, ord: Ordering) {
                match exec::current() {
                    Some((e, t)) => {
                        e.atomic_store(t, self.addr(), ord, v as u64, self.seed());
                        self.real.store(v, Ordering::Relaxed);
                    }
                    None => self.real.store(v, ord),
                }
            }

            pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, |_| v, |real| real.swap(v, ord))
            }

            pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, |old| old.wrapping_add(v), |real| real.fetch_add(v, ord))
            }

            pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, |old| old.wrapping_sub(v), |real| real.fetch_sub(v, ord))
            }

            pub fn fetch_or(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, |old| old | v, |real| real.fetch_or(v, ord))
            }

            pub fn fetch_and(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, |old| old & v, |real| real.fetch_and(v, ord))
            }

            pub fn fetch_max(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, |old| old.max(v), |real| real.fetch_max(v, ord))
            }

            pub fn fetch_min(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, |old| old.min(v), |real| real.fetch_min(v, ord))
            }

            #[inline]
            fn rmw(
                &self,
                ord: Ordering,
                f: impl FnOnce($ty) -> $ty,
                fallback: impl FnOnce(&std::sync::atomic::$name) -> $ty,
            ) -> $ty {
                match exec::current() {
                    Some((e, t)) => {
                        let (old, new) =
                            e.atomic_rmw(t, self.addr(), ord, self.seed(), |o| f(o as $ty) as u64);
                        self.real.store(new as $ty, Ordering::Relaxed);
                        old as $ty
                    }
                    None => fallback(&self.real),
                }
            }

            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                match exec::current() {
                    Some((e, t)) => {
                        let r = e.atomic_cas(
                            t,
                            self.addr(),
                            success,
                            failure,
                            current as u64,
                            new as u64,
                            self.seed(),
                        );
                        if r.is_ok() {
                            self.real.store(new, Ordering::Relaxed);
                        }
                        r.map(|x| x as $ty).map_err(|x| x as $ty)
                    }
                    None => self.real.compare_exchange(current, new, success, failure),
                }
            }

            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                match exec::current() {
                    Some(_) => self.compare_exchange(current, new, success, failure),
                    None => self.real.compare_exchange_weak(current, new, success, failure),
                }
            }

            /// std's CAS-loop shape, expressed through the instrumented
            /// load/CAS so every iteration is a scheduling point.
            pub fn fetch_update<F>(
                &self,
                set_order: Ordering,
                fetch_order: Ordering,
                mut f: F,
            ) -> Result<$ty, $ty>
            where
                F: FnMut($ty) -> Option<$ty>,
            {
                let mut prev = self.load(fetch_order);
                while let Some(next) = f(prev) {
                    match self.compare_exchange_weak(prev, next, set_order, fetch_order) {
                        Ok(x) => return Ok(x),
                        Err(next_prev) => prev = next_prev,
                    }
                }
                Err(prev)
            }

            pub fn get_mut(&mut self) -> &mut $ty {
                self.real.get_mut()
            }

            pub fn into_inner(self) -> $ty {
                self.real.into_inner()
            }
        }
    };
}

checked_atomic_int!(AtomicUsize, usize);
checked_atomic_int!(AtomicIsize, isize);
checked_atomic_int!(AtomicU8, u8);
checked_atomic_int!(AtomicU32, u32);
checked_atomic_int!(AtomicU64, u64);

#[derive(Debug, Default)]
pub struct AtomicBool {
    real: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    pub const fn new(v: bool) -> Self {
        Self { real: std::sync::atomic::AtomicBool::new(v) }
    }

    #[inline]
    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    #[inline]
    fn seed(&self) -> u64 {
        self.real.load(Ordering::Relaxed) as u64
    }

    pub fn load(&self, ord: Ordering) -> bool {
        match exec::current() {
            Some((e, t)) => e.atomic_load(t, self.addr(), ord, self.seed()) != 0,
            None => self.real.load(ord),
        }
    }

    pub fn store(&self, v: bool, ord: Ordering) {
        match exec::current() {
            Some((e, t)) => {
                e.atomic_store(t, self.addr(), ord, v as u64, self.seed());
                self.real.store(v, Ordering::Relaxed);
            }
            None => self.real.store(v, ord),
        }
    }

    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        match exec::current() {
            Some((e, t)) => {
                let (old, _) = e.atomic_rmw(t, self.addr(), ord, self.seed(), |_| v as u64);
                self.real.store(v, Ordering::Relaxed);
                old != 0
            }
            None => self.real.swap(v, ord),
        }
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        match exec::current() {
            Some((e, t)) => {
                let r = e.atomic_cas(
                    t,
                    self.addr(),
                    success,
                    failure,
                    current as u64,
                    new as u64,
                    self.seed(),
                );
                if r.is_ok() {
                    self.real.store(new, Ordering::Relaxed);
                }
                r.map(|x| x != 0).map_err(|x| x != 0)
            }
            None => self.real.compare_exchange(current, new, success, failure),
        }
    }

    pub fn get_mut(&mut self) -> &mut bool {
        self.real.get_mut()
    }

    pub fn into_inner(self) -> bool {
        self.real.into_inner()
    }
}

#[derive(Debug, Default)]
pub struct AtomicPtr<T> {
    real: std::sync::atomic::AtomicPtr<T>,
}

impl<T> AtomicPtr<T> {
    pub const fn new(p: *mut T) -> Self {
        Self { real: std::sync::atomic::AtomicPtr::new(p) }
    }

    #[inline]
    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    #[inline]
    fn seed(&self) -> u64 {
        self.real.load(Ordering::Relaxed) as usize as u64
    }

    pub fn load(&self, ord: Ordering) -> *mut T {
        match exec::current() {
            Some((e, t)) => e.atomic_load(t, self.addr(), ord, self.seed()) as usize as *mut T,
            None => self.real.load(ord),
        }
    }

    pub fn store(&self, p: *mut T, ord: Ordering) {
        match exec::current() {
            Some((e, t)) => {
                e.atomic_store(t, self.addr(), ord, p as usize as u64, self.seed());
                self.real.store(p, Ordering::Relaxed);
            }
            None => self.real.store(p, ord),
        }
    }

    pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
        match exec::current() {
            Some((e, t)) => {
                let (old, _) =
                    e.atomic_rmw(t, self.addr(), ord, self.seed(), |_| p as usize as u64);
                self.real.store(p, Ordering::Relaxed);
                old as usize as *mut T
            }
            None => self.real.swap(p, ord),
        }
    }

    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        match exec::current() {
            Some((e, t)) => {
                let r = e.atomic_cas(
                    t,
                    self.addr(),
                    success,
                    failure,
                    current as usize as u64,
                    new as usize as u64,
                    self.seed(),
                );
                if r.is_ok() {
                    self.real.store(new, Ordering::Relaxed);
                }
                r.map(|x| x as usize as *mut T).map_err(|x| x as usize as *mut T)
            }
            None => self.real.compare_exchange(current, new, success, failure),
        }
    }

    pub fn get_mut(&mut self) -> &mut *mut T {
        self.real.get_mut()
    }
}

/// Instrumented [`std::sync::atomic::fence`]. Inside a model it updates
/// the thread's fence clocks; outside, it emits the real fence — except
/// for `Relaxed`, which only a mutation-weakened site can produce and
/// which must order nothing (the real `fence(Relaxed)` panics).
pub fn fence(ord: Ordering) {
    match exec::current() {
        Some((e, t)) => e.fence(t, ord),
        None => {
            if ord != Ordering::Relaxed {
                std::sync::atomic::fence(ord);
            }
        }
    }
}
