//! Instrumented counterparts of the `std` concurrency vocabulary.
//!
//! Every type here routes its operations through the active model
//! execution ([`crate::exec`]) when one exists on the current thread,
//! and falls back to the real `std` behavior otherwise — so a binary
//! compiled against these types still runs correctly outside a model,
//! and the checker's own self-tests run under plain `cargo test`.
//!
//! Production code should not name this module: it uses the
//! [`crate::sync`] facade, which aliases `std` unless the build sets
//! `--cfg kcore_check`.

mod atomic;
mod cell;
mod sync_impl;
pub mod thread;

pub use atomic::{
    fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
};
pub use cell::UnsafeCell;
pub use sync_impl::{Arc, Condvar, Mutex, MutexGuard};

/// Instrumented [`std::hint::spin_loop`]: a voluntary scheduling point
/// inside a model, the real pause hint otherwise. Spin-wait loops MUST
/// go through this (or [`thread::yield_now`]) so bounded-spin loops
/// cannot livelock the model scheduler.
#[inline]
pub fn spin_loop() {
    match crate::exec::current() {
        Some((e, t)) => e.yield_op(t, true),
        None => std::hint::spin_loop(),
    }
}
