//! One controlled execution of a model: cooperative scheduling, vector
//! clocks, per-location metadata, and failure detection.
//!
//! Model threads are real OS threads, but at most one runs at a time:
//! every instrumented operation parks the thread at a *yield point*
//! (declaring the operation it is about to perform) and waits for the
//! scheduler to grant it. The scheduler — driven by
//! [`crate::explore::Checker`] — picks which parked thread proceeds,
//! consuming one *choice* per decision; the recorded choice string is
//! the replayable schedule printed on failure.
//!
//! Memory model (C11 approximation):
//! * Atomics keep a bounded history of stores, each carrying the value,
//!   the release clock it publishes, and the writer's epoch. A load may
//!   read any store not excluded by coherence (nothing older than a
//!   store already read by this thread, or than the newest store that
//!   happens-before the load). Multiple eligible stores become a choice
//!   point, so weakly-ordered code *observes* stale values and
//!   assertions catch the consequences. RMWs always read the newest
//!   store (C11 atomicity) and continue its release sequence.
//! * `SeqCst` is approximated by a global SC clock joined both ways at
//!   every `SeqCst` operation and fence — slightly stronger than C11,
//!   never weaker than acquire/release, so it cannot produce false
//!   alarms on correctly-`SeqCst` code.
//! * Non-atomic [`crate::checked::UnsafeCell`] accesses run a vector-
//!   clock race detector (FastTrack-style epochs); unsynchronized
//!   read/write pairs fail the execution unless inside an explicit
//!   [`crate::annotate::speculative`] scope whose value is discarded.
//! * [`crate::checked::Arc`] retirement marks the allocation's address
//!   range freed; any later instrumented access in the range is a
//!   use-after-free failure (the PR 3 latch bug shape).

use crate::clock::{Epoch, VClock};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};

/// Stale-store window: loads choose among at most this many trailing
/// stores of a location's history (newest always eligible).
pub(crate) const HISTORY: usize = 3;

/// Panic payload used to unwind model threads when an execution aborts
/// (failure found or exploration pruned). Never escapes the checker.
pub(crate) struct AbortExecution;

/// What a parked thread wants to do next. The scheduler interprets this
/// for enabled-ness (blocking) and conflict-based preemption pruning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Op {
    AtomicLoad { addr: usize },
    AtomicStore { addr: usize },
    AtomicRmw { addr: usize },
    Fence,
    CellRead { addr: usize },
    CellWrite { addr: usize },
    MutexLock { addr: usize },
    MutexUnlock { addr: usize },
    CondWait { addr: usize },
    CondNotify { addr: usize },
    Yield { spin: bool },
    Spawn,
    Join { target: usize },
}

impl Op {
    fn addr(&self) -> Option<usize> {
        match *self {
            Op::AtomicLoad { addr }
            | Op::AtomicStore { addr }
            | Op::AtomicRmw { addr }
            | Op::CellRead { addr }
            | Op::CellWrite { addr }
            | Op::MutexLock { addr }
            | Op::MutexUnlock { addr }
            | Op::CondWait { addr }
            | Op::CondNotify { addr } => Some(addr),
            _ => None,
        }
    }

    fn is_write_like(&self) -> bool {
        matches!(
            self,
            Op::AtomicStore { .. }
                | Op::AtomicRmw { .. }
                | Op::CellWrite { .. }
                | Op::MutexLock { .. }
                | Op::MutexUnlock { .. }
                | Op::CondWait { .. }
                | Op::CondNotify { .. }
        )
    }

    /// Would running `other` before/after `self` change anything?
    /// Used to prune preemption points (DPOR-lite persistent sets).
    fn conflicts(&self, other: &Op) -> bool {
        if matches!(self, Op::Fence) || matches!(other, Op::Fence) {
            return true;
        }
        match (self.addr(), other.addr()) {
            (Some(a), Some(b)) => a == b && (self.is_write_like() || other.is_write_like()),
            _ => false,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    /// Between grant and next yield point (or still in its spawn
    /// prefix); exactly one thread at a time outside of spawn windows.
    Running,
    /// At a yield point with `pending` declared, awaiting grant.
    Parked,
    /// In a condvar wait, not schedulable until notified.
    Sleeping,
    Finished,
}

pub(crate) struct ThreadState {
    pub(crate) status: Status,
    pub(crate) pending: Option<Op>,
    /// Ops performed; `clock[self] == count`.
    count: u64,
    pub(crate) clock: VClock,
    /// Release clocks of stores read by relaxed loads since the last
    /// acquire fence.
    pending_acquire: VClock,
    /// Clock snapshot at the last release fence.
    fence_release: Option<VClock>,
    /// Active speculative scope: `Some(racy_so_far)`.
    spec: Option<bool>,
}

impl ThreadState {
    fn new(clock: VClock) -> Self {
        ThreadState {
            status: Status::Running,
            pending: None,
            count: 0,
            clock,
            pending_acquire: VClock::new(),
            fence_release: None,
            spec: None,
        }
    }

    fn epoch(&self) -> Epoch {
        Epoch { tid: usize::MAX, count: self.count } // tid patched by caller
    }
}

#[derive(Clone)]
struct Store {
    value: u64,
    /// Clock an acquire-load of this store synchronizes with.
    release: VClock,
    epoch: Epoch,
}

struct AtomicLoc {
    stores: Vec<Store>,
    /// Newest store index each thread has read or written (coherence).
    last_read: HashMap<usize, usize>,
    /// Per-thread `(last store read, consecutive repeats)`: after a
    /// thread re-reads the same store twice, later loads must observe
    /// something newer — C11's eventual-visibility expectation, and
    /// what keeps spin-wait loops from looping (and the DFS tree from
    /// growing) forever on one stale value.
    streaks: HashMap<usize, (usize, u32)>,
}

#[derive(Default)]
struct CellLoc {
    last_write: Option<Epoch>,
    reads: Vec<Epoch>,
}

#[derive(Default)]
struct MutexLoc {
    held_by: Option<usize>,
    clock: VClock,
}

#[derive(Default)]
struct CondvarLoc {
    /// `(tid, mutex address to re-acquire)`.
    waiters: Vec<(usize, usize)>,
}

enum LocKind {
    Atomic(AtomicLoc),
    Cell(CellLoc),
    Mutex(MutexLoc),
    Condvar(CondvarLoc),
}

struct Location {
    kind: LocKind,
    freed: bool,
}

pub(crate) struct ExecState {
    pub(crate) threads: Vec<ThreadState>,
    locations: HashMap<usize, Location>,
    freed_ranges: Vec<(usize, usize)>,
    /// Global SC-order clock (SeqCst approximation).
    sc: VClock,
    /// Choice stream: replay prefix, then defaults; every multi-way
    /// decision appends `(chosen, alternatives)`.
    prefix: Vec<usize>,
    cursor: usize,
    pub(crate) log: Vec<(usize, usize)>,
    pub(crate) failure: Option<String>,
    pub(crate) aborting: bool,
    preemptions_left: usize,
    last_running: Option<usize>,
    steps: usize,
    max_steps: usize,
    tracing: bool,
    pub(crate) trace: Vec<String>,
}

impl ExecState {
    fn choose(&mut self, alternatives: usize) -> usize {
        if alternatives <= 1 {
            return 0;
        }
        let c = if self.cursor < self.prefix.len() { self.prefix[self.cursor] } else { 0 };
        debug_assert!(c < alternatives, "replay prefix diverged");
        self.cursor += 1;
        self.log.push((c, alternatives));
        c
    }

    pub(crate) fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
        self.aborting = true;
    }

    fn trace_op(&mut self, tid: usize, text: impl FnOnce() -> String) {
        if self.tracing {
            self.trace.push(format!("T{tid}: {}", text()));
        }
    }

    fn check_freed(&mut self, tid: usize, addr: usize) -> bool {
        let freed = self.locations.get(&addr).map(|l| l.freed).unwrap_or(false)
            || self.freed_ranges.iter().any(|&(lo, hi)| addr >= lo && addr < hi);
        if freed {
            self.fail(format!(
                "use-after-free: T{tid} touched freed location {addr:#x} \
                 (retired allocation still referenced)"
            ));
        }
        freed
    }

    fn atomic_loc(&mut self, addr: usize, seed: u64) -> &mut AtomicLoc {
        let loc = self.locations.entry(addr).or_insert_with(|| Location {
            kind: LocKind::Atomic(AtomicLoc {
                stores: vec![Store { value: seed, release: VClock::new(), epoch: Epoch::ZERO }],
                last_read: HashMap::new(),
                streaks: HashMap::new(),
            }),
            freed: false,
        });
        match &mut loc.kind {
            LocKind::Atomic(a) => a,
            _ => panic!("kcore-check: location {addr:#x} used as two different kinds"),
        }
    }

    fn epoch_of(&self, tid: usize) -> Epoch {
        let mut e = self.threads[tid].epoch();
        e.tid = tid;
        e
    }
}

/// Shared state of one execution. Model threads and the scheduler
/// rendezvous through `state` + `cv`.
pub(crate) struct Exec {
    pub(crate) state: Mutex<ExecState>,
    pub(crate) cv: Condvar,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Exec>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The executing model thread's context, if any. Instrumented types
/// fall back to their real `std` behavior when this is `None`, so code
/// compiled against the checked facade still works outside a model.
pub(crate) fn current() -> Option<(Arc<Exec>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(ctx: Option<(Arc<Exec>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

impl Exec {
    pub(crate) fn new(
        prefix: Vec<usize>,
        preemptions: usize,
        max_steps: usize,
        tracing: bool,
    ) -> Self {
        Exec {
            state: Mutex::new(ExecState {
                threads: Vec::new(),
                locations: HashMap::new(),
                freed_ranges: Vec::new(),
                sc: VClock::new(),
                prefix,
                cursor: 0,
                log: Vec::new(),
                failure: None,
                aborting: false,
                preemptions_left: preemptions,
                last_running: None,
                steps: 0,
                max_steps,
                tracing,
                trace: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a new model thread (status `Running`) and returns its
    /// tid. `parent` — if any — donates its clock (spawn edge).
    pub(crate) fn add_thread(&self, parent: Option<usize>) -> usize {
        let mut st = self.lock();
        let clock = match parent {
            Some(p) => st.threads[p].clock.clone(),
            None => VClock::new(),
        };
        let tid = st.threads.len();
        st.threads.push(ThreadState::new(clock));
        tid
    }

    /// Blocks until `tid` has parked, slept, or finished — used by the
    /// spawn op so the scheduler never races a starting thread.
    pub(crate) fn wait_thread_settled(&self, tid: usize) {
        let mut st = self.lock();
        while st.threads[tid].status == Status::Running {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    pub(crate) fn finish_thread(&self, tid: usize, panic_msg: Option<String>) {
        let mut st = self.lock();
        st.threads[tid].status = Status::Finished;
        if let Some(msg) = panic_msg {
            let sched = st.log.iter().map(|&(c, _)| c).collect::<Vec<_>>();
            st.fail(format!("model thread T{tid} panicked: {msg} (schedule {sched:?})"));
        }
        self.cv.notify_all();
    }

    /// Parks at a yield point declaring `op`, waits for the grant, then
    /// applies `effect` under the state lock. This is the only path by
    /// which instrumented operations execute inside a model.
    pub(crate) fn run_op<R>(
        &self,
        tid: usize,
        op: Op,
        effect: impl FnOnce(&mut ExecState, usize) -> R,
    ) -> R {
        let mut st = self.lock();
        if st.aborting {
            // Unwinding threads still run instrumented ops from Drop
            // impls (guards, Arcs). Panicking again here would be a
            // double panic; apply the effect unscheduled instead — the
            // execution's verdict is already decided.
            if std::thread::panicking() {
                st.threads[tid].count += 1;
                let c = st.threads[tid].count;
                st.threads[tid].clock.set(tid, c);
                return effect(&mut st, tid);
            }
            drop(st);
            std::panic::panic_any(AbortExecution);
        }
        st.threads[tid].pending = Some(op);
        st.threads[tid].status = Status::Parked;
        self.cv.notify_all();
        while st.threads[tid].status == Status::Parked {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.aborting && !std::thread::panicking() {
            drop(st);
            std::panic::panic_any(AbortExecution);
        }
        st.threads[tid].pending = None;
        st.threads[tid].count += 1;
        let c = st.threads[tid].count;
        st.threads[tid].clock.set(tid, c);
        let r = effect(&mut st, tid);
        if st.failure.is_some() && !std::thread::panicking() {
            self.cv.notify_all();
            drop(st);
            std::panic::panic_any(AbortExecution);
        }
        r
    }

    // ---- scheduler -----------------------------------------------------

    /// Drives the execution to completion: grants one parked thread at a
    /// time until every thread finished, a failure was recorded, or a
    /// bound tripped. Must be called off-model (the controlling thread).
    pub(crate) fn schedule(&self) {
        loop {
            let mut st = self.lock();
            while st.threads.iter().any(|t| t.status == Status::Running) {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if st.aborting {
                drop(st);
                self.drain();
                return;
            }
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                return;
            }
            let enabled: Vec<usize> = (0..st.threads.len())
                .filter(|&t| st.threads[t].status == Status::Parked && self.is_enabled(&st, t))
                .collect();
            if enabled.is_empty() {
                let blocked: Vec<String> = (0..st.threads.len())
                    .filter(|&t| st.threads[t].status != Status::Finished)
                    .map(|t| format!("T{t}:{:?}", st.threads[t].pending))
                    .collect();
                st.fail(format!("deadlock: no runnable thread ({})", blocked.join(", ")));
                drop(st);
                self.drain();
                return;
            }
            st.steps += 1;
            if st.steps > st.max_steps {
                let bound = st.max_steps;
                st.fail(format!(
                    "step bound {bound} exceeded: livelock, or raise KCORE_CHECK_MAX_STEPS"
                ));
                drop(st);
                self.drain();
                return;
            }
            let (candidates, preemptive) = self.candidates(&st, &enabled);
            let idx = st.choose(candidates.len());
            let chosen = candidates[idx];
            if preemptive && Some(chosen) != st.last_running && idx > 0 {
                st.preemptions_left = st.preemptions_left.saturating_sub(1);
            }
            st.last_running = Some(chosen);
            st.threads[chosen].status = Status::Running;
            self.cv.notify_all();
        }
    }

    fn is_enabled(&self, st: &ExecState, tid: usize) -> bool {
        match st.threads[tid].pending {
            Some(Op::MutexLock { addr }) => match st.locations.get(&addr).map(|l| &l.kind) {
                Some(LocKind::Mutex(m)) => m.held_by.is_none(),
                _ => true,
            },
            Some(Op::Join { target }) => st.threads[target].status == Status::Finished,
            _ => true,
        }
    }

    /// Ordered candidate list for the next grant, plus whether picking
    /// a non-first entry costs a preemption (CHESS-style preemption
    /// bounding). The last-running thread continues by default (choice
    /// 0); other enabled threads are alternatives, ordered so that
    /// threads whose pending operation *conflicts* with the current
    /// one come first — the DPOR-lite heuristic that surfaces racy
    /// interleavings early within the schedule budget. Switching away
    /// from a thread parked on `yield`/`spin_loop` is voluntary (free):
    /// those are exactly the points where spin-wait loops invite the
    /// scheduler in, so they never burn the preemption budget.
    fn candidates(&self, st: &ExecState, enabled: &[usize]) -> (Vec<usize>, bool) {
        let cur = st.last_running.filter(|&c| enabled.contains(&c));
        let Some(cur) = cur else {
            return (enabled.to_vec(), false);
        };
        let others = |first_conflicting: bool| -> Vec<usize> {
            let cur_op = st.threads[cur].pending.clone();
            let mut conflicting = Vec::new();
            let mut rest = Vec::new();
            for &t in enabled {
                if t == cur {
                    continue;
                }
                let conflict = match (&cur_op, &st.threads[t].pending) {
                    (Some(a), Some(b)) => a.conflicts(b),
                    _ => true,
                };
                if conflict && first_conflicting {
                    conflicting.push(t);
                } else {
                    rest.push(t);
                }
            }
            conflicting.extend(rest);
            conflicting
        };
        if matches!(st.threads[cur].pending, Some(Op::Yield { .. })) {
            // Voluntary switch point: hand the schedule to someone
            // else. Immediately continuing the yielding thread is never
            // a candidate here — re-running a spinner with unchanged
            // state only deepens the tree — but it stays reachable as a
            // (budgeted) preemption alternative at later decisions, so
            // spin iterations interleaved with the other threads' ops
            // are still explored, just boundedly.
            let cands = others(true);
            if cands.is_empty() {
                return (vec![cur], false);
            }
            return (cands, false);
        }
        let mut cands = vec![cur];
        if st.preemptions_left > 0 {
            cands.extend(others(true));
        }
        (cands, true)
    }

    /// Aborts every live thread so their stacks unwind, then waits for
    /// them to finish.
    fn drain(&self) {
        let mut st = self.lock();
        st.aborting = true;
        loop {
            for t in 0..st.threads.len() {
                if matches!(st.threads[t].status, Status::Parked | Status::Sleeping) {
                    st.threads[t].status = Status::Running;
                }
            }
            self.cv.notify_all();
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    // ---- atomic operations ---------------------------------------------

    pub(crate) fn atomic_load(&self, tid: usize, addr: usize, ord: Ordering, seed: u64) -> u64 {
        self.run_op(tid, Op::AtomicLoad { addr }, |st, tid| {
            if st.check_freed(tid, addr) {
                return 0;
            }
            if ord == Ordering::SeqCst {
                let sc = st.sc.clone();
                st.threads[tid].clock.join(&sc);
            }
            st.atomic_loc(addr, seed);
            let clock = st.threads[tid].clock.clone();
            let LocKind::Atomic(loc) = &mut st.locations.get_mut(&addr).unwrap().kind else {
                unreachable!()
            };
            let n = loc.stores.len();
            let mut min_mo = loc.last_read.get(&tid).copied().unwrap_or(0);
            for (i, s) in loc.stores.iter().enumerate() {
                if clock.covers(s.epoch.tid, s.epoch.count) {
                    min_mo = min_mo.max(i);
                }
            }
            if let Some(&(last_pick, streak)) = loc.streaks.get(&tid) {
                if streak >= 2 && last_pick + 1 < n {
                    min_mo = min_mo.max(last_pick + 1);
                }
            }
            let lo = min_mo.max(n.saturating_sub(HISTORY));
            let alternatives = n - lo;
            // Default choice 0 = the newest store (SC-like baseline);
            // choice k reads the k-th-newest eligible store.
            let pick_offset = st.choose(alternatives);
            let pick = n - 1 - pick_offset;
            let LocKind::Atomic(loc) = &mut st.locations.get_mut(&addr).unwrap().kind else {
                unreachable!()
            };
            let store = loc.stores[pick].clone();
            loc.last_read.insert(tid, pick);
            let streak = match loc.streaks.get(&tid) {
                Some(&(p, s)) if p == pick => s + 1,
                _ => 1,
            };
            loc.streaks.insert(tid, (pick, streak));
            if ord == Ordering::Acquire || ord == Ordering::AcqRel || ord == Ordering::SeqCst {
                st.threads[tid].clock.join(&store.release);
            } else {
                st.threads[tid].pending_acquire.join(&store.release);
            }
            if ord == Ordering::SeqCst {
                let clock = st.threads[tid].clock.clone();
                st.sc.join(&clock);
            }
            st.trace_op(tid, || {
                format!("atomic load {addr:#x} ({ord:?}) = {} [store {pick}/{n}]", store.value)
            });
            store.value
        })
    }

    pub(crate) fn atomic_store(
        &self,
        tid: usize,
        addr: usize,
        ord: Ordering,
        value: u64,
        seed: u64,
    ) {
        self.run_op(tid, Op::AtomicStore { addr }, |st, tid| {
            if st.check_freed(tid, addr) {
                return;
            }
            if ord == Ordering::SeqCst {
                let sc = st.sc.clone();
                st.threads[tid].clock.join(&sc);
            }
            let epoch = st.epoch_of(tid);
            let release = release_clock(st, tid, ord);
            st.atomic_loc(addr, seed);
            let LocKind::Atomic(loc) = &mut st.locations.get_mut(&addr).unwrap().kind else {
                unreachable!()
            };
            loc.stores.push(Store { value, release, epoch });
            let newest = loc.stores.len() - 1;
            loc.last_read.insert(tid, newest);
            if ord == Ordering::SeqCst {
                let clock = st.threads[tid].clock.clone();
                st.sc.join(&clock);
            }
            st.trace_op(tid, || format!("atomic store {addr:#x} ({ord:?}) = {value}"));
        })
    }

    /// Read-modify-write: applies `f` to the newest store's value.
    /// Returns `(old, new)`.
    pub(crate) fn atomic_rmw(
        &self,
        tid: usize,
        addr: usize,
        ord: Ordering,
        seed: u64,
        f: impl FnOnce(u64) -> u64,
    ) -> (u64, u64) {
        self.run_op(tid, Op::AtomicRmw { addr }, |st, tid| {
            if st.check_freed(tid, addr) {
                return (0, 0);
            }
            rmw_effect(st, tid, addr, ord, ord, seed, |old| Some(f(old))).unwrap_or((0, 0))
        })
    }

    /// Compare-and-swap against the newest store. `Ok(old)` on success,
    /// `Err(actual)` on failure.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn atomic_cas(
        &self,
        tid: usize,
        addr: usize,
        success: Ordering,
        failure: Ordering,
        expect: u64,
        new: u64,
        seed: u64,
    ) -> Result<u64, u64> {
        self.run_op(tid, Op::AtomicRmw { addr }, |st, tid| {
            if st.check_freed(tid, addr) {
                return Err(0);
            }
            match rmw_effect(st, tid, addr, success, failure, seed, |old| {
                (old == expect).then_some(new)
            }) {
                Some((old, _)) => Ok(old),
                None => {
                    let LocKind::Atomic(loc) = &st.locations.get(&addr).unwrap().kind else {
                        unreachable!()
                    };
                    Err(loc.stores.last().unwrap().value)
                }
            }
        })
    }

    pub(crate) fn fence(&self, tid: usize, ord: Ordering) {
        self.run_op(tid, Op::Fence, |st, tid| {
            match ord {
                Ordering::Acquire => {
                    let pa = std::mem::take(&mut st.threads[tid].pending_acquire);
                    st.threads[tid].clock.join(&pa);
                }
                Ordering::Release => {
                    st.threads[tid].fence_release = Some(st.threads[tid].clock.clone());
                }
                Ordering::AcqRel => {
                    let pa = std::mem::take(&mut st.threads[tid].pending_acquire);
                    st.threads[tid].clock.join(&pa);
                    st.threads[tid].fence_release = Some(st.threads[tid].clock.clone());
                }
                Ordering::SeqCst => {
                    let pa = std::mem::take(&mut st.threads[tid].pending_acquire);
                    st.threads[tid].clock.join(&pa);
                    let sc = st.sc.clone();
                    st.threads[tid].clock.join(&sc);
                    let clock = st.threads[tid].clock.clone();
                    st.sc.join(&clock);
                    st.threads[tid].fence_release = Some(st.threads[tid].clock.clone());
                }
                // A mutation-weakened fence: orders nothing.
                _ => {}
            }
            st.trace_op(tid, || format!("fence ({ord:?})"));
        })
    }

    // ---- non-atomic cells ----------------------------------------------

    pub(crate) fn cell_access(&self, tid: usize, addr: usize, write: bool) {
        let op = if write { Op::CellWrite { addr } } else { Op::CellRead { addr } };
        self.run_op(tid, op, |st, tid| {
            if st.check_freed(tid, addr) {
                return;
            }
            let epoch = st.epoch_of(tid);
            let loc = st.locations.entry(addr).or_insert_with(|| Location {
                kind: LocKind::Cell(CellLoc::default()),
                freed: false,
            });
            let LocKind::Cell(cell) = &mut loc.kind else {
                panic!("kcore-check: location {addr:#x} used as two different kinds")
            };
            let mut race_with: Option<Epoch> = None;
            if let Some(w) = cell.last_write {
                if w.tid != tid && !st.threads[tid].clock.covers(w.tid, w.count) {
                    race_with = Some(w);
                }
            }
            if write {
                for &r in &cell.reads {
                    if r.tid != tid && !st.threads[tid].clock.covers(r.tid, r.count) {
                        race_with = Some(r);
                    }
                }
            }
            let LocKind::Cell(cell) = &mut st.locations.get_mut(&addr).unwrap().kind else {
                unreachable!()
            };
            if write {
                cell.last_write = Some(epoch);
                cell.reads.clear();
            } else {
                cell.reads.push(epoch);
            }
            if let Some(other) = race_with {
                if let Some(spec) = st.threads[tid].spec.as_mut() {
                    *spec = true;
                    st.trace_op(tid, || {
                        format!(
                            "cell {} {addr:#x} races T{} (speculative, pending validation)",
                            if write { "write" } else { "read" },
                            other.tid
                        )
                    });
                } else {
                    st.fail(format!(
                        "data race: T{tid} {} of {addr:#x} is unordered with T{}'s access \
                         (missing release/acquire edge)",
                        if write { "non-atomic write" } else { "non-atomic read" },
                        other.tid
                    ));
                }
            } else {
                st.trace_op(tid, || {
                    format!("cell {} {addr:#x}", if write { "write" } else { "read" })
                });
            }
        })
    }

    /// Opens a speculative scope: races on cell accesses inside it are
    /// deferred until [`Exec::commit_speculation`].
    #[cfg_attr(not(kcore_check), allow(dead_code))]
    pub(crate) fn begin_speculation(&self, tid: usize) {
        let mut st = self.lock();
        st.threads[tid].spec = Some(false);
    }

    /// Closes the scope. `used == true` means the speculatively read
    /// value was acted upon, so a deferred race becomes a failure;
    /// `used == false` discards it (the crossbeam benign-race argument:
    /// a value whose CAS lost is never used).
    #[cfg_attr(not(kcore_check), allow(dead_code))]
    pub(crate) fn commit_speculation(&self, tid: usize, used: bool) {
        let mut st = self.lock();
        let racy = st.threads[tid].spec.take().unwrap_or(false);
        if racy && used {
            st.fail(format!(
                "speculative racy read on T{tid} was committed: the validating CAS \
                 succeeded even though the read was unordered with a writer"
            ));
            self.cv.notify_all();
            drop(st);
            std::panic::panic_any(AbortExecution);
        }
    }

    // ---- blocking primitives -------------------------------------------

    pub(crate) fn mutex_lock(&self, tid: usize, addr: usize) {
        self.run_op(tid, Op::MutexLock { addr }, |st, tid| {
            if st.check_freed(tid, addr) {
                return;
            }
            let loc = st.locations.entry(addr).or_insert_with(|| Location {
                kind: LocKind::Mutex(MutexLoc::default()),
                freed: false,
            });
            let LocKind::Mutex(m) = &mut loc.kind else {
                panic!("kcore-check: location {addr:#x} used as two different kinds")
            };
            assert!(m.held_by.is_none(), "scheduler granted lock of a held mutex");
            m.held_by = Some(tid);
            let mclock = m.clock.clone();
            st.threads[tid].clock.join(&mclock);
            st.trace_op(tid, || format!("mutex lock {addr:#x}"));
        })
    }

    pub(crate) fn mutex_unlock(&self, tid: usize, addr: usize) {
        self.run_op(tid, Op::MutexUnlock { addr }, |st, tid| {
            if st.check_freed(tid, addr) {
                return;
            }
            let clock = st.threads[tid].clock.clone();
            if let Some(Location { kind: LocKind::Mutex(m), .. }) = st.locations.get_mut(&addr) {
                m.held_by = None;
                m.clock.join(&clock);
            }
            st.trace_op(tid, || format!("mutex unlock {addr:#x}"));
        })
    }

    /// Condvar wait: atomically releases `mutex_addr` and sleeps; on
    /// notify, re-acquires before returning (the grant for the
    /// re-acquisition is a normal scheduling decision).
    pub(crate) fn cond_wait(&self, tid: usize, cv_addr: usize, mutex_addr: usize) {
        self.run_op(tid, Op::CondWait { addr: cv_addr }, |st, tid| {
            st.check_freed(tid, cv_addr);
            let clock = st.threads[tid].clock.clone();
            if let Some(Location { kind: LocKind::Mutex(m), .. }) =
                st.locations.get_mut(&mutex_addr)
            {
                m.held_by = None;
                m.clock.join(&clock);
            }
            let loc = st.locations.entry(cv_addr).or_insert_with(|| Location {
                kind: LocKind::Condvar(CondvarLoc::default()),
                freed: false,
            });
            let LocKind::Condvar(cv) = &mut loc.kind else {
                panic!("kcore-check: location {cv_addr:#x} used as two different kinds")
            };
            cv.waiters.push((tid, mutex_addr));
            st.trace_op(tid, || format!("cond wait {cv_addr:#x} (released {mutex_addr:#x})"));
        });
        // Sleep until a notify converts us back to Parked(MutexLock) and
        // the scheduler grants the re-acquisition.
        let mut st = self.lock();
        st.threads[tid].status = Status::Sleeping;
        self.cv.notify_all();
        while st.threads[tid].status != Status::Running {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.aborting && !std::thread::panicking() {
            drop(st);
            std::panic::panic_any(AbortExecution);
        }
        // Granted the re-acquire: apply MutexLock effects inline.
        st.threads[tid].pending = None;
        st.threads[tid].count += 1;
        let c = st.threads[tid].count;
        st.threads[tid].clock.set(tid, c);
        if let Some(Location { kind: LocKind::Mutex(m), .. }) = st.locations.get_mut(&mutex_addr) {
            assert!(m.held_by.is_none(), "scheduler granted re-lock of a held mutex");
            m.held_by = Some(tid);
            let mclock = m.clock.clone();
            st.threads[tid].clock.join(&mclock);
        }
        st.trace_op(tid, || format!("cond woke, re-locked {mutex_addr:#x}"));
    }

    pub(crate) fn cond_notify(&self, tid: usize, cv_addr: usize, all: bool) {
        self.run_op(tid, Op::CondNotify { addr: cv_addr }, |st, tid| {
            if st.check_freed(tid, cv_addr) {
                return;
            }
            let woken: Vec<(usize, usize)> =
                match st.locations.get_mut(&cv_addr).map(|l| &mut l.kind) {
                    Some(LocKind::Condvar(cv)) => {
                        if all {
                            cv.waiters.drain(..).collect()
                        } else if cv.waiters.is_empty() {
                            Vec::new()
                        } else {
                            vec![cv.waiters.remove(0)]
                        }
                    }
                    _ => Vec::new(),
                };
            for (w, mx) in &woken {
                st.threads[*w].status = Status::Parked;
                st.threads[*w].pending = Some(Op::MutexLock { addr: *mx });
            }
            st.trace_op(tid, || format!("cond notify {cv_addr:#x} (woke {})", woken.len()));
        })
    }

    /// Registers a child model thread as a scheduling point of the
    /// spawner. The child starts `Running` (its uninstrumented prologue
    /// races nothing: it has no shared handles until its first
    /// instrumented op, where it parks); the spawner must
    /// [`Exec::wait_thread_settled`] before resuming so the scheduler
    /// always sees a settled thread set.
    pub(crate) fn spawn_child(&self, tid: usize) -> usize {
        self.run_op(tid, Op::Spawn, |st, tid| {
            let clock = st.threads[tid].clock.clone();
            let child = st.threads.len();
            st.threads.push(ThreadState::new(clock));
            st.trace_op(tid, || format!("spawned T{child}"));
            child
        })
    }

    pub(crate) fn yield_op(&self, tid: usize, spin: bool) {
        self.run_op(tid, Op::Yield { spin }, |st, tid| {
            st.trace_op(tid, || if spin { "spin".into() } else { "yield".into() });
        })
    }

    pub(crate) fn join_op(&self, tid: usize, target: usize) {
        self.run_op(tid, Op::Join { target }, |st, tid| {
            let tclock = st.threads[target].clock.clone();
            st.threads[tid].clock.join(&tclock);
            st.trace_op(tid, || format!("joined T{target}"));
        })
    }

    /// Marks `[lo, hi)` as freed: any later instrumented access inside
    /// the range fails the execution as a use-after-free.
    pub(crate) fn retire_range(&self, tid: usize, lo: usize, hi: usize) {
        let mut st = self.lock();
        for (addr, loc) in st.locations.iter_mut() {
            if *addr >= lo && *addr < hi {
                loc.freed = true;
            }
        }
        st.freed_ranges.push((lo, hi));
        st.trace_op(tid, || format!("freed range {lo:#x}..{hi:#x}"));
    }
}

fn release_clock(st: &ExecState, tid: usize, ord: Ordering) -> VClock {
    if matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst) {
        st.threads[tid].clock.clone()
    } else {
        st.threads[tid].fence_release.clone().unwrap_or_default()
    }
}

/// Shared RMW/CAS effect: reads the newest store, maybe writes a new
/// one. Returns `Some((old, new))` when the write happened, `None` when
/// `f` declined (CAS mismatch).
fn rmw_effect(
    st: &mut ExecState,
    tid: usize,
    addr: usize,
    success: Ordering,
    failure: Ordering,
    seed: u64,
    f: impl FnOnce(u64) -> Option<u64>,
) -> Option<(u64, u64)> {
    if matches!(success, Ordering::SeqCst) {
        let sc = st.sc.clone();
        st.threads[tid].clock.join(&sc);
    }
    st.atomic_loc(addr, seed);
    let LocKind::Atomic(loc) = &st.locations.get(&addr).unwrap().kind else { unreachable!() };
    let newest = loc.stores.len() - 1;
    let read = loc.stores[newest].clone();
    match f(read.value) {
        Some(new) => {
            let acq = matches!(success, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst);
            if acq {
                st.threads[tid].clock.join(&read.release);
            } else {
                st.threads[tid].pending_acquire.join(&read.release);
            }
            let epoch = st.epoch_of(tid);
            let mut release = release_clock(st, tid, success);
            // Release-sequence continuation: an RMW extends the chain of
            // the store it read, whatever its own ordering.
            release.join(&read.release);
            let LocKind::Atomic(loc) = &mut st.locations.get_mut(&addr).unwrap().kind else {
                unreachable!()
            };
            loc.stores.push(Store { value: new, release, epoch });
            let idx = loc.stores.len() - 1;
            loc.last_read.insert(tid, idx);
            if matches!(success, Ordering::SeqCst) {
                let clock = st.threads[tid].clock.clone();
                st.sc.join(&clock);
            }
            st.trace_op(tid, || {
                format!("atomic rmw {addr:#x} ({success:?}) {} -> {new}", read.value)
            });
            Some((read.value, new))
        }
        None => {
            let acq = matches!(failure, Ordering::Acquire | Ordering::SeqCst);
            if acq {
                st.threads[tid].clock.join(&read.release);
            } else {
                st.threads[tid].pending_acquire.join(&read.release);
            }
            let LocKind::Atomic(loc) = &mut st.locations.get_mut(&addr).unwrap().kind else {
                unreachable!()
            };
            loc.last_read.insert(tid, newest);
            st.trace_op(tid, || format!("atomic cas-fail {addr:#x} (saw {})", read.value));
            None
        }
    }
}
