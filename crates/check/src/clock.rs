//! Vector clocks for happens-before tracking.
//!
//! One entry per model thread, grown on demand. An *epoch* `(tid, n)`
//! names the `n`-th operation of thread `tid`; epoch `e` happens-before
//! a thread whose clock `c` satisfies `e.count <= c[e.tid]`.

/// A vector clock, indexed by model thread id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Component for `tid` (0 when never observed).
    pub fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    pub fn set(&mut self, tid: usize, value: u64) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = value;
    }

    /// Pointwise maximum: afterwards everything visible to `other` is
    /// visible to `self`.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (slot, &v) in self.0.iter_mut().zip(other.0.iter()) {
            *slot = (*slot).max(v);
        }
    }

    /// Whether the epoch `(tid, count)` happens-before this clock.
    pub fn covers(&self, tid: usize, count: u64) -> bool {
        count <= self.get(tid)
    }
}

/// An operation's identity: the `count`-th op of thread `tid`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Epoch {
    pub tid: usize,
    pub count: u64,
}

impl Epoch {
    pub const ZERO: Epoch = Epoch { tid: 0, count: 0 };
}
