//! Bounded-exhaustive schedule exploration.
//!
//! [`Checker::check`] runs the model closure once per schedule. Every
//! multi-way decision an execution makes (which thread to grant next,
//! which eligible store a load reads) is logged as `(chosen,
//! alternatives)`; after an execution completes, the checker backtracks
//! the deepest decision with an untried alternative and replays that
//! prefix — a depth-first walk of the decision tree. Persistent-set
//! pruning and the preemption bound live in
//! [`crate::exec::Exec::schedule`]; they shrink the tree, the walk here
//! is generic.
//!
//! On failure the offending execution is replayed once more with
//! tracing enabled, and the panic message carries the full schedule —
//! both human-readable and as the choice vector accepted by
//! `KCORE_CHECK_REPLAY` for deterministic re-runs.

use crate::exec::{AbortExecution, Exec};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, OnceLock};

/// Silences panic output from model threads: exploration *expects*
/// failing executions, and the default hook would spam stderr with one
/// backtrace per pruned schedule. Installed once, delegates anything
/// not raised on a model thread to the previous hook.
fn install_quiet_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let on_model_thread =
                std::thread::current().name().is_some_and(|n| n.starts_with("kcore-check-model"));
            if !on_model_thread {
                prev(info);
            }
        }));
    });
}

/// Configuration for one model-checking run.
pub struct Checker {
    max_schedules: usize,
    preemptions: usize,
    max_steps: usize,
    replay: Option<Vec<usize>>,
}

impl Default for Checker {
    fn default() -> Self {
        Checker::new()
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

impl Checker {
    pub fn new() -> Self {
        Checker {
            max_schedules: env_usize("KCORE_CHECK_MAX_SCHEDULES", 20_000),
            preemptions: env_usize("KCORE_CHECK_PREEMPTIONS", 3),
            max_steps: env_usize("KCORE_CHECK_MAX_STEPS", 50_000),
            replay: None,
        }
    }

    pub fn max_schedules(mut self, n: usize) -> Self {
        self.max_schedules = n;
        self
    }

    pub fn preemptions(mut self, n: usize) -> Self {
        self.preemptions = n;
        self
    }

    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Pins the exploration to a single schedule: the choice list from
    /// a failure report. Equivalent to setting `KCORE_CHECK_REPLAY`.
    pub fn replay_prefix(mut self, prefix: Vec<usize>) -> Self {
        self.replay = Some(prefix);
        self
    }

    /// Explores the model until exhaustion or the schedule bound.
    /// Panics with a replayable report on the first failing execution.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        if let Some(report) = self.explore(Arc::new(f)) {
            panic!("{report}");
        }
    }

    /// Inverse assertion for the mutation harness: explores the model
    /// and returns the failure report, panicking if every schedule
    /// passes (i.e. the checker failed to catch the seeded bug).
    pub fn check_fails<F>(&self, f: F) -> String
    where
        F: Fn() + Send + Sync + 'static,
    {
        match self.explore(Arc::new(f)) {
            Some(report) => report,
            None => panic!(
                "expected the model to fail under some schedule, but all \
                 explored schedules passed (mutation harness has no teeth here)"
            ),
        }
    }

    /// Core DFS loop. Returns `Some(report)` on the first failure.
    fn explore(&self, f: Arc<dyn Fn() + Send + Sync>) -> Option<String> {
        install_quiet_hook();
        // Hold the mutation table's reader side (unless this thread IS
        // the mutating test) so a concurrently-running `weaken` can
        // never bleed into this exploration.
        #[cfg(kcore_check)]
        let _shared = crate::mutate::state::shared_guard();
        // KCORE_CHECK_REPLAY="3,0,1" pins the first decisions for
        // deterministic single-schedule reproduction.
        let pinned = self.replay.clone().or_else(|| {
            std::env::var("KCORE_CHECK_REPLAY")
                .ok()
                .map(|replay| replay.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        });
        if let Some(prefix) = pinned {
            let (failure, log, trace) = self.run_one(&f, prefix, true);
            return failure.map(|msg| render_report(&msg, &log, &trace, 1));
        }
        let mut prefix: Vec<usize> = Vec::new();
        let mut schedules = 0usize;
        loop {
            schedules += 1;
            let (failure, log, _) = self.run_one(&f, prefix.clone(), false);
            if let Some(msg) = failure {
                // Replay with tracing for the report.
                let choices: Vec<usize> = log.iter().map(|&(c, _)| c).collect();
                let (_, _, trace) = self.run_one(&f, choices, true);
                return Some(render_report(&msg, &log, &trace, schedules));
            }
            // Backtrack: deepest decision with an untried alternative.
            let mut next = None;
            for (i, &(chosen, alts)) in log.iter().enumerate().rev() {
                if chosen + 1 < alts {
                    next = Some(i);
                    break;
                }
            }
            match next {
                Some(i) => {
                    prefix = log[..i].iter().map(|&(c, _)| c).collect();
                    prefix.push(log[i].0 + 1);
                }
                None => return None, // tree exhausted
            }
            if schedules >= self.max_schedules {
                // Bounded exploration: stopping early is sound for a
                // checker (no false alarms), it just covers less.
                return None;
            }
        }
    }

    /// Runs a single execution under the given choice prefix.
    fn run_one(
        &self,
        f: &Arc<dyn Fn() + Send + Sync>,
        prefix: Vec<usize>,
        tracing: bool,
    ) -> (Option<String>, Vec<(usize, usize)>, Vec<String>) {
        let exec = Arc::new(Exec::new(prefix, self.preemptions, self.max_steps, tracing));
        let tid0 = exec.add_thread(None);
        debug_assert_eq!(tid0, 0);
        let handle = spawn_model_thread(exec.clone(), tid0, {
            let f = f.clone();
            move || f()
        });
        exec.schedule();
        let _ = handle.join();
        let st = exec.state.lock().unwrap_or_else(|e| e.into_inner());
        (st.failure.clone(), st.log.clone(), st.trace.clone())
    }
}

/// Spawns an OS thread hosting model thread `tid`: installs the
/// thread-local execution context, runs `f`, reports completion (or a
/// real panic) back to the scheduler. Also used by the checked
/// `thread::spawn` for threads the model itself creates.
pub(crate) fn spawn_model_thread(
    exec: Arc<Exec>,
    tid: usize,
    f: impl FnOnce() + Send + 'static,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("kcore-check-model-{tid}"))
        .spawn(move || {
            crate::exec::set_current(Some((exec.clone(), tid)));
            let result = std::panic::catch_unwind(AssertUnwindSafe(f));
            crate::exec::set_current(None);
            let panic_msg = match result {
                Ok(()) => None,
                Err(payload) => {
                    if payload.is::<AbortExecution>() {
                        None
                    } else if let Some(s) = payload.downcast_ref::<&str>() {
                        Some((*s).to_string())
                    } else if let Some(s) = payload.downcast_ref::<String>() {
                        Some(s.clone())
                    } else {
                        Some("<non-string panic payload>".to_string())
                    }
                }
            };
            exec.finish_thread(tid, panic_msg);
        })
        .expect("spawn model thread")
}

fn render_report(msg: &str, log: &[(usize, usize)], trace: &[String], schedules: usize) -> String {
    let choices: Vec<String> = log.iter().map(|&(c, _)| c.to_string()).collect();
    let mut out = String::new();
    out.push_str("kcore-check: model failure\n");
    out.push_str(&format!("  {msg}\n"));
    out.push_str(&format!("  found after exploring {schedules} schedule(s)\n"));
    out.push_str(&format!("  replay with: KCORE_CHECK_REPLAY=\"{}\"\n", choices.join(",")));
    if !trace.is_empty() {
        out.push_str("  offending schedule:\n");
        for line in trace {
            out.push_str(&format!("    {line}\n"));
        }
    }
    out
}
