//! Julienne's fixed-window bucketing strategy.
//!
//! Every `b` rounds the structure scans the overflow list once and
//! materializes the next `b` frontiers into single-key buckets; vertices
//! with keys beyond the window stay in overflow (the paper's description
//! of Julienne, Sec. 5.1). `DecreaseKey` inserts the vertex into the
//! in-window bucket for its new key. Per-vertex cost is
//! `O(d(v)/b + b)`, minimized at `b = Θ(sqrt(d_avg))`; Julienne fixes
//! `b = 16`.
//!
//! Duplicate-freedom argument: a vertex enters bucket `key` only when its
//! priority becomes exactly `key` (priorities decrease monotonically
//! and atomic decrements return distinct values, so each `(v, key)` pair
//! occurs at most once), or once per window rebuild. Stale copies — the
//! vertex peeled earlier or moved lower — are filtered at extraction by
//! re-reading the live key.

use crate::{BucketStructure, PriorityView};
use crossbeam::queue::SegQueue;
use kcore_parallel::primitives::pack;

/// Fixed window of `b` single-key buckets plus an overflow list.
pub struct FixedBuckets {
    /// Base key of the current window: bucket `i` holds key `base + i`.
    base: u32,
    /// Whether the window has been materialized for the current base.
    built: bool,
    buckets: Vec<SegQueue<u32>>,
    overflow: Vec<u32>,
    b: u32,
}

impl FixedBuckets {
    /// Creates the structure with window width `b` over all vertices.
    pub fn new(priorities: &[u32], b: u32) -> Self {
        assert!(b >= 1, "window width must be at least 1");
        Self {
            base: 0,
            built: false,
            buckets: (0..b).map(|_| SegQueue::new()).collect(),
            overflow: (0..priorities.len() as u32).collect(),
            b,
        }
    }

    /// Scans overflow and distributes the window `[base, base + b)`.
    fn rebuild(&mut self, view: &dyn PriorityView) {
        let base = self.base;
        let b = self.b;
        // Keep only live out-of-window vertices in overflow; in-window
        // ones move to their key's bucket.
        let keep = pack(&self.overflow, |&v| view.alive(v) && view.key(v) >= base + b);
        for &v in &self.overflow {
            if view.alive(v) {
                let key = view.key(v);
                if key >= base && key < base + b {
                    self.buckets[(key - base) as usize].push(v);
                }
            }
        }
        self.overflow = keep;
        self.built = true;
    }
}

impl BucketStructure for FixedBuckets {
    fn next_frontier(&mut self, k: u32, view: &dyn PriorityView) -> Vec<u32> {
        if !self.built || k >= self.base + self.b {
            self.base = k;
            self.rebuild(view);
        }
        debug_assert!(k >= self.base && k < self.base + self.b);
        let q = &self.buckets[(k - self.base) as usize];
        let mut frontier = Vec::with_capacity(q.len());
        while let Some(v) = q.pop() {
            // Stale copies (peeled, or moved to a lower key and peeled
            // there) fail the filter and are dropped.
            if view.alive(v) && view.key(v) == k {
                frontier.push(v);
            }
        }
        frontier
    }

    fn drain_threshold(&mut self, t: u32, view: &dyn PriorityView) -> Vec<u32> {
        // Bulk range extraction: one overflow pack plus the in-window
        // buckets whose key is at or below the threshold. Buckets are
        // popped regardless of `built` — `on_decrease` may have filed
        // entries even before the first window materialized. Window
        // state is left untouched: entries above the threshold stay
        // where they are and later calls (frontier or drain) consume
        // them through the same base.
        let mut out = pack(&self.overflow, |&v| view.alive(v) && view.key(v) <= t);
        self.overflow = pack(&self.overflow, |&v| view.alive(v) && view.key(v) > t);
        if t >= self.base {
            let hi = (t - self.base).saturating_add(1).min(self.b);
            for i in 0..hi {
                let q = &self.buckets[i as usize];
                while let Some(v) = q.pop() {
                    if view.alive(v) && view.key(v) <= t {
                        out.push(v);
                    }
                }
            }
        }
        // A vertex can hold several copies (overflow + in-window files,
        // or one file per in-window decrement); collapse them.
        out.sort_unstable();
        out.dedup();
        out
    }

    fn on_decrease(&self, v: u32, _old_key: u32, new_key: u32, _k: u32) {
        // Only in-window keys are tracked eagerly; out-of-window keys
        // are rediscovered from overflow at the next rebuild. Every
        // in-window bucket holds a single key, so the old key never
        // saves a push here.
        if new_key >= self.base && new_key < self.base + self.b {
            self.buckets[(new_key - self.base) as usize].push(v);
        }
    }

    fn name(&self) -> &'static str {
        "fixed-buckets"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_static_schedule, TestView};

    #[test]
    fn static_schedule_small_window() {
        let keys = vec![3, 0, 1, 1, 2, 5, 0, 3, 40, 17, 16, 15];
        let mut s = FixedBuckets::new(&keys, 4);
        run_static_schedule(&mut s, &keys);
    }

    #[test]
    fn static_schedule_julienne_width() {
        let keys: Vec<u32> = (0..200).map(|i| (i * 7) % 64).collect();
        let mut s = FixedBuckets::new(&keys, 16);
        run_static_schedule(&mut s, &keys);
    }

    #[test]
    fn decrease_into_window_is_tracked() {
        let keys = vec![10, 2, 30];
        let view = TestView::new(&keys);
        let mut s = FixedBuckets::new(&keys, 16);
        // Round 0 builds window [0, 16): vertex 1 (key 2) in bucket 2,
        // vertex 0 (key 10) in bucket 10, vertex 2 in overflow.
        assert!(s.next_frontier(0, &view).is_empty());
        assert!(s.next_frontier(1, &view).is_empty());
        assert_eq!(s.next_frontier(2, &view), vec![1]);
        view.kill(1);
        // Vertex 2's key drops from 30 into the window during round 2.
        view.set_key(2, 5);
        s.on_decrease(2, 30, 5, 2);
        assert!(s.next_frontier(3, &view).is_empty());
        assert!(s.next_frontier(4, &view).is_empty());
        assert_eq!(s.next_frontier(5, &view), vec![2]);
        view.kill(2);
        // Vertex 0 still surfaces at its key.
        for k in 6..10 {
            assert!(s.next_frontier(k, &view).is_empty());
        }
        assert_eq!(s.next_frontier(10, &view), vec![0]);
    }

    #[test]
    fn multi_step_decrease_leaves_no_ghosts() {
        let keys = vec![12];
        let view = TestView::new(&keys);
        let mut s = FixedBuckets::new(&keys, 16);
        assert!(s.next_frontier(0, &view).is_empty());
        // Key walks down 12 -> 9 -> 7 -> 4 during round 0's peel.
        for (old, nk) in [(12, 9), (9, 7), (7, 4)] {
            view.set_key(0, nk);
            s.on_decrease(0, old, nk, 0);
        }
        for k in 1..4 {
            assert!(s.next_frontier(k, &view).is_empty(), "ghost at {k}");
        }
        assert_eq!(s.next_frontier(4, &view), vec![0]);
        view.kill(0);
        // Stale copies at 7, 9, 12 must be filtered.
        for k in 5..=12 {
            assert!(s.next_frontier(k, &view).is_empty(), "stale ghost at {k}");
        }
    }

    #[test]
    fn window_rebuild_picks_up_overflow_decreases() {
        // Key decreases while still beyond the window; the rebuild at
        // k = b must find the new value.
        let keys = vec![100];
        let view = TestView::new(&keys);
        let mut s = FixedBuckets::new(&keys, 16);
        assert!(s.next_frontier(0, &view).is_empty());
        view.set_key(0, 20); // drops but stays out of [0, 16)
        s.on_decrease(0, 100, 20, 0);
        for k in 1..16 {
            assert!(s.next_frontier(k, &view).is_empty());
        }
        // New window [16, 32) must place it at 20.
        for k in 16..20 {
            assert!(s.next_frontier(k, &view).is_empty());
        }
        assert_eq!(s.next_frontier(20, &view), vec![0]);
    }

    #[test]
    fn range_extraction_surfaces_everyone_once() {
        let keys: Vec<u32> = (0..150).map(|i| (i * 11) % 53).collect();
        let mut s = FixedBuckets::new(&keys, 16);
        crate::testutil::run_range_extraction(&mut s, &keys);
    }

    #[test]
    fn threshold_drains_cover_window_and_overflow() {
        let keys: Vec<u32> = (0..180).map(|i| (i * 17) % 97).collect();
        let mut s = FixedBuckets::new(&keys, 16);
        crate::testutil::run_threshold_schedule(&mut s, &keys, &[3, 15, 16, 40, 96]);
    }

    #[test]
    fn threshold_drain_picks_up_in_window_decreases() {
        let keys = vec![10, 30];
        let view = TestView::new(&keys);
        let mut s = FixedBuckets::new(&keys, 16);
        // Materialize the window [0, 16): vertex 0 moves to bucket 10.
        assert!(s.next_frontier(0, &view).is_empty());
        // Vertex 1 drops into the window mid-peel; a copy is filed.
        view.set_key(1, 8);
        s.on_decrease(1, 30, 8, 0);
        let mut got = s.drain_threshold(12, &view);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1], "both window entries drain, deduplicated");
    }

    #[test]
    fn threshold_drain_mid_window_leaves_higher_buckets_intact() {
        let keys = vec![2, 6, 12, 40];
        let view = TestView::new(&keys);
        let mut s = FixedBuckets::new(&keys, 16);
        assert_eq!(s.next_frontier(2, &view), vec![0]);
        view.kill(0);
        let got = s.drain_threshold(7, &view);
        assert_eq!(got, vec![1]);
        view.kill(1);
        // The key-12 entry still surfaces through the window; key 40
        // stays in overflow until its own round.
        for k in 8..12 {
            assert!(s.next_frontier(k, &view).is_empty());
        }
        assert_eq!(s.next_frontier(12, &view), vec![2]);
        view.kill(2);
        let got = s.drain_threshold(50, &view);
        assert_eq!(got, vec![3]);
    }

    #[test]
    fn width_one_degenerates_to_single_bucket_behavior() {
        let keys = vec![2, 0, 1];
        let mut s = FixedBuckets::new(&keys, 1);
        run_static_schedule(&mut s, &keys);
    }
}
