//! The no-bucket strategy: the plain framework of Alg. 1.
//!
//! Keeps the active set as a flat array. Each round packs the frontier
//! (`key == k`) out of it and compacts away peeled vertices. The total
//! cost over all rounds is `Σ|A_i| = O(n + m)` (Thm. 3.1) — work-optimal
//! but with one full active-set scan per round, which is what HBS
//! improves on dense graphs.

use crate::{BucketStructure, PriorityView};
use kcore_parallel::primitives::pack;

/// Flat active-array frontier source.
pub struct SingleBucket {
    active: Vec<u32>,
}

impl SingleBucket {
    /// Builds the structure over all vertices with the given initial
    /// keys (only the count matters; keys are re-read via the view).
    pub fn new(priorities: &[u32]) -> Self {
        Self { active: (0..priorities.len() as u32).collect() }
    }

    /// Rebuilds from an explicit active list (used by the adaptive
    /// strategy when switching representations).
    pub fn from_active(active: Vec<u32>) -> Self {
        Self { active }
    }

    /// Remaining active vertices (diagnostic; exact after each round).
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Hands the current active set over (used when the adaptive
    /// strategy upgrades to HBS).
    pub fn take_active(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.active)
    }
}

impl BucketStructure for SingleBucket {
    fn next_frontier(&mut self, k: u32, view: &dyn PriorityView) -> Vec<u32> {
        // Refine A (drop everything peeled in earlier rounds), then pack
        // the frontier. Both are O(|A|), matching Thm. 3.1's assumption.
        self.active = pack(&self.active, |&v| view.alive(v) && view.key(v) >= k);
        pack(&self.active, |&v| view.key(v) == k)
    }

    fn next_frontier_range(&mut self, lo: u32, hi: u32, view: &dyn PriorityView) -> Vec<u32> {
        // One pass instead of the default's (hi - lo) scans: refine the
        // active set, then pack the whole key range out of it.
        self.active = pack(&self.active, |&v| view.alive(v) && view.key(v) >= lo);
        pack(&self.active, |&v| view.key(v) < hi)
    }

    fn drain_threshold(&mut self, t: u32, view: &dyn PriorityView) -> Vec<u32> {
        // Threshold extraction is the native operation of a flat array:
        // one pass splits the active set at the threshold.
        let frontier = pack(&self.active, |&v| view.alive(v) && view.key(v) <= t);
        self.active = pack(&self.active, |&v| view.alive(v) && view.key(v) > t);
        frontier
    }

    fn on_decrease(&self, _v: u32, _old_key: u32, _new_key: u32, _k: u32) {
        // Nothing to maintain: frontiers are recomputed by scanning.
    }

    fn name(&self) -> &'static str {
        "1-bucket"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_static_schedule, TestView};

    #[test]
    fn static_schedule_surfaces_everyone_once() {
        let keys = vec![3, 0, 1, 1, 2, 5, 0, 3];
        let mut s = SingleBucket::new(&keys);
        run_static_schedule(&mut s, &keys);
    }

    #[test]
    fn active_set_shrinks_monotonically() {
        let keys = vec![0, 1, 2, 3, 4];
        let view = TestView::new(&keys);
        let mut s = SingleBucket::new(&keys);
        for k in 0..=4u32 {
            let f = s.next_frontier(k, &view);
            assert_eq!(f, vec![k]);
            view.kill(k);
        }
        let f = s.next_frontier(5, &view);
        assert!(f.is_empty());
        assert_eq!(s.active_len(), 0);
    }

    #[test]
    fn decreased_keys_are_picked_up_by_scan() {
        let keys = vec![5, 5, 5];
        let view = TestView::new(&keys);
        let mut s = SingleBucket::new(&keys);
        assert!(s.next_frontier(0, &view).is_empty());
        // Vertex 1's key drops to 2 during some round.
        view.set_key(1, 2);
        s.on_decrease(1, 5, 2, 0); // no-op for this strategy
        assert!(s.next_frontier(1, &view).is_empty());
        assert_eq!(s.next_frontier(2, &view), vec![1]);
    }

    #[test]
    fn empty_structure() {
        let mut s = SingleBucket::new(&[]);
        let view = TestView::new(&[]);
        assert!(s.next_frontier(0, &view).is_empty());
    }

    #[test]
    fn range_extraction_is_one_pass_and_complete() {
        let keys: Vec<u32> = (0..300).map(|i| (i * 31) % 97).collect();
        let mut s = SingleBucket::new(&keys);
        crate::testutil::run_range_extraction(&mut s, &keys);
    }

    #[test]
    fn threshold_drains_split_the_active_set() {
        let keys: Vec<u32> = (0..200).map(|i| (i * 13) % 61).collect();
        let mut s = SingleBucket::new(&keys);
        crate::testutil::run_threshold_schedule(&mut s, &keys, &[0, 7, 8, 30, 60]);
    }

    #[test]
    fn threshold_drain_then_frontier_keeps_working() {
        let keys = vec![1, 4, 9, 12];
        let view = TestView::new(&keys);
        let mut s = SingleBucket::new(&keys);
        let mut got = s.drain_threshold(5, &view);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
        for &v in &got {
            view.kill(v);
        }
        for k in 6..9 {
            assert!(s.next_frontier(k, &view).is_empty());
        }
        assert_eq!(s.next_frontier(9, &view), vec![2]);
    }

    #[test]
    fn range_extraction_respects_bounds() {
        let keys = vec![0, 3, 5, 7, 9];
        let view = TestView::new(&keys);
        let mut s = SingleBucket::new(&keys);
        let mut got = s.next_frontier_range(3, 8, &view);
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3], "keys 3, 5, 7 lie in [3, 8)");
    }
}
