//! Bucketing structures for peeling algorithms (paper Sec. 5).
//!
//! A bucketing structure manages the *active set* of a peeling algorithm:
//! at each round `k` it must produce the initial frontier — every active
//! element whose priority equals `k` — and absorb concurrent
//! `DecreaseKey` notifications while a round is being peeled. The
//! elements are opaque `u32` ids and the priority is whatever monotone
//! key the peeling problem maintains — vertex induced degree for k-core,
//! edge triangle support for k-truss, and so on; the structures never
//! interpret either. Three strategies are implemented behind the
//! [`BucketStructure`] trait:
//!
//! * [`SingleBucket`] — the plain framework (Alg. 1): keep the active set
//!   as a flat array, `pack` the frontier out of it every round. `O(|A|)`
//!   work per round, optimal in total (Thm. 3.1) but with a large
//!   constant on dense graphs.
//! * [`FixedBuckets`] — Julienne's strategy: materialize the next `b`
//!   frontiers every `b` rounds (`b = 16` by default) and keep the rest
//!   in an overflow list. `O(d(v)/b + b)` per vertex.
//! * [`HierarchicalBuckets`] — the paper's **HBS**: eight single-key
//!   buckets followed by exponentially ranged buckets, redistributing
//!   lazily in the style of a monotone radix heap. `O(log d(v))` per
//!   vertex.
//!
//! The structures are deliberately decomposition-agnostic — they form a
//! parallel priority structure over integer keys (the paper notes HBS
//! "is also of independent interest") — and are reused by the `kcore`
//! crate for every peeling variant.

pub mod fixed;
pub mod hbs;
pub mod single;

pub use fixed::FixedBuckets;
pub use hbs::HierarchicalBuckets;
pub use single::SingleBucket;

/// Read-only view of the live peeling state that bucket structures use
/// to filter stale entries.
///
/// `v` is an opaque element id — a vertex for k-core peeling, an edge
/// for k-truss peeling — and `key` is its current priority under the
/// problem's monotone decrement rule.
pub trait PriorityView: Sync {
    /// Current (stored) priority of element `v`. For elements in sample
    /// mode this is the value from the last resample — the bucket
    /// structures only ever see the stored value, which is exactly the
    /// key they were told about through `on_decrease`.
    fn key(&self, v: u32) -> u32;
    /// Whether `v` is still active (not yet peeled).
    fn alive(&self, v: u32) -> bool;
}

/// A structure producing per-round initial frontiers for peeling.
///
/// Contract expected by the `kcore` peel engine (any [`PeelProblem`]
/// client, not just k-core):
/// * `next_frontier(k, view)` is called once per round with strictly
///   increasing `k`, between peels (exclusive access).
/// * `on_decrease(v, old_key, new_key, k)` may be called concurrently
///   during a peel, with `old_key > new_key > k` (keys that drop *to*
///   `k` go directly to the in-round frontier, never through the bucket
///   structure) and each `(v, new_key)` pair at most once (decrements
///   are atomic, so every observed value is distinct). `old_key` lets a
///   structure skip updates that do not move the element between buckets
///   — the step that brings HBS down to its `O(log d(v))` per-element
///   bound.
///
/// [`PeelProblem`]: https://docs.rs/kcore — the trait lives in the
/// `kcore` crate; this crate only sees opaque element ids and keys.
pub trait BucketStructure: Send + Sync {
    /// Returns every active element with priority exactly `k`.
    fn next_frontier(&mut self, k: u32, view: &dyn PriorityView) -> Vec<u32>;

    /// Returns every active element with priority in `[lo, hi)` —
    /// the bulk form used by offline range peeling (extracting the
    /// sub-`k`-core prefix in one step rather than round by round).
    ///
    /// The default implementation concatenates the per-key frontiers;
    /// the calls participate in the structure's usual monotone key
    /// sequence, so a range extraction counts as having advanced the
    /// structure to round `hi - 1`. Scan-based structures override this
    /// with a single pass.
    fn next_frontier_range(&mut self, lo: u32, hi: u32, view: &dyn PriorityView) -> Vec<u32> {
        let mut out = Vec::new();
        for k in lo..hi {
            out.extend(self.next_frontier(k, view));
        }
        out
    }

    /// Threshold extraction: returns every active element with priority
    /// `<= t` in one step — the batched round form used by
    /// `RoundPolicy::Threshold` peeling (e.g. the (2+ε)-approximate
    /// densest-subgraph rounds, which peel everything at or below
    /// `(1+ε/2)·`avg-degree at once).
    ///
    /// Contract: thresholds across calls are strictly increasing, and a
    /// threshold extraction at `t` participates in the monotone key
    /// sequence as if the structure had advanced past round `t` — any
    /// later `next_frontier(k)` / `drain_threshold(t')` call must use
    /// `k > t` / `t' > t`. Each element is surfaced at most once per
    /// call (duplicate stale copies are collapsed), and elements left
    /// behind all have priority `> t`.
    ///
    /// Required (no default): a generic fallback cannot know how far
    /// the structure's key sequence has advanced, so it could only
    /// replay `next_frontier_range` from key 0 — violating the
    /// monotone contract on the second drain of a run. Every strategy
    /// implements the drain natively (building on its
    /// [`BucketStructure::next_frontier_range`] machinery), so a
    /// threshold round is never simulated by repeated min-bucket pops.
    fn drain_threshold(&mut self, t: u32, view: &dyn PriorityView) -> Vec<u32>;

    /// Notifies the structure that `v`'s priority dropped from
    /// `old_key` to `new_key` while the algorithm is peeling round `k`.
    fn on_decrease(&self, v: u32, old_key: u32, new_key: u32, k: u32);

    /// Human-readable strategy name (for benchmark tables).
    fn name(&self) -> &'static str;
}

/// Which bucketing strategy a decomposition run should use. This is the
/// third axis of the paper's Tab. 3 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BucketStrategy {
    /// No bucket structure (equivalently, one bucket): scan the active
    /// array each round.
    Single,
    /// Julienne-style fixed window of `b` single-key buckets plus an
    /// overflow list.
    Fixed(u32),
    /// The hierarchical bucketing structure of Sec. 5.
    Hierarchical,
    /// The paper's final design (Sec. 5.3): start with a single bucket
    /// and switch to HBS once the θ-core is reached (θ = 16), adapting
    /// to graph density.
    Adaptive,
}

impl BucketStrategy {
    /// Instantiates the strategy over elements whose initial priorities
    /// are `priorities` (induced degrees for k-core, triangle supports
    /// for k-truss, ...).
    pub fn build(self, priorities: &[u32]) -> Box<dyn BucketStructure> {
        match self {
            BucketStrategy::Single => Box::new(SingleBucket::new(priorities)),
            BucketStrategy::Fixed(b) => Box::new(FixedBuckets::new(priorities, b)),
            BucketStrategy::Hierarchical => Box::new(HierarchicalBuckets::new(priorities)),
            // Adaptive switching is orchestrated by the framework (it
            // owns the live priority state needed to rebuild); it starts
            // with a single bucket.
            BucketStrategy::Adaptive => Box::new(SingleBucket::new(priorities)),
        }
    }
}

impl std::fmt::Display for BucketStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BucketStrategy::Single => write!(f, "1-bucket"),
            BucketStrategy::Fixed(b) => write!(f, "{b}-bucket"),
            BucketStrategy::Hierarchical => write!(f, "HBS"),
            BucketStrategy::Adaptive => write!(f, "adaptive-HBS"),
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::PriorityView;
    use kcore_check::sync::atomic::{AtomicBool, AtomicU32, Ordering};

    /// A mutable priority table for driving bucket structures in tests.
    pub struct TestView {
        pub keys: Vec<AtomicU32>,
        pub dead: Vec<AtomicBool>,
    }

    impl TestView {
        pub fn new(keys: &[u32]) -> Self {
            Self {
                keys: keys.iter().map(|&k| AtomicU32::new(k)).collect(),
                dead: keys.iter().map(|_| AtomicBool::new(false)).collect(),
            }
        }

        pub fn set_key(&self, v: u32, k: u32) {
            self.keys[v as usize].store(k, Ordering::Relaxed);
        }

        pub fn kill(&self, v: u32) {
            self.dead[v as usize].store(true, Ordering::Relaxed);
        }
    }

    impl PriorityView for TestView {
        fn key(&self, v: u32) -> u32 {
            self.keys[v as usize].load(Ordering::Relaxed)
        }
        fn alive(&self, v: u32) -> bool {
            !self.dead[v as usize].load(Ordering::Relaxed)
        }
    }

    /// Checks that a bulk range extraction over `[0, max_key]` surfaces
    /// every vertex exactly once (the offline range-peeling contract).
    pub fn run_range_extraction(structure: &mut dyn super::BucketStructure, keys: &[u32]) {
        let view = TestView::new(keys);
        let maxk = keys.iter().copied().max().unwrap_or(0);
        let mut got = structure.next_frontier_range(0, maxk + 1, &view);
        got.sort_unstable();
        let mut want: Vec<u32> = (0..keys.len() as u32).collect();
        want.sort_unstable();
        assert_eq!(got, want, "range extraction must surface every vertex once");
    }

    /// Drives a bucket structure through an increasing sequence of
    /// threshold drains and checks the threshold-extraction contract:
    /// each drain surfaces exactly the live vertices with key `<= t`,
    /// exactly once across the whole schedule. Keys are static.
    pub fn run_threshold_schedule(
        structure: &mut dyn super::BucketStructure,
        keys: &[u32],
        thresholds: &[u32],
    ) {
        let view = TestView::new(keys);
        let mut seen = vec![false; keys.len()];
        let mut prev: Option<u32> = None;
        for &t in thresholds {
            assert!(prev.is_none_or(|p| t > p), "thresholds must increase");
            let mut got = structure.drain_threshold(t, &view);
            got.sort_unstable();
            let floor = prev.map_or(0, |p| p + 1);
            let mut want: Vec<u32> = (0..keys.len() as u32)
                .filter(|&v| keys[v as usize] >= floor && keys[v as usize] <= t)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "drain at threshold {t} (floor {floor})");
            for &v in &got {
                assert!(!seen[v as usize], "vertex {v} surfaced twice");
                seen[v as usize] = true;
                view.kill(v);
            }
            prev = Some(t);
        }
        let maxk = keys.iter().copied().max().unwrap_or(0);
        if prev.is_some_and(|p| p >= maxk) {
            assert!(seen.iter().all(|&s| s), "some vertex never surfaced: {seen:?}");
        }
    }

    /// Drives a bucket structure through a full synthetic peeling
    /// schedule and checks that every vertex is surfaced exactly at its
    /// key's round. Keys are static (no decrements) — decrement flows
    /// are exercised by the per-structure tests.
    pub fn run_static_schedule(structure: &mut dyn super::BucketStructure, keys: &[u32]) {
        let view = TestView::new(keys);
        let maxk = keys.iter().copied().max().unwrap_or(0);
        let mut seen = vec![false; keys.len()];
        for k in 0..=maxk {
            let frontier = structure.next_frontier(k, &view);
            for &v in &frontier {
                assert_eq!(keys[v as usize], k, "vertex {v} surfaced at wrong round {k}");
                assert!(!seen[v as usize], "vertex {v} surfaced twice");
                seen[v as usize] = true;
                view.kill(v);
            }
        }
        assert!(seen.iter().all(|&s| s), "some vertex never surfaced: {seen:?}");
    }
}
