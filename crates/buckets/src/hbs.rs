//! The hierarchical bucketing structure (HBS, paper Sec. 5.2).
//!
//! HBS manages the active set as a monotone radix heap over induced
//! priorities: relative to a moving anchor `base`, the first
//! [`NUM_SINGLE`] buckets each hold one exact key (`base`, `base + 1`,
//! ...), and the buckets after them hold exponentially growing key
//! ranges (`[base + 8, base + 16)`, `[base + 16, base + 32)`, ...).
//! `DecreaseKey` is a single push into the bucket owning the new key —
//! `O(1)`, and `O(log d(v))` total per vertex across the run, because a
//! vertex entry migrates toward bucket 0 through at most
//! logarithmically many redistributions.
//!
//! Laziness: nothing moves until the peeling round `k` walks past the
//! single-key span. At that point [`HierarchicalBuckets::next_frontier`]
//! re-anchors at `base = k` and redistributes every stored entry by its
//! *live* key (stale copies from earlier decrements are deduplicated
//! here; dead entries are dropped). Keys only decrease and never drop
//! below the current round, so every entry re-files at or after `k` —
//! the monotone-heap invariant.

use crate::{BucketStructure, PriorityView};
use crossbeam::queue::SegQueue;
use kcore_check::sync::atomic::{AtomicU32, Ordering};

/// Exact single-key buckets before the exponential tail (the paper uses
/// eight).
const NUM_SINGLE: u32 = 8;

/// Bucket count: 8 single + one per power-of-two range. Key offsets
/// are `< 2^32`, so `floor(log2((2^32 - 1) / 8)) = 28` is the largest
/// ranged index and 29 ranged buckets suffice.
const NUM_BUCKETS: usize = NUM_SINGLE as usize + 29;

/// Bucket owning `key` when the layout is anchored at `base`.
fn bucket_index(base: u32, key: u32) -> usize {
    debug_assert!(key >= base, "key {key} below anchor {base}");
    let d = key - base;
    if d < NUM_SINGLE {
        d as usize
    } else {
        let ranged = 31 - (d / NUM_SINGLE).leading_zeros(); // floor(log2(d / 8))
        NUM_SINGLE as usize + ranged as usize
    }
}

/// The hierarchical bucketing structure.
pub struct HierarchicalBuckets {
    /// Anchor of the current bucket layout. Written only inside
    /// `next_frontier` (`&mut self`); read concurrently by
    /// `on_decrease` during peels, hence atomic.
    base: AtomicU32,
    buckets: Vec<SegQueue<u32>>,
}

impl HierarchicalBuckets {
    /// Builds the structure over all vertices with the given initial
    /// keys (`priorities[v]` is element `v`'s starting priority).
    pub fn new(priorities: &[u32]) -> Self {
        Self::with_entries(0, priorities.iter().copied().enumerate().map(|(v, d)| (v as u32, d)))
    }

    /// Builds the structure anchored at `base` from explicit
    /// `(vertex, key)` entries — the handoff constructor used by the
    /// adaptive strategy when it upgrades from a single bucket
    /// mid-decomposition. Every key must be `>= base`.
    pub fn with_entries(base: u32, entries: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let buckets: Vec<SegQueue<u32>> = (0..NUM_BUCKETS).map(|_| SegQueue::new()).collect();
        for (v, key) in entries {
            buckets[bucket_index(base, key)].push(v);
        }
        Self { base: AtomicU32::new(base), buckets }
    }

    /// Stored entries across all buckets (diagnostic; includes stale
    /// copies awaiting lazy cleanup).
    pub fn stored_entries(&self) -> usize {
        self.buckets.iter().map(SegQueue::len).sum()
    }

    /// Re-anchors the layout at `k`, re-filing every entry by its live
    /// key. Duplicate copies of a vertex (one per historical decrement)
    /// collapse to one; dead entries drop out.
    fn redistribute(&mut self, k: u32, view: &dyn PriorityView) {
        let mut live: Vec<u32> = Vec::new();
        for bucket in &self.buckets {
            while let Some(v) = bucket.pop() {
                if view.alive(v) {
                    live.push(v);
                }
            }
        }
        live.sort_unstable();
        live.dedup();
        self.base.store(k, Ordering::Relaxed);
        for v in live {
            let key = view.key(v);
            debug_assert!(key >= k, "live key {key} below round {k}");
            self.buckets[bucket_index(k, key)].push(v);
        }
    }
}

impl BucketStructure for HierarchicalBuckets {
    fn next_frontier(&mut self, k: u32, view: &dyn PriorityView) -> Vec<u32> {
        let base = self.base.load(Ordering::Relaxed);
        debug_assert!(k >= base, "rounds must be non-decreasing");
        let base = if k - base >= NUM_SINGLE {
            self.redistribute(k, view);
            k
        } else {
            base
        };
        // After re-anchoring, round k always maps to a single-key
        // bucket, so everything surviving the staleness filter is the
        // frontier. Entries for vertices that moved to a lower key have
        // a fresher copy elsewhere; entries already peeled are dead —
        // both are dropped, never re-filed.
        let bucket = &self.buckets[(k - base) as usize];
        let mut frontier = Vec::with_capacity(bucket.len());
        while let Some(v) = bucket.pop() {
            if view.alive(v) && view.key(v) == k {
                frontier.push(v);
            }
        }
        // A vertex can appear twice in one single-key bucket only if it
        // was filed here both by redistribution and by an `on_decrease`
        // racing an earlier round's extraction; dedup to keep the
        // exactly-once frontier contract.
        frontier.sort_unstable();
        frontier.dedup();
        frontier
    }

    fn drain_threshold(&mut self, t: u32, view: &dyn PriorityView) -> Vec<u32> {
        let base = self.base.load(Ordering::Relaxed);
        if t < base {
            // Live keys never sit below the anchor (monotone heap), so
            // there is nothing at or below the threshold.
            return Vec::new();
        }
        if (t as u64) < base as u64 + NUM_SINGLE as u64 {
            // The threshold lies inside the single-key span: drain those
            // whole buckets and nothing else. Every live entry filed in
            // bucket `i <= t - base` has current key `<= base + i <= t`
            // (keys only decrease), and every live element with key
            // `<= t` has a fresh copy in one of these buckets (crossing
            // into a single-key bucket always files one), so the span
            // drain is exact and the layout stays anchored.
            let mut frontier = Vec::new();
            for i in 0..=(t - base) {
                let bucket = &self.buckets[i as usize];
                while let Some(v) = bucket.pop() {
                    if view.alive(v) {
                        debug_assert!(view.key(v) <= t, "single-span entry above threshold");
                        frontier.push(v);
                    }
                }
            }
            frontier.sort_unstable();
            frontier.dedup();
            frontier
        } else {
            // The threshold reaches the ranged buckets, whose key spans
            // straddle it: re-anchor at t + 1 as in a redistribution,
            // splitting entries into the drained frontier (key <= t)
            // and survivors re-filed under the new anchor.
            let mut live: Vec<u32> = Vec::new();
            for bucket in &self.buckets {
                while let Some(v) = bucket.pop() {
                    if view.alive(v) {
                        live.push(v);
                    }
                }
            }
            live.sort_unstable();
            live.dedup();
            let anchor = t.saturating_add(1);
            self.base.store(anchor, Ordering::Relaxed);
            let mut frontier = Vec::new();
            for v in live {
                let key = view.key(v);
                if key <= t {
                    frontier.push(v);
                } else {
                    self.buckets[bucket_index(anchor, key)].push(v);
                }
            }
            frontier
        }
    }

    fn on_decrease(&self, v: u32, old_key: u32, new_key: u32, _k: u32) {
        let base = self.base.load(Ordering::Relaxed);
        let target = bucket_index(base, new_key);
        // Same-bucket moves are free: the copy filed when v entered
        // this bucket (at construction, redistribution, or the last
        // boundary crossing) still covers it. Exponential ranges make
        // this the common case — a vertex crosses only O(log d(v))
        // boundaries, which is the whole point of HBS.
        if target != bucket_index(base, old_key) {
            self.buckets[target].push(v);
        }
    }

    fn name(&self) -> &'static str {
        "HBS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_static_schedule, TestView};

    #[test]
    fn bucket_index_layout() {
        assert_eq!(bucket_index(0, 0), 0);
        assert_eq!(bucket_index(0, 7), 7);
        assert_eq!(bucket_index(0, 8), 8);
        assert_eq!(bucket_index(0, 15), 8);
        assert_eq!(bucket_index(0, 16), 9);
        assert_eq!(bucket_index(0, 31), 9);
        assert_eq!(bucket_index(0, 32), 10);
        assert_eq!(bucket_index(0, u32::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(100, 103), 3);
        assert_eq!(bucket_index(100, 120), 9);
    }

    #[test]
    fn static_schedule_small_keys() {
        let keys = vec![3, 0, 1, 1, 2, 5, 0, 3];
        let mut s = HierarchicalBuckets::new(&keys);
        run_static_schedule(&mut s, &keys);
    }

    #[test]
    fn static_schedule_wide_key_span() {
        // Keys spread across single and many ranged buckets.
        let keys: Vec<u32> = (0..500).map(|i| (i * i) % 4093).collect();
        let mut s = HierarchicalBuckets::new(&keys);
        run_static_schedule(&mut s, &keys);
    }

    #[test]
    fn decrease_into_single_span_is_found() {
        let keys = vec![100, 2];
        let view = TestView::new(&keys);
        let mut s = HierarchicalBuckets::new(&keys);
        assert!(s.next_frontier(0, &view).is_empty());
        assert!(s.next_frontier(1, &view).is_empty());
        assert_eq!(s.next_frontier(2, &view), vec![1]);
        view.kill(1);
        // Key 100 drops to 5 during round 2 (> k, so via on_decrease).
        view.set_key(0, 5);
        s.on_decrease(0, 100, 5, 2);
        assert!(s.next_frontier(3, &view).is_empty());
        assert!(s.next_frontier(4, &view).is_empty());
        assert_eq!(s.next_frontier(5, &view), vec![0]);
    }

    #[test]
    fn multi_step_decrease_leaves_no_ghosts() {
        let keys = vec![60];
        let view = TestView::new(&keys);
        let mut s = HierarchicalBuckets::new(&keys);
        assert!(s.next_frontier(0, &view).is_empty());
        for (old, nk) in [(60, 40), (40, 22), (22, 9)] {
            view.set_key(0, nk);
            s.on_decrease(0, old, nk, 0);
        }
        for k in 1..9 {
            assert!(s.next_frontier(k, &view).is_empty(), "ghost at {k}");
        }
        assert_eq!(s.next_frontier(9, &view), vec![0]);
        view.kill(0);
        for k in 10..=60 {
            assert!(s.next_frontier(k, &view).is_empty(), "stale ghost at {k}");
        }
    }

    #[test]
    fn redistribution_collapses_duplicate_copies() {
        // A bucket-crossing decrease (20 -> 9) files a second copy; after
        // re-anchoring the vertex must surface exactly once.
        let keys = vec![20];
        let view = TestView::new(&keys);
        let mut s = HierarchicalBuckets::new(&keys);
        assert!(s.next_frontier(0, &view).is_empty());
        view.set_key(0, 9);
        s.on_decrease(0, 20, 9, 0);
        assert_eq!(s.stored_entries(), 2, "crossing buckets files a fresh copy");
        let mut surfaced = Vec::new();
        for k in 1..=20 {
            surfaced.extend(s.next_frontier(k, &view));
            for &v in &surfaced {
                view.kill(v);
            }
        }
        assert_eq!(surfaced, vec![0], "vertex must surface exactly once");
    }

    #[test]
    fn same_bucket_moves_file_no_copy() {
        // 20 -> 17 stays inside the ranged bucket [16, 32): the copy
        // filed at construction still covers the vertex, so on_decrease
        // must not push (the O(log d) refile bound).
        let keys = vec![20];
        let view = TestView::new(&keys);
        let mut s = HierarchicalBuckets::new(&keys);
        assert!(s.next_frontier(0, &view).is_empty());
        view.set_key(0, 17);
        s.on_decrease(0, 20, 17, 0);
        assert_eq!(s.stored_entries(), 1, "same-bucket move must be free");
        let mut surfaced = Vec::new();
        for k in 1..=20 {
            surfaced.extend(s.next_frontier(k, &view));
            for &v in &surfaced {
                view.kill(v);
            }
        }
        assert_eq!(surfaced, vec![0], "vertex surfaces at its live key once");
    }

    #[test]
    fn with_entries_anchors_midstream() {
        let view = TestView::new(&[0, 18, 16, 25]);
        let mut s = HierarchicalBuckets::with_entries(16, [(1u32, 18u32), (2, 16), (3, 25)]);
        assert_eq!(s.next_frontier(16, &view), vec![2]);
        view.kill(2);
        assert!(s.next_frontier(17, &view).is_empty());
        assert_eq!(s.next_frontier(18, &view), vec![1]);
        view.kill(1);
        for k in 19..25 {
            assert!(s.next_frontier(k, &view).is_empty());
        }
        assert_eq!(s.next_frontier(25, &view), vec![3]);
    }

    #[test]
    fn threshold_drains_across_single_and_ranged_spans() {
        let keys: Vec<u32> = (0..300).map(|i| (i * 29) % 257).collect();
        let mut s = HierarchicalBuckets::new(&keys);
        // 3 and 7 drain inside the single span; 60 and 256 cross into
        // (and re-anchor out of) the ranged buckets.
        crate::testutil::run_threshold_schedule(&mut s, &keys, &[3, 7, 60, 61, 256]);
    }

    #[test]
    fn threshold_drain_reanchors_the_layout() {
        let keys = vec![2, 9, 40, 41, 100];
        let view = TestView::new(&keys);
        let mut s = HierarchicalBuckets::new(&keys);
        let mut got = s.drain_threshold(40, &view);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        for &v in &got {
            view.kill(v);
        }
        // Survivors re-filed at anchor 41: key 41 is now a single-key
        // bucket and must surface as a plain frontier.
        assert_eq!(s.next_frontier(41, &view), vec![3]);
        view.kill(3);
        let got = s.drain_threshold(100, &view);
        assert_eq!(got, vec![4]);
    }

    #[test]
    fn threshold_drain_collapses_duplicate_copies() {
        // A bucket-crossing decrease files a second copy; a threshold
        // drain spanning both buckets must surface the vertex once.
        let keys = vec![20, 33];
        let view = TestView::new(&keys);
        let mut s = HierarchicalBuckets::new(&keys);
        view.set_key(0, 9);
        s.on_decrease(0, 20, 9, 0);
        assert_eq!(s.stored_entries(), 3);
        let got = s.drain_threshold(25, &view);
        assert_eq!(got, vec![0], "deduplicated drain");
        view.kill(0);
        assert_eq!(s.drain_threshold(40, &view), vec![1]);
    }

    #[test]
    fn single_span_drain_keeps_decrease_copies_findable() {
        // Drain within the single span (no re-anchor), then let a
        // decrease cross into the remaining single-key buckets.
        let keys = vec![1, 3, 6, 30];
        let view = TestView::new(&keys);
        let mut s = HierarchicalBuckets::new(&keys);
        let mut got = s.drain_threshold(3, &view);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
        for &v in &got {
            view.kill(v);
        }
        view.set_key(3, 5);
        s.on_decrease(3, 30, 5, 3);
        let mut got = s.drain_threshold(6, &view);
        got.sort_unstable();
        assert_eq!(got, vec![2, 3]);
    }

    #[test]
    fn range_extraction_surfaces_everyone_once() {
        let keys: Vec<u32> = (0..200).map(|i| (i * i) % 211).collect();
        let mut s = HierarchicalBuckets::new(&keys);
        crate::testutil::run_range_extraction(&mut s, &keys);
    }

    #[test]
    fn empty_structure() {
        let mut s = HierarchicalBuckets::new(&[]);
        let view = TestView::new(&[]);
        for k in 0..20 {
            assert!(s.next_frontier(k, &view).is_empty());
        }
    }
}
