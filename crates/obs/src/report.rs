//! Draining recorded data into an exportable report.
//!
//! [`TraceReport::capture`] snapshots every thread buffer plus the
//! counter/gauge tables. Exports:
//!
//! * [`TraceReport::chrome_trace`] — Chrome Trace Event Format JSON
//!   (open in `chrome://tracing` or <https://ui.perfetto.dev>).
//! * [`TraceReport::metrics_json`] — the unified metrics document
//!   (schema `kcore-trace-metrics/v1`): counters, gauges, and
//!   per-span-name aggregates.
//! * [`TraceReport::span_tree`] — a deterministic text rendering of
//!   the span hierarchy (names, nesting, counts — no timings), which
//!   is what the snapshot test pins.

use crate::registry;
use crate::ring::{self, RecordKind};

/// One decoded record with its name resolved.
#[derive(Clone, Copy, Debug)]
pub struct TraceRecord {
    pub nanos: u64,
    pub name: &'static str,
    pub kind: RecordKind,
    pub arg: u64,
}

/// All records from one thread, oldest first.
#[derive(Clone, Debug)]
pub struct ThreadTrace {
    /// Dense trace-thread id (buffer registration order).
    pub tid: u32,
    pub records: Vec<TraceRecord>,
}

/// Aggregate for one span name: how often it ran and for how long.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpanAgg {
    pub count: u64,
    pub total_nanos: u64,
}

/// A drained snapshot of everything the obs layer recorded.
pub struct TraceReport {
    pub threads: Vec<ThreadTrace>,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, u64)>,
    /// Records lost to ring wrap, summed over threads.
    pub dropped: u64,
    level: crate::Level,
}

impl TraceReport {
    /// Drain all thread buffers and metric tables. Run at quiescence
    /// (no instrumented work in flight) for a coherent timeline.
    pub fn capture() -> TraceReport {
        let mut threads = Vec::new();
        let mut dropped = 0;
        for (tid, raw, lost) in ring::drain_all() {
            dropped += lost;
            let records = raw
                .iter()
                .map(|r| TraceRecord {
                    nanos: r.nanos,
                    name: registry::name_of(r.name_id),
                    kind: r.kind,
                    arg: r.arg,
                })
                .collect();
            threads.push(ThreadTrace { tid, records });
        }
        TraceReport {
            threads,
            counters: registry::counter_snapshot(),
            gauges: registry::gauge_snapshot(),
            dropped,
            level: crate::level(),
        }
    }

    /// True if nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.threads.iter().all(|t| t.records.is_empty())
            && self.counters.iter().all(|(_, v)| *v == 0)
            && self.gauges.is_empty()
    }

    /// Number of completed-or-open spans named `name` (counts Begin
    /// records across all threads).
    pub fn span_count(&self, name: &str) -> u64 {
        self.threads
            .iter()
            .flat_map(|t| &t.records)
            .filter(|r| r.kind == RecordKind::Begin && r.name == name)
            .count() as u64
    }

    /// Per-span-name aggregates (count + total nanos of completed
    /// spans), sorted by name.
    pub fn span_aggregates(&self) -> Vec<(String, SpanAgg)> {
        let mut aggs: std::collections::BTreeMap<&str, SpanAgg> = Default::default();
        for t in &self.threads {
            let mut stack: Vec<(&str, u64)> = Vec::new();
            for r in &t.records {
                match r.kind {
                    RecordKind::Begin => {
                        aggs.entry(r.name).or_default().count += 1;
                        stack.push((r.name, r.nanos));
                    }
                    RecordKind::End => {
                        if let Some((name, begin)) = stack.pop() {
                            aggs.entry(name).or_default().total_nanos +=
                                r.nanos.saturating_sub(begin);
                        }
                    }
                    RecordKind::Instant => {
                        aggs.entry(r.name).or_default().count += 1;
                    }
                }
            }
        }
        aggs.into_iter().map(|(n, a)| (n.to_owned(), a)).collect()
    }

    /// Chrome Trace Event Format. `ts` is microseconds since the
    /// trace epoch; `pid` is always 1; `tid` is the dense trace id.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut push = |s: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&s);
        };
        for t in &self.threads {
            push(
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                     \"args\":{{\"name\":\"kcore-{}\"}}}}",
                    t.tid, t.tid
                ),
                &mut first,
            );
            for r in &t.records {
                let ts = r.nanos as f64 / 1000.0;
                let ev = match r.kind {
                    RecordKind::Begin => format!(
                        "{{\"name\":{},\"ph\":\"B\",\"ts\":{ts:.3},\"pid\":1,\"tid\":{},\
                         \"args\":{{\"arg\":{}}}}}",
                        json_str(r.name),
                        t.tid,
                        r.arg
                    ),
                    RecordKind::End => {
                        format!("{{\"ph\":\"E\",\"ts\":{ts:.3},\"pid\":1,\"tid\":{}}}", t.tid)
                    }
                    RecordKind::Instant => format!(
                        "{{\"name\":{},\"ph\":\"i\",\"ts\":{ts:.3},\"pid\":1,\"tid\":{},\
                         \"s\":\"t\",\"args\":{{\"arg\":{}}}}}",
                        json_str(r.name),
                        t.tid,
                        r.arg
                    ),
                };
                push(ev, &mut first);
            }
        }
        // Counters and gauges as a final counter sample each, so the
        // totals are visible on the timeline view too.
        let last_ts =
            self.threads.iter().flat_map(|t| &t.records).map(|r| r.nanos).max().unwrap_or(0) as f64
                / 1000.0;
        for (name, value) in self.counters.iter().chain(&self.gauges) {
            push(
                format!(
                    "{{\"name\":{},\"ph\":\"C\",\"ts\":{last_ts:.3},\"pid\":1,\
                     \"args\":{{\"value\":{value}}}}}",
                    json_str(name)
                ),
                &mut first,
            );
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// The unified metrics document, schema `kcore-trace-metrics/v1`:
    ///
    /// ```json
    /// {
    ///   "schema": "kcore-trace-metrics/v1",
    ///   "level": "spans",
    ///   "counters": {"engine.subrounds": 42, ...},
    ///   "gauges": {"run.rounds": 7, ...},
    ///   "spans": {"round": {"count": 7, "total_ns": 123456}, ...},
    ///   "dropped_records": 0
    /// }
    /// ```
    pub fn metrics_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"schema\":\"kcore-trace-metrics/v1\",\"level\":");
        out.push_str(&json_str(self.level.as_str()));
        out.push_str(",\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{value}", json_str(name)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{value}", json_str(name)));
        }
        out.push_str("},\"spans\":{");
        for (i, (name, agg)) in self.span_aggregates().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"total_ns\":{}}}",
                json_str(name),
                agg.count,
                agg.total_nanos
            ));
        }
        out.push_str(&format!("}},\"dropped_records\":{}}}", self.dropped));
        out
    }

    /// Deterministic text rendering of the span hierarchy for one
    /// thread: children are grouped under their parent *by name* with
    /// occurrence counts, so timings and interleavings don't leak in.
    ///
    /// ```text
    /// kcore x1
    ///   round x3
    ///     subround x5
    /// ```
    pub fn span_tree(&self, tid: u32) -> String {
        let mut root = TreeNode::default();
        for t in self.threads.iter().filter(|t| t.tid == tid) {
            let mut path: Vec<&str> = Vec::new();
            for r in &t.records {
                match r.kind {
                    RecordKind::Begin => {
                        path.push(r.name);
                        root.touch(&path);
                    }
                    RecordKind::End => {
                        path.pop();
                    }
                    RecordKind::Instant => {
                        path.push(r.name);
                        root.touch(&path);
                        path.pop();
                    }
                }
            }
        }
        let mut out = String::new();
        root.render(&mut out, 0);
        out
    }

    /// The dense trace id of the calling thread, if it recorded
    /// anything yet. Lets tests scope assertions to their own thread.
    pub fn current_tid() -> Option<u32> {
        ring::current_tid()
    }
}

/// Name-aggregated span tree; insertion-ordered children.
#[derive(Default)]
struct TreeNode {
    children: Vec<(String, u64, TreeNode)>,
}

impl TreeNode {
    fn touch(&mut self, path: &[&str]) {
        let Some((head, rest)) = path.split_first() else { return };
        let child = match self.children.iter_mut().position(|(n, _, _)| n == head) {
            Some(i) => &mut self.children[i],
            None => {
                self.children.push((head.to_string(), 0, TreeNode::default()));
                self.children.last_mut().unwrap()
            }
        };
        if rest.is_empty() {
            child.1 += 1;
        } else {
            child.2.touch(rest);
        }
    }

    fn render(&self, out: &mut String, depth: usize) {
        for (name, count, node) in &self.children {
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push_str(&format!("{name} x{count}\n"));
            node.render(out, depth + 1);
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
