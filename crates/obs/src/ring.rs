//! Lock-free per-thread ring buffers.
//!
//! One [`ThreadBuffer`] per recording thread, allocated lazily on the
//! thread's first record and leaked into a global list (buffers are
//! reused for the process lifetime; [`reset_all`] clears contents,
//! not allocations). The owner is the single producer:
//!
//! 1. relaxed-store the three record words into `slots[pos % CAP]`,
//! 2. `Release`-store `pos + 1` into the write cursor.
//!
//! A drain `Acquire`-loads the cursor and relaxed-loads every slot
//! below it: the release/acquire edge orders the slot stores before
//! the cursor value, and each word is individually atomic, so a
//! reader never sees a torn record. Records landing *during* a drain
//! can be missed or half-ordered across threads — the contract is
//! drain-at-quiescence (after the instrumented run returns), which
//! every in-tree capture site honors.
//!
//! On wrap the newest record wins and the overwritten one is counted
//! as dropped (`pos` keeps the total ever written, so
//! `pos.saturating_sub(CAP)` is the drop count).
//!
//! Checker contract (see `model_tests`, compiled under
//! `RUSTFLAGS="--cfg kcore_check"`): the Release publish of the write
//! cursor paired with the drain's Acquire load is the only edge
//! ordering slot words before the cursor value — both sides are
//! registered mutation sites (`ring.push.pos.release`,
//! `ring.drain.pos.acquire`), and weakening either to Relaxed lets a
//! concurrent drain return records with stale words.

use kcore_check::mutate;
use kcore_check::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use kcore_check::sync::Mutex;
use std::time::Instant;

/// Ring capacity in records. 32Ki records × 24 bytes = 768KiB per
/// recording thread — enough for every round/subround/phase span of
/// the largest in-tree bench run without wrapping. (Model tests build
/// tiny rings via `with_capacity` instead of shrinking this constant,
/// so instrumented builds trace real runs unchanged.)
pub const CAPACITY: usize = 1 << 15;

/// What a record marks. Packed into the low byte of word 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// Span open (Chrome `ph:"B"`).
    Begin = 0,
    /// Span close (Chrome `ph:"E"`).
    End = 1,
    /// Instantaneous event (Chrome `ph:"i"`).
    Instant = 2,
}

struct Slot {
    nanos: AtomicU64,
    packed: AtomicU64,
    arg: AtomicU64,
}

/// A single-producer ring owned by one thread.
pub struct ThreadBuffer {
    /// Dense trace-thread id (registration order), stable across
    /// [`reset_all`].
    tid: u32,
    /// Total records ever written; write cursor is `pos % CAPACITY`.
    pos: AtomicUsize,
    slots: Box<[Slot]>,
}

impl ThreadBuffer {
    fn new(tid: u32) -> &'static ThreadBuffer {
        Self::with_capacity(tid, CAPACITY)
    }

    /// Capacity-parameterized constructor so model tests can exercise
    /// wraparound with a handful of pushes.
    fn with_capacity(tid: u32, cap: usize) -> &'static ThreadBuffer {
        let slots = (0..cap)
            .map(|_| Slot {
                nanos: AtomicU64::new(0),
                packed: AtomicU64::new(0),
                arg: AtomicU64::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::leak(Box::new(ThreadBuffer { tid, pos: AtomicUsize::new(0), slots }))
    }

    #[inline]
    fn push(&self, nanos: u64, name_id: u32, kind: RecordKind, arg: u64) {
        let cap = self.slots.len();
        let pos = self.pos.load(Ordering::Relaxed);
        let slot = &self.slots[pos % cap];
        slot.nanos.store(nanos, Ordering::Relaxed);
        slot.packed.store(((name_id as u64) << 8) | kind as u64, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
        self.pos.store(pos + 1, mutate::ordering("ring.push.pos.release", Ordering::Release));
    }

    /// Drain: `(tid, records oldest-first, dropped count)`.
    fn drain(&self) -> (u32, Vec<RawRecord>, u64) {
        let cap = self.slots.len();
        let pos = self.pos.load(mutate::ordering("ring.drain.pos.acquire", Ordering::Acquire));
        let dropped = pos.saturating_sub(cap) as u64;
        let start = pos.saturating_sub(cap);
        let mut out = Vec::with_capacity(pos - start);
        for i in start..pos {
            let slot = &self.slots[i % cap];
            let packed = slot.packed.load(Ordering::Relaxed);
            let kind = match packed & 0xff {
                0 => RecordKind::Begin,
                1 => RecordKind::End,
                _ => RecordKind::Instant,
            };
            out.push(RawRecord {
                nanos: slot.nanos.load(Ordering::Relaxed),
                name_id: (packed >> 8) as u32,
                kind,
                arg: slot.arg.load(Ordering::Relaxed),
            });
        }
        (self.tid, out, dropped)
    }
}

/// A decoded record, name still as interned id.
#[derive(Clone, Copy, Debug)]
pub struct RawRecord {
    pub nanos: u64,
    pub name_id: u32,
    pub kind: RecordKind,
    pub arg: u64,
}

static BUFFERS: Mutex<Vec<&'static ThreadBuffer>> = Mutex::new(Vec::new());

thread_local! {
    static LOCAL: std::cell::Cell<Option<&'static ThreadBuffer>> =
        const { std::cell::Cell::new(None) };
}

#[cold]
fn register_local() -> &'static ThreadBuffer {
    let mut buffers = BUFFERS.lock().unwrap();
    let buf = ThreadBuffer::new(buffers.len() as u32);
    buffers.push(buf);
    LOCAL.with(|l| l.set(Some(buf)));
    buf
}

/// Monotonic process epoch; all record timestamps are nanos since the
/// first record ever taken.
fn epoch() -> Instant {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Record one slot on the calling thread's buffer (allocating it on
/// first use). Callers gate on [`crate::enabled`] first.
#[inline]
pub fn record(kind: RecordKind, name_id: u32, arg: u64) {
    let buf = LOCAL.with(|l| l.get()).unwrap_or_else(register_local);
    buf.push(epoch().elapsed().as_nanos() as u64, name_id, kind, arg);
}

/// Drain every registered buffer: `(tid, records, dropped)` per
/// thread. Intended to run at quiescence.
pub fn drain_all() -> Vec<(u32, Vec<RawRecord>, u64)> {
    BUFFERS.lock().unwrap().iter().map(|b| b.drain()).collect()
}

/// Clear every buffer's contents (allocations are kept).
pub fn reset_all() {
    for buf in BUFFERS.lock().unwrap().iter() {
        buf.pos.store(0, Ordering::Release);
    }
}

/// How many thread buffers exist (test hook).
pub fn buffer_count() -> usize {
    BUFFERS.lock().unwrap().len()
}

/// The calling thread's dense trace id, if it has recorded anything.
pub fn current_tid() -> Option<u32> {
    LOCAL.with(|l| l.get()).map(|b| b.tid)
}

/// Model-checked tests of the Release-publish / Acquire-drain edge,
/// compiled only under the instrumented facade. Buffers are built
/// directly (one fresh leaked allocation per execution) instead of
/// through the global registry, whose process-wide state would couple
/// executions together.
#[cfg(all(test, kcore_check))]
mod model_tests {
    use super::*;
    use kcore_check::{thread, Checker};

    /// Pushes record `k` with all three words derived from `k`, so any
    /// drained record whose words disagree was read across the torn
    /// reserve-to-publish window.
    fn push_kth(buf: &ThreadBuffer, k: u64) {
        buf.push(k, k as u32, RecordKind::Instant, k * 100);
    }

    fn assert_consistent(records: &[RawRecord]) {
        for (i, r) in records.iter().enumerate() {
            let k = i as u64 + 1;
            assert!(
                r.nanos == k && r.name_id as u64 == k && r.arg == k * 100,
                "record {i} has torn or stale words: {r:?}"
            );
        }
    }

    /// Model ring capacity: big enough not to wrap in the two-record
    /// tests, small enough that the wrap test needs only six pushes.
    const MODEL_CAP: usize = 4;

    /// A drain racing the producer must return a consistent prefix:
    /// every record below the cursor it observed is fully published.
    fn concurrent_drain_is_prefix_consistent() {
        let buf = ThreadBuffer::with_capacity(0, MODEL_CAP);
        let t = thread::spawn(move || {
            push_kth(buf, 1);
            push_kth(buf, 2);
        });
        let (_, records, dropped) = buf.drain();
        assert_eq!(dropped, 0);
        assert!(records.len() <= 2, "drained more than was pushed");
        assert_consistent(&records);
        t.join().unwrap();
    }

    #[test]
    fn ring_concurrent_drain_passes() {
        Checker::new().check(concurrent_drain_is_prefix_consistent);
    }

    /// Wrap accounting at the model capacity: two overwritten records
    /// are counted dropped and the survivors come back oldest-first.
    #[test]
    fn ring_wraparound_drop_count() {
        Checker::new().check(|| {
            let buf = ThreadBuffer::with_capacity(0, MODEL_CAP);
            let t = thread::spawn(move || {
                for k in 1..=(MODEL_CAP as u64 + 2) {
                    push_kth(buf, k);
                }
            });
            t.join().unwrap();
            let (_, records, dropped) = buf.drain();
            assert_eq!(dropped, 2);
            assert_eq!(records.len(), MODEL_CAP);
            for (i, r) in records.iter().enumerate() {
                assert_eq!(r.nanos, i as u64 + 3, "wrapped drain out of order: {records:?}");
            }
        });
    }

    /// Mutation teeth: a Relaxed cursor publish lets the drain observe
    /// the cursor without the slot words.
    #[test]
    fn mutation_ring_push_pos_release_has_teeth() {
        let _weaken = mutate::weaken("ring.push.pos.release");
        let report = Checker::new().check_fails(concurrent_drain_is_prefix_consistent);
        assert!(report.contains("torn or stale"), "unexpected report: {report}");
    }

    /// Mutation teeth: a Relaxed drain-side cursor load severs the
    /// same edge from the reader's end.
    #[test]
    fn mutation_ring_drain_pos_acquire_has_teeth() {
        let _weaken = mutate::weaken("ring.drain.pos.acquire");
        let report = Checker::new().check_fails(concurrent_drain_is_prefix_consistent);
        assert!(report.contains("torn or stale"), "unexpected report: {report}");
    }
}
