//! First-party tracing and metrics for the k-core engine.
//!
//! The container has no crates.io access, so this crate is a small,
//! dependency-free substitute for the `tracing` + `tracing-chrome`
//! stack: callsite macros ([`span!`], [`event!`], [`counter!`],
//! [`gauge_max!`]) record into lock-free per-thread ring buffers, and
//! [`TraceReport::capture`] drains everything into one report that
//! exports a unified metrics JSON ([`TraceReport::metrics_json`]) and
//! Chrome Trace Event Format ([`TraceReport::chrome_trace`],
//! loadable in `chrome://tracing` or Perfetto).
//!
//! # Runtime gating and the overhead contract
//!
//! Everything is gated by the `KCORE_TRACE` environment variable
//! (read once, overridable in-process via [`set_level`]):
//!
//! * `off` (default) — the macros evaluate a single relaxed atomic
//!   load and a predictable branch, then do **nothing**: no
//!   thread-local access, no clock read, no allocation. The per-thread
//!   ring buffers are allocated lazily on a thread's *first recorded
//!   event*, so a process that never enables tracing never allocates
//!   a buffer at all (asserted by `tests/off_noop.rs`).
//! * `counters` — [`counter!`] and [`gauge_max!`] are live (one extra
//!   relaxed `fetch_add` on a callsite-static cell); spans are still
//!   no-ops, so there are no clock reads on the hot path.
//! * `spans` — everything is live. A span records two fixed-size ring
//!   slots (begin/end) with one monotonic clock read each; events
//!   record one. Instrumentation in the engine is placed at round /
//!   subround / phase granularity — never per-vertex — so even `spans`
//!   costs O(rounds) clock reads per decomposition.
//!
//! Unknown `KCORE_TRACE` values panic with the valid set, mirroring
//! `KCORE_TECHNIQUES` parsing.
//!
//! # Ring-buffer design
//!
//! Each recording thread owns a [`ring::ThreadBuffer`]: a fixed-power-
//! of-two ring of 24-byte slots, each slot three `AtomicU64`s
//! (timestamp-nanos, packed `name_id | kind`, argument). The owning
//! thread is the only writer: it fills the slot with relaxed stores,
//! then *publishes* by bumping the write cursor with `Release`. A
//! drain ([`TraceReport::capture`]) acquires the cursor and reads
//! slots with relaxed loads — every slot at an index below the
//! acquired cursor is fully written, and torn reads are impossible by
//! construction because every word is individually atomic. On
//! overflow the ring keeps the newest records and counts the
//! overwritten ones (`dropped` in the report); capture is intended to
//! run at quiescence (after a decomposition returns), which the
//! drain-side contract documents rather than enforces.
//!
//! Span/counter names are `&'static str`s interned once per callsite
//! into a global table ([`registry`]); records carry the `u32` id, so
//! the hot path never touches the string or any lock after the first
//! hit at a callsite.
//!
//! # Metrics registry
//!
//! [`MetricsRegistry`] is the named counter/gauge store that the
//! engine's historical stats structs (`RunStats`,
//! `TechniqueCounters`, `SchedulerStats`, `MaintainStats`) publish
//! into as `prefix.field` gauges, so one [`TraceReport`] carries the
//! whole story: live counters from the macros, end-of-run gauges from
//! the stats structs, and the span timeline.

pub mod registry;
pub mod report;
pub mod ring;

pub use report::{SpanAgg, ThreadTrace, TraceRecord, TraceReport};
pub use ring::RecordKind;

use kcore_check::sync::atomic::{AtomicU8, Ordering};

/// Tracing level, parsed from `KCORE_TRACE`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Record nothing; macros are branch-only no-ops.
    Off = 0,
    /// Counters and gauges only; spans/events disabled.
    Counters = 1,
    /// Full span timeline plus counters.
    Spans = 2,
}

impl Level {
    /// Human name, as accepted by `KCORE_TRACE`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Counters => "counters",
            Level::Spans => "spans",
        }
    }
}

const LEVEL_UNSET: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

#[cold]
fn init_level_from_env() -> u8 {
    let parsed = match std::env::var("KCORE_TRACE") {
        Ok(raw) => match raw.trim() {
            "" | "off" | "0" => Level::Off,
            "counters" => Level::Counters,
            "spans" => Level::Spans,
            other => panic!("KCORE_TRACE: unknown level {other:?} (valid: off, counters, spans)"),
        },
        Err(_) => Level::Off,
    };
    // A concurrent set_level or env init may have raced us; first
    // writer wins so the level is stable for the whole process.
    match LEVEL.compare_exchange(LEVEL_UNSET, parsed as u8, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => parsed as u8,
        Err(current) => current,
    }
}

/// The active [`Level`]. First call parses `KCORE_TRACE`.
pub fn level() -> Level {
    let raw = LEVEL.load(Ordering::Relaxed);
    let raw = if raw == LEVEL_UNSET { init_level_from_env() } else { raw };
    match raw {
        1 => Level::Counters,
        2 => Level::Spans,
        _ => Level::Off,
    }
}

/// Hot-path gate: is `at` (or anything stronger) enabled?
#[inline(always)]
pub fn enabled(at: Level) -> bool {
    level() >= at
}

/// Override the level in-process (tests, programmatic enables).
///
/// Takes precedence over `KCORE_TRACE` from the moment it is called;
/// already-recorded data is kept (use [`reset`] to discard it).
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// Discard all recorded spans, counters and gauges.
///
/// Thread buffers stay allocated (they are reused), but their
/// contents and the dropped-record tallies are cleared. Intended for
/// tests and for benchmarks that export one trace per phase.
pub fn reset() {
    ring::reset_all();
    registry::reset_counters();
    registry::reset_gauges();
}

/// A RAII span: records a begin slot when armed, an end slot on drop.
///
/// Built by the [`span!`] macro; construct directly only via
/// [`SpanGuard::begin_dyn`] for names not known at the callsite.
#[must_use = "a span ends when the guard drops"]
pub struct SpanGuard {
    id: u32,
    armed: bool,
}

impl SpanGuard {
    #[doc(hidden)]
    #[inline]
    pub fn begin(id: &'static registry::NameId, name: &'static str, arg: u64) -> SpanGuard {
        if !enabled(Level::Spans) {
            return SpanGuard { id: 0, armed: false };
        }
        let id = id.get(name);
        ring::record(RecordKind::Begin, id, arg);
        SpanGuard { id, armed: true }
    }

    /// Slow-path span for dynamic (but still interned-by-content)
    /// names, e.g. a problem's `name()`. One registry lookup per
    /// call; use once-per-run, not in loops.
    #[inline]
    pub fn begin_dyn(name: &str, arg: u64) -> SpanGuard {
        if !enabled(Level::Spans) {
            return SpanGuard { id: 0, armed: false };
        }
        let id = registry::intern_dynamic(name);
        ring::record(RecordKind::Begin, id, arg);
        SpanGuard { id, armed: true }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if self.armed {
            ring::record(RecordKind::End, self.id, 0);
        }
    }
}

/// Open a named span for the enclosing scope.
///
/// `span!("name")` or `span!("name", arg)` — the optional `arg` is a
/// `u64` payload shown in the Chrome trace (frontier sizes, k, batch
/// sizes). Returns a [`SpanGuard`]; bind it (`let _s = span!(..)`) so
/// it ends where the scope does.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::span!($name, 0u64)
    };
    ($name:literal, $arg:expr) => {{
        static __KCORE_OBS_ID: $crate::registry::NameId = $crate::registry::NameId::new();
        $crate::SpanGuard::begin(&__KCORE_OBS_ID, $name, $arg as u64)
    }};
}

/// Record an instantaneous named event with a `u64` payload.
#[macro_export]
macro_rules! event {
    ($name:literal) => {
        $crate::event!($name, 0u64)
    };
    ($name:literal, $arg:expr) => {{
        if $crate::enabled($crate::Level::Spans) {
            static __KCORE_OBS_ID: $crate::registry::NameId = $crate::registry::NameId::new();
            $crate::ring::record(
                $crate::RecordKind::Instant,
                __KCORE_OBS_ID.get($name),
                $arg as u64,
            );
        }
    }};
}

/// Bump a named metric counter.
///
/// Two forms:
/// * `counter!("name", delta)` — a pure metrics counter backed by a
///   callsite-static cell, live at `KCORE_TRACE=counters` and above.
/// * `counter!(slot, "name", delta)` — *also* unconditionally
///   `fetch_add`s `delta` into `slot` (an `AtomicU64` field, e.g. on
///   `TechniqueCounters`). This is the routed form every engine
///   emission site uses, so `grep counter!` finds them all while the
///   legacy stats structs keep their exact semantics.
#[macro_export]
macro_rules! counter {
    ($name:literal, $delta:expr) => {{
        if $crate::enabled($crate::Level::Counters) {
            static __KCORE_OBS_CELL: $crate::registry::CounterCell =
                $crate::registry::CounterCell::new($name);
            __KCORE_OBS_CELL.add($delta as u64);
        }
    }};
    ($slot:expr, $name:literal, $delta:expr) => {{
        let __kcore_obs_delta: u64 = $delta as u64;
        $slot.fetch_add(__kcore_obs_delta, ::core::sync::atomic::Ordering::Relaxed);
        $crate::counter!($name, __kcore_obs_delta);
    }};
}

/// Fold a value into a named high-watermark gauge (max semantics).
///
/// `gauge_max!(slot, "name", value)` also folds into `slot`, which
/// must expose `update(u64)` (the engine's `AtomicMax`); the
/// slot-less form updates only the metric.
#[macro_export]
macro_rules! gauge_max {
    ($name:literal, $value:expr) => {{
        if $crate::enabled($crate::Level::Counters) {
            $crate::registry::gauge_max($name, $value as u64);
        }
    }};
    ($slot:expr, $name:literal, $value:expr) => {{
        let __kcore_obs_v: u64 = $value as u64;
        $slot.update(__kcore_obs_v);
        $crate::gauge_max!($name, __kcore_obs_v);
    }};
}

/// Set a named gauge to an absolute value (last write wins).
///
/// This is how the end-of-run stats structs publish their fields into
/// the [`MetricsRegistry`]; see e.g. `RunStats::publish_metrics`.
pub fn gauge(name: &str, value: u64) {
    if enabled(Level::Counters) {
        registry::gauge_set(name, value);
    }
}

/// Run `f`, always returning its elapsed wall-clock nanos, and record
/// a span around it when spans are enabled.
///
/// For call sites that need the duration *regardless* of the trace
/// level (e.g. `MaintainStats` phase nanos): the measurement is
/// unconditional, only the timeline record is gated.
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, u64) {
    let guard = SpanGuard::begin_dyn(name, 0);
    let start = std::time::Instant::now();
    let out = f();
    let nanos = start.elapsed().as_nanos() as u64;
    drop(guard);
    (out, nanos)
}

/// The unified named counter/gauge store.
///
/// Counters accumulate deltas from [`counter!`] sites; gauges hold
/// absolute values ([`gauge`]) or high watermarks ([`gauge_max!`]).
/// The four historical stats structs publish here, which is what
/// "absorbs" them into one report without changing their public APIs.
pub struct MetricsRegistry;

impl MetricsRegistry {
    /// Publish a batch of `prefix.field = value` gauges.
    pub fn publish(prefix: &str, fields: &[(&str, u64)]) {
        if !enabled(Level::Counters) {
            return;
        }
        for (field, value) in fields {
            registry::gauge_set(&format!("{prefix}.{field}"), *value);
        }
    }

    /// Snapshot of all counters, sorted by name.
    pub fn counters() -> Vec<(String, u64)> {
        registry::counter_snapshot()
    }

    /// Snapshot of all gauges, sorted by name.
    pub fn gauges() -> Vec<(String, u64)> {
        registry::gauge_snapshot()
    }
}

/// Number of per-thread ring buffers allocated so far (test hook for
/// the "off allocates nothing" contract).
pub fn thread_buffer_count() -> usize {
    ring::buffer_count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counter_macro_routes_slot_and_metric() {
        let _g = serial();
        set_level(Level::Counters);
        reset();
        let slot = kcore_check::sync::atomic::AtomicU64::new(0);
        counter!(slot, "test.routed", 3);
        counter!(slot, "test.routed", 4);
        assert_eq!(slot.load(Ordering::Relaxed), 7);
        let counters = MetricsRegistry::counters();
        assert!(counters.iter().any(|(n, v)| n == "test.routed" && *v == 7));
        set_level(Level::Off);
    }

    #[test]
    fn slot_still_counts_when_off() {
        let _g = serial();
        set_level(Level::Off);
        reset();
        let slot = kcore_check::sync::atomic::AtomicU64::new(0);
        counter!(slot, "test.off_slot", 5);
        assert_eq!(slot.load(Ordering::Relaxed), 5, "legacy stats must not regress when off");
        assert!(!MetricsRegistry::counters().iter().any(|(n, _)| n == "test.off_slot"));
    }

    #[test]
    fn spans_nest_and_count() {
        let _g = serial();
        set_level(Level::Spans);
        reset();
        kcore_check::thread::spawn(|| {
            let _outer = span!("test.outer");
            for i in 0..3 {
                let _inner = span!("test.inner", i);
            }
            event!("test.mark", 9);
        })
        .join()
        .unwrap();
        let report = TraceReport::capture();
        assert_eq!(report.span_count("test.outer"), 1);
        assert_eq!(report.span_count("test.inner"), 3);
        let chrome = report.chrome_trace();
        assert!(chrome.contains("\"ph\":\"B\"") && chrome.contains("\"ph\":\"E\""));
        assert!(chrome.contains("test.mark"));
        let json = report.metrics_json();
        assert!(json.contains("kcore-trace-metrics/v1"));
        set_level(Level::Off);
    }

    #[test]
    fn gauge_max_keeps_watermark() {
        let _g = serial();
        set_level(Level::Counters);
        reset();
        gauge_max!("test.peak", 4);
        gauge_max!("test.peak", 9);
        gauge_max!("test.peak", 2);
        assert!(MetricsRegistry::gauges().iter().any(|(n, v)| n == "test.peak" && *v == 9));
        set_level(Level::Off);
    }
}
