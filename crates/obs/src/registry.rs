//! Name interning and the global counter/gauge tables.
//!
//! Hot paths touch only callsite-static atomics: a [`NameId`] caches
//! its interned id after one registration, and a [`CounterCell`] is a
//! plain `AtomicU64` that registers itself into the global table on
//! first use. The `Mutex`-guarded tables are reached once per
//! *callsite* (or per dynamic name), never per record.

use kcore_check::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use kcore_check::sync::Mutex;
use std::collections::BTreeMap;

/// Interned-name table. Ids are indices; names are `'static` (dynamic
/// names are leaked once on first intern, bounded by distinct names).
static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// Resolve an interned id back to its name.
pub fn name_of(id: u32) -> &'static str {
    NAMES.lock().unwrap().get(id as usize).copied().unwrap_or("?")
}

fn intern_locked(name: &'static str) -> u32 {
    let mut names = NAMES.lock().unwrap();
    if let Some(pos) = names.iter().position(|n| *n == name) {
        return pos as u32;
    }
    names.push(name);
    (names.len() - 1) as u32
}

/// Intern a name not backed by a callsite static. Leaks unseen names.
pub fn intern_dynamic(name: &str) -> u32 {
    {
        let names = NAMES.lock().unwrap();
        if let Some(pos) = names.iter().position(|n| *n == name) {
            return pos as u32;
        }
    }
    intern_locked(Box::leak(name.to_owned().into_boxed_str()))
}

/// A callsite-static cached name id (see [`crate::span!`]).
pub struct NameId {
    /// 0 = unregistered; otherwise interned id + 1.
    cell: AtomicU32,
}

impl NameId {
    #[allow(clippy::new_without_default)]
    pub const fn new() -> Self {
        NameId { cell: AtomicU32::new(0) }
    }

    /// The interned id for `name`, registering on first call.
    #[inline]
    pub fn get(&self, name: &'static str) -> u32 {
        match self.cell.load(Ordering::Relaxed) {
            0 => self.register(name),
            n => n - 1,
        }
    }

    #[cold]
    fn register(&self, name: &'static str) -> u32 {
        let id = intern_locked(name);
        self.cell.store(id + 1, Ordering::Relaxed);
        id
    }
}

/// A callsite-static metrics counter (see [`crate::counter!`]).
pub struct CounterCell {
    name: &'static str,
    value: AtomicU64,
    /// 0 = not yet in the global table, 1 = registered.
    registered: AtomicU32,
}

static COUNTERS: Mutex<Vec<&'static CounterCell>> = Mutex::new(Vec::new());

impl CounterCell {
    pub const fn new(name: &'static str) -> Self {
        CounterCell { name, value: AtomicU64::new(0), registered: AtomicU32::new(0) }
    }

    #[inline]
    pub fn add(&'static self, delta: u64) {
        if self.registered.load(Ordering::Relaxed) == 0 {
            self.register();
        }
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    #[cold]
    fn register(&'static self) {
        let mut table = COUNTERS.lock().unwrap();
        // Two threads can race to the first add; the lock makes the
        // push exclusive and the flag idempotent.
        if self.registered.load(Ordering::Relaxed) == 0 {
            table.push(self);
            self.registered.store(1, Ordering::Relaxed);
        }
    }
}

/// Sorted `(name, value)` snapshot of all live counters. Counters
/// from distinct callsites sharing a name are summed.
pub fn counter_snapshot() -> Vec<(String, u64)> {
    let table = COUNTERS.lock().unwrap();
    let mut merged: BTreeMap<&'static str, u64> = BTreeMap::new();
    for cell in table.iter() {
        *merged.entry(cell.name).or_insert(0) += cell.value.load(Ordering::Relaxed);
    }
    merged.into_iter().map(|(n, v)| (n.to_owned(), v)).collect()
}

/// Zero all counters (keeps registrations).
pub fn reset_counters() {
    for cell in COUNTERS.lock().unwrap().iter() {
        cell.value.store(0, Ordering::Relaxed);
    }
}

static GAUGES: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());

/// Absolute-value gauge (last write wins).
pub fn gauge_set(name: &str, value: u64) {
    let mut gauges = GAUGES.lock().unwrap();
    match gauges.get_mut(name) {
        Some(slot) => *slot = value,
        None => {
            gauges.insert(name.to_owned(), value);
        }
    }
}

/// High-watermark gauge (max wins).
pub fn gauge_max(name: &str, value: u64) {
    let mut gauges = GAUGES.lock().unwrap();
    match gauges.get_mut(name) {
        Some(current) => *current = (*current).max(value),
        None => {
            gauges.insert(name.to_owned(), value);
        }
    }
}

/// Sorted `(name, value)` snapshot of all gauges.
pub fn gauge_snapshot() -> Vec<(String, u64)> {
    GAUGES.lock().unwrap().iter().map(|(n, v)| (n.clone(), *v)).collect()
}

/// Drop all gauges.
pub fn reset_gauges() {
    GAUGES.lock().unwrap().clear();
}
