//! The overhead contract, tested A/B in a dedicated binary (nothing
//! else in this process ever records): with the level forced off, the
//! macros must record nothing and allocate nothing — no thread buffer
//! ever comes into existence. Flipping to `spans` in the same process
//! then proves the very same callsites go live.

use kcore_check::sync::atomic::{AtomicU64, Ordering};
use kcore_obs::{counter, event, gauge_max, set_level, span, Level, MetricsRegistry, TraceReport};

#[test]
fn off_records_nothing_and_allocates_nothing() {
    set_level(Level::Off);
    let slot = AtomicU64::new(0);
    for i in 0..100u64 {
        let _s = span!("noop.span", i);
        event!("noop.event", i);
        counter!("noop.counter", 1);
        counter!(slot, "noop.routed", 1);
        gauge_max!("noop.peak", i);
    }
    kcore_obs::gauge("noop.gauge", 7);

    // The routed form still feeds the legacy stats slot...
    assert_eq!(slot.load(Ordering::Relaxed), 100);
    // ...but the obs layer saw none of it: no records, no metrics, and
    // — the allocation contract — no per-thread ring buffer was ever
    // created in this process.
    let report = TraceReport::capture();
    assert!(report.is_empty(), "off must record nothing");
    assert!(report.threads.is_empty());
    assert!(MetricsRegistry::counters().is_empty());
    assert!(MetricsRegistry::gauges().is_empty());
    assert_eq!(kcore_obs::thread_buffer_count(), 0, "off must not allocate ring buffers");

    // B side: the same callsites record once the level goes up.
    set_level(Level::Spans);
    {
        let _s = span!("noop.span", 1);
        counter!("noop.counter", 1);
    }
    let report = TraceReport::capture();
    assert_eq!(report.span_count("noop.span"), 1);
    assert!(report.counters.iter().any(|(n, v)| n == "noop.counter" && *v == 1));
    assert_eq!(kcore_obs::thread_buffer_count(), 1, "spans allocate exactly this thread's buffer");
    set_level(Level::Off);
}
