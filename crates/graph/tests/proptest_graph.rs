//! Property-based tests for the graph substrate: arbitrary edge lists
//! must always produce structurally valid CSR graphs, and every
//! serialization format must round-trip.

use kcore_graph::{gen, io, GraphBuilder};
use proptest::prelude::*;

/// Strategy producing an arbitrary (n, edge list) pair with duplicates
/// and self-loops allowed — exactly what GraphBuilder must clean up.
fn arb_edges() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..64).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..256))
    })
}

proptest! {
    #[test]
    fn builder_output_is_always_valid((n, edges) in arb_edges()) {
        let g = GraphBuilder::new(n).edges(edges).build();
        g.validate(); // panics on any invariant violation
    }

    #[test]
    fn builder_is_idempotent((n, edges) in arb_edges()) {
        // Rebuilding from the built graph's own edges is the identity.
        let g = GraphBuilder::new(n).edges(edges).build();
        let h = GraphBuilder::new(n).edges(g.edges()).build();
        prop_assert_eq!(g, h);
    }

    #[test]
    fn degree_sum_equals_arc_count((n, edges) in arb_edges()) {
        let g = GraphBuilder::new(n).edges(edges).build();
        let total: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, g.num_arcs());
        prop_assert_eq!(g.num_arcs() % 2, 0);
    }

    #[test]
    fn edge_list_round_trips((n, edges) in arb_edges()) {
        let g = GraphBuilder::new(n).edges(edges).build();
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let h = io::read_edge_list(&buf[..], n).unwrap();
        prop_assert_eq!(g, h);
    }

    #[test]
    fn binary_round_trips((n, edges) in arb_edges()) {
        let g = GraphBuilder::new(n).edges(edges).build();
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        let h = io::read_binary(&buf[..]).unwrap();
        prop_assert_eq!(g, h);
    }

    #[test]
    fn adjacency_graph_round_trips((n, edges) in arb_edges()) {
        let g = GraphBuilder::new(n).edges(edges).build();
        let mut buf = Vec::new();
        io::write_adjacency_graph(&g, &mut buf).unwrap();
        let h = io::read_adjacency_graph(&buf[..]).unwrap();
        prop_assert_eq!(g, h);
    }

    #[test]
    fn induced_subgraph_is_valid_and_monotone(
        (n, edges) in arb_edges(),
        mask_seed in any::<u64>(),
    ) {
        let g = GraphBuilder::new(n).edges(edges).build();
        let keep: Vec<bool> =
            (0..n).map(|v| (mask_seed >> (v % 64)) & 1 == 1).collect();
        let (sub, back) = g.induced_subgraph(&keep);
        sub.validate();
        prop_assert_eq!(sub.num_vertices(), keep.iter().filter(|&&b| b).count());
        prop_assert!(sub.num_edges() <= g.num_edges());
        // Every surviving edge exists in the original graph.
        for (u, v) in sub.edges() {
            prop_assert!(g.has_edge(back[u as usize], back[v as usize]));
        }
    }

    #[test]
    fn erdos_renyi_always_valid(n in 2usize..80, m in 0usize..200, seed in any::<u64>()) {
        let g = gen::erdos_renyi(n, m, seed);
        g.validate();
        prop_assert!(g.num_edges() <= m);
    }

    #[test]
    fn grid_coreness_prerequisites(r in 1usize..12, c in 1usize..12) {
        let g = gen::grid2d(r, c);
        g.validate();
        prop_assert_eq!(g.num_vertices(), r * c);
        prop_assert!(g.max_degree() <= 4);
    }

    #[test]
    fn knn_min_degree(n in 10usize..120, k in 1usize..5, seed in any::<u64>()) {
        let g = gen::knn(n, k, seed);
        g.validate();
        for v in g.vertices() {
            prop_assert!(g.degree(v) >= k);
        }
    }
}
