//! Edge-id view over a CSR graph.
//!
//! Vertex peeling works on the CSR arrays directly, but *edge* peeling
//! (k-truss decomposition) needs a dense id space over the undirected
//! edges: each edge `{u, v}` gets one id shared by both of its arcs, so
//! per-edge state (triangle support, settle round) lives in flat arrays
//! and the bucket structures can treat edges as opaque elements.
//!
//! [`EdgeIndex`] materializes that view in `O(n + m)` work: an
//! arc-position → edge-id map laid out parallel to the graph's arc
//! array, plus an edge-id → endpoints table. Ids are assigned in arc
//! order of the `u < v` direction, so they are deterministic for a given
//! graph and iteration over `0..num_edges()` visits edges sorted by
//! `(min endpoint, max endpoint)`.

use crate::csr::{CsrGraph, VertexId};
use kcore_parallel::primitives::exclusive_scan;
use rayon::prelude::*;

/// Dense undirected-edge ids over a [`CsrGraph`].
///
/// Built once per graph ([`EdgeIndex::build`]); immutable afterwards.
/// All lookups are `O(1)` except [`EdgeIndex::edge_id`], which binary
/// searches an adjacency list.
#[derive(Debug, Clone)]
pub struct EdgeIndex {
    /// `arc_edge[p]` is the edge id of the arc stored at position `p` of
    /// the graph's arc array (both directions of an edge map to the same
    /// id). Indexed via [`CsrGraph::arc_range`].
    arc_edge: Box<[u32]>,
    /// `endpoints[e]` is the edge's vertex pair with `endpoints[e][0] <
    /// endpoints[e][1]`.
    endpoints: Box<[[VertexId; 2]]>,
}

impl EdgeIndex {
    /// Assigns ids to every undirected edge of `g`.
    ///
    /// Parallel over vertices: forward arcs (`u -> v` with `u < v`) take
    /// consecutive ids from a per-vertex base computed by prefix scan;
    /// backward arcs find their id by binary searching the forward
    /// direction.
    pub fn build(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        // Forward-arc counts per vertex: neighbors above the vertex id.
        // Adjacency lists are strictly increasing, so this is a suffix.
        let fwd: Vec<usize> = (0..n)
            .into_par_iter()
            .map(|u| {
                let nbrs = g.neighbors(u as VertexId);
                nbrs.len() - nbrs.partition_point(|&w| w < u as VertexId)
            })
            .collect();
        let (base, m) = exclusive_scan(&fwd);
        debug_assert_eq!(m, g.num_edges());

        let mut arc_edge = vec![0u32; g.num_arcs()].into_boxed_slice();
        let mut endpoints = vec![[0 as VertexId; 2]; m].into_boxed_slice();
        // Disjoint per-vertex writes: vertex u owns its own arc range and
        // the endpoint slots of its forward ids [base[u], base[u]+fwd[u]).
        let arc_ptr = SendPtr(arc_edge.as_mut_ptr());
        let end_ptr = SendPtr(endpoints.as_mut_ptr());
        (0..n).into_par_iter().for_each(|u| {
            let nbrs = g.neighbors(u as VertexId);
            let range = g.arc_range(u as VertexId);
            let first_fwd = nbrs.partition_point(|&w| w < u as VertexId);
            let (arc_ptr, end_ptr) = (arc_ptr, end_ptr);
            for (i, &v) in nbrs.iter().enumerate() {
                let id = if i >= first_fwd {
                    // Forward arc: mint the id and record the endpoints.
                    let id = (base[u] + (i - first_fwd)) as u32;
                    // SAFETY: slot `id` is owned by vertex u (see above).
                    unsafe { end_ptr.0.add(id as usize).write([u as VertexId, v]) };
                    id
                } else {
                    // Backward arc: the forward direction lives in v's
                    // list, at v's forward offset of u. The split point
                    // is already known from the counts pass.
                    let vn = g.neighbors(v);
                    let v_first_fwd = vn.len() - fwd[v as usize];
                    let pos = vn.binary_search(&(u as VertexId)).expect("arc set is symmetric");
                    debug_assert!(pos >= v_first_fwd, "u > v must be a forward target of v");
                    (base[v as usize] + (pos - v_first_fwd)) as u32
                };
                // SAFETY: arc position `range.start + i` is owned by u.
                unsafe { arc_ptr.0.add(range.start + i).write(id) };
            }
        });
        Self { arc_edge, endpoints }
    }

    /// Assembles an index from pre-built arrays — the fused
    /// orientation+index pass in [`crate::dodg`] mints ids in exactly
    /// the order [`EdgeIndex::build`] would.
    #[inline]
    pub(crate) fn from_raw(arc_edge: Box<[u32]>, endpoints: Box<[[VertexId; 2]]>) -> Self {
        Self { arc_edge, endpoints }
    }

    /// Number of undirected edges (the size of the id space).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// Edge ids of `v`'s arcs, aligned with `g.neighbors(v)`:
    /// `edge_ids(g, v)[i]` is the id of edge `{v, g.neighbors(v)[i]}`.
    #[inline]
    pub fn edge_ids(&self, g: &CsrGraph, v: VertexId) -> &[u32] {
        &self.arc_edge[g.arc_range(v)]
    }

    /// The edge's endpoints `(u, v)` with `u < v`.
    #[inline]
    pub fn endpoints(&self, e: u32) -> (VertexId, VertexId) {
        let [u, v] = self.endpoints[e as usize];
        (u, v)
    }

    /// Id of edge `{u, v}`, or `None` if the edge is absent.
    pub fn edge_id(&self, g: &CsrGraph, u: VertexId, v: VertexId) -> Option<u32> {
        let pos = g.neighbors(u).binary_search(&v).ok()?;
        Some(self.arc_edge[g.arc_range(u).start + pos])
    }
}

/// Raw pointer wrapper for the disjoint-range parallel writes above.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: used only with the per-vertex disjoint-write discipline
// documented at the use sites.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, GraphBuilder};

    fn check_invariants(g: &CsrGraph) {
        let idx = EdgeIndex::build(g);
        assert_eq!(idx.num_edges(), g.num_edges());
        // Every arc maps to an id whose endpoints are the arc's ends,
        // and both directions agree.
        for u in g.vertices() {
            let ids = idx.edge_ids(g, u);
            assert_eq!(ids.len(), g.degree(u));
            for (&v, &e) in g.neighbors(u).iter().zip(ids) {
                let (a, b) = idx.endpoints(e);
                assert_eq!((a, b), (u.min(v), u.max(v)), "arc {u}->{v} got edge {e}");
                assert_eq!(idx.edge_id(g, u, v), Some(e));
                assert_eq!(idx.edge_id(g, v, u), Some(e));
            }
        }
        // Ids are a permutation of 0..m: every id minted exactly once.
        let mut seen = vec![false; idx.num_edges()];
        for (u, v) in g.edges() {
            let e = idx.edge_id(g, u, v).unwrap() as usize;
            assert!(!seen[e], "edge id {e} assigned twice");
            seen[e] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn triangle_ids() {
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 2), (0, 2)]).build();
        let idx = EdgeIndex::build(&g);
        // Arc order of forward arcs: (0,1), (0,2), (1,2).
        assert_eq!(idx.endpoints(0), (0, 1));
        assert_eq!(idx.endpoints(1), (0, 2));
        assert_eq!(idx.endpoints(2), (1, 2));
        check_invariants(&g);
    }

    #[test]
    fn absent_edges_have_no_id() {
        let g = GraphBuilder::new(4).edges([(0, 1), (2, 3)]).build();
        let idx = EdgeIndex::build(&g);
        assert_eq!(idx.edge_id(&g, 0, 2), None);
        assert_eq!(idx.edge_id(&g, 1, 3), None);
    }

    #[test]
    fn generator_families_index_cleanly() {
        check_invariants(&gen::grid2d(7, 9));
        check_invariants(&gen::complete(12));
        check_invariants(&gen::barabasi_albert(300, 3, 5));
        check_invariants(&gen::hcns(15));
        check_invariants(&gen::star(20));
        check_invariants(&CsrGraph::empty());
        check_invariants(&GraphBuilder::new(5).build());
    }
}
