//! Graph serialization: edge-list text, adjacency-graph text, and two
//! binary formats (plain and compressed) with zero-copy mmap loading.
//!
//! * **Edge list** — one `u v` pair per line, `#`-prefixed comments;
//!   the interchange format of SNAP and most graph repositories. The
//!   reader streams through [`StreamBuilder`] in bounded shards and
//!   understands SNAP `# Nodes: n Edges: m` and KONECT `% m n1 n2`
//!   header hints.
//! * **Adjacency graph** — the Ligra/GBBS `AdjacencyGraph` text format
//!   (header, n, m, offsets, edges), so graphs generated here can be fed
//!   to the original GBBS/Julienne binaries and vice versa.
//! * **`KCOREGR1` binary** — a little-endian dump of the plain CSR
//!   arrays. The layout is mmap-friendly: the 24-byte header leaves the
//!   `u64` offsets and `u32` edges on their natural alignment, so
//!   [`map_binary`] serves the file bytes directly as a [`CsrGraph`]
//!   with no decode or copy.
//! * **`KCOREGC1` binary** — the same idea for [`CompressedCsr`]: a
//!   32-byte header, `u64` byte-offsets, `u32` degrees, then the varint
//!   blocks. [`map_compressed`] maps it zero-copy.

use crate::builder::StreamBuilder;
use crate::compressed::CompressedCsr;
use crate::csr::{CsrGraph, VertexId};
use crate::mmap::{MmapRegion, RawSlice};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

const BINARY_MAGIC: &[u8; 8] = b"KCOREGR1";
const COMPRESSED_MAGIC: &[u8; 8] = b"KCOREGC1";

/// Writes `g` as an edge list (`u v` per line, each undirected edge once).
pub fn write_edge_list<W: Write>(g: &CsrGraph, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "# undirected graph: {} vertices, {} edges", g.num_vertices(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Parses SNAP (`# Nodes: n Edges: m`) and KONECT (`% m n1 n2`) comment
/// headers for a vertex-count hint; returns `None` for ordinary
/// comments.
fn header_vertex_hint(comment: &str) -> Option<usize> {
    let body = comment.trim_start_matches(['#', '%']).trim();
    if comment.starts_with('#') {
        // SNAP: "... Nodes: 75879 Edges: 508837 ..."
        let mut it = body.split_whitespace();
        while let Some(tok) = it.next() {
            if tok.eq_ignore_ascii_case("nodes:") {
                return it.next()?.parse().ok();
            }
        }
        None
    } else {
        // KONECT size line: "% m n1 n2" (edge count, then the two
        // dimension sizes; for undirected graphs both are n).
        let nums: Vec<usize> =
            body.split_whitespace().map(str::parse).collect::<Result<_, _>>().ok()?;
        match nums[..] {
            [_m, n1, n2] => Some(n1.max(n2)),
            _ => None,
        }
    }
}

/// Reads an edge list, streaming through [`StreamBuilder`] in bounded
/// shards — peak transient memory is one shard, not the whole arc list.
///
/// Lines starting with `#` or `%` are comments; SNAP `# Nodes: n` and
/// KONECT `% m n1 n2` headers pre-size the vertex count. Blank lines
/// are skipped. `n` is inferred as `max id + 1` unless the header hint
/// or `min_vertices` is larger.
pub fn read_edge_list<R: Read>(r: R, min_vertices: usize) -> io::Result<CsrGraph> {
    let r = BufReader::new(r);
    let mut b = StreamBuilder::growable();
    b.reserve_vertices(min_vertices);
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if t.starts_with('#') || t.starts_with('%') {
            if let Some(n) = header_vertex_hint(t) {
                b.reserve_vertices(n);
            }
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>| -> io::Result<VertexId> {
            s.and_then(|x| x.parse().ok()).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed edge at line {}", lineno + 1),
                )
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        b.push_edge(u, v);
    }
    Ok(b.build())
}

/// Writes `g` in the Ligra/GBBS `AdjacencyGraph` text format.
pub fn write_adjacency_graph<W: Write>(g: &CsrGraph, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "AdjacencyGraph")?;
    writeln!(w, "{}", g.num_vertices())?;
    writeln!(w, "{}", g.num_arcs())?;
    let mut offset = 0usize;
    for v in g.vertices() {
        writeln!(w, "{offset}")?;
        offset += g.degree(v);
    }
    for v in g.vertices() {
        for &u in g.neighbors(v) {
            writeln!(w, "{u}")?;
        }
    }
    w.flush()
}

/// Reads the Ligra/GBBS `AdjacencyGraph` text format.
pub fn read_adjacency_graph<R: Read>(r: R) -> io::Result<CsrGraph> {
    let r = BufReader::new(r);
    let mut tokens = Vec::new();
    for line in r.lines() {
        let line = line?;
        let t = line.trim();
        if !t.is_empty() {
            tokens.push(t.to_string());
        }
    }
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if tokens.first().map(String::as_str) != Some("AdjacencyGraph") {
        return Err(bad("missing AdjacencyGraph header"));
    }
    let n: usize = tokens.get(1).and_then(|s| s.parse().ok()).ok_or_else(|| bad("bad n"))?;
    let m: usize = tokens.get(2).and_then(|s| s.parse().ok()).ok_or_else(|| bad("bad m"))?;
    if tokens.len() != 3 + n + m {
        return Err(bad("token count mismatch"));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for t in &tokens[3..3 + n] {
        offsets.push(t.parse::<usize>().map_err(|_| bad("bad offset"))?);
    }
    offsets.push(m);
    let mut edges = Vec::with_capacity(m);
    for t in &tokens[3 + n..] {
        edges.push(t.parse::<VertexId>().map_err(|_| bad("bad edge"))?);
    }
    Ok(CsrGraph::from_parts(offsets, edges))
}

/// Writes `g` in the compact binary format: `KCOREGR1` magic, u64 n and
/// m, (n+1) u64 offsets, m u32 edges; little-endian. The 24-byte header
/// keeps both arrays naturally aligned for [`map_binary`].
pub fn write_binary<W: Write>(g: &CsrGraph, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(g.num_arcs() as u64).to_le_bytes())?;
    let mut off = 0u64;
    for v in g.vertices() {
        w.write_all(&off.to_le_bytes())?;
        off += g.degree(v) as u64;
    }
    w.write_all(&off.to_le_bytes())?;
    for v in g.vertices() {
        for &u in g.neighbors(v) {
            w.write_all(&u.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Reads the compact binary format written by [`write_binary`].
pub fn read_binary<R: Read>(r: R) -> io::Result<CsrGraph> {
    let mut r = BufReader::new(r);
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(bad("bad magic"));
    }
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b8)?;
    let n = u64::from_le_bytes(b8) as usize;
    r.read_exact(&mut b8)?;
    let m = u64::from_le_bytes(b8) as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        r.read_exact(&mut b8)?;
        offsets.push(u64::from_le_bytes(b8) as usize);
    }
    let mut edges = Vec::with_capacity(m);
    let mut b4 = [0u8; 4];
    for _ in 0..m {
        r.read_exact(&mut b4)?;
        edges.push(VertexId::from_le_bytes(b4));
    }
    if offsets.last() != Some(&m) {
        return Err(bad("offset/edge count mismatch"));
    }
    Ok(CsrGraph::from_parts_unchecked(offsets, edges))
}

/// Convenience: writes the binary format to a file path.
pub fn save_binary<P: AsRef<Path>>(g: &CsrGraph, path: P) -> io::Result<()> {
    write_binary(g, std::fs::File::create(path)?)
}

/// Convenience: reads the binary format from a file path.
pub fn load_binary<P: AsRef<Path>>(path: P) -> io::Result<CsrGraph> {
    read_binary(std::fs::File::open(path)?)
}

/// Memory-maps a `KCOREGR1` file as a zero-copy [`CsrGraph`].
///
/// The CSR arrays point straight into the read-only mapping: nothing is
/// decoded or copied, pages fault in lazily, and the OS can evict them
/// under pressure — datasets larger than RAM stay loadable. On targets
/// where the on-disk `u64` arrays cannot alias `usize` (non-64-bit or
/// big-endian) or without `mmap` (non-Unix), this transparently falls
/// back to the copying [`load_binary`].
pub fn map_binary<P: AsRef<Path>>(path: P) -> io::Result<CsrGraph> {
    map_binary_impl(path.as_ref())
}

#[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
fn map_binary_impl(path: &Path) -> io::Result<CsrGraph> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let region = Arc::new(MmapRegion::map_file(&std::fs::File::open(path)?)?);
    let bytes = region.bytes();
    if bytes.len() < 24 || &bytes[..8] != BINARY_MAGIC {
        return Err(bad("bad magic"));
    }
    let n = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    let m = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
    // On-disk u64 aliases usize here (the cfg gate above); RawSlice
    // checks bounds and alignment, turning truncation into an error.
    let offsets = RawSlice::<usize>::from_bytes(bytes, 24, n + 1)
        .ok_or_else(|| bad("truncated offset section"))?;
    let edges = RawSlice::<VertexId>::from_bytes(bytes, 24 + 8 * (n + 1), m)
        .ok_or_else(|| bad("truncated edge section"))?;
    if offsets.as_slice().last() != Some(&m) {
        return Err(bad("offset/edge count mismatch"));
    }
    Ok(CsrGraph::from_mapped(region, offsets, edges))
}

#[cfg(not(all(unix, target_pointer_width = "64", target_endian = "little")))]
fn map_binary_impl(path: &Path) -> io::Result<CsrGraph> {
    load_binary(path)
}

/// Writes `c` in the compressed binary format: `KCOREGC1` magic, u64 n,
/// u64 arcs, u64 block-section length (a 32-byte header), then (n+1)
/// u64 byte-offsets, n u32 degrees, the varint blocks, and 8 zero pad
/// bytes (the decoder's over-read margin — see
/// `compressed::BLOCK_PAD`); little-endian. Every section lands on its
/// natural alignment for [`map_compressed`].
pub fn write_compressed<W: Write>(c: &CompressedCsr, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(COMPRESSED_MAGIC)?;
    w.write_all(&(c.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(c.num_arcs() as u64).to_le_bytes())?;
    w.write_all(&(c.blocks().len() as u64).to_le_bytes())?;
    for &off in c.offsets() {
        w.write_all(&(off as u64).to_le_bytes())?;
    }
    for &d in c.degree_table() {
        w.write_all(&d.to_le_bytes())?;
    }
    w.write_all(c.blocks())?;
    w.write_all(&[0u8; crate::compressed::BLOCK_PAD])?;
    w.flush()
}

/// Reads the compressed binary format written by [`write_compressed`].
pub fn read_compressed<R: Read>(r: R) -> io::Result<CompressedCsr> {
    let mut r = BufReader::new(r);
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != COMPRESSED_MAGIC {
        return Err(bad("bad magic"));
    }
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b8)?;
    let n = u64::from_le_bytes(b8) as usize;
    r.read_exact(&mut b8)?;
    let arcs = u64::from_le_bytes(b8) as usize;
    r.read_exact(&mut b8)?;
    let blocks_len = u64::from_le_bytes(b8) as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        r.read_exact(&mut b8)?;
        offsets.push(u64::from_le_bytes(b8) as usize);
    }
    if offsets.last() != Some(&blocks_len) {
        return Err(bad("offset/block length mismatch"));
    }
    let mut degrees = Vec::with_capacity(n);
    let mut b4 = [0u8; 4];
    for _ in 0..n {
        r.read_exact(&mut b4)?;
        degrees.push(u32::from_le_bytes(b4));
    }
    if degrees.iter().map(|&d| d as usize).sum::<usize>() != arcs {
        return Err(bad("degree/arc count mismatch"));
    }
    let mut blocks = vec![0u8; blocks_len];
    r.read_exact(&mut blocks)?;
    let mut pad = [0u8; crate::compressed::BLOCK_PAD];
    r.read_exact(&mut pad).map_err(|_| bad("missing block pad section"))?;
    // Full block validation up front: the peel-loop decoder reads the
    // blocks unchecked, so untrusted bytes must be proven well-formed
    // before they are trusted.
    crate::compressed::validate_blocks(&offsets, &degrees, &blocks)
        .map_err(|e| bad(&format!("malformed block section: {e}")))?;
    Ok(CompressedCsr::from_parts_unchecked(arcs, offsets, degrees, blocks))
}

/// Convenience: writes the compressed format to a file path.
pub fn save_compressed<P: AsRef<Path>>(c: &CompressedCsr, path: P) -> io::Result<()> {
    write_compressed(c, std::fs::File::create(path)?)
}

/// Convenience: reads the compressed format from a file path.
pub fn load_compressed<P: AsRef<Path>>(path: P) -> io::Result<CompressedCsr> {
    read_compressed(std::fs::File::open(path)?)
}

/// Memory-maps a `KCOREGC1` file as a zero-copy [`CompressedCsr`] —
/// offsets, degrees, and varint blocks all point into the mapping.
/// Falls back to the copying [`load_compressed`] on targets without
/// zero-copy support (see [`map_binary`]).
pub fn map_compressed<P: AsRef<Path>>(path: P) -> io::Result<CompressedCsr> {
    map_compressed_impl(path.as_ref())
}

#[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
fn map_compressed_impl(path: &Path) -> io::Result<CompressedCsr> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let region = Arc::new(MmapRegion::map_file(&std::fs::File::open(path)?)?);
    let bytes = region.bytes();
    if bytes.len() < 32 || &bytes[..8] != COMPRESSED_MAGIC {
        return Err(bad("bad magic"));
    }
    let n = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    let arcs = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
    let blocks_len = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
    let offsets = RawSlice::<usize>::from_bytes(bytes, 32, n + 1)
        .ok_or_else(|| bad("truncated offset section"))?;
    let degrees_at = 32 + 8 * (n + 1);
    let degrees = RawSlice::<u32>::from_bytes(bytes, degrees_at, n)
        .ok_or_else(|| bad("truncated degree section"))?;
    let blocks_at = degrees_at + 4 * n;
    let blocks = RawSlice::<u8>::from_bytes(bytes, blocks_at, blocks_len)
        .ok_or_else(|| bad("truncated block section"))?;
    // The decoder may read one byte past the blocks; the format's pad
    // bytes must be inside the mapping to keep that load backed.
    if bytes.len() < blocks_at + blocks_len + crate::compressed::BLOCK_PAD {
        return Err(bad("missing block pad section"));
    }
    if offsets.as_slice().last() != Some(&blocks_len) {
        return Err(bad("offset/block length mismatch"));
    }
    if degrees.as_slice().iter().map(|&d| d as usize).sum::<usize>() != arcs {
        return Err(bad("degree/arc count mismatch"));
    }
    // Same up-front validation as the copying reader: the unchecked
    // hot-path decoder must never see a malformed mapped block.
    crate::compressed::validate_blocks(offsets.as_slice(), degrees.as_slice(), blocks.as_slice())
        .map_err(|e| bad(&format!("malformed block section: {e}")))?;
    Ok(CompressedCsr::from_mapped(region, arcs, offsets, degrees, blocks))
}

#[cfg(not(all(unix, target_pointer_width = "64", target_endian = "little")))]
fn map_compressed_impl(path: &Path) -> io::Result<CompressedCsr> {
    load_compressed(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn sample() -> CsrGraph {
        gen::mesh(7, 9)
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("kcore_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn edge_list_round_trip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(&buf[..], g.num_vertices()).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn edge_list_reader_handles_comments_and_blanks() {
        let text = "# comment\n\n0 1\n% another comment\n1 2\n";
        let g = read_edge_list(text.as_bytes(), 0).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_reader_rejects_garbage() {
        assert!(read_edge_list("0 x\n".as_bytes(), 0).is_err());
        assert!(read_edge_list("0\n".as_bytes(), 0).is_err());
    }

    #[test]
    fn edge_list_snap_header_sizes_vertices() {
        // SNAP-style header declares more vertices than the edges touch.
        let text = "# Directed graph (each unordered pair of nodes is saved once)\n\
                    # Nodes: 7 Edges: 2\n0 1\n1 2\n";
        let g = read_edge_list(text.as_bytes(), 0).unwrap();
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_konect_header_sizes_vertices() {
        let text = "% sym unweighted\n% 2 6 6\n0 1\n1 2\n";
        let g = read_edge_list(text.as_bytes(), 0).unwrap();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn adjacency_graph_round_trip() {
        let g = sample();
        let mut buf = Vec::new();
        write_adjacency_graph(&g, &mut buf).unwrap();
        let h = read_adjacency_graph(&buf[..]).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn adjacency_graph_rejects_bad_header() {
        assert!(read_adjacency_graph("NotAGraph\n1\n0\n0\n".as_bytes()).is_err());
    }

    #[test]
    fn binary_round_trip() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let h = read_binary(&buf[..]).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn binary_file_round_trip() {
        let g = sample();
        let path = temp_path("mesh.bin");
        save_binary(&g, &path).unwrap();
        let h = load_binary(&path).unwrap();
        assert_eq!(g, h);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mapped_binary_equals_loaded() {
        let g = gen::barabasi_albert(400, 3, 9);
        let path = temp_path("mapped.bin");
        save_binary(&g, &path).unwrap();
        let mapped = map_binary(&path).unwrap();
        assert_eq!(mapped, g);
        #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
        assert!(mapped.is_mapped());
        mapped.validate();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mapped_binary_rejects_truncation_and_bad_magic() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let full = temp_path("trunc_full.bin");
        std::fs::write(&full, &buf).unwrap();
        assert!(map_binary(&full).is_ok());

        let truncated = temp_path("trunc_cut.bin");
        std::fs::write(&truncated, &buf[..buf.len() - 3]).unwrap();
        assert!(map_binary(&truncated).is_err(), "truncated edge section must fail");

        let header_only = temp_path("trunc_header.bin");
        std::fs::write(&header_only, &buf[..10]).unwrap();
        assert!(map_binary(&header_only).is_err(), "truncated header must fail");

        let mut corrupt = buf.clone();
        corrupt[0] = b'X';
        let bad_magic = temp_path("trunc_magic.bin");
        std::fs::write(&bad_magic, &corrupt).unwrap();
        assert!(map_binary(&bad_magic).is_err(), "corrupt magic must fail");

        for p in [full, truncated, header_only, bad_magic] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn compressed_round_trip() {
        let g = gen::barabasi_albert(300, 4, 2);
        let c = CompressedCsr::from_graph(&g);
        let mut buf = Vec::new();
        write_compressed(&c, &mut buf).unwrap();
        let d = read_compressed(&buf[..]).unwrap();
        assert_eq!(d.decompress(), g);
    }

    #[test]
    fn compressed_rejects_bad_magic_and_truncation() {
        let c = CompressedCsr::from_graph(&sample());
        let mut buf = Vec::new();
        write_compressed(&c, &mut buf).unwrap();
        let mut corrupt = buf.clone();
        corrupt[3] = b'?';
        assert!(read_compressed(&corrupt[..]).is_err());
        assert!(read_compressed(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn mapped_compressed_equals_original() {
        let g = gen::rmat(8, 10, 0.55, 0.2, 0.2, 4);
        let c = CompressedCsr::from_graph(&g);
        let path = temp_path("mapped.cgr");
        save_compressed(&c, &path).unwrap();
        let mapped = map_compressed(&path).unwrap();
        assert_eq!(mapped.num_arcs(), g.num_arcs());
        assert_eq!(mapped.decompress(), g);
        #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
        assert!(mapped.is_mapped());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mapped_compressed_rejects_truncation() {
        let c = CompressedCsr::from_graph(&sample());
        let mut buf = Vec::new();
        write_compressed(&c, &mut buf).unwrap();
        let cut = temp_path("cut.cgr");
        std::fs::write(&cut, &buf[..buf.len() - 2]).unwrap();
        assert!(map_compressed(&cut).is_err());
        let _ = std::fs::remove_file(&cut);
    }
}
