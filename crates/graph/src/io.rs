//! Graph serialization: edge-list text, adjacency-graph text, and a
//! compact binary format.
//!
//! * **Edge list** — one `u v` pair per line, `#`-prefixed comments;
//!   the interchange format of SNAP and most graph repositories.
//! * **Adjacency graph** — the Ligra/GBBS `AdjacencyGraph` text format
//!   (header, n, m, offsets, edges), so graphs generated here can be fed
//!   to the original GBBS/Julienne binaries and vice versa.
//! * **Binary** — a little-endian dump of the CSR arrays with a magic
//!   header; the fastest way to cache generated benchmark inputs.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const BINARY_MAGIC: &[u8; 8] = b"KCOREGR1";

/// Writes `g` as an edge list (`u v` per line, each undirected edge once).
pub fn write_edge_list<W: Write>(g: &CsrGraph, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "# undirected graph: {} vertices, {} edges", g.num_vertices(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Reads an edge list. Lines starting with `#` or `%` are comments;
/// blank lines are skipped. `n` is inferred as `max id + 1` unless a
/// larger `min_vertices` is given.
pub fn read_edge_list<R: Read>(r: R, min_vertices: usize) -> io::Result<CsrGraph> {
    let r = BufReader::new(r);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id: usize = 0;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>| -> io::Result<VertexId> {
            s.and_then(|x| x.parse().ok()).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed edge at line {}", lineno + 1),
                )
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        max_id = max_id.max(u as usize).max(v as usize);
        edges.push((u, v));
    }
    let n = if edges.is_empty() { min_vertices } else { (max_id + 1).max(min_vertices) };
    Ok(GraphBuilder::new(n).edges(edges).build())
}

/// Writes `g` in the Ligra/GBBS `AdjacencyGraph` text format.
pub fn write_adjacency_graph<W: Write>(g: &CsrGraph, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "AdjacencyGraph")?;
    writeln!(w, "{}", g.num_vertices())?;
    writeln!(w, "{}", g.num_arcs())?;
    let mut offset = 0usize;
    for v in g.vertices() {
        writeln!(w, "{offset}")?;
        offset += g.degree(v);
    }
    for v in g.vertices() {
        for &u in g.neighbors(v) {
            writeln!(w, "{u}")?;
        }
    }
    w.flush()
}

/// Reads the Ligra/GBBS `AdjacencyGraph` text format.
pub fn read_adjacency_graph<R: Read>(r: R) -> io::Result<CsrGraph> {
    let r = BufReader::new(r);
    let mut tokens = Vec::new();
    for line in r.lines() {
        let line = line?;
        let t = line.trim();
        if !t.is_empty() {
            tokens.push(t.to_string());
        }
    }
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if tokens.first().map(String::as_str) != Some("AdjacencyGraph") {
        return Err(bad("missing AdjacencyGraph header"));
    }
    let n: usize = tokens.get(1).and_then(|s| s.parse().ok()).ok_or_else(|| bad("bad n"))?;
    let m: usize = tokens.get(2).and_then(|s| s.parse().ok()).ok_or_else(|| bad("bad m"))?;
    if tokens.len() != 3 + n + m {
        return Err(bad("token count mismatch"));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for t in &tokens[3..3 + n] {
        offsets.push(t.parse::<usize>().map_err(|_| bad("bad offset"))?);
    }
    offsets.push(m);
    let mut edges = Vec::with_capacity(m);
    for t in &tokens[3 + n..] {
        edges.push(t.parse::<VertexId>().map_err(|_| bad("bad edge"))?);
    }
    Ok(CsrGraph::from_parts(offsets, edges))
}

/// Writes `g` in the compact binary format (`KCOREGR1` magic, u64 n and
/// m, u64 offsets, u32 edges; little-endian).
pub fn write_binary<W: Write>(g: &CsrGraph, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(g.num_arcs() as u64).to_le_bytes())?;
    let mut off = 0u64;
    for v in g.vertices() {
        w.write_all(&off.to_le_bytes())?;
        off += g.degree(v) as u64;
    }
    w.write_all(&off.to_le_bytes())?;
    for v in g.vertices() {
        for &u in g.neighbors(v) {
            w.write_all(&u.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Reads the compact binary format written by [`write_binary`].
pub fn read_binary<R: Read>(r: R) -> io::Result<CsrGraph> {
    let mut r = BufReader::new(r);
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(bad("bad magic"));
    }
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b8)?;
    let n = u64::from_le_bytes(b8) as usize;
    r.read_exact(&mut b8)?;
    let m = u64::from_le_bytes(b8) as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        r.read_exact(&mut b8)?;
        offsets.push(u64::from_le_bytes(b8) as usize);
    }
    let mut edges = Vec::with_capacity(m);
    let mut b4 = [0u8; 4];
    for _ in 0..m {
        r.read_exact(&mut b4)?;
        edges.push(VertexId::from_le_bytes(b4));
    }
    if offsets.last() != Some(&m) {
        return Err(bad("offset/edge count mismatch"));
    }
    Ok(CsrGraph::from_parts_unchecked(offsets, edges))
}

/// Convenience: writes the binary format to a file path.
pub fn save_binary<P: AsRef<Path>>(g: &CsrGraph, path: P) -> io::Result<()> {
    write_binary(g, std::fs::File::create(path)?)
}

/// Convenience: reads the binary format from a file path.
pub fn load_binary<P: AsRef<Path>>(path: P) -> io::Result<CsrGraph> {
    read_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn sample() -> CsrGraph {
        gen::mesh(7, 9)
    }

    #[test]
    fn edge_list_round_trip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(&buf[..], g.num_vertices()).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn edge_list_reader_handles_comments_and_blanks() {
        let text = "# comment\n\n0 1\n% another\n1 2\n";
        let g = read_edge_list(text.as_bytes(), 0).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_reader_rejects_garbage() {
        assert!(read_edge_list("0 x\n".as_bytes(), 0).is_err());
        assert!(read_edge_list("0\n".as_bytes(), 0).is_err());
    }

    #[test]
    fn adjacency_graph_round_trip() {
        let g = sample();
        let mut buf = Vec::new();
        write_adjacency_graph(&g, &mut buf).unwrap();
        let h = read_adjacency_graph(&buf[..]).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn adjacency_graph_rejects_bad_header() {
        assert!(read_adjacency_graph("NotAGraph\n1\n0\n0\n".as_bytes()).is_err());
    }

    #[test]
    fn binary_round_trip() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let h = read_binary(&buf[..]).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn binary_file_round_trip() {
        let g = sample();
        let dir = std::env::temp_dir().join("kcore_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mesh.bin");
        save_binary(&g, &path).unwrap();
        let h = load_binary(&path).unwrap();
        assert_eq!(g, h);
        let _ = std::fs::remove_file(&path);
    }
}
