//! Graph substrate for parallel k-core decomposition.
//!
//! This crate provides everything the decomposition algorithms need from
//! the input side:
//!
//! * [`CsrGraph`] — an immutable, cache-friendly compressed-sparse-row
//!   representation of an undirected graph (stored as symmetric arcs),
//!   heap-allocated or pointing zero-copy into a read-only file mapping.
//! * [`GraphBuilder`] — turns arbitrary edge lists into a [`CsrGraph`],
//!   symmetrizing, deduplicating, and dropping self-loops along the way.
//! * [`StreamBuilder`] — the large-input ingestion path: bounded edge
//!   shards finished by a parallel counting sort, so building never
//!   holds one giant arc vector.
//! * [`GraphBackend`] — the storage seam the peel algorithms run over:
//!   plain CSR, the [`OverlayGraph`] delta view, or the Ligra+-style
//!   delta+varint [`CompressedCsr`] (selected in CI via the
//!   `KCORE_BACKEND` env override, see [`env_backend`]). The
//!   triangle-side types ([`Dodg`], [`TriangleCtx`], [`EdgeIndex`])
//!   intentionally keep requiring the plain backend — their kernels
//!   lean on random access into raw arc arrays.
//! * [`OverlayGraph`] — a mutable edge-delta overlay over an immutable
//!   CSR base, with threshold compaction through the parallel builder;
//!   the logical-graph type behind batch-dynamic maintenance.
//! * [`gen`] — synthetic generators covering every graph family used in
//!   the paper's evaluation (grids, cubes, meshes, road-like networks,
//!   RMAT / Barabási–Albert power-law graphs, planted-core web-like
//!   graphs, k-NN graphs, and the adversarial HCNS construction).
//! * [`io`] — edge-list text, adjacency-graph text, and compact binary
//!   serialization.
//! * [`stats`] — degree statistics used by the benchmark tables.
//! * [`edges`] / [`triangles`] — the edge-id view ([`EdgeIndex`]) and
//!   parallel triangle primitives that back *edge* peeling (k-truss):
//!   dense undirected-edge ids over the CSR arcs, per-edge triangle
//!   supports, and per-edge triangle enumeration.
//! * [`dodg`] — the degree-ordered directed view ([`Dodg`]) and the
//!   fused triangle setup ([`TriangleCtx`]): one parallel pass builds
//!   the edge ids, the orientation, and the initial supports, and the
//!   per-edge enumeration dispatches hybrid intersection kernels with
//!   lazily built hub bitmaps.
//!
//! The paper's graphs reach terabyte scale; this crate targets
//! laptop-scale analogs of the same families (see `DESIGN.md` §2 for the
//! substitution argument), so vertex ids are [`u32`].

pub mod backend;
pub mod builder;
pub mod compressed;
pub mod csr;
pub mod dodg;
pub mod edges;
pub mod gen;
pub mod io;
pub mod mmap;
pub mod overlay;
pub mod stats;
pub mod triangles;

pub use backend::{env_backend, BackendKind, GraphBackend};
pub use builder::{GraphBuilder, StreamBuilder};
pub use compressed::CompressedCsr;
pub use csr::{CsrGraph, VertexId};
pub use dodg::{Dodg, TriangleCtx};
pub use edges::EdgeIndex;
pub use mmap::MmapRegion;
pub use overlay::OverlayGraph;
pub use stats::{GraphStats, MemoryFootprint};
