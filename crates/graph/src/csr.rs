//! Compressed-sparse-row graph representation.
//!
//! [`CsrGraph`] is the single graph type consumed by every algorithm in
//! this workspace. It stores an undirected graph as a symmetric set of
//! arcs: every undirected edge `{u, v}` appears both as `u -> v` and
//! `v -> u`. This matches the convention of the paper (directed inputs
//! are symmetrized, and `m` counts arcs, as in GBBS / Ligra).
//!
//! The arrays live either on the heap (`Owned`, the normal case) or
//! inside a read-only file mapping (`Mapped`, produced by
//! [`crate::io::map_binary`]): the `KCOREGR1` binary layout puts both
//! arrays on their natural alignment, so a mapped graph is a
//! first-class `CsrGraph` — same API, same algorithms — whose pages
//! the OS faults in lazily and can evict under pressure, which is what
//! lets datasets larger than RAM peel at all.

use crate::mmap::{MmapRegion, RawSlice};
use rayon::prelude::*;
use std::sync::Arc;

/// Vertex identifier.
///
/// `u32` keeps adjacency arrays half the size of `usize` indices, which
/// matters for the memory-bandwidth-bound peeling loops. Laptop-scale
/// reproductions never approach the 2^32 vertex limit.
pub type VertexId = u32;

/// An immutable undirected graph in compressed-sparse-row form.
///
/// Construction goes through [`crate::GraphBuilder`] /
/// [`crate::StreamBuilder`], the generators in [`crate::gen`], or the
/// readers in [`crate::io`]; all of them guarantee the structural
/// invariants listed on [`CsrGraph::from_parts`].
// Serde derives were dropped with the offline dependency set; the
// binary/text formats in `crate::io` cover (de)serialization needs.
#[derive(Clone)]
pub struct CsrGraph {
    storage: Storage,
}

/// Where the CSR arrays live. `offsets[v]..offsets[v + 1]` indexes the
/// edge array with the neighbors of `v`; offsets has length `n + 1`
/// and ends at the arc count.
#[derive(Clone)]
enum Storage {
    /// Heap-allocated arrays — everything built in-process.
    Owned { offsets: Box<[usize]>, edges: Box<[VertexId]> },
    /// Slices into a shared read-only file mapping. The on-disk `u64`
    /// offsets alias `usize` directly (the mapped loader is gated to
    /// 64-bit little-endian targets), so there is no decode step at
    /// all — the file bytes *are* the working arrays.
    Mapped { region: Arc<MmapRegion>, offsets: RawSlice<usize>, edges: RawSlice<VertexId> },
}

impl CsrGraph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// # Invariants (checked)
    ///
    /// * `offsets` is non-empty, starts at 0, is non-decreasing, and ends
    ///   at `edges.len()`.
    /// * every target in `edges` is `< n`.
    /// * no self-loops.
    /// * each adjacency list is strictly increasing (sorted, no duplicate
    ///   edges).
    /// * the arc set is symmetric (`u -> v` implies `v -> u`).
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated. Use the builder for untrusted
    /// input; this constructor is for generators that produce CSR form
    /// directly.
    pub fn from_parts(offsets: Vec<usize>, edges: Vec<VertexId>) -> Self {
        let g = Self {
            storage: Storage::Owned {
                offsets: offsets.into_boxed_slice(),
                edges: edges.into_boxed_slice(),
            },
        };
        g.validate();
        g
    }

    /// Builds a graph from CSR arrays without checking invariants.
    ///
    /// Intended for deserialization of data this crate wrote itself and
    /// for generators whose output is validated by construction (and by
    /// their unit tests). Violating the invariants does not cause memory
    /// unsafety — neighbor access is bounds-checked — but algorithms may
    /// return wrong corenesses.
    pub fn from_parts_unchecked(offsets: Vec<usize>, edges: Vec<VertexId>) -> Self {
        debug_assert!(!offsets.is_empty() && *offsets.last().unwrap() == edges.len());
        Self {
            storage: Storage::Owned {
                offsets: offsets.into_boxed_slice(),
                edges: edges.into_boxed_slice(),
            },
        }
    }

    /// Wraps pre-validated slices inside a file mapping (see
    /// [`crate::io::map_binary`], which checks the header and section
    /// bounds before calling this). Trusts content invariants exactly
    /// like [`CsrGraph::from_parts_unchecked`].
    pub(crate) fn from_mapped(
        region: Arc<MmapRegion>,
        offsets: RawSlice<usize>,
        edges: RawSlice<VertexId>,
    ) -> Self {
        Self { storage: Storage::Mapped { region, offsets, edges } }
    }

    /// Whether this graph's arrays live in a read-only file mapping.
    pub fn is_mapped(&self) -> bool {
        matches!(self.storage, Storage::Mapped { .. })
    }

    /// The empty graph (no vertices, no edges).
    pub fn empty() -> Self {
        Self::from_parts_unchecked(vec![0], Vec::new())
    }

    /// The offsets array (`n + 1` entries, ends at the arc count).
    #[inline]
    fn offsets(&self) -> &[usize] {
        match &self.storage {
            Storage::Owned { offsets, .. } => offsets,
            Storage::Mapped { offsets, .. } => offsets.as_slice(),
        }
    }

    /// The concatenated per-vertex-sorted adjacency array.
    #[inline]
    fn edge_array(&self) -> &[VertexId] {
        match &self.storage {
            Storage::Owned { edges, .. } => edges,
            Storage::Mapped { edges, .. } => edges.as_slice(),
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets().len() - 1
    }

    /// Number of directed arcs `m` (twice the number of undirected edges).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.edge_array().len()
    }

    /// Number of undirected edges (`num_arcs / 2`).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edge_array().len() / 2
    }

    /// Degree of vertex `v` in the original graph.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        let offsets = self.offsets();
        offsets[v + 1] - offsets[v]
    }

    /// The sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        let offsets = self.offsets();
        &self.edge_array()[offsets[v]..offsets[v + 1]]
    }

    /// The range of arc positions belonging to `v` — indexes any array
    /// laid out parallel to the arc array, such as
    /// [`crate::EdgeIndex`]'s arc→edge-id map.
    #[inline]
    pub fn arc_range(&self, v: VertexId) -> std::ops::Range<usize> {
        let v = v as usize;
        let offsets = self.offsets();
        offsets[v]..offsets[v + 1]
    }

    /// Whether the undirected edge `{u, v}` is present (binary search).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Parallel iterator over all vertex ids.
    pub fn par_vertices(&self) -> impl IndexedParallelIterator<Item = VertexId> + '_ {
        (0..self.num_vertices() as VertexId).into_par_iter()
    }

    /// Iterator over undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .into_par_iter()
            .map(|v| self.degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `m / n` (arcs per vertex); 0.0 for the empty graph.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_arcs() as f64 / self.num_vertices() as f64
        }
    }

    /// Degrees of all vertices as a vector (parallel).
    pub fn degrees(&self) -> Vec<u32> {
        (0..self.num_vertices())
            .into_par_iter()
            .map(|v| self.degree(v as VertexId) as u32)
            .collect()
    }

    /// The subgraph induced by the vertices for which `keep` is true.
    ///
    /// Returns the induced subgraph together with the mapping from new
    /// vertex ids to original ids. Vertices keep their relative order.
    pub fn induced_subgraph(&self, keep: &[bool]) -> (CsrGraph, Vec<VertexId>) {
        assert_eq!(keep.len(), self.num_vertices(), "keep mask length mismatch");
        // Old-id -> new-id mapping; u32::MAX marks dropped vertices.
        let mut remap = vec![VertexId::MAX; self.num_vertices()];
        let mut back = Vec::new();
        for v in 0..self.num_vertices() {
            if keep[v] {
                remap[v] = back.len() as VertexId;
                back.push(v as VertexId);
            }
        }
        let mut offsets = Vec::with_capacity(back.len() + 1);
        offsets.push(0usize);
        let mut edges = Vec::new();
        for &old in &back {
            for &nbr in self.neighbors(old) {
                if keep[nbr as usize] {
                    edges.push(remap[nbr as usize]);
                }
            }
            offsets.push(edges.len());
        }
        (CsrGraph::from_parts_unchecked(offsets, edges), back)
    }

    /// Checks all structural invariants; panics with a description on
    /// the first violation. Used by [`CsrGraph::from_parts`] and tests.
    pub fn validate(&self) {
        let n = self.num_vertices();
        let offsets = self.offsets();
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().unwrap(),
            self.edge_array().len(),
            "offsets must end at the arc count"
        );
        for v in 0..n {
            assert!(offsets[v] <= offsets[v + 1], "offsets must be non-decreasing at vertex {v}");
            let nbrs = self.neighbors(v as VertexId);
            for w in nbrs.windows(2) {
                assert!(
                    w[0] < w[1],
                    "adjacency of {v} must be strictly increasing: {} !< {}",
                    w[0],
                    w[1]
                );
            }
            for &u in nbrs {
                assert!((u as usize) < n, "neighbor {u} of {v} out of range");
                assert_ne!(u as usize, v, "self-loop at {v}");
            }
        }
        // Symmetry: u -> v implies v -> u.
        let asymmetric = (0..n as VertexId)
            .into_par_iter()
            .any(|u| self.neighbors(u).iter().any(|&v| !self.has_edge(v, u)));
        assert!(!asymmetric, "arc set must be symmetric");
    }
}

impl crate::backend::GraphBackend for CsrGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.num_vertices()
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        self.num_arcs()
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    #[inline]
    fn neighbors_slice(&self, v: VertexId) -> &[VertexId] {
        self.neighbors(v)
    }

    fn memory(&self) -> crate::stats::MemoryFootprint {
        crate::stats::MemoryFootprint {
            backend: if self.is_mapped() { "csr-mmap" } else { "csr" },
            offsets_bytes: std::mem::size_of_val(self.offsets()),
            neighbor_bytes: self.num_arcs() * std::mem::size_of::<VertexId>(),
            aux_bytes: 0,
            arcs: self.num_arcs(),
        }
    }

    fn as_plain(&self) -> Option<&CsrGraph> {
        Some(self)
    }
}

impl PartialEq for CsrGraph {
    fn eq(&self, other: &Self) -> bool {
        // Storage flavor is irrelevant: a mapped graph equals its
        // owned twin.
        self.offsets() == other.offsets() && self.edge_array() == other.edge_array()
    }
}

impl Eq for CsrGraph {}

impl std::fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsrGraph")
            .field("n", &self.num_vertices())
            .field("arcs", &self.num_arcs())
            .field("max_degree", &self.max_degree())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

// Keep the `region` field from tripping the dead-code lint: it exists
// purely to own the mapping for the raw slices' lifetime.
impl Storage {
    #[allow(dead_code)]
    fn region(&self) -> Option<&Arc<MmapRegion>> {
        match self {
            Storage::Owned { .. } => None,
            Storage::Mapped { region, .. } => Some(region),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> CsrGraph {
        GraphBuilder::new(3).edges([(0, 1), (1, 2), (0, 2)]).build()
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_arcs(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        g.validate();
    }

    #[test]
    fn triangle_basics() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.avg_degree(), 2.0);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn degrees_vector_matches_degree() {
        let g = triangle();
        assert_eq!(g.degrees(), vec![2, 2, 2]);
    }

    #[test]
    fn induced_subgraph_drops_vertices_and_their_edges() {
        // Path 0-1-2-3; keep {0, 1, 3}.
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3)]).build();
        let (sub, back) = g.induced_subgraph(&[true, true, false, true]);
        assert_eq!(back, vec![0, 1, 3]);
        assert_eq!(sub.num_vertices(), 3);
        // Only edge {0, 1} survives.
        assert_eq!(sub.num_edges(), 1);
        assert!(sub.has_edge(0, 1));
        assert_eq!(sub.degree(2), 0);
        sub.validate();
    }

    #[test]
    fn induced_subgraph_of_everything_is_identity() {
        let g = triangle();
        let (sub, back) = g.induced_subgraph(&[true; 3]);
        assert_eq!(back, vec![0, 1, 2]);
        assert_eq!(sub, g);
    }

    #[test]
    fn memory_footprint_counts_both_arrays() {
        use crate::backend::GraphBackend;
        let g = triangle();
        let m = GraphBackend::memory(&g);
        assert_eq!(m.offsets_bytes, 4 * std::mem::size_of::<usize>());
        assert_eq!(m.neighbor_bytes, 6 * 4);
        assert_eq!(m.aux_bytes, 0);
        assert_eq!(m.total_bytes(), m.offsets_bytes + m.neighbor_bytes);
        assert!((m.bytes_per_edge() - m.total_bytes() as f64 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn from_parts_rejects_self_loops() {
        CsrGraph::from_parts(vec![0, 1], vec![0]);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn from_parts_rejects_asymmetric_arcs() {
        CsrGraph::from_parts(vec![0, 1, 1], vec![1]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_parts_rejects_duplicate_arcs() {
        CsrGraph::from_parts(vec![0, 2, 4], vec![1, 1, 0, 0]);
    }
}
