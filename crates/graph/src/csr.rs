//! Compressed-sparse-row graph representation.
//!
//! [`CsrGraph`] is the single graph type consumed by every algorithm in
//! this workspace. It stores an undirected graph as a symmetric set of
//! arcs: every undirected edge `{u, v}` appears both as `u -> v` and
//! `v -> u`. This matches the convention of the paper (directed inputs
//! are symmetrized, and `m` counts arcs, as in GBBS / Ligra).

use rayon::prelude::*;

/// Vertex identifier.
///
/// `u32` keeps adjacency arrays half the size of `usize` indices, which
/// matters for the memory-bandwidth-bound peeling loops. Laptop-scale
/// reproductions never approach the 2^32 vertex limit.
pub type VertexId = u32;

/// An immutable undirected graph in compressed-sparse-row form.
///
/// Construction goes through [`crate::GraphBuilder`], the generators in
/// [`crate::gen`], or the readers in [`crate::io`]; all of them guarantee
/// the structural invariants listed on [`CsrGraph::from_parts`].
// Serde derives were dropped with the offline dependency set; the
// binary/text formats in `crate::io` cover (de)serialization needs.
#[derive(Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` indexes `edges` with the neighbors of
    /// `v`; has length `n + 1` and `offsets[n] == edges.len()`.
    offsets: Box<[usize]>,
    /// Concatenated, per-vertex-sorted adjacency lists (arcs).
    edges: Box<[VertexId]>,
}

impl CsrGraph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// # Invariants (checked)
    ///
    /// * `offsets` is non-empty, starts at 0, is non-decreasing, and ends
    ///   at `edges.len()`.
    /// * every target in `edges` is `< n`.
    /// * no self-loops.
    /// * each adjacency list is strictly increasing (sorted, no duplicate
    ///   edges).
    /// * the arc set is symmetric (`u -> v` implies `v -> u`).
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated. Use the builder for untrusted
    /// input; this constructor is for generators that produce CSR form
    /// directly.
    pub fn from_parts(offsets: Vec<usize>, edges: Vec<VertexId>) -> Self {
        let g = Self { offsets: offsets.into_boxed_slice(), edges: edges.into_boxed_slice() };
        g.validate();
        g
    }

    /// Builds a graph from CSR arrays without checking invariants.
    ///
    /// Intended for deserialization of data this crate wrote itself and
    /// for generators whose output is validated by construction (and by
    /// their unit tests). Violating the invariants does not cause memory
    /// unsafety — neighbor access is bounds-checked — but algorithms may
    /// return wrong corenesses.
    pub fn from_parts_unchecked(offsets: Vec<usize>, edges: Vec<VertexId>) -> Self {
        debug_assert!(!offsets.is_empty() && *offsets.last().unwrap() == edges.len());
        Self { offsets: offsets.into_boxed_slice(), edges: edges.into_boxed_slice() }
    }

    /// The empty graph (no vertices, no edges).
    pub fn empty() -> Self {
        Self { offsets: vec![0].into_boxed_slice(), edges: Vec::new().into_boxed_slice() }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed arcs `m` (twice the number of undirected edges).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.edges.len()
    }

    /// Number of undirected edges (`num_arcs / 2`).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len() / 2
    }

    /// Degree of vertex `v` in the original graph.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.edges[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The range of arc positions belonging to `v` — indexes any array
    /// laid out parallel to the arc array, such as
    /// [`crate::EdgeIndex`]'s arc→edge-id map.
    #[inline]
    pub fn arc_range(&self, v: VertexId) -> std::ops::Range<usize> {
        let v = v as usize;
        self.offsets[v]..self.offsets[v + 1]
    }

    /// Whether the undirected edge `{u, v}` is present (binary search).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Parallel iterator over all vertex ids.
    pub fn par_vertices(&self) -> impl IndexedParallelIterator<Item = VertexId> + '_ {
        (0..self.num_vertices() as VertexId).into_par_iter()
    }

    /// Iterator over undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .into_par_iter()
            .map(|v| self.degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `m / n` (arcs per vertex); 0.0 for the empty graph.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_arcs() as f64 / self.num_vertices() as f64
        }
    }

    /// Degrees of all vertices as a vector (parallel).
    pub fn degrees(&self) -> Vec<u32> {
        (0..self.num_vertices())
            .into_par_iter()
            .map(|v| self.degree(v as VertexId) as u32)
            .collect()
    }

    /// The subgraph induced by the vertices for which `keep` is true.
    ///
    /// Returns the induced subgraph together with the mapping from new
    /// vertex ids to original ids. Vertices keep their relative order.
    pub fn induced_subgraph(&self, keep: &[bool]) -> (CsrGraph, Vec<VertexId>) {
        assert_eq!(keep.len(), self.num_vertices(), "keep mask length mismatch");
        // Old-id -> new-id mapping; u32::MAX marks dropped vertices.
        let mut remap = vec![VertexId::MAX; self.num_vertices()];
        let mut back = Vec::new();
        for v in 0..self.num_vertices() {
            if keep[v] {
                remap[v] = back.len() as VertexId;
                back.push(v as VertexId);
            }
        }
        let mut offsets = Vec::with_capacity(back.len() + 1);
        offsets.push(0usize);
        let mut edges = Vec::new();
        for &old in &back {
            for &nbr in self.neighbors(old) {
                if keep[nbr as usize] {
                    edges.push(remap[nbr as usize]);
                }
            }
            offsets.push(edges.len());
        }
        (CsrGraph::from_parts_unchecked(offsets, edges), back)
    }

    /// Checks all structural invariants; panics with a description on
    /// the first violation. Used by [`CsrGraph::from_parts`] and tests.
    pub fn validate(&self) {
        let n = self.num_vertices();
        assert_eq!(self.offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *self.offsets.last().unwrap(),
            self.edges.len(),
            "offsets must end at the arc count"
        );
        for v in 0..n {
            assert!(
                self.offsets[v] <= self.offsets[v + 1],
                "offsets must be non-decreasing at vertex {v}"
            );
            let nbrs = self.neighbors(v as VertexId);
            for w in nbrs.windows(2) {
                assert!(
                    w[0] < w[1],
                    "adjacency of {v} must be strictly increasing: {} !< {}",
                    w[0],
                    w[1]
                );
            }
            for &u in nbrs {
                assert!((u as usize) < n, "neighbor {u} of {v} out of range");
                assert_ne!(u as usize, v, "self-loop at {v}");
            }
        }
        // Symmetry: u -> v implies v -> u.
        let asymmetric = (0..n as VertexId)
            .into_par_iter()
            .any(|u| self.neighbors(u).iter().any(|&v| !self.has_edge(v, u)));
        assert!(!asymmetric, "arc set must be symmetric");
    }
}

impl std::fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsrGraph")
            .field("n", &self.num_vertices())
            .field("arcs", &self.num_arcs())
            .field("max_degree", &self.max_degree())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> CsrGraph {
        GraphBuilder::new(3).edges([(0, 1), (1, 2), (0, 2)]).build()
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_arcs(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        g.validate();
    }

    #[test]
    fn triangle_basics() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.avg_degree(), 2.0);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn degrees_vector_matches_degree() {
        let g = triangle();
        assert_eq!(g.degrees(), vec![2, 2, 2]);
    }

    #[test]
    fn induced_subgraph_drops_vertices_and_their_edges() {
        // Path 0-1-2-3; keep {0, 1, 3}.
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3)]).build();
        let (sub, back) = g.induced_subgraph(&[true, true, false, true]);
        assert_eq!(back, vec![0, 1, 3]);
        assert_eq!(sub.num_vertices(), 3);
        // Only edge {0, 1} survives.
        assert_eq!(sub.num_edges(), 1);
        assert!(sub.has_edge(0, 1));
        assert_eq!(sub.degree(2), 0);
        sub.validate();
    }

    #[test]
    fn induced_subgraph_of_everything_is_identity() {
        let g = triangle();
        let (sub, back) = g.induced_subgraph(&[true; 3]);
        assert_eq!(back, vec![0, 1, 2]);
        assert_eq!(sub, g);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn from_parts_rejects_self_loops() {
        CsrGraph::from_parts(vec![0, 1], vec![0]);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn from_parts_rejects_asymmetric_arcs() {
        CsrGraph::from_parts(vec![0, 1, 1], vec![1]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_parts_rejects_duplicate_arcs() {
        CsrGraph::from_parts(vec![0, 2, 4], vec![1, 1, 0, 0]);
    }
}
