//! The graph-backend seam: one trait over every adjacency storage
//! layout the decompositions can peel.
//!
//! [`GraphBackend`] abstracts the read API the algorithms actually use
//! — vertex/arc counts, degrees, and neighbor access — so the same
//! peel engine runs over the plain CSR arrays ([`crate::CsrGraph`],
//! owned or mmap-backed), the delta-overlay logical graph
//! ([`crate::OverlayGraph`]), and the byte-compressed layout
//! ([`crate::CompressedCsr`]). Neighbor access comes in two flavors:
//!
//! * [`GraphBackend::neighbors_slice`] — a borrowed `&[VertexId]`
//!   slice, free for array-backed storage. Decode-on-the-fly backends
//!   serve it from a small per-thread scratch ring, so a caller may
//!   hold **at most one** slice per thread at a time (the documented
//!   contract on [`crate::CompressedCsr::neighbors`]).
//! * [`GraphBackend::for_each_neighbor`] — streaming visitation with
//!   no buffer at all; nested traversals (a scan inside a scan) must
//!   use this form so they never contend for scratch slots.
//!
//! The `KCORE_BACKEND` environment override (parsed by
//! [`env_backend`], same unknown-token-panics convention as
//! `KCORE_TRI_KERNEL`) lets CI force the compressed backend through
//! every plain-CSR entry point.

use crate::csr::{CsrGraph, VertexId};
use crate::stats::MemoryFootprint;
use rayon::prelude::*;

/// Read-only graph storage the peeling algorithms can run over.
///
/// Implementations must present the same *logical* graph contract as
/// [`CsrGraph`]: symmetric arcs, strictly increasing per-vertex
/// neighbor lists, no self-loops. Algorithms over any two backends of
/// the same logical graph produce bit-identical results (enforced by
/// `proptest_backends` in `kcore`).
pub trait GraphBackend: Sync {
    /// Number of vertices `n`.
    fn num_vertices(&self) -> usize;

    /// Number of directed arcs `m` (twice the undirected edges).
    fn num_arcs(&self) -> usize;

    /// Degree of `v`. Must be O(1) — peel work accounting calls it on
    /// hot paths instead of materializing neighbor lists.
    fn degree(&self, v: VertexId) -> usize;

    /// The sorted neighbor list of `v` as a slice.
    ///
    /// For decode-on-the-fly backends the slice lives in per-thread
    /// scratch: hold at most one per thread, and prefer
    /// [`GraphBackend::for_each_neighbor`] inside nested traversals.
    fn neighbors_slice(&self, v: VertexId) -> &[VertexId];

    /// Number of undirected edges (`num_arcs / 2`).
    fn num_edges(&self) -> usize {
        self.num_arcs() / 2
    }

    /// Calls `f` for every neighbor of `v` in increasing order, without
    /// materializing a slice. Safe to nest arbitrarily.
    #[inline]
    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        for &u in self.neighbors_slice(v) {
            f(u);
        }
    }

    /// Calls `f` once per undirected edge `(u, v)` with `u < v`, in
    /// vertex order. Sequential; used by result assembly post-passes.
    fn for_each_edge(&self, f: &mut dyn FnMut(VertexId, VertexId)) {
        for v in 0..self.num_vertices() as VertexId {
            self.for_each_neighbor(v, &mut |u| {
                if v < u {
                    f(v, u);
                }
            });
        }
    }

    /// Degrees of all vertices as a vector (parallel).
    fn degrees(&self) -> Vec<u32> {
        (0..self.num_vertices())
            .into_par_iter()
            .map(|v| self.degree(v as VertexId) as u32)
            .collect()
    }

    /// The backend's memory footprint (see [`MemoryFootprint`]).
    fn memory(&self) -> MemoryFootprint;

    /// Downcast to the plain CSR backend, when that is what this is.
    ///
    /// The facade uses this to apply the `KCORE_BACKEND` override (a
    /// plain graph is re-encoded through the forced backend); every
    /// other backend keeps the `None` default and runs as-is.
    fn as_plain(&self) -> Option<&CsrGraph> {
        None
    }
}

/// Adjacency backend selected by the `KCORE_BACKEND` environment
/// variable (see [`env_backend`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Plain uncompressed CSR arrays — the default.
    Plain,
    /// Delta + varint byte-compressed adjacency
    /// ([`crate::CompressedCsr`]).
    Compressed,
}

impl BackendKind {
    /// Human name, as accepted by `KCORE_BACKEND`.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Plain => "plain",
            BackendKind::Compressed => "compressed",
        }
    }
}

/// The backend forced by `KCORE_BACKEND`, parsed once per process.
///
/// Accepted values: `plain` (or empty/unset) and `compressed`. Unknown
/// tokens panic listing the valid set — same convention as
/// `KCORE_TRI_KERNEL` and `KCORE_TECHNIQUES`, so a typo in CI fails
/// loudly instead of silently testing the default.
pub fn env_backend() -> BackendKind {
    static KIND: std::sync::OnceLock<BackendKind> = std::sync::OnceLock::new();
    *KIND.get_or_init(|| match std::env::var("KCORE_BACKEND") {
        Ok(raw) => match raw.trim() {
            "" | "plain" => BackendKind::Plain,
            "compressed" => BackendKind::Compressed,
            other => {
                panic!("KCORE_BACKEND: unknown backend {other:?} (valid: plain, compressed)")
            }
        },
        Err(_) => BackendKind::Plain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn default_methods_match_csr_natives() {
        let g = gen::barabasi_albert(200, 3, 7);
        let b: &dyn GraphBackend = &g;
        assert_eq!(b.num_edges(), g.num_edges());
        assert_eq!(b.degrees(), g.degrees());
        let mut streamed = Vec::new();
        b.for_each_neighbor(5, &mut |u| streamed.push(u));
        assert_eq!(streamed, g.neighbors(5));
        let mut edges = Vec::new();
        b.for_each_edge(&mut |u, v| edges.push((u, v)));
        assert_eq!(edges, g.edges().collect::<Vec<_>>());
    }

    #[test]
    fn backend_kind_names() {
        assert_eq!(BackendKind::Plain.as_str(), "plain");
        assert_eq!(BackendKind::Compressed.as_str(), "compressed");
    }
}
