//! Degree-ordered directed graph view and the fused triangle setup.
//!
//! Triangle work on the raw symmetric CSR pays for hub vertices twice:
//! every intersection touches full adjacency lists (so any edge
//! incident to a hub costs `O(d_hub)`), and the initial k-truss support
//! computation re-intersects both endpoints of all `m` edges — the
//! `Σ d(u)·d(v)` term that dominated setup on the power-law benches.
//! The standard fix (kClist / GBBS truss lineage) is to **orient** each
//! undirected edge from its lower-ranked endpoint to its higher-ranked
//! one under the total order `rank(v) = (degree(v), v)`. The resulting
//! DAG's out-degrees are bounded by `O(√m)` on any graph (and are tiny
//! on power-law families), so:
//!
//! * every triangle `{a, b, c}` with `rank(a) < rank(b) < rank(c)` is
//!   discovered **exactly once**, as `c ∈ N⁺(a) ∩ N⁺(b)` at the
//!   oriented arc `a → b`;
//! * the per-pair intersections run over out-lists instead of full
//!   adjacency lists.
//!
//! Two types implement the view:
//!
//! * [`Dodg`] — the bare orientation (out-targets only), enough for
//!   [`Dodg::triangle_count`]'s allocation-free parallel fold.
//! * [`TriangleCtx`] — the k-truss setup: a **fused one-pass build** of
//!   the [`EdgeIndex`], the oriented arcs annotated with edge ids, the
//!   per-edge supports (computed from the oriented view, replacing the
//!   full re-intersection), and — below [`TRI_CACHE_MAX_PAIRS`] — the
//!   **triangle cache**, a CSR of each edge's companion edge-id pairs
//!   counting-sorted from the same discovery sweep, which turns the
//!   peel's per-death enumeration into a flat array walk. Lazily built
//!   per-hub membership maps serve the bitset kernel. This is what
//!   `kcore`'s k-truss client runs on; it can be built once and reused
//!   across peels (`Decomposition::ktruss(&g).with_ctx(&ctx)`).
//!
//! Intersections pick a kernel per pair — linear merge, galloping, or
//! packed-bitset probe — through [`kcore_parallel::intersect::choose`];
//! the policy is overridable via `KCORE_TRI_KERNEL`. All kernels
//! enumerate the same matches in the same (increasing-vertex) order,
//! so supports and trussness are bit-identical across kernels.

use crate::csr::{CsrGraph, VertexId};
use crate::edges::EdgeIndex;
use kcore_check::sync::atomic::{AtomicU32, Ordering};
use kcore_obs::{counter, span};
use kcore_parallel::intersect::{
    choose, intersect_bitset_positions, intersect_gallop_positions, ChosenKernel, PackedBitset,
    TriKernel,
};
use kcore_parallel::primitives::{exclusive_scan, intersect_sorted_positions};
use rayon::prelude::*;
use std::sync::OnceLock;

/// Rank comparison of the degree ordering: `a` precedes `b` when
/// `(degree(a), a) < (degree(b), b)`. Ties on degree are broken by id,
/// so the order is total and the orientation acyclic.
#[inline]
fn rank_lt(g: &CsrGraph, a: VertexId, b: VertexId) -> bool {
    (g.degree(a), a) < (g.degree(b), b)
}

/// The bare degree-ordered orientation: for every vertex, its
/// higher-ranked neighbors (sorted by id, as a subsequence of the CSR
/// adjacency list). Each undirected edge appears exactly once.
#[derive(Debug, Clone)]
pub struct Dodg {
    /// `offsets[u]..offsets[u + 1]` indexes `targets` with `N⁺(u)`.
    offsets: Box<[usize]>,
    /// Concatenated out-neighbor lists, per-vertex sorted by id.
    targets: Box<[VertexId]>,
}

impl Dodg {
    /// Orients `g` by degree order, in parallel.
    pub fn build(g: &CsrGraph) -> Self {
        let _s = span!("tri.orient", g.num_edges() as u64);
        let n = g.num_vertices();
        let counts: Vec<usize> = (0..n)
            .into_par_iter()
            .map(|u| {
                let u = u as VertexId;
                g.neighbors(u).iter().filter(|&&w| rank_lt(g, u, w)).count()
            })
            .collect();
        let (base, m) = exclusive_scan(&counts);
        debug_assert_eq!(m, g.num_edges());
        let mut targets = vec![0 as VertexId; m].into_boxed_slice();
        let ptr = SendPtr(targets.as_mut_ptr());
        (0..n).into_par_iter().for_each(|u| {
            let u = u as VertexId;
            let mut o = base[u as usize];
            for &w in g.neighbors(u) {
                if rank_lt(g, u, w) {
                    // SAFETY: vertex u owns slots base[u]..base[u]+counts[u].
                    unsafe { ptr.slot(o).write(w) };
                    o += 1;
                }
            }
        });
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.extend_from_slice(&base);
        offsets.push(m);
        Self { offsets: offsets.into_boxed_slice(), targets }
    }

    /// The out-neighbors (higher-ranked, id-sorted) of `u`.
    #[inline]
    pub fn out(&self, u: VertexId) -> &[VertexId] {
        let u = u as usize;
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Number of oriented arcs (== number of undirected edges).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Total triangle count of `g`: a parallel fold of
    /// `|N⁺(u) ∩ N⁺(v)|` over the oriented arcs — each triangle is
    /// counted exactly once at its lowest-ranked edge, and no per-edge
    /// array is materialized.
    ///
    /// Kernel selection follows `kernel`; the forced `Bitset` policy
    /// probes lazily built packed bitmaps of the larger out-list.
    pub fn triangle_count(&self, g: &CsrGraph, kernel: TriKernel) -> u64 {
        let bitmaps: Box<[OnceLock<PackedBitset>]> =
            (0..g.num_vertices()).map(|_| OnceLock::new()).collect();
        let out_bitmap = |v: VertexId| -> &PackedBitset {
            bitmaps[v as usize].get_or_init(|| {
                counter!("tri.bitmap.build", 1);
                PackedBitset::from_members(self.out(v), g.num_vertices())
            })
        };
        (0..g.num_vertices())
            .into_par_iter()
            .map(|u| {
                let u = u as VertexId;
                let ou = self.out(u);
                let mut local = 0u64;
                for &v in ou {
                    let ov = self.out(v);
                    let mut cnt = 0u64;
                    match choose(kernel, ou.len(), ov.len()) {
                        ChosenKernel::Merge => intersect_sorted_positions(ou, ov, |_, _| cnt += 1),
                        ChosenKernel::Gallop => intersect_gallop_positions(ou, ov, |_, _| cnt += 1),
                        ChosenKernel::Bitset => {
                            // Probe the larger out-list's bitmap with
                            // the smaller list.
                            let (drive, probe) =
                                if ou.len() <= ov.len() { (ou, v) } else { (ov, u) };
                            intersect_bitset_positions(drive, out_bitmap(probe), |_| cnt += 1);
                            counter!("tri.bitmap.hit", cnt);
                        }
                    }
                    local += cnt;
                }
                local
            })
            .sum()
    }
}

/// A hub vertex's membership structure: a packed bitmap over its full
/// neighborhood plus a per-word popcount prefix, so a probe resolves
/// both the match and the member's *position* in the sorted adjacency
/// list in `O(1)` — the companion edge id is then one index into the
/// hub's arc-aligned [`EdgeIndex::edge_ids`] slice, no table and no
/// search. Build cost is `O(n/64 + d)` (not `O(n)`), which keeps the
/// break-even degree low enough to map the whole hub tail. Built
/// lazily per hub and reused across every intersection the hub
/// participates in (supports build *and* peel).
struct HubMap {
    /// Membership of `N(v)` over the vertex universe.
    bits: PackedBitset,
    /// `rank[i]` = number of members below word `i` (cumulative
    /// popcount of `bits.words()[..i]`).
    rank: Box<[u32]>,
}

impl HubMap {
    fn build(g: &CsrGraph, v: VertexId) -> Self {
        counter!("tri.bitmap.build", 1);
        let mut bits = PackedBitset::new(g.num_vertices());
        for &w in g.neighbors(v) {
            bits.set(w);
        }
        let mut acc = 0u32;
        let rank = bits
            .words()
            .iter()
            .map(|&word| {
                let r = acc;
                acc += word.count_ones();
                r
            })
            .collect();
        Self { bits, rank }
    }

    /// Position of member `w` within the hub's sorted adjacency list
    /// (only meaningful when `bits.contains(w)`).
    #[inline]
    fn position_of(&self, w: VertexId) -> usize {
        let wi = (w >> 6) as usize;
        let below = self.bits.words()[wi] & ((1u64 << (w & 63)) - 1);
        self.rank[wi] as usize + below.count_ones() as usize
    }
}

/// The fused k-truss triangle setup over one graph: edge ids, oriented
/// arcs annotated with those ids, initial per-edge supports, and the
/// lazy hub-map cache. See the module docs for the construction.
pub struct TriangleCtx {
    idx: EdgeIndex,
    /// Out-CSR over the degree ordering; `out_eids` is laid out
    /// parallel to `out_targets` with each arc's undirected edge id.
    out_offsets: Box<[usize]>,
    out_targets: Box<[VertexId]>,
    out_eids: Box<[u32]>,
    supports: Vec<u32>,
    /// Triangle cache in CSR form: `tri_offsets[e]..tri_offsets[e + 1]`
    /// indexes `tri_pairs` with edge `e`'s companion pairs. Empty when
    /// the cache was not materialized (above [`TRI_CACHE_MAX_PAIRS`]).
    tri_offsets: Box<[u32]>,
    tri_pairs: Box<[[u32; 2]]>,
    hubs: Box<[OnceLock<HubMap>]>,
    kernel: TriKernel,
}

/// Upper bound on materialized triangle-cache entries (`3 ·
/// #triangles`). The cache costs `O(#triangles)` space, which can dwarf
/// `O(m)` on dense graphs; past this bound [`TriangleCtx`] skips the
/// cache and the k-truss peel re-enumerates per death through the
/// intersection kernels instead.
pub const TRI_CACHE_MAX_PAIRS: usize = 1 << 24;

impl TriangleCtx {
    /// Builds the full triangle setup with the process-wide
    /// (`KCORE_TRI_KERNEL`) kernel policy.
    pub fn build(g: &CsrGraph) -> Self {
        Self::build_with_kernel(g, TriKernel::from_env())
    }

    /// Builds the full triangle setup with an explicit kernel policy
    /// (the testing/bench entry point for the kernel ablation).
    ///
    /// One parallel pass assigns edge ids *and* writes the oriented
    /// arcs; a second parallel pass over the oriented arcs accumulates
    /// the supports with relaxed atomic adds (commutative, so the
    /// result is bit-identical to the reference
    /// [`crate::triangles::edge_supports`] recount for every kernel).
    pub fn build_with_kernel(g: &CsrGraph, kernel: TriKernel) -> Self {
        let _root = span!("tri.build", g.num_edges() as u64);
        let n = g.num_vertices();

        // Pass 1 (fused): per-vertex forward counts for the id order
        // (edge-id assignment, identical to `EdgeIndex::build`) and
        // out-counts for the degree order.
        let orient = span!("tri.orient", g.num_edges() as u64);
        let counts: Vec<[usize; 2]> = (0..n)
            .into_par_iter()
            .map(|u| {
                let u = u as VertexId;
                let nbrs = g.neighbors(u);
                let fwd = nbrs.len() - nbrs.partition_point(|&w| w < u);
                let odeg = nbrs.iter().filter(|&&w| rank_lt(g, u, w)).count();
                [fwd, odeg]
            })
            .collect();
        let fwd: Vec<usize> = counts.iter().map(|c| c[0]).collect();
        let odeg: Vec<usize> = counts.iter().map(|c| c[1]).collect();
        let (ebase, m) = exclusive_scan(&fwd);
        let (obase, m2) = exclusive_scan(&odeg);
        debug_assert_eq!(m, g.num_edges());
        debug_assert_eq!(m2, m);

        let mut arc_edge = vec![0u32; g.num_arcs()].into_boxed_slice();
        let mut endpoints = vec![[0 as VertexId; 2]; m].into_boxed_slice();
        let mut out_targets = vec![0 as VertexId; m].into_boxed_slice();
        let mut out_eids = vec![0u32; m].into_boxed_slice();
        let arc_ptr = SendPtr(arc_edge.as_mut_ptr());
        let end_ptr = SendPtr(endpoints.as_mut_ptr());
        let tgt_ptr = SendPtr(out_targets.as_mut_ptr());
        let eid_ptr = SendPtr(out_eids.as_mut_ptr());
        (0..n).into_par_iter().for_each(|u| {
            let uv = u as VertexId;
            let nbrs = g.neighbors(uv);
            let range = g.arc_range(uv);
            let first_fwd = nbrs.partition_point(|&w| w < uv);
            let mut o = obase[u];
            for (i, &v) in nbrs.iter().enumerate() {
                let id = if i >= first_fwd {
                    // Forward arc in id order: mint the id, record the
                    // endpoints.
                    let id = (ebase[u] + (i - first_fwd)) as u32;
                    // SAFETY: endpoint slot `id` is owned by vertex u.
                    unsafe { end_ptr.slot(id as usize).write([uv, v]) };
                    id
                } else {
                    // Backward arc: the id was minted by v at its
                    // forward offset of u.
                    let vn = g.neighbors(v);
                    let v_first_fwd = vn.len() - fwd[v as usize];
                    let pos = vn.binary_search(&uv).expect("arc set is symmetric");
                    debug_assert!(pos >= v_first_fwd, "u > v must be a forward target of v");
                    (ebase[v as usize] + (pos - v_first_fwd)) as u32
                };
                // SAFETY: arc position `range.start + i` is owned by u.
                unsafe { arc_ptr.slot(range.start + i).write(id) };
                if rank_lt(g, uv, v) {
                    // SAFETY: out slots obase[u]..obase[u]+odeg[u] are
                    // owned by vertex u.
                    unsafe {
                        tgt_ptr.slot(o).write(v);
                        eid_ptr.slot(o).write(id);
                    }
                    o += 1;
                }
            }
            debug_assert_eq!(o, obase[u] + odeg[u]);
        });
        drop(orient);

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.extend_from_slice(&obase);
        offsets.push(m);
        let mut ctx = Self {
            idx: EdgeIndex::from_raw(arc_edge, endpoints),
            out_offsets: offsets.into_boxed_slice(),
            out_targets,
            out_eids,
            supports: Vec::new(),
            tri_offsets: Box::new([]),
            tri_pairs: Box::new([]),
            hubs: (0..n).map(|_| OnceLock::new()).collect(),
            kernel,
        };

        // Pass 2: discovery. Every triangle is found once (at its
        // lowest-ranked arc) and charged to all three of its edges. A
        // cheap upper bound on the triangle count — Σ min(|N⁺(u)|,
        // |N⁺(v)|) over the oriented arcs — picks the shape: within the
        // cache cap, one sweep collects every triangle's edge-id triple
        // and supports *and* the cache CSR are counting-sorted out of
        // the buffer; past the cap (where the cache would be
        // `O(#triangles)` space), a buffer-free sweep accumulates
        // supports only and the peel re-enumerates per death. Relaxed
        // adds and reserved slots commute, so both shapes are kernel-
        // and schedule-independent.
        let sup_span = span!("tri.supports", m as u64);
        let bound: usize = (0..n)
            .into_par_iter()
            .map(|u| {
                let ou = ctx.out(u as VertexId).0;
                ou.iter().map(|&v| ou.len().min(ctx.out(v).0.len())).sum::<usize>()
            })
            .sum();
        if 3 * bound <= TRI_CACHE_MAX_PAIRS {
            // One buffer of discovered triples per source vertex
            // (vertices without triangles never allocate).
            let triangles: Vec<Vec<[u32; 3]>> = (0..n)
                .into_par_iter()
                .map(|u| {
                    let mut acc = Vec::new();
                    ctx.for_each_oriented_triangle_of(g, u as VertexId, &mut |e, fe, ge| {
                        acc.push([e, fe, ge])
                    });
                    acc
                })
                .collect();
            let found: usize = triangles.iter().map(Vec::len).sum();
            counter!("tri.triangles", found as u64);
            let supports: Vec<AtomicU32> = (0..m).map(|_| AtomicU32::new(0)).collect();
            triangles.par_iter().for_each(|list| {
                for tri in list {
                    for &e in tri {
                        supports[e as usize].fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            ctx.supports = supports.into_iter().map(AtomicU32::into_inner).collect();
            drop(sup_span);

            // The cache CSR: supports are exactly the per-edge triangle
            // degrees, so their scan gives the offsets; per-edge atomic
            // cursors reserve each companion pair's slot.
            let pairs_total = 3 * found;
            let cache_span = span!("tri.cache", pairs_total as u64);
            let counts: Vec<usize> = ctx.supports.iter().map(|&s| s as usize).collect();
            let (cbase, total) = exclusive_scan(&counts);
            debug_assert_eq!(total, pairs_total);
            let cursors: Vec<AtomicU32> = cbase.iter().map(|&o| AtomicU32::new(o as u32)).collect();
            let mut pairs = vec![[0u32; 2]; total].into_boxed_slice();
            let pair_ptr = SendPtr(pairs.as_mut_ptr());
            triangles.par_iter().for_each(|list| {
                for &[e, fe, ge] in list {
                    for (at, companions) in [(e, [fe, ge]), (fe, [e, ge]), (ge, [e, fe])] {
                        let slot = cursors[at as usize].fetch_add(1, Ordering::Relaxed);
                        // SAFETY: the fetch_add reserves `slot`
                        // exclusively, and per-edge slot ranges are
                        // disjoint by the scan.
                        unsafe { pair_ptr.slot(slot as usize).write(companions) };
                    }
                }
            });
            let mut tri_offsets = Vec::with_capacity(m + 1);
            tri_offsets.extend(cbase.iter().map(|&o| o as u32));
            tri_offsets.push(total as u32);
            ctx.tri_offsets = tri_offsets.into_boxed_slice();
            ctx.tri_pairs = pairs;
            counter!("tri.cache.pairs", pairs_total as u64);
            drop(cache_span);
        } else {
            let supports: Vec<AtomicU32> = (0..m).map(|_| AtomicU32::new(0)).collect();
            (0..n).into_par_iter().for_each(|u| {
                ctx.for_each_oriented_triangle_of(g, u as VertexId, &mut |e, fe, ge| {
                    supports[e as usize].fetch_add(1, Ordering::Relaxed);
                    supports[fe as usize].fetch_add(1, Ordering::Relaxed);
                    supports[ge as usize].fetch_add(1, Ordering::Relaxed);
                });
            });
            ctx.supports = supports.into_iter().map(AtomicU32::into_inner).collect();
            counter!("tri.triangles", ctx.supports.iter().map(|&s| s as u64).sum::<u64>() / 3);
            drop(sup_span);
        }
        ctx
    }

    /// Discovery sweep from one source vertex of the oriented view:
    /// calls `f(e, fe, ge)` exactly once per triangle whose
    /// lowest-ranked arc `u → v` starts at `u`, where `e` is the edge
    /// id of `{u, v}`, `fe` of `{u, w}`, and `ge` of `{v, w}`.
    fn for_each_oriented_triangle_of<F>(&self, g: &CsrGraph, u: VertexId, f: &mut F)
    where
        F: FnMut(u32, u32, u32),
    {
        let (ou, eu) = self.out(u);
        for (p, &v) in ou.iter().enumerate() {
            let (ov, ev) = self.out(v);
            let euv = eu[p];
            match choose(self.kernel, ou.len(), ov.len()) {
                ChosenKernel::Merge => {
                    intersect_sorted_positions(ou, ov, |i, j| f(euv, eu[i], ev[j]))
                }
                ChosenKernel::Gallop => {
                    intersect_gallop_positions(ou, ov, |i, j| f(euv, eu[i], ev[j]))
                }
                ChosenKernel::Bitset => {
                    let mut hits = 0u64;
                    if ou.len() <= ov.len() {
                        // Probe v's full-neighborhood map with u's
                        // out-list; a hit `w` is in N⁺(v) iff it also
                        // outranks v.
                        let hub = self.hub_map(g, v);
                        let ev_full = self.idx.edge_ids(g, v);
                        intersect_bitset_positions(ou, &hub.bits, |i| {
                            let w = ou[i];
                            if rank_lt(g, v, w) {
                                hits += 1;
                                f(euv, eu[i], ev_full[hub.position_of(w)]);
                            }
                        });
                    } else {
                        // Probe u's map with v's out-list; every
                        // w ∈ N⁺(v) already outranks v (and hence u),
                        // so a membership hit is in N⁺(u).
                        let hub = self.hub_map(g, u);
                        let eu_full = self.idx.edge_ids(g, u);
                        intersect_bitset_positions(ov, &hub.bits, |j| {
                            hits += 1;
                            f(euv, eu_full[hub.position_of(ov[j])], ev[j]);
                        });
                    }
                    counter!("tri.bitmap.hit", hits);
                }
            }
        }
    }

    /// The edge-id space built alongside the orientation.
    #[inline]
    pub fn edge_index(&self) -> &EdgeIndex {
        &self.idx
    }

    /// Initial triangle supports, indexed by edge id — the k-truss
    /// starting priorities.
    #[inline]
    pub fn supports(&self) -> &[u32] {
        &self.supports
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.supports.len()
    }

    /// The cached triangle list of edge `e`: one `[fe, ge]` companion
    /// edge-id pair per triangle containing `e`. Pair order within the
    /// list (and within a pair) is unspecified — consumers must be
    /// order-insensitive, which the snapshot decrement rule is. `None`
    /// when the cache was not materialized (the graph exceeded
    /// [`TRI_CACHE_MAX_PAIRS`]); callers then fall back to
    /// [`Self::for_each_triangle_of_edge`].
    #[inline]
    pub fn edge_triangles(&self, e: u32) -> Option<&[[u32; 2]]> {
        if self.tri_offsets.is_empty() {
            return None;
        }
        let e = e as usize;
        Some(&self.tri_pairs[self.tri_offsets[e] as usize..self.tri_offsets[e + 1] as usize])
    }

    /// Testing hook: discards the triangle cache so the kernel-driven
    /// per-death enumeration path (the `TRI_CACHE_MAX_PAIRS` overflow
    /// behavior) stays covered on test-sized graphs.
    #[doc(hidden)]
    pub fn drop_triangle_cache(&mut self) {
        self.tri_offsets = Box::new([]);
        self.tri_pairs = Box::new([]);
    }

    /// The kernel policy this context was built with (and enumerates
    /// under).
    #[inline]
    pub fn kernel(&self) -> TriKernel {
        self.kernel
    }

    /// The oriented out-arcs of `u`: `(targets, edge ids)`, id-sorted.
    #[inline]
    pub fn out(&self, u: VertexId) -> (&[VertexId], &[u32]) {
        let u = u as usize;
        let r = self.out_offsets[u]..self.out_offsets[u + 1];
        (&self.out_targets[r.clone()], &self.out_eids[r])
    }

    /// The lazily built hub map of `v` (first caller pays the
    /// `O(n/64 + d(v))` build; `OnceLock` publishes it to everyone
    /// else).
    fn hub_map(&self, g: &CsrGraph, v: VertexId) -> &HubMap {
        self.hubs[v as usize].get_or_init(|| HubMap::build(g, v))
    }

    /// Calls `f(fe, ge, w)` for every triangle `{u, v, w}` containing
    /// edge `e = {u, v}`, where `fe` is the id of `{u, w}` and `ge`
    /// the id of `{v, w}` — the k-truss per-death enumeration when the
    /// triangle cache is not materialized (see [`Self::edge_triangles`]).
    ///
    /// The kernel is chosen per edge from the endpoint degrees: skewed
    /// pairs probe the larger endpoint's hub map (or gallop below the
    /// hub threshold), balanced pairs merge. Companion edge ids come
    /// from the arc-aligned id slices — a hub-map hit resolves its
    /// position by popcount rank, never by binary search. Matches
    /// arrive in increasing `w` for every kernel.
    #[inline]
    pub fn for_each_triangle_of_edge<F>(&self, g: &CsrGraph, e: u32, mut f: F)
    where
        F: FnMut(u32, u32, VertexId),
    {
        let (u, v) = self.idx.endpoints(e);
        let (nu, nv) = (g.neighbors(u), g.neighbors(v));
        let (eu, ev) = (self.idx.edge_ids(g, u), self.idx.edge_ids(g, v));
        match choose(self.kernel, nu.len(), nv.len()) {
            ChosenKernel::Merge => {
                intersect_sorted_positions(nu, nv, |i, j| f(eu[i], ev[j], nu[i]))
            }
            ChosenKernel::Gallop => {
                intersect_gallop_positions(nu, nv, |i, j| f(eu[i], ev[j], nu[i]))
            }
            ChosenKernel::Bitset => {
                let mut hits = 0u64;
                if nu.len() <= nv.len() {
                    let hub = self.hub_map(g, v);
                    intersect_bitset_positions(nu, &hub.bits, |i| {
                        hits += 1;
                        f(eu[i], ev[hub.position_of(nu[i])], nu[i]);
                    });
                } else {
                    let hub = self.hub_map(g, u);
                    intersect_bitset_positions(nv, &hub.bits, |j| {
                        hits += 1;
                        f(eu[hub.position_of(nv[j])], ev[j], nv[j]);
                    });
                }
                counter!("tri.bitmap.hit", hits);
            }
        }
    }
}

impl std::fmt::Debug for TriangleCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TriangleCtx")
            .field("edges", &self.num_edges())
            .field("kernel", &self.kernel)
            .finish()
    }
}

/// Raw pointer wrapper for the disjoint-range parallel writes above.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// The raw slot at index `i`. Taking `self` by value makes closures
    /// capture the whole (Send + Sync) wrapper rather than the bare
    /// field; callers uphold the disjoint-write discipline.
    #[inline]
    unsafe fn slot(self, i: usize) -> *mut T {
        // SAFETY: `i` is in bounds of the allocation per the caller.
        unsafe { self.0.add(i) }
    }
}
// SAFETY: used only with the per-vertex disjoint-write discipline
// documented at the use sites.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangles::{edge_supports, for_each_triangle_of_edge};
    use crate::{gen, GraphBuilder};

    const ALL_KERNELS: [TriKernel; 4] =
        [TriKernel::Auto, TriKernel::Merge, TriKernel::Gallop, TriKernel::Bitset];

    fn test_graphs() -> Vec<(&'static str, CsrGraph)> {
        vec![
            ("empty", CsrGraph::empty()),
            ("edgeless", GraphBuilder::new(5).build()),
            ("triangle", GraphBuilder::new(3).edges([(0, 1), (1, 2), (0, 2)]).build()),
            ("k7", gen::complete(7)),
            ("star", gen::star(40)),
            ("ba", gen::barabasi_albert(250, 4, 9)),
            ("rmat", gen::rmat(8, 6, 0.57, 0.19, 0.19, 3)),
            ("planted", gen::planted_core(150, 2, 30, 4)),
            ("hcns", gen::hcns(12)),
            ("grid", gen::grid2d(9, 7)),
        ]
    }

    #[test]
    fn orientation_is_acyclic_and_covers_every_edge() {
        for (name, g) in test_graphs() {
            let d = Dodg::build(&g);
            assert_eq!(d.num_arcs(), g.num_edges(), "{name}");
            let mut arcs = 0usize;
            for u in g.vertices() {
                let mut prev = None;
                for &w in d.out(u) {
                    assert!(rank_lt(&g, u, w), "{name}: arc {u}->{w} violates the order");
                    assert!(g.has_edge(u, w), "{name}: phantom arc {u}->{w}");
                    assert!(prev.is_none_or(|p| p < w), "{name}: out({u}) not id-sorted");
                    prev = Some(w);
                    arcs += 1;
                }
            }
            assert_eq!(arcs, g.num_edges(), "{name}");
        }
    }

    #[test]
    fn fused_edge_index_matches_the_reference_build() {
        for (name, g) in test_graphs() {
            let want = EdgeIndex::build(&g);
            let ctx = TriangleCtx::build_with_kernel(&g, TriKernel::Auto);
            let got = ctx.edge_index();
            assert_eq!(got.num_edges(), want.num_edges(), "{name}");
            for u in g.vertices() {
                assert_eq!(got.edge_ids(&g, u), want.edge_ids(&g, u), "{name}: vertex {u}");
            }
            for e in 0..want.num_edges() as u32 {
                assert_eq!(got.endpoints(e), want.endpoints(e), "{name}: edge {e}");
            }
        }
    }

    #[test]
    fn triangle_cache_matches_per_edge_enumeration() {
        for (name, g) in test_graphs() {
            for kernel in ALL_KERNELS {
                let ctx = TriangleCtx::build_with_kernel(&g, kernel);
                for e in 0..ctx.num_edges() as u32 {
                    let mut want: Vec<[u32; 2]> = Vec::new();
                    ctx.for_each_triangle_of_edge(&g, e, |fe, ge, _w| {
                        want.push(if fe <= ge { [fe, ge] } else { [ge, fe] });
                    });
                    want.sort_unstable();
                    let mut got: Vec<[u32; 2]> = ctx
                        .edge_triangles(e)
                        .expect("test graphs are far below the cache cap")
                        .iter()
                        .map(|&[a, b]| if a <= b { [a, b] } else { [b, a] })
                        .collect();
                    got.sort_unstable();
                    let k = kernel.as_str();
                    assert_eq!(got, want, "{name}/{k}: edge {e} cache drifted");
                    assert_eq!(got.len(), ctx.supports()[e as usize] as usize, "{name}: edge {e}");
                }
            }
        }
    }

    #[test]
    fn fused_supports_match_the_reference_for_every_kernel() {
        for (name, g) in test_graphs() {
            let idx = EdgeIndex::build(&g);
            let want = edge_supports(&g, &idx);
            for kernel in ALL_KERNELS {
                let ctx = TriangleCtx::build_with_kernel(&g, kernel);
                assert_eq!(
                    ctx.supports(),
                    want.as_slice(),
                    "{name}: {} supports drifted",
                    kernel.as_str()
                );
            }
        }
    }

    #[test]
    fn oriented_enumeration_matches_the_reference_for_every_kernel() {
        for (name, g) in test_graphs() {
            let idx = EdgeIndex::build(&g);
            for kernel in ALL_KERNELS {
                let ctx = TriangleCtx::build_with_kernel(&g, kernel);
                for e in 0..idx.num_edges() as u32 {
                    let mut want = Vec::new();
                    for_each_triangle_of_edge(&g, &idx, e, |fe, ge, w| want.push((fe, ge, w)));
                    let mut got = Vec::new();
                    ctx.for_each_triangle_of_edge(&g, e, |fe, ge, w| got.push((fe, ge, w)));
                    assert_eq!(got, want, "{name}: edge {e} under {}", kernel.as_str());
                }
            }
        }
    }

    #[test]
    fn triangle_count_fold_matches_supports_sum_for_every_kernel() {
        for (name, g) in test_graphs() {
            let idx = EdgeIndex::build(&g);
            let per_edge: u64 = edge_supports(&g, &idx).iter().map(|&s| s as u64).sum();
            let want = per_edge / 3;
            let d = Dodg::build(&g);
            for kernel in ALL_KERNELS {
                assert_eq!(d.triangle_count(&g, kernel), want, "{name}: {}", kernel.as_str());
            }
        }
    }

    #[test]
    fn hub_maps_resolve_companion_ids() {
        // A wheel: the hub has degree n-1, every rim edge's triangles
        // go through the hub's map under the forced bitset policy.
        let n = 200u32;
        let rim: Vec<(u32, u32)> = (1..n).map(|i| (i, if i + 1 < n { i + 1 } else { 1 })).collect();
        let spokes: Vec<(u32, u32)> = (1..n).map(|i| (0, i)).collect();
        let g = GraphBuilder::new(n as usize).edges(rim.into_iter().chain(spokes)).build();
        let idx = EdgeIndex::build(&g);
        let ctx = TriangleCtx::build_with_kernel(&g, TriKernel::Bitset);
        assert_eq!(ctx.supports(), edge_supports(&g, &idx).as_slice());
        for e in 0..idx.num_edges() as u32 {
            ctx.for_each_triangle_of_edge(&g, e, |fe, ge, w| {
                let (u, v) = idx.endpoints(e);
                assert_eq!(idx.edge_id(&g, u, w), Some(fe));
                assert_eq!(idx.edge_id(&g, v, w), Some(ge));
            });
        }
    }
}
