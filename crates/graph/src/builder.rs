//! Edge-list to CSR construction.
//!
//! Two construction paths share one finishing pipeline:
//!
//! * [`GraphBuilder`] — the convenience builder: accepts arbitrary
//!   (possibly directed, duplicated, self-looping) edge lists held in
//!   one `Vec`, symmetrizes, and finishes through the counting sort.
//! * [`StreamBuilder`] — the large-input path: ingests edges in bounded
//!   shards (~[`SHARD_ARCS`] arcs each) so ingestion never holds one
//!   giant arc vector, then counting-sorts the shards in parallel
//!   straight into CSR. `io::read_edge_list` streams through it.
//!
//! The finishing pipeline ([`from_symmetric_arcs`]) is a two-level
//! parallel counting sort by source. A one-level scatter (one cursor
//! per vertex) touches a random cache line per arc, which loses to a
//! cache-oblivious comparison sort on big vertex sets; so the arcs are
//! first partitioned by *source bucket* (ranges of [`BUCKET_VERTS`]
//! consecutive vertices — writes stream into a few dozen cursors),
//! then each bucket is counting-sorted with bucket-local count/offset
//! arrays that fit in L1/L2, per-vertex sorted, and deduplicated. It
//! replaces the previous global `par_sort_unstable` over all arcs
//! (kept as [`from_symmetric_arcs_by_sort`] for A/B benchmarking):
//! O(m) moves instead of O(m log m) comparisons, with every phase
//! either streaming or bucket-local.

use crate::csr::{CsrGraph, VertexId};
use kcore_obs::{counter, span};
use kcore_parallel::primitives::exclusive_scan;
use rayon::prelude::*;

/// Arcs per [`StreamBuilder`] shard (~16 MiB of `(u32, u32)` pairs).
/// Bounds peak ingestion memory per in-flight chunk while keeping
/// shards large enough that per-shard parallel loops stay efficient.
pub const SHARD_ARCS: usize = 1 << 21;

/// Vertices per counting-sort source bucket (`2^13`). Sized so a
/// bucket's count + cursor arrays (`8 B` per vertex) stay L1-resident
/// while the bucket's arc run is typically L2-resident.
const BUCKET_VERTS: usize = 1 << 13;

/// Builder turning edge lists into a [`CsrGraph`].
///
/// ```
/// use kcore_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(4)
///     .edges([(0, 1), (1, 0), (1, 2), (2, 2), (2, 3)]) // dup, loop
///     .build();
/// assert_eq!(g.num_edges(), 3); // {0,1}, {1,2}, {2,3}
/// ```
pub struct GraphBuilder {
    n: usize,
    arcs: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices (ids `0..n`).
    pub fn new(n: usize) -> Self {
        assert!(n <= VertexId::MAX as usize, "vertex count {n} exceeds the u32 id space");
        Self { n, arcs: Vec::new() }
    }

    /// Adds a single undirected edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.push_edge(u, v);
        self
    }

    /// Adds a batch of undirected edges.
    pub fn edges<I>(mut self, edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        for (u, v) in edges {
            self.push_edge(u, v);
        }
        self
    }

    /// In-place variant of [`GraphBuilder::edge`] for loop-heavy callers.
    pub fn push_edge(&mut self, u: VertexId, v: VertexId) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for n = {}",
            self.n
        );
        self.arcs.push((u, v));
    }

    /// Number of raw (pre-dedup) edges added so far.
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// Whether no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// Finalizes the graph: symmetrize, drop self-loops, deduplicate,
    /// and pack into CSR.
    pub fn build(self) -> CsrGraph {
        let n = self.n;
        // Symmetrize: each undirected edge becomes two arcs.
        let mut arcs = Vec::with_capacity(self.arcs.len() * 2);
        for &(u, v) in &self.arcs {
            if u != v {
                arcs.push((u, v));
                arcs.push((v, u));
            }
        }
        build_from_arcs(n, arcs)
    }
}

/// Streaming CSR builder for inputs too large to buffer whole.
///
/// Edges are symmetrized on push (self-loops dropped) into bounded
/// shards of at most [`SHARD_ARCS`] arcs; [`StreamBuilder::build`]
/// counting-sorts all shards in parallel into the final CSR. Peak
/// transient memory during ingestion is one shard plus the sealed
/// shards — the final arrays are only sized once, at build time.
///
/// ```
/// use kcore_graph::StreamBuilder;
///
/// let mut b = StreamBuilder::growable();
/// b.push_chunk([(0, 1), (1, 2), (2, 0), (2, 2)]); // loop dropped
/// let g = b.build();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 3);
/// ```
pub struct StreamBuilder {
    n: usize,
    grow: bool,
    shards: Vec<Vec<(VertexId, VertexId)>>,
    current: Vec<(VertexId, VertexId)>,
}

impl StreamBuilder {
    /// A builder for a fixed vertex count `n`; out-of-range edges panic
    /// (same contract as [`GraphBuilder::new`]).
    pub fn new(n: usize) -> Self {
        assert!(n <= VertexId::MAX as usize, "vertex count {n} exceeds the u32 id space");
        Self { n, grow: false, shards: Vec::new(), current: Vec::new() }
    }

    /// A builder whose vertex count grows to `max_id + 1` as edges
    /// arrive — the right mode for edge-list files with no header.
    pub fn growable() -> Self {
        Self { n: 0, grow: true, shards: Vec::new(), current: Vec::new() }
    }

    /// Pre-declares at least `n` vertices (isolated vertices are legal).
    /// In growable mode the count can still increase past this.
    pub fn reserve_vertices(&mut self, n: usize) {
        assert!(n <= VertexId::MAX as usize, "vertex count {n} exceeds the u32 id space");
        self.n = self.n.max(n);
    }

    /// The current vertex count.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Symmetric arcs buffered so far (2x the kept undirected edges).
    pub fn num_buffered_arcs(&self) -> usize {
        self.shards.iter().map(Vec::len).sum::<usize>() + self.current.len()
    }

    /// Adds one undirected edge `{u, v}`; self-loops are dropped.
    #[inline]
    pub fn push_edge(&mut self, u: VertexId, v: VertexId) {
        if self.grow {
            let need = (u.max(v) as usize) + 1;
            if need > self.n {
                self.n = need;
            }
        } else {
            assert!(
                (u as usize) < self.n && (v as usize) < self.n,
                "edge ({u}, {v}) out of range for n = {}",
                self.n
            );
        }
        if u != v {
            if self.current.len() + 2 > SHARD_ARCS {
                self.seal();
            }
            self.current.push((u, v));
            self.current.push((v, u));
        }
    }

    /// Adds a chunk of undirected edges.
    pub fn push_chunk<I>(&mut self, edges: I)
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        for (u, v) in edges {
            self.push_edge(u, v);
        }
    }

    fn seal(&mut self) {
        if !self.current.is_empty() {
            counter!("build.shard", 1);
            let cap = self.current.capacity().min(SHARD_ARCS);
            self.shards.push(std::mem::replace(&mut self.current, Vec::with_capacity(cap)));
        }
    }

    /// Finalizes the graph via the parallel counting sort.
    pub fn build(mut self) -> CsrGraph {
        self.seal();
        countsort_build(self.n, self.shards)
    }
}

/// Builds a CSR graph from an already-symmetric arc list: every
/// undirected edge must appear as both `(u, v)` and `(v, u)`, with no
/// self-loops (duplicates are fine — the build dedups). This is the
/// parallel counting-sort construction path [`GraphBuilder::build`] and
/// [`StreamBuilder::build`] use, exposed for callers that maintain
/// symmetry themselves, such as the delta overlay's compaction
/// ([`crate::OverlayGraph::compact`]).
///
/// Asymmetric input or self-loops produce a graph that violates the
/// [`CsrGraph`] invariants (no memory unsafety; algorithms may return
/// wrong answers) — use [`GraphBuilder`] for untrusted edge lists.
pub fn from_symmetric_arcs(n: usize, arcs: Vec<(VertexId, VertexId)>) -> CsrGraph {
    debug_assert!(arcs.iter().all(|&(u, v)| u != v), "self-loop in symmetric arc list");
    countsort_build(n, vec![arcs])
}

/// The pre-streaming construction path: global parallel sort over all
/// arcs, then dedup and a sequential CSR fill. Kept as the A/B baseline
/// for `bench_build` and as an oracle in tests — both paths produce
/// bit-identical graphs (sorted, deduplicated per-vertex adjacency).
pub fn from_symmetric_arcs_by_sort(n: usize, mut arcs: Vec<(VertexId, VertexId)>) -> CsrGraph {
    debug_assert!(arcs.iter().all(|&(u, v)| u != v), "self-loop in symmetric arc list");
    arcs.par_sort_unstable();
    arcs.dedup();

    let mut offsets = vec![0usize; n + 1];
    for &(u, _) in &arcs {
        offsets[u as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let edges: Vec<VertexId> = arcs.into_iter().map(|(_, v)| v).collect();
    CsrGraph::from_parts_unchecked(offsets, edges)
}

// Historical internal name, still used by the `gen` family.
pub(crate) use from_symmetric_arcs as build_from_arcs;

/// Raw pointer wrapper for disjoint-range parallel writes (same
/// discipline as `kcore_parallel::primitives`' pack buffers).
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: only used with the disjoint-write discipline documented at
// each use site.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Two-level parallel counting sort from symmetric arc shards into CSR.
///
/// * **Partition** (streaming): histogram each shard by source bucket
///   ([`BUCKET_VERTS`] consecutive vertices per bucket), scan the
///   histograms into per-shard cursors, and scatter the arcs into a
///   bucket-grouped array. Each shard writes through one cursor per
///   bucket, so the writes stream instead of hitting a random cache
///   line per arc — the failure mode of a one-level counting sort.
/// * **Per-bucket finish** (bucket-local): count per vertex, scan, and
///   scatter inside the bucket's contiguous run (count/cursor arrays
///   are `8 B x BUCKET_VERTS`, L1-resident), then per-vertex
///   `sort_unstable` + in-place dedup, then recompact into the final
///   arrays.
///
/// Shards are consumed and freed right after the partition pass, so
/// peak memory is `~12 B`/arc beyond the input, not input + output.
/// The result is bit-identical to the global-sort path: per-vertex
/// sorted, deduplicated adjacency.
fn countsort_build(n: usize, shards: Vec<Vec<(VertexId, VertexId)>>) -> CsrGraph {
    let total: usize = shards.iter().map(Vec::len).sum();
    if total == 0 {
        return CsrGraph::from_parts_unchecked(vec![0; n + 1], Vec::new());
    }
    let _span = span!("build.countsort", total);
    let num_buckets = n.div_ceil(BUCKET_VERTS);
    let bucket_of = |u: VertexId| (u as usize) >> BUCKET_VERTS.trailing_zeros();

    // Partition 1/2: per-shard bucket histograms, scanned into one
    // write cursor per (shard, bucket) — shard s's slice of bucket b is
    // [cursors[s][b], cursors[s][b] + hists[s][b]).
    let hists: Vec<Vec<u32>> = shards
        .par_iter()
        .map(|shard| {
            let mut h = vec![0u32; num_buckets];
            for &(u, _) in shard {
                h[bucket_of(u)] += 1;
            }
            h
        })
        .collect();
    let mut bucket_counts = vec![0usize; num_buckets];
    for h in &hists {
        for (b, &c) in h.iter().enumerate() {
            bucket_counts[b] += c as usize;
        }
    }
    let (bucket_starts, scanned) = exclusive_scan(&bucket_counts);
    debug_assert_eq!(scanned, total);
    let cursors: Vec<Vec<usize>> = {
        let mut run = bucket_starts.clone();
        hists
            .iter()
            .map(|h| {
                let cur = run.clone();
                for (b, &c) in h.iter().enumerate() {
                    run[b] += c as usize;
                }
                cur
            })
            .collect()
    };

    // Partition 2/2: scatter arcs into the bucket-grouped array, then
    // free the shards — from here on only `bucketed` is needed.
    let mut bucketed: Vec<(VertexId, VertexId)> = Vec::with_capacity(total);
    let bucketed_ptr = SendPtr(bucketed.as_mut_ptr());
    (0..shards.len()).into_par_iter().for_each(|s| {
        let ptr = bucketed_ptr;
        let mut cur = cursors[s].clone();
        for &(u, v) in &shards[s] {
            let b = bucket_of(u);
            // SAFETY: the (shard, bucket) ranges are disjoint by the
            // cursor construction above and their union is 0..total;
            // each slot is claimed exactly once.
            unsafe { *ptr.0.add(cur[b]) = (u, v) };
            cur[b] += 1;
        }
    });
    // SAFETY: every slot in 0..total was written exactly once above.
    unsafe { bucketed.set_len(total) };
    drop(shards);

    // Per-bucket finish: bucket b exclusively owns the vertex range
    // [b * BUCKET_VERTS, (b + 1) * BUCKET_VERTS) and the arc run
    // bucketed[bucket_starts[b]..][..bucket_counts[b]], so all the
    // parallel writes below land in disjoint per-bucket ranges.
    let mut raw: Vec<VertexId> = vec![0; total];
    let mut raw_offsets = vec![0usize; n]; // start of v's run inside `raw`
    let mut deduped = vec![0usize; n]; // v's neighbor count after dedup
    let raw_ptr = SendPtr(raw.as_mut_ptr());
    let roff_ptr = SendPtr(raw_offsets.as_mut_ptr());
    let dlen_ptr = SendPtr(deduped.as_mut_ptr());
    {
        let _dedup = span!("build.dedup", n);
        let bucketed_ro: &[(VertexId, VertexId)] = &bucketed;
        (0..num_buckets).into_par_iter().for_each(|b| {
            let (raw_ptr, roff_ptr, dlen_ptr) = (raw_ptr, roff_ptr, dlen_ptr);
            let lo_v = b * BUCKET_VERTS;
            let span_v = BUCKET_VERTS.min(n - lo_v);
            let base = bucket_starts[b];
            let arcs = &bucketed_ro[base..base + bucket_counts[b]];
            // SAFETY: bucket b owns vertices lo_v..lo_v + span_v and the
            // raw run base..base + bucket_counts[b]; both exclusive.
            let out = unsafe { std::slice::from_raw_parts_mut(raw_ptr.0.add(base), arcs.len()) };
            let roff = unsafe { std::slice::from_raw_parts_mut(roff_ptr.0.add(lo_v), span_v) };
            let dlen = unsafe { std::slice::from_raw_parts_mut(dlen_ptr.0.add(lo_v), span_v) };
            // Bucket-local count + scan: both arrays are BUCKET_VERTS
            // entries at most, L1-resident.
            let mut counts = vec![0u32; span_v];
            for &(u, _) in arcs {
                counts[u as usize - lo_v] += 1;
            }
            let mut cur = vec![0usize; span_v];
            let mut off = 0usize;
            for i in 0..span_v {
                roff[i] = base + off;
                cur[i] = off;
                off += counts[i] as usize;
            }
            for &(u, v) in arcs {
                let i = u as usize - lo_v;
                out[cur[i]] = v;
                cur[i] += 1;
            }
            for i in 0..span_v {
                let len = counts[i] as usize;
                if len == 0 {
                    continue;
                }
                let s = &mut out[cur[i] - len..cur[i]];
                s.sort_unstable();
                let mut w = 0usize;
                for r in 0..len {
                    if w == 0 || s[r] != s[w - 1] {
                        s[w] = s[r];
                        w += 1;
                    }
                }
                dlen[i] = w;
            }
        });
    }
    drop(bucketed);

    // Recompact the deduped prefixes into the final arrays. Vertex v's
    // destination offsets[v]..+deduped[v] lies inside its bucket's
    // contiguous destination run, so per-bucket writes stay disjoint.
    let (mut offsets, arcs) = exclusive_scan(&deduped);
    let mut edges: Vec<VertexId> = vec![0; arcs];
    let edges_ptr = SendPtr(edges.as_mut_ptr());
    let raw_ro: &[VertexId] = &raw;
    let offsets_ro: &[usize] = &offsets;
    let (deduped_ro, raw_offsets_ro): (&[usize], &[usize]) = (&deduped, &raw_offsets);
    (0..num_buckets).into_par_iter().for_each(|b| {
        let ptr = edges_ptr;
        let lo_v = b * BUCKET_VERTS;
        let hi_v = (lo_v + BUCKET_VERTS).min(n);
        for v in lo_v..hi_v {
            let len = deduped_ro[v];
            if len > 0 {
                // SAFETY: destination ranges offsets[v]..+len are
                // disjoint per vertex and in bounds by the scan.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        raw_ro[raw_offsets_ro[v]..].as_ptr(),
                        ptr.0.add(offsets_ro[v]),
                        len,
                    );
                }
            }
        }
    });
    offsets.push(arcs);
    CsrGraph::from_parts_unchecked(offsets, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deduplicates_and_symmetrizes() {
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 0), (0, 1), (1, 2)]).build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        g.validate();
    }

    #[test]
    fn drops_self_loops() {
        let g = GraphBuilder::new(2).edges([(0, 0), (0, 1), (1, 1)]).build();
        assert_eq!(g.num_edges(), 1);
        g.validate();
    }

    #[test]
    fn isolated_vertices_have_empty_adjacency() {
        let g = GraphBuilder::new(5).edge(0, 4).build();
        for v in 1..4 {
            assert_eq!(g.degree(v), 0);
        }
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(4), 1);
        g.validate();
    }

    #[test]
    fn build_empty_graph_with_vertices() {
        let g = GraphBuilder::new(10).build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 0);
        g.validate();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edges() {
        GraphBuilder::new(2).edge(0, 2);
    }

    #[test]
    fn large_random_build_is_valid() {
        // Cheap pseudo-random edges (LCG) without pulling in rand here.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let n = 1000u32;
        let mut b = GraphBuilder::new(n as usize);
        for _ in 0..5000 {
            b.push_edge(next() % n, next() % n);
        }
        let g = b.build();
        g.validate();
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn countsort_matches_sort_path_bit_for_bit() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let n = 500u32;
        let mut arcs = Vec::new();
        for _ in 0..20_000 {
            let (u, v) = (next() % n, next() % n);
            if u != v {
                arcs.push((u, v));
                arcs.push((v, u));
            }
        }
        let a = from_symmetric_arcs(n as usize, arcs.clone());
        let b = from_symmetric_arcs_by_sort(n as usize, arcs);
        assert_eq!(a, b);
        a.validate();
    }

    #[test]
    fn stream_builder_matches_graph_builder() {
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let n = 300u32;
        let edges: Vec<(u32, u32)> = (0..10_000).map(|_| (next() % n, next() % n)).collect();
        let reference = GraphBuilder::new(n as usize).edges(edges.iter().copied()).build();
        let mut sb = StreamBuilder::new(n as usize);
        for chunk in edges.chunks(777) {
            sb.push_chunk(chunk.iter().copied());
        }
        let streamed = sb.build();
        assert_eq!(streamed, reference);
        streamed.validate();
    }

    #[test]
    fn stream_builder_grows_vertex_count() {
        let mut b = StreamBuilder::growable();
        b.push_edge(0, 7);
        b.push_edge(3, 3); // dropped self-loop still grows n
        assert_eq!(b.num_vertices(), 8);
        let g = b.build();
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.num_edges(), 1);
        g.validate();
    }

    #[test]
    fn stream_builder_seals_multiple_shards() {
        // Force > SHARD_ARCS arcs through a growable builder by pushing
        // a dense-ish random multigraph, then compare with the oracle.
        let mut state = 7u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let n = 2_000u32;
        let raw_edges = SHARD_ARCS; // 2x arcs after symmetrization => >= 2 shards
        let mut sb = StreamBuilder::new(n as usize);
        let mut reference = GraphBuilder::new(n as usize);
        for _ in 0..raw_edges {
            let (u, v) = (next() % n, next() % n);
            sb.push_edge(u, v);
            reference.push_edge(u, v);
        }
        assert!(sb.num_buffered_arcs() > SHARD_ARCS);
        assert_eq!(sb.build(), reference.build());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn stream_builder_fixed_n_rejects_out_of_range() {
        StreamBuilder::new(2).push_edge(0, 2);
    }
}
