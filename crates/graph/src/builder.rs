//! Edge-list to CSR construction.
//!
//! [`GraphBuilder`] accepts arbitrary (possibly directed, duplicated,
//! self-looping) edge lists and produces a clean undirected [`CsrGraph`]:
//! every input edge is symmetrized, self-loops are dropped, and parallel
//! edges are deduplicated. The build is a parallel sort over arcs followed
//! by a single CSR fill pass.

use crate::csr::{CsrGraph, VertexId};
use rayon::prelude::*;

/// Builder turning edge lists into a [`CsrGraph`].
///
/// ```
/// use kcore_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(4)
///     .edges([(0, 1), (1, 0), (1, 2), (2, 2), (2, 3)]) // dup, loop
///     .build();
/// assert_eq!(g.num_edges(), 3); // {0,1}, {1,2}, {2,3}
/// ```
pub struct GraphBuilder {
    n: usize,
    arcs: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices (ids `0..n`).
    pub fn new(n: usize) -> Self {
        assert!(n <= VertexId::MAX as usize, "vertex count {n} exceeds the u32 id space");
        Self { n, arcs: Vec::new() }
    }

    /// Adds a single undirected edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.push_edge(u, v);
        self
    }

    /// Adds a batch of undirected edges.
    pub fn edges<I>(mut self, edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        for (u, v) in edges {
            self.push_edge(u, v);
        }
        self
    }

    /// In-place variant of [`GraphBuilder::edge`] for loop-heavy callers.
    pub fn push_edge(&mut self, u: VertexId, v: VertexId) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for n = {}",
            self.n
        );
        self.arcs.push((u, v));
    }

    /// Number of raw (pre-dedup) edges added so far.
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// Whether no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// Finalizes the graph: symmetrize, drop self-loops, deduplicate,
    /// and pack into CSR.
    pub fn build(self) -> CsrGraph {
        let n = self.n;
        // Symmetrize: each undirected edge becomes two arcs.
        let mut arcs = Vec::with_capacity(self.arcs.len() * 2);
        for &(u, v) in &self.arcs {
            if u != v {
                arcs.push((u, v));
                arcs.push((v, u));
            }
        }
        build_from_arcs(n, arcs)
    }
}

/// Builds a CSR graph from an already-symmetric arc list: every
/// undirected edge must appear as both `(u, v)` and `(v, u)`, with no
/// self-loops (duplicates are fine — the build dedups). This is the
/// parallel-sort construction path [`GraphBuilder::build`] uses, exposed
/// for callers that maintain symmetry themselves, such as the delta
/// overlay's compaction ([`crate::OverlayGraph::compact`]).
///
/// Asymmetric input or self-loops produce a graph that violates the
/// [`CsrGraph`] invariants (no memory unsafety; algorithms may return
/// wrong answers) — use [`GraphBuilder`] for untrusted edge lists.
pub fn from_symmetric_arcs(n: usize, mut arcs: Vec<(VertexId, VertexId)>) -> CsrGraph {
    debug_assert!(arcs.iter().all(|&(u, v)| u != v), "self-loop in symmetric arc list");
    arcs.par_sort_unstable();
    arcs.dedup();

    let mut offsets = vec![0usize; n + 1];
    for &(u, _) in &arcs {
        offsets[u as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let edges: Vec<VertexId> = arcs.into_iter().map(|(_, v)| v).collect();
    CsrGraph::from_parts_unchecked(offsets, edges)
}

// Historical internal name, still used by the `gen` family.
pub(crate) use from_symmetric_arcs as build_from_arcs;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deduplicates_and_symmetrizes() {
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 0), (0, 1), (1, 2)]).build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        g.validate();
    }

    #[test]
    fn drops_self_loops() {
        let g = GraphBuilder::new(2).edges([(0, 0), (0, 1), (1, 1)]).build();
        assert_eq!(g.num_edges(), 1);
        g.validate();
    }

    #[test]
    fn isolated_vertices_have_empty_adjacency() {
        let g = GraphBuilder::new(5).edge(0, 4).build();
        for v in 1..4 {
            assert_eq!(g.degree(v), 0);
        }
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(4), 1);
        g.validate();
    }

    #[test]
    fn build_empty_graph_with_vertices() {
        let g = GraphBuilder::new(10).build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 0);
        g.validate();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edges() {
        GraphBuilder::new(2).edge(0, 2);
    }

    #[test]
    fn large_random_build_is_valid() {
        // Cheap pseudo-random edges (LCG) without pulling in rand here.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let n = 1000u32;
        let mut b = GraphBuilder::new(n as usize);
        for _ in 0..5000 {
            b.push_edge(next() % n, next() % n);
        }
        let g = b.build();
        g.validate();
        assert!(g.num_edges() > 0);
    }
}
