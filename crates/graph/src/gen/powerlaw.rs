//! Power-law generators: RMAT, Barabási–Albert, and planted-core graphs.
//!
//! These model the dense families of the paper's evaluation — social
//! networks (LJ, OK, WB, TW, FS), web graphs (EH, SD, CW, HL), and the
//! synthetic HPL graph. The defining property for k-core performance is
//! the presence of very-high-degree hub vertices, which cause contention
//! in online peeling and trigger the sampling scheme.

use crate::builder::build_from_arcs;
use crate::csr::{CsrGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Recursive-matrix (RMAT) graph, the standard social-network generator.
///
/// Generates `n = 2^scale` vertices and `edge_factor * n` undirected
/// edges by recursively descending a 2×2 probability matrix
/// `(a, b, c, 1 - a - b - c)`. With the Graph500 parameters
/// `a = 0.57, b = c = 0.19` the result is a heavy-tailed degree
/// distribution with hubs — the LJ / OK / WB analog.
///
/// Duplicates and self-loops produced by the process are dropped, so the
/// final edge count is slightly below `edge_factor * n`.
pub fn rmat(scale: u32, edge_factor: usize, a: f64, b: f64, c: f64, seed: u64) -> CsrGraph {
    assert!(scale <= 28, "scale {scale} too large for laptop-scale graphs");
    assert!(a > 0.0 && b >= 0.0 && c >= 0.0 && a + b + c < 1.0, "invalid RMAT probabilities");
    let n = 1usize << scale;
    let m = edge_factor * n;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut arcs = Vec::with_capacity(2 * m);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < a {
                // top-left quadrant: no bits set
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if u != v {
            arcs.push((u as VertexId, v as VertexId));
            arcs.push((v as VertexId, u as VertexId));
        }
    }
    build_from_arcs(n, arcs)
}

/// Barabási–Albert preferential-attachment graph (the paper's HPL).
///
/// Starts from a clique on `attach + 1` vertices; each subsequent vertex
/// connects to `attach` existing vertices chosen proportionally to their
/// current degree (implemented with the standard repeated-endpoint trick:
/// sampling a uniform endpoint from the arc list is exactly
/// degree-proportional sampling).
pub fn barabasi_albert(n: usize, attach: usize, seed: u64) -> CsrGraph {
    assert!(attach >= 1, "attach must be at least 1");
    assert!(n > attach, "n must exceed attach + 1");
    let mut rng = SmallRng::seed_from_u64(seed);
    // endpoints holds every arc endpoint ever created; uniform sampling
    // from it is degree-proportional sampling.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * attach);
    let mut arcs: Vec<(VertexId, VertexId)> = Vec::with_capacity(2 * n * attach);
    let seed_size = attach + 1;
    for u in 0..seed_size {
        for v in (u + 1)..seed_size {
            arcs.push((u as VertexId, v as VertexId));
            arcs.push((v as VertexId, u as VertexId));
            endpoints.push(u as VertexId);
            endpoints.push(v as VertexId);
        }
    }
    let mut targets = Vec::with_capacity(attach);
    for v in seed_size..n {
        targets.clear();
        // Rejection-sample distinct targets; attach is small so this is fast.
        while targets.len() < attach {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            arcs.push((v as VertexId, t));
            arcs.push((t, v as VertexId));
            endpoints.push(v as VertexId);
            endpoints.push(t);
        }
    }
    build_from_arcs(n, arcs)
}

/// Power-law graph with a planted dense core: the web-graph analog
/// (EH / SD / CW / HL), whose defining feature is a large `k_max`.
///
/// Takes a Barabási–Albert base graph on `n` vertices and overlays a
/// clique on `core_size` randomly chosen vertices. The clique guarantees
/// `k_max >= core_size - 1` while the base supplies the heavy-tailed
/// periphery, reproducing both the bucket pressure (many rounds at high
/// k) and the hub contention of real web graphs.
pub fn planted_core(n: usize, attach: usize, core_size: usize, seed: u64) -> CsrGraph {
    assert!(core_size >= 2 && core_size <= n, "core_size out of range");
    let base = barabasi_albert(n, attach, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    // Choose core members by reservoir-free partial shuffle.
    let mut ids: Vec<VertexId> = (0..n as VertexId).collect();
    for i in 0..core_size {
        let j = rng.gen_range(i..n);
        ids.swap(i, j);
    }
    let core = &ids[..core_size];
    let mut arcs: Vec<(VertexId, VertexId)> =
        Vec::with_capacity(base.num_arcs() + core_size * core_size);
    for u in base.vertices() {
        for &v in base.neighbors(u) {
            arcs.push((u, v));
        }
    }
    for i in 0..core_size {
        for j in (i + 1)..core_size {
            arcs.push((core[i], core[j]));
            arcs.push((core[j], core[i]));
        }
    }
    build_from_arcs(n, arcs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_size_and_validity() {
        let g = rmat(10, 8, 0.57, 0.19, 0.19, 1);
        assert_eq!(g.num_vertices(), 1024);
        // Duplicates drop some edges but most survive.
        assert!(g.num_edges() > 4 * 1024);
        assert!(g.num_edges() <= 8 * 1024);
        g.validate();
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(12, 16, 0.57, 0.19, 0.19, 7);
        // Heavy tail: the max degree is far above the average.
        assert!(g.max_degree() as f64 > 8.0 * g.avg_degree());
    }

    #[test]
    fn rmat_deterministic_per_seed() {
        assert_eq!(rmat(8, 4, 0.57, 0.19, 0.19, 3), rmat(8, 4, 0.57, 0.19, 0.19, 3));
        assert_ne!(rmat(8, 4, 0.57, 0.19, 0.19, 3), rmat(8, 4, 0.57, 0.19, 0.19, 4));
    }

    #[test]
    fn ba_edge_count_is_exact() {
        let (n, attach) = (500, 3);
        let g = barabasi_albert(n, attach, 11);
        let seed_edges = (attach + 1) * attach / 2;
        assert_eq!(g.num_edges(), seed_edges + (n - attach - 1) * attach);
        // Minimum degree is `attach`.
        assert!(g.vertices().all(|v| g.degree(v) >= attach));
        g.validate();
    }

    #[test]
    fn ba_hubs_emerge() {
        let g = barabasi_albert(2000, 2, 5);
        assert!(g.max_degree() > 20, "max degree {} too small", g.max_degree());
    }

    #[test]
    fn planted_core_contains_its_clique() {
        let g = planted_core(300, 2, 30, 9);
        // The densest part must have degree at least core_size - 1.
        assert!(g.max_degree() >= 29);
        g.validate();
    }
}
