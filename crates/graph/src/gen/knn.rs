//! k-nearest-neighbor graph generator.
//!
//! The paper's k-NN graphs (CH5, GL2/5/10, COS5) are built from
//! real-world vector datasets: each point gets directed edges to its `k`
//! nearest neighbors, then the graph is symmetrized. This generator
//! reproduces the construction over uniform random 2-D points — the
//! structural properties that matter for peeling (small constant degree,
//! near-uniform coreness equal to ~k, tiny peeling complexity ρ) are
//! identical.

use crate::builder::build_from_arcs;
use crate::csr::{CsrGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Exact k-NN graph over `n` uniform random points in the unit square.
///
/// Each point is connected (directed, then symmetrized) to its `k`
/// nearest neighbors by Euclidean distance. Uses a uniform grid index so
/// construction is near-linear for uniform data rather than `O(n^2)`.
pub fn knn(n: usize, k: usize, seed: u64) -> CsrGraph {
    assert!(k >= 1 && k < n, "require 1 <= k < n");
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();

    // Grid with ~1 expected point per cell keeps ring searches tiny.
    let side = (n as f64).sqrt().ceil() as usize;
    let side = side.max(1);
    let cell_of = |p: (f64, f64)| -> (usize, usize) {
        let cx = ((p.0 * side as f64) as usize).min(side - 1);
        let cy = ((p.1 * side as f64) as usize).min(side - 1);
        (cx, cy)
    };
    let mut cells: Vec<Vec<u32>> = vec![Vec::new(); side * side];
    for (i, &p) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        cells[cy * side + cx].push(i as u32);
    }

    let dist2 = |a: (f64, f64), b: (f64, f64)| {
        let dx = a.0 - b.0;
        let dy = a.1 - b.1;
        dx * dx + dy * dy
    };

    let mut arcs: Vec<(VertexId, VertexId)> = Vec::with_capacity(2 * n * k);
    // (distance^2, id) max-heap of current k best, as a small sorted vec.
    let mut best: Vec<(f64, u32)> = Vec::with_capacity(k + 1);
    for (i, &p) in pts.iter().enumerate() {
        best.clear();
        let (cx, cy) = cell_of(p);
        let mut ring = 0usize;
        loop {
            // Scan the cells whose Chebyshev distance from (cx, cy) is
            // exactly `ring`.
            let x0 = cx.saturating_sub(ring);
            let x1 = (cx + ring).min(side - 1);
            let y0 = cy.saturating_sub(ring);
            let y1 = (cy + ring).min(side - 1);
            for y in y0..=y1 {
                for x in x0..=x1 {
                    // Only cells at exact Chebyshev distance `ring`; the
                    // clamped bounds would otherwise re-scan border cells.
                    if cx.abs_diff(x).max(cy.abs_diff(y)) != ring {
                        continue;
                    }
                    for &j in &cells[y * side + x] {
                        if j as usize == i {
                            continue;
                        }
                        let d = dist2(p, pts[j as usize]);
                        let pos = best.partition_point(|&(bd, _)| bd < d);
                        if pos < k {
                            best.insert(pos, (d, j));
                            best.truncate(k);
                        }
                    }
                }
            }
            // Stop once the k-th best distance is closer than the nearest
            // unscanned ring (points beyond it cannot improve the result).
            if best.len() == k {
                let ring_dist = ring as f64 / side as f64;
                if best[k - 1].0 <= ring_dist * ring_dist {
                    break;
                }
            }
            if x0 == 0 && y0 == 0 && x1 == side - 1 && y1 == side - 1 {
                break; // scanned everything
            }
            ring += 1;
        }
        for &(_, j) in &best {
            arcs.push((i as VertexId, j));
            arcs.push((j, i as VertexId));
        }
    }
    build_from_arcs(n, arcs)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force k-NN for cross-checking the grid-indexed version.
    fn knn_brute(n: usize, k: usize, seed: u64) -> Vec<Vec<u32>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
        (0..n)
            .map(|i| {
                let mut ds: Vec<(f64, u32)> = (0..n)
                    .filter(|&j| j != i)
                    .map(|j| {
                        let dx = pts[i].0 - pts[j].0;
                        let dy = pts[i].1 - pts[j].1;
                        (dx * dx + dy * dy, j as u32)
                    })
                    .collect();
                ds.sort_by(|a, b| a.partial_cmp(b).unwrap());
                ds.truncate(k);
                let mut ids: Vec<u32> = ds.into_iter().map(|(_, j)| j).collect();
                ids.sort_unstable();
                ids
            })
            .collect()
    }

    #[test]
    fn knn_matches_brute_force() {
        let (n, k, seed) = (200, 3, 13);
        let g = knn(n, k, seed);
        let brute = knn_brute(n, k, seed);
        // The undirected graph must contain every directed k-NN arc.
        for (i, nbrs) in brute.iter().enumerate() {
            for &j in nbrs {
                assert!(g.has_edge(i as u32, j), "missing k-NN edge {i} -> {j}");
            }
        }
        g.validate();
    }

    #[test]
    fn knn_degree_bounds() {
        let (n, k) = (500, 5);
        let g = knn(n, k, 99);
        // Out-degree is exactly k, so total degree is at least k and the
        // arc count is at most 2 * n * k.
        assert!(g.vertices().all(|v| g.degree(v) >= k));
        assert!(g.num_arcs() <= 2 * n * k);
    }

    #[test]
    fn knn_deterministic_per_seed() {
        assert_eq!(knn(150, 4, 5), knn(150, 4, 5));
    }
}
