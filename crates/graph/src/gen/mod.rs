//! Synthetic graph generators.
//!
//! One generator per graph family in the paper's evaluation (Sec. 6.1.1):
//!
//! | family (paper graphs) | generator |
//! |---|---|
//! | 2-D grid (GRID) | [`grid2d`] |
//! | 3-D cube (CUBE) | [`grid3d`] |
//! | triangulated meshes (TRCE, BBL) | [`mesh`] |
//! | road networks (AF, NA, AS, EU) | [`road`] |
//! | social networks (LJ, OK, WB, TW, FS) | [`rmat`] |
//! | power-law / HPL | [`barabasi_albert`] |
//! | web graphs with high `k_max` (EH, SD, CW, HL) | [`planted_core`] |
//! | k-NN graphs (CH5, GL2/5/10, COS5) | [`knn`] |
//! | adversarial high-coreness (HCNS) | [`hcns`] |
//!
//! Plus small structural graphs used throughout the test suites
//! ([`complete`], [`path`], [`cycle`], [`star`], [`complete_bipartite`],
//! [`erdos_renyi`]).
//!
//! All randomized generators take an explicit `seed` and are fully
//! deterministic for a given seed.

mod grid;
mod hcns;
mod knn;
mod powerlaw;
mod random;

pub use grid::{grid2d, grid3d, mesh, road};
pub use hcns::hcns;
pub use knn::knn;
pub use powerlaw::{barabasi_albert, planted_core, rmat};
pub use random::{complete, complete_bipartite, cycle, erdos_renyi, path, star};
