//! The paper's adversarial high-coreness graph (HCNS).
//!
//! Sec. 6.1.1: *“HCNS is a synthetic graph with a high `k_max`. It
//! contains exactly one vertex with coreness i for 1 <= i < k_max, and a
//! dense subgraph with coreness k_max.”* This is the stress test for
//! bucketing structures (Fig. 8: HBS is 47.8x faster than 1-bucket on
//! HCNS) and the one graph where sampling adds overhead without benefit.

use crate::builder::build_from_arcs;
use crate::csr::{CsrGraph, VertexId};

/// HCNS construction with maximum coreness `kmax`.
///
/// Layout: vertices `0..=kmax` form a `(kmax + 1)`-clique (coreness
/// `kmax`); for every `i` in `1..kmax` a chain vertex `kmax + i` connects
/// to the first `i` clique members, giving it coreness exactly `i`
/// (degree `i`, with all neighbors of higher coreness).
///
/// Total: `n = 2 * kmax`, undirected edges
/// `kmax * (kmax + 1) / 2 + kmax * (kmax - 1) / 2 = kmax^2`.
/// Peeling removes exactly one vertex per round for `kmax - 1` rounds —
/// maximal round count relative to `n`, just like the paper's version.
pub fn hcns(kmax: usize) -> CsrGraph {
    assert!(kmax >= 2, "kmax must be at least 2");
    let clique = kmax + 1;
    let n = clique + (kmax - 1);
    let mut arcs: Vec<(VertexId, VertexId)> = Vec::with_capacity(2 * kmax * kmax);
    for u in 0..clique {
        for v in (u + 1)..clique {
            arcs.push((u as VertexId, v as VertexId));
            arcs.push((v as VertexId, u as VertexId));
        }
    }
    for i in 1..kmax {
        let chain = (clique + i - 1) as VertexId;
        for t in 0..i {
            arcs.push((chain, t as VertexId));
            arcs.push((t as VertexId, chain));
        }
    }
    build_from_arcs(n, arcs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hcns_shape() {
        let kmax = 10;
        let g = hcns(kmax);
        assert_eq!(g.num_vertices(), 2 * kmax);
        assert_eq!(g.num_edges(), kmax * kmax);
        g.validate();
    }

    #[test]
    fn chain_vertices_have_degree_i() {
        let kmax = 8;
        let g = hcns(kmax);
        for i in 1..kmax {
            let chain = (kmax + 1 + i - 1) as VertexId;
            assert_eq!(g.degree(chain), i, "chain vertex for coreness {i}");
        }
    }

    #[test]
    fn clique_members_see_every_other_member() {
        let kmax = 6;
        let g = hcns(kmax);
        for u in 0..=(kmax as VertexId) {
            for v in 0..=(kmax as VertexId) {
                if u != v {
                    assert!(g.has_edge(u, v));
                }
            }
        }
    }
}
