//! Lattice-like generators: grids, cubes, meshes, and road networks.
//!
//! These are the paper's sparse, high-peeling-complexity families. A
//! `√n × √n` grid is the adversarial example for offline peeling (it
//! incurs `O(√n)` subrounds, Sec. 1), meshes model the TRCE/BBL
//! simulation frames, and perturbed grids stand in for OSM road networks.

use crate::builder::build_from_arcs;
use crate::csr::{CsrGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `rows x cols` 2-D grid with 4-neighbor connectivity (the paper's GRID).
///
/// Every interior vertex has degree 4; the whole graph is a 2-core once
/// the boundary peels inward, so `k_max = 2` and the peeling complexity
/// is `Θ(rows + cols)`.
pub fn grid2d(rows: usize, cols: usize) -> CsrGraph {
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut arcs = Vec::with_capacity(4 * n);
    for r in 0..rows {
        for c in 0..cols {
            let v = id(r, c);
            if c + 1 < cols {
                arcs.push((v, id(r, c + 1)));
                arcs.push((id(r, c + 1), v));
            }
            if r + 1 < rows {
                arcs.push((v, id(r + 1, c)));
                arcs.push((id(r + 1, c), v));
            }
        }
    }
    build_from_arcs(n, arcs)
}

/// `x × y × z` 3-D grid with 6-neighbor connectivity (the paper's CUBE).
///
/// `k_max = 3`: the interior survives peeling until every vertex has at
/// most 3 remaining neighbors.
pub fn grid3d(x: usize, y: usize, z: usize) -> CsrGraph {
    let n = x * y * z;
    let id = |i: usize, j: usize, k: usize| (i * y * z + j * z + k) as VertexId;
    let mut arcs = Vec::with_capacity(6 * n);
    for i in 0..x {
        for j in 0..y {
            for k in 0..z {
                let v = id(i, j, k);
                if i + 1 < x {
                    arcs.push((v, id(i + 1, j, k)));
                    arcs.push((id(i + 1, j, k), v));
                }
                if j + 1 < y {
                    arcs.push((v, id(i, j + 1, k)));
                    arcs.push((id(i, j + 1, k), v));
                }
                if k + 1 < z {
                    arcs.push((v, id(i, j, k + 1)));
                    arcs.push((id(i, j, k + 1), v));
                }
            }
        }
    }
    build_from_arcs(n, arcs)
}

/// Triangulated `rows × cols` mesh: a 2-D grid plus one diagonal per cell.
///
/// Models the TRCE / BBL graphs (meshes from 2-D adaptive numerical
/// simulations): low degree, low `k_max` (3), and a very large number of
/// peeling subrounds — the family where VGC shines.
pub fn mesh(rows: usize, cols: usize) -> CsrGraph {
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut arcs = Vec::with_capacity(6 * n);
    let mut push = |a: VertexId, b: VertexId| {
        arcs.push((a, b));
        arcs.push((b, a));
    };
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                push(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                push(id(r, c), id(r + 1, c));
            }
            // Alternate diagonal orientation per cell for an irregular,
            // simulation-like triangulation.
            if r + 1 < rows && c + 1 < cols {
                if (r + c) % 2 == 0 {
                    push(id(r, c), id(r + 1, c + 1));
                } else {
                    push(id(r, c + 1), id(r + 1, c));
                }
            }
        }
    }
    build_from_arcs(n, arcs)
}

/// Road-network-like graph: a 2-D grid with randomly deleted street
/// segments and occasional diagonal shortcuts.
///
/// Stands in for the OSM road graphs (AF, NA, AS, EU): average degree
/// ~2.5, `k_max` 3–4, long shallow peeling chains. `drop_prob` removes
/// each grid edge independently; `diag_prob` adds a diagonal per cell.
pub fn road(rows: usize, cols: usize, drop_prob: f64, diag_prob: f64, seed: u64) -> CsrGraph {
    assert!((0.0..1.0).contains(&drop_prob), "drop_prob must be in [0, 1)");
    assert!((0.0..=1.0).contains(&diag_prob), "diag_prob must be in [0, 1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut arcs = Vec::with_capacity(4 * n);
    let push = |arcs: &mut Vec<(VertexId, VertexId)>, a: VertexId, b: VertexId| {
        arcs.push((a, b));
        arcs.push((b, a));
    };
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols && !rng.gen_bool(drop_prob) {
                push(&mut arcs, id(r, c), id(r, c + 1));
            }
            if r + 1 < rows && !rng.gen_bool(drop_prob) {
                push(&mut arcs, id(r, c), id(r + 1, c));
            }
            if r + 1 < rows && c + 1 < cols && rng.gen_bool(diag_prob) {
                push(&mut arcs, id(r, c), id(r + 1, c + 1));
            }
        }
    }
    build_from_arcs(n, arcs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2d_structure() {
        let g = grid2d(5, 7);
        assert_eq!(g.num_vertices(), 35);
        // Edge count: horizontal 5*(7-1) + vertical (5-1)*7 = 30 + 28.
        assert_eq!(g.num_edges(), 58);
        // Corner degree 2, edge degree 3, interior degree 4.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(8), 4); // (1, 1)
        assert_eq!(g.max_degree(), 4);
        g.validate();
    }

    #[test]
    fn grid2d_degenerate_sizes() {
        assert_eq!(grid2d(1, 1).num_edges(), 0);
        let line = grid2d(1, 5);
        assert_eq!(line.num_edges(), 4);
        assert_eq!(line.max_degree(), 2);
    }

    #[test]
    fn grid3d_structure() {
        let g = grid3d(3, 4, 5);
        assert_eq!(g.num_vertices(), 60);
        // 2*4*5 + 3*3*5 + 3*4*4 = 40 + 45 + 48.
        assert_eq!(g.num_edges(), 133);
        assert_eq!(g.max_degree(), 6);
        g.validate();
    }

    #[test]
    fn mesh_adds_one_diagonal_per_cell() {
        let g = mesh(4, 4);
        let grid_edges = 4 * 3 * 2;
        let cells = 3 * 3;
        assert_eq!(g.num_edges(), grid_edges + cells);
        g.validate();
    }

    #[test]
    fn road_is_sparser_than_its_grid() {
        let g = road(30, 30, 0.2, 0.05, 7);
        let full = grid2d(30, 30);
        assert!(g.num_edges() < full.num_edges());
        assert!(g.avg_degree() < 4.0);
        g.validate();
    }

    #[test]
    fn road_is_deterministic_per_seed() {
        let a = road(20, 20, 0.15, 0.1, 42);
        let b = road(20, 20, 0.15, 0.1, 42);
        let c = road(20, 20, 0.15, 0.1, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
