//! Elementary generators: random and structured graphs used across the
//! test suites and as building blocks for larger workloads.

use crate::builder::build_from_arcs;
use crate::csr::{CsrGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi `G(n, m)` graph: `m` undirected edges sampled uniformly
/// (without self-loops; duplicates are removed, so the final count can be
/// slightly below `m`).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2 || m == 0, "need at least two vertices to place edges");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut arcs = Vec::with_capacity(2 * m);
    for _ in 0..m {
        let u = rng.gen_range(0..n) as VertexId;
        let mut v = rng.gen_range(0..n) as VertexId;
        while v == u {
            v = rng.gen_range(0..n) as VertexId;
        }
        arcs.push((u, v));
        arcs.push((v, u));
    }
    build_from_arcs(n, arcs)
}

/// Complete graph `K_n` (coreness `n - 1` everywhere).
pub fn complete(n: usize) -> CsrGraph {
    let mut arcs = Vec::with_capacity(n * n);
    for u in 0..n {
        for v in (u + 1)..n {
            arcs.push((u as VertexId, v as VertexId));
            arcs.push((v as VertexId, u as VertexId));
        }
    }
    build_from_arcs(n, arcs)
}

/// Path graph `P_n` (coreness 1 everywhere for `n >= 2`).
pub fn path(n: usize) -> CsrGraph {
    let mut arcs = Vec::with_capacity(2 * n);
    for v in 1..n {
        arcs.push(((v - 1) as VertexId, v as VertexId));
        arcs.push((v as VertexId, (v - 1) as VertexId));
    }
    build_from_arcs(n, arcs)
}

/// Cycle graph `C_n` (coreness 2 everywhere for `n >= 3`).
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut arcs = Vec::with_capacity(2 * n);
    for v in 0..n {
        let w = (v + 1) % n;
        arcs.push((v as VertexId, w as VertexId));
        arcs.push((w as VertexId, v as VertexId));
    }
    build_from_arcs(n, arcs)
}

/// Star graph `S_n`: one hub connected to `n - 1` leaves (coreness 1).
///
/// The minimal contention stress test: every leaf decrements the hub.
pub fn star(n: usize) -> CsrGraph {
    assert!(n >= 2, "a star needs at least 2 vertices");
    let mut arcs = Vec::with_capacity(2 * (n - 1));
    for v in 1..n {
        arcs.push((0, v as VertexId));
        arcs.push((v as VertexId, 0));
    }
    build_from_arcs(n, arcs)
}

/// Complete bipartite graph `K_{a,b}` (coreness `min(a, b)` everywhere).
pub fn complete_bipartite(a: usize, b: usize) -> CsrGraph {
    let n = a + b;
    let mut arcs = Vec::with_capacity(2 * a * b);
    for u in 0..a {
        for v in 0..b {
            let w = (a + v) as VertexId;
            arcs.push((u as VertexId, w));
            arcs.push((w, u as VertexId));
        }
    }
    build_from_arcs(n, arcs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_basics() {
        let g = erdos_renyi(100, 300, 17);
        assert_eq!(g.num_vertices(), 100);
        assert!(g.num_edges() <= 300);
        assert!(g.num_edges() > 250); // few collisions at this density
        g.validate();
    }

    #[test]
    fn complete_graph_degrees() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert!(g.vertices().all(|v| g.degree(v) == 5));
        g.validate();
    }

    #[test]
    fn path_and_cycle() {
        let p = path(5);
        assert_eq!(p.num_edges(), 4);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(2), 2);
        let c = cycle(5);
        assert_eq!(c.num_edges(), 5);
        assert!(c.vertices().all(|v| c.degree(v) == 2));
    }

    #[test]
    fn star_hub_degree() {
        let g = star(100);
        assert_eq!(g.degree(0), 99);
        assert!(g.vertices().skip(1).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn complete_bipartite_degrees() {
        let g = complete_bipartite(3, 7);
        assert_eq!(g.num_edges(), 21);
        for u in 0..3 {
            assert_eq!(g.degree(u), 7);
        }
        for v in 3..10 {
            assert_eq!(g.degree(v), 3);
        }
        g.validate();
    }
}
