//! Byte-compressed CSR: per-vertex delta + varint neighbor blocks.
//!
//! [`CompressedCsr`] stores each vertex's sorted neighbor list as a
//! Ligra+-style byte block: the first neighbor is zigzag-varint coded
//! as a signed delta from the vertex's own id, and every subsequent
//! neighbor as the varint gap (≥ 1) to its predecessor. Power-law and
//! mesh-like graphs have small gaps, so most arcs cost one byte instead
//! of the plain backend's four — typically a 2x+ cut in neighbor-array
//! bytes for a modest decode cost during peeling (the trade Ligra+
//! measured, reproduced here by `bench_build`).
//!
//! Two access paths, matching the [`crate::GraphBackend`] contract:
//!
//! * [`CompressedCsr::neighbors`] decodes into a small per-thread
//!   scratch ring and returns a borrowed slice. A caller may hold **at
//!   most one** such slice per thread at a time — the engine's peel
//!   loops do (one frontier vertex's list at a time), and every nested
//!   traversal in `kcore` uses the streaming form instead.
//! * [`CompressedCsr::for_each_neighbor`] decodes inline with no
//!   buffer at all; it nests arbitrarily.
//!
//! Blocks live on the heap ([`CompressedCsr::from_graph`]) or inside a
//! read-only `KCOREGC1` file mapping ([`crate::io::map_compressed`]).

use crate::csr::{CsrGraph, VertexId};
use crate::mmap::{MmapRegion, RawSlice};
use kcore_check::cell::UnsafeCell;
use kcore_obs::span;
use kcore_parallel::primitives::exclusive_scan;
use rayon::prelude::*;
use std::cell::Cell;
use std::sync::Arc;

/// How many decoded neighbor lists each thread keeps alive at once.
/// The access contract requires only one; the second slot is margin so
/// a caller that briefly overlaps two decodes (end of one loop, start
/// of the next) still reads valid data.
const RING: usize = 2;

/// Readable zero bytes guaranteed to follow the blocks section, in
/// memory and on disk. [`read_varint_raw`] issues a word-wide load at
/// every varint position, which may touch one byte past a varint that
/// ends the section; the pad keeps that load in bounds. Owned storage
/// over-allocates by this much, the `KCOREGC1` format appends it after
/// the blocks, and the mapped reader verifies it is present.
pub(crate) const BLOCK_PAD: usize = 8;

/// An undirected graph with delta + varint byte-compressed adjacency.
///
/// Logically identical to the [`CsrGraph`] it was encoded from:
/// [`CompressedCsr::decompress`] round-trips exactly, and decomposition
/// results are bit-identical across backends (enforced by the
/// backend-equivalence proptests in `kcore`).
pub struct CompressedCsr {
    n: usize,
    arcs: usize,
    storage: Repr,
}

/// Storage sections: `offsets[v]..offsets[v + 1]` delimits `v`'s byte
/// block inside `blocks`; `degrees[v]` is its neighbor count (kept
/// aside so [`CompressedCsr::degree`] stays O(1) — peel work accounting
/// calls it constantly and must not decode).
enum Repr {
    Owned {
        offsets: Box<[usize]>,
        degrees: Box<[u32]>,
        blocks: Box<[u8]>,
    },
    Mapped {
        #[allow(dead_code)] // owns the mapping the raw slices point into
        region: Arc<MmapRegion>,
        offsets: RawSlice<usize>,
        degrees: RawSlice<u32>,
        blocks: RawSlice<u8>,
    },
}

struct Scratch {
    bufs: [UnsafeCell<Vec<VertexId>>; RING],
    next: Cell<usize>,
}

thread_local! {
    // `const` init: the scratch is reachable through a plain TLS offset
    // with no lazy-init check — `neighbors` runs once per settled
    // vertex, so this is peel-loop hot. The facade `UnsafeCell`
    // instead of `RefCell`: the only mutable access is the
    // non-reentrant body of `neighbors` below, so a borrow counter
    // would be pure overhead (and model runs race-check the accesses).
    static SCRATCH: Scratch = const {
        Scratch {
            bufs: [UnsafeCell::new(Vec::new()), UnsafeCell::new(Vec::new())],
            next: Cell::new(0),
        }
    };
}

#[inline]
fn zigzag_encode(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

#[inline]
fn zigzag_decode(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

#[inline]
fn write_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one varint at `p`, returning the value and the advanced
/// pointer. The peel-loop hot path: no bounds checks.
///
/// # Safety
///
/// `p` must point at a well-formed varint within an encoded block —
/// guaranteed for blocks produced by [`encode_list`] and enforced for
/// file-loaded blocks by [`validate_blocks`] at read/map time — and at
/// least two bytes starting at `p` must be readable (the block-section
/// invariant: every varint is followed by another varint or by
/// [`BLOCK_PAD`] trailing bytes).
#[inline]
unsafe fn read_varint_raw(p: *const u8) -> (u64, *const u8) {
    // One unaligned u16 load covers the 1- and 2-byte cases (all gaps
    // on graphs with n < 2^14, and most on larger ones) with an
    // arithmetic select instead of a data-dependent branch — the
    // 1-vs-2-byte mix on real gap streams is close to random, so a
    // branch here mispredicts constantly. The load may touch one byte
    // past a section-final varint; [`BLOCK_PAD`] keeps it in bounds.
    let w = u32::from(p.cast::<u16>().read_unaligned().to_le());
    if w & 0x8080 == 0x8080 {
        return read_varint_cold(p);
    }
    let cont = (w >> 7) & 1; // 1 iff byte 0 has the continuation bit
    let val = (w & 0x7f) | (((w >> 8) & 0x7f) << 7) & 0u32.wrapping_sub(cont);
    (u64::from(val), p.add(1 + cont as usize))
}

/// ≥3-byte varints (gap ≥ 2^14): off the hot path, byte-at-a-time.
///
/// # Safety
///
/// As [`read_varint_raw`]: `p` points at a well-formed varint.
#[cold]
unsafe fn read_varint_cold(mut p: *const u8) -> (u64, *const u8) {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *p;
        p = p.add(1);
        x |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return (x, p);
        }
        shift += 7;
    }
}

/// Fully validates file-loaded sections before they are trusted by the
/// unchecked hot-path decoder: every vertex's block must decode with
/// in-bounds reads to exactly `degrees[v]` strictly increasing
/// neighbors in `0..n`, consuming exactly its `offsets` range. Returns
/// a human-readable reason on the first violation.
pub(crate) fn validate_blocks(
    offsets: &[usize],
    degrees: &[u32],
    blocks: &[u8],
) -> Result<(), String> {
    let n = offsets.len() - 1;
    for v in 0..n {
        let (start, end) = (offsets[v], offsets[v + 1]);
        if start > end || end > blocks.len() {
            return Err(format!("vertex {v}: block range {start}..{end} out of bounds"));
        }
        let block = &blocks[start..end];
        let deg = degrees[v] as usize;
        if deg == 0 {
            if !block.is_empty() {
                return Err(format!("vertex {v}: degree 0 but non-empty block"));
            }
            continue;
        }
        let mut pos = 0usize;
        // `read_varint` indexes `block`, so a varint running off the
        // block tail panics; catchable misbehavior is reported instead
        // by checking the remaining length up front.
        let mut prev: i64 = -1;
        for i in 0..deg {
            let raw = read_varint_checked(block, &mut pos)
                .ok_or_else(|| format!("vertex {v}: block truncated at neighbor {i}"))?;
            let next =
                if i == 0 { zigzag_decode(raw) + i64::from(v as u32) } else { prev + raw as i64 };
            if next <= prev && i > 0 {
                return Err(format!("vertex {v}: non-increasing neighbor at {i}"));
            }
            if next < 0 || next >= n as i64 {
                return Err(format!("vertex {v}: neighbor {next} out of range 0..{n}"));
            }
            prev = next;
        }
        if pos != block.len() {
            return Err(format!("vertex {v}: {} trailing block bytes", block.len() - pos));
        }
    }
    Ok(())
}

/// `read_varint` that reports running off the slice instead of
/// panicking — for validation of untrusted bytes.
fn read_varint_checked(block: &[u8], pos: &mut usize) -> Option<u64> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *block.get(*pos)?;
        *pos += 1;
        x |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(x);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Encodes one sorted neighbor list relative to `v` into `out`.
fn encode_list(v: VertexId, nbrs: &[VertexId], out: &mut Vec<u8>) {
    let mut prev = 0u32;
    for (i, &u) in nbrs.iter().enumerate() {
        if i == 0 {
            write_varint(out, zigzag_encode(i64::from(u) - i64::from(v)));
        } else {
            write_varint(out, u64::from(u - prev));
        }
        prev = u;
    }
}

impl CompressedCsr {
    /// Encodes `g` (in parallel, chunked by vertex range).
    pub fn from_graph(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let _span = span!("build.encode", n);
        const CHUNK: usize = 2048;
        let num_chunks = n.div_ceil(CHUNK).max(1);
        // Each chunk encodes its vertex range into one buffer and
        // records per-vertex block lengths.
        let chunks: Vec<(Vec<u8>, Vec<usize>)> = (0..num_chunks)
            .into_par_iter()
            .map(|c| {
                let lo = c * CHUNK;
                let hi = ((c + 1) * CHUNK).min(n);
                let mut bytes = Vec::new();
                let mut lens = Vec::with_capacity(hi - lo);
                for v in lo..hi {
                    let before = bytes.len();
                    encode_list(v as VertexId, g.neighbors(v as VertexId), &mut bytes);
                    lens.push(bytes.len() - before);
                }
                (bytes, lens)
            })
            .collect();

        let per_vertex: Vec<usize> =
            chunks.iter().flat_map(|(_, lens)| lens.iter().copied()).collect();
        let (mut offsets, blocks_len) = exclusive_scan(&per_vertex);
        offsets.push(blocks_len);

        // Stitch the chunk buffers together at their scanned positions.
        // The extra BLOCK_PAD zero bytes back the decoder's word-wide
        // loads (see `read_varint_raw`).
        let mut blocks: Vec<u8> = vec![0; blocks_len + BLOCK_PAD];
        let chunk_starts: Vec<usize> =
            (0..num_chunks).map(|c| offsets[(c * CHUNK).min(n)]).collect();
        let blocks_ptr = SendBytes(blocks.as_mut_ptr());
        chunks.par_iter().enumerate().for_each(|(c, (bytes, _))| {
            let ptr = blocks_ptr;
            // SAFETY: chunk byte ranges [chunk_starts[c], + bytes.len())
            // are disjoint and in bounds — they are consecutive slices
            // of the exclusive scan over per-vertex lengths.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    bytes.as_ptr(),
                    ptr.0.add(chunk_starts[c]),
                    bytes.len(),
                );
            }
        });

        let degrees: Vec<u32> =
            (0..n).into_par_iter().map(|v| g.degree(v as VertexId) as u32).collect();
        Self {
            n,
            arcs: g.num_arcs(),
            storage: Repr::Owned {
                offsets: offsets.into_boxed_slice(),
                degrees: degrees.into_boxed_slice(),
                blocks: blocks.into_boxed_slice(),
            },
        }
    }

    /// Wraps pre-validated sections of a `KCOREGC1` file mapping (see
    /// [`crate::io::map_compressed`], which checks the header and the
    /// section bounds before calling this).
    pub(crate) fn from_mapped(
        region: Arc<MmapRegion>,
        arcs: usize,
        offsets: RawSlice<usize>,
        degrees: RawSlice<u32>,
        blocks: RawSlice<u8>,
    ) -> Self {
        let n = offsets.as_slice().len() - 1;
        Self { n, arcs, storage: Repr::Mapped { region, offsets, degrees, blocks } }
    }

    /// Rebuilds owned storage from parts (the `KCOREGC1` copying
    /// reader). Trusts the sections like
    /// [`CsrGraph::from_parts_unchecked`] trusts its arrays.
    pub(crate) fn from_parts_unchecked(
        arcs: usize,
        offsets: Vec<usize>,
        degrees: Vec<u32>,
        mut blocks: Vec<u8>,
    ) -> Self {
        let n = offsets.len() - 1;
        // Owned storage always carries the decoder's over-read pad.
        blocks.extend_from_slice(&[0u8; BLOCK_PAD]);
        Self {
            n,
            arcs,
            storage: Repr::Owned {
                offsets: offsets.into_boxed_slice(),
                degrees: degrees.into_boxed_slice(),
                blocks: blocks.into_boxed_slice(),
            },
        }
    }

    /// Whether this graph's sections live in a read-only file mapping.
    pub fn is_mapped(&self) -> bool {
        matches!(self.storage, Repr::Mapped { .. })
    }

    /// Byte offsets of each vertex's block (`n + 1` entries).
    #[inline]
    pub(crate) fn offsets(&self) -> &[usize] {
        match &self.storage {
            Repr::Owned { offsets, .. } => offsets,
            Repr::Mapped { offsets, .. } => offsets.as_slice(),
        }
    }

    /// Per-vertex neighbor counts.
    #[inline]
    pub(crate) fn degree_table(&self) -> &[u32] {
        match &self.storage {
            Repr::Owned { degrees, .. } => degrees,
            Repr::Mapped { degrees, .. } => degrees.as_slice(),
        }
    }

    /// The concatenated varint blocks (excluding the trailing
    /// [`BLOCK_PAD`] over-read margin, which owned storage allocates
    /// inline and mapped storage reads straight from the file).
    #[inline]
    pub(crate) fn blocks(&self) -> &[u8] {
        match &self.storage {
            Repr::Owned { blocks, .. } => &blocks[..blocks.len() - BLOCK_PAD],
            Repr::Mapped { blocks, .. } => blocks.as_slice(),
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of directed arcs `m` (twice the undirected edges).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.arcs
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.arcs / 2
    }

    /// Degree of `v` — an O(1) table lookup, no decoding.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.degree_table()[v as usize] as usize
    }

    /// The sorted neighbor list of `v`, decoded into per-thread scratch.
    ///
    /// # Access contract
    ///
    /// The returned slice borrows a thread-local ring slot that is
    /// recycled after [`RING`] further `neighbors` calls **on the same
    /// thread**. Hold at most one slice per thread at a time; for
    /// nested traversal, use [`CompressedCsr::for_each_neighbor`]
    /// (buffer-free) on the inner loop. The single-slice discipline is
    /// exactly what the peel engine's loops already follow over plain
    /// slices, which is what lets them run unmodified over this
    /// backend.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let deg = self.degree(v);
        if deg == 0 {
            return &[];
        }
        SCRATCH.with(|scratch| {
            let slot = scratch.next.get();
            scratch.next.set((slot + 1) % RING);
            scratch.bufs[slot].with_mut(|ptr| {
                // SAFETY: each ring slot is mutated only inside this
                // non-reentrant body; a previously returned slice
                // aliases the *other* slot (access contract), and even
                // on contract violation it aliases heap data, never
                // the `Vec` header this reference covers.
                let buf = unsafe { &mut *ptr };
                buf.clear();
                buf.reserve(deg);
                // SAFETY (decode_into): `buf` has capacity for `deg`
                // entries; the block is well-formed (encoded here or
                // validated at load).
                unsafe {
                    self.decode_into(v, deg, buf.as_mut_ptr());
                    buf.set_len(deg);
                }
                // SAFETY: the slice points into a thread-local Vec
                // whose allocation stays put until this ring slot is
                // reused by a later `neighbors` call on this thread —
                // which the access contract above forbids while the
                // slice is held; later calls touch the *other* ring
                // slot first.
                unsafe { std::slice::from_raw_parts(buf.as_ptr(), deg) }
            })
        })
    }

    /// Decodes `v`'s block into `out` (which must have room for `deg`
    /// entries) with no per-element checks — the peel hot path.
    ///
    /// # Safety
    ///
    /// `out` must be valid for `deg` writes, and `v`'s block must be
    /// well-formed (true by construction for encoded graphs, enforced
    /// by [`validate_blocks`] for file-loaded ones).
    #[inline]
    unsafe fn decode_into(&self, v: VertexId, deg: usize, out: *mut VertexId) {
        let offsets = self.offsets();
        let mut p = self.blocks().as_ptr().add(offsets[v as usize]);
        let (first, np) = read_varint_raw(p);
        p = np;
        let mut prev = (zigzag_decode(first) + i64::from(v)) as u32;
        *out = prev;
        for i in 1..deg {
            let (gap, np) = read_varint_raw(p);
            p = np;
            prev = prev.wrapping_add(gap as u32);
            *out.add(i) = prev;
        }
    }

    /// Calls `f` for every neighbor of `v` in increasing order, decoding
    /// inline with no scratch buffer. Nests arbitrarily.
    #[inline]
    pub fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        let deg = self.degree(v);
        if deg == 0 {
            return;
        }
        let offsets = self.offsets();
        // SAFETY: blocks are well-formed (encoded here or validated at
        // load), so every varint read stays inside `v`'s block.
        unsafe {
            let mut p = self.blocks().as_ptr().add(offsets[v as usize]);
            let (first, np) = read_varint_raw(p);
            p = np;
            let mut prev = (zigzag_decode(first) + i64::from(v)) as u32;
            f(prev);
            for _ in 1..deg {
                let (gap, np) = read_varint_raw(p);
                p = np;
                prev = prev.wrapping_add(gap as u32);
                f(prev);
            }
        }
    }

    /// Decodes the whole graph back to a plain [`CsrGraph`]. Round-trips
    /// exactly: `CompressedCsr::from_graph(&g).decompress() == g`.
    pub fn decompress(&self) -> CsrGraph {
        let n = self.n;
        let degrees: Vec<usize> = self.degree_table().iter().map(|&d| d as usize).collect();
        let (mut offsets, arcs) = exclusive_scan(&degrees);
        debug_assert_eq!(arcs, self.arcs);
        let mut edges: Vec<VertexId> = vec![0; arcs];
        let edges_ptr = SendU32(edges.as_mut_ptr());
        (0..n).into_par_iter().for_each(|v| {
            let ptr = edges_ptr;
            let mut i = offsets[v];
            // SAFETY: each vertex writes its disjoint range
            // offsets[v]..offsets[v] + degree(v).
            self.for_each_neighbor(v as VertexId, &mut |u| {
                unsafe { *ptr.0.add(i) = u };
                i += 1;
            });
        });
        offsets.push(arcs);
        CsrGraph::from_parts_unchecked(offsets, edges)
    }
}

impl crate::backend::GraphBackend for CompressedCsr {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.n
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        self.arcs
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    #[inline]
    fn neighbors_slice(&self, v: VertexId) -> &[VertexId] {
        self.neighbors(v)
    }

    #[inline]
    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        self.for_each_neighbor(v, f);
    }

    fn memory(&self) -> crate::stats::MemoryFootprint {
        crate::stats::MemoryFootprint {
            backend: if self.is_mapped() { "compressed-mmap" } else { "compressed" },
            offsets_bytes: std::mem::size_of_val(self.offsets()),
            neighbor_bytes: self.blocks().len(),
            aux_bytes: std::mem::size_of_val(self.degree_table()),
            arcs: self.arcs,
        }
    }
}

impl std::fmt::Debug for CompressedCsr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressedCsr")
            .field("n", &self.n)
            .field("arcs", &self.arcs)
            .field("block_bytes", &self.blocks().len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

/// Disjoint-range write pointers (same discipline as `builder.rs`).
#[derive(Clone, Copy)]
struct SendBytes(*mut u8);
// SAFETY: disjoint-write discipline documented at the use site.
unsafe impl Send for SendBytes {}
unsafe impl Sync for SendBytes {}

#[derive(Clone, Copy)]
struct SendU32(*mut u32);
// SAFETY: disjoint-write discipline documented at the use site.
unsafe impl Send for SendU32 {}
unsafe impl Sync for SendU32 {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::GraphBackend;
    use crate::gen;

    #[test]
    fn varint_zigzag_round_trip() {
        for x in [0i64, 1, -1, 63, -64, 300, -300, i64::from(u32::MAX), -i64::from(u32::MAX)] {
            let mut buf = Vec::new();
            write_varint(&mut buf, zigzag_encode(x));
            let data_len = buf.len();
            // The raw decoder's over-read margin (see BLOCK_PAD).
            buf.push(0);
            let mut pos = 0;
            let checked =
                read_varint_checked(&buf[..data_len], &mut pos).expect("well-formed varint");
            assert_eq!(zigzag_decode(checked), x);
            assert_eq!(pos, data_len);
            // The unchecked hot-path decoder agrees byte for byte.
            let (raw, end) = unsafe { read_varint_raw(buf.as_ptr()) };
            assert_eq!(raw, checked);
            assert_eq!(end as usize - buf.as_ptr() as usize, data_len);
        }
    }

    #[test]
    fn validator_rejects_malformed_blocks() {
        let g = gen::grid2d(4, 4);
        let c = CompressedCsr::from_graph(&g);
        let (offsets, degrees, blocks) =
            (c.offsets().to_vec(), c.degree_table().to_vec(), c.blocks().to_vec());
        assert!(validate_blocks(&offsets, &degrees, &blocks).is_ok());
        // Truncated blocks: a varint runs off its range.
        let short = &blocks[..blocks.len() - 1];
        assert!(validate_blocks(&offsets, &degrees, short).is_err());
        // A flipped continuation bit makes a block over- or under-run.
        let mut flipped = blocks.clone();
        flipped[0] ^= 0x80;
        assert!(validate_blocks(&offsets, &degrees, &flipped).is_err());
        // Degree table lying about the count.
        let mut lying = degrees.clone();
        lying[0] += 1;
        assert!(validate_blocks(&offsets, &lying, &blocks).is_err());
    }

    #[test]
    fn round_trips_every_seed_family() {
        for g in [
            crate::CsrGraph::empty(),
            crate::GraphBuilder::new(4).build(), // isolated vertices only
            gen::grid2d(17, 9),
            gen::barabasi_albert(800, 4, 11),
            gen::rmat(9, 8, 0.57, 0.19, 0.19, 3),
        ] {
            let c = CompressedCsr::from_graph(&g);
            assert_eq!(c.num_vertices(), g.num_vertices());
            assert_eq!(c.num_arcs(), g.num_arcs());
            assert_eq!(c.decompress(), g);
        }
    }

    #[test]
    fn neighbors_match_plain() {
        let g = gen::barabasi_albert(500, 3, 5);
        let c = CompressedCsr::from_graph(&g);
        for v in g.vertices() {
            assert_eq!(c.degree(v), g.degree(v));
            assert_eq!(c.neighbors(v), g.neighbors(v), "vertex {v}");
            let mut streamed = Vec::new();
            c.for_each_neighbor(v, &mut |u| streamed.push(u));
            assert_eq!(streamed, g.neighbors(v), "vertex {v} streamed");
        }
    }

    #[test]
    fn scratch_ring_tolerates_one_overlapping_decode() {
        let g = gen::grid2d(8, 8);
        let c = CompressedCsr::from_graph(&g);
        // One outstanding slice (the contract) stays valid across the
        // next decode thanks to the second ring slot.
        let a = c.neighbors(0);
        let b = c.neighbors(9);
        assert_eq!(a, g.neighbors(0));
        assert_eq!(b, g.neighbors(9));
    }

    #[test]
    fn power_law_compression_beats_30_percent() {
        let g = gen::barabasi_albert(3000, 5, 3);
        let c = CompressedCsr::from_graph(&g);
        let plain = GraphBackend::memory(&g);
        let comp = GraphBackend::memory(&c);
        assert_eq!(plain.arcs, comp.arcs);
        let ratio = comp.neighbor_bytes as f64 / plain.neighbor_bytes as f64;
        assert!(
            ratio <= 0.70,
            "compressed neighbor bytes {} vs plain {} (ratio {ratio:.3}) misses the 30% cut",
            comp.neighbor_bytes,
            plain.neighbor_bytes,
        );
    }

    #[test]
    fn backend_defaults_work_over_compressed() {
        let g = gen::grid2d(12, 5);
        let c = CompressedCsr::from_graph(&g);
        let b: &dyn GraphBackend = &c;
        assert_eq!(b.num_edges(), g.num_edges());
        assert_eq!(b.degrees(), g.degrees());
        let mut edges = Vec::new();
        b.for_each_edge(&mut |u, v| edges.push((u, v)));
        assert_eq!(edges, g.edges().collect::<Vec<_>>());
    }
}
