//! Parallel triangle enumeration primitives.
//!
//! k-truss peeling is driven by *edge support* — the number of
//! triangles each edge participates in — and by enumerating, when an
//! edge dies, the triangles it destroys. Both reduce to sorted-adjacency
//! intersection: the triangles containing edge `{u, v}` are exactly the
//! common neighbors of `u` and `v`. Intersections run sequentially
//! (they are tiny — `O(min(d(u), d(v)))`) and the parallelism is across
//! the edge set, matching the flat fork–join model everywhere else in
//! the workspace.
//!
//! [`edge_supports`] and [`for_each_triangle_of_edge`] here are the
//! straightforward full-list merge implementations — kept as the
//! *reference* the optimized path is checked against. Production
//! triangle work (the k-truss setup and peel) runs through
//! [`crate::dodg::TriangleCtx`]: the degree-ordered orientation, the
//! fused one-pass index+supports build, and the hybrid
//! merge/gallop/bitset kernels, all bit-identical to the functions in
//! this module. [`triangle_count`] is already routed through the
//! orientation.

use crate::csr::{CsrGraph, VertexId};
use crate::edges::EdgeIndex;
use kcore_parallel::intersect::TriKernel;
use kcore_parallel::primitives::intersect_sorted_positions;
use rayon::prelude::*;

/// Per-edge triangle counts (the k-truss initial priorities), parallel
/// over edges. `supports[e]` is the number of triangles containing edge
/// `e` of `idx`.
pub fn edge_supports(g: &CsrGraph, idx: &EdgeIndex) -> Vec<u32> {
    (0..idx.num_edges() as u32)
        .into_par_iter()
        .map(|e| {
            let (u, v) = idx.endpoints(e);
            let mut count = 0u32;
            intersect_sorted_positions(g.neighbors(u), g.neighbors(v), |_, _| count += 1);
            count
        })
        .collect()
}

/// Calls `f(fe, ge, w)` for every triangle `{u, v, w}` containing edge
/// `e = {u, v}`, where `fe` is the id of `{u, w}` and `ge` the id of
/// `{v, w}`. Sequential; parallelize across edges at the call site.
#[inline]
pub fn for_each_triangle_of_edge<F>(g: &CsrGraph, idx: &EdgeIndex, e: u32, mut f: F)
where
    F: FnMut(u32, u32, VertexId),
{
    let (u, v) = idx.endpoints(e);
    let (u_ids, v_ids) = (idx.edge_ids(g, u), idx.edge_ids(g, v));
    intersect_sorted_positions(g.neighbors(u), g.neighbors(v), |i, j| {
        f(u_ids[i], v_ids[j], g.neighbors(u)[i]);
    });
}

/// Total number of triangles in `g`, each counted once: a parallel
/// fold of out-list intersections over the degree-ordered orientation
/// ([`crate::dodg::Dodg`]), so no per-edge array is materialized and
/// no [`EdgeIndex`] is needed. Kernel selection follows
/// `KCORE_TRI_KERNEL`.
pub fn triangle_count(g: &CsrGraph) -> u64 {
    crate::dodg::Dodg::build(g).triangle_count(g, TriKernel::from_env())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, GraphBuilder};

    fn naive_triangle_count(g: &CsrGraph) -> u64 {
        let mut count = 0u64;
        for (u, v) in g.edges() {
            for &w in g.neighbors(u) {
                if w > v && g.has_edge(v, w) {
                    count += 1;
                }
            }
        }
        count
    }

    #[test]
    fn known_counts() {
        let idx = |g: &CsrGraph| EdgeIndex::build(g);
        let tri = GraphBuilder::new(3).edges([(0, 1), (1, 2), (0, 2)]).build();
        assert_eq!(triangle_count(&tri), 1);
        assert_eq!(edge_supports(&tri, &idx(&tri)), vec![1, 1, 1]);

        // K5: C(5,3) = 10 triangles, every edge in 5 - 2 = 3 of them.
        let k5 = gen::complete(5);
        assert_eq!(triangle_count(&k5), 10);
        assert!(edge_supports(&k5, &idx(&k5)).iter().all(|&s| s == 3));

        // Bipartite graphs and trees are triangle-free.
        let kb = gen::complete_bipartite(3, 4);
        assert_eq!(triangle_count(&kb), 0);
        let path = gen::path(20);
        assert!(edge_supports(&path, &idx(&path)).iter().all(|&s| s == 0));
    }

    #[test]
    fn counts_match_naive_on_generators() {
        for g in [
            gen::barabasi_albert(250, 4, 9),
            gen::rmat(8, 6, 0.57, 0.19, 0.19, 3),
            gen::planted_core(150, 2, 30, 4),
            gen::hcns(12),
        ] {
            assert_eq!(triangle_count(&g), naive_triangle_count(&g));
        }
    }

    #[test]
    fn triangle_enumeration_yields_consistent_edge_ids() {
        let g = gen::planted_core(120, 2, 25, 7);
        let idx = EdgeIndex::build(&g);
        let supports = edge_supports(&g, &idx);
        for e in 0..idx.num_edges() as u32 {
            let (u, v) = idx.endpoints(e);
            let mut seen = 0u32;
            for_each_triangle_of_edge(&g, &idx, e, |fe, ge, w| {
                assert_eq!(idx.edge_id(&g, u, w), Some(fe));
                assert_eq!(idx.edge_id(&g, v, w), Some(ge));
                assert_ne!(fe, e);
                assert_ne!(ge, e);
                assert_ne!(fe, ge);
                seen += 1;
            });
            assert_eq!(seen, supports[e as usize], "edge {e} enumerates its support");
        }
    }
}
