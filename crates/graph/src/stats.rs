//! Degree statistics and memory accounting for benchmark tables.
//!
//! The paper's Tab. 2 reports `n`, `m`, `k_max`, and the peeling
//! complexity ρ per graph. `k_max` and ρ come from running the
//! decomposition itself; everything degree-shaped lives here, plus the
//! [`MemoryFootprint`] report every [`crate::GraphBackend`] produces so
//! bytes-per-edge is a tracked number rather than a guess.

use crate::backend::GraphBackend;
use crate::csr::{CsrGraph, VertexId};
use rayon::prelude::*;

/// Byte-level memory accounting of one graph backend.
///
/// Produced by [`GraphBackend::memory`]; `bench_build` prints it and the
/// compression acceptance criterion (≥30% fewer neighbor bytes on
/// power-law graphs) is checked against `neighbor_bytes`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryFootprint {
    /// Short backend name (`"csr"`, `"csr-mmap"`, `"compressed"`, ...).
    pub backend: &'static str,
    /// Bytes in the per-vertex offset array.
    pub offsets_bytes: usize,
    /// Bytes holding the adjacency itself — plain `u32` targets for the
    /// CSR backends, varint blocks for the compressed one. This is the
    /// number compression shrinks.
    pub neighbor_bytes: usize,
    /// Everything else the backend keeps per graph (degree tables,
    /// overlay delta maps, ...).
    pub aux_bytes: usize,
    /// Directed arc count, for the per-edge ratios.
    pub arcs: usize,
}

impl MemoryFootprint {
    /// Total bytes across all sections.
    pub fn total_bytes(&self) -> usize {
        self.offsets_bytes + self.neighbor_bytes + self.aux_bytes
    }

    /// Total bytes per undirected edge; 0.0 for edgeless graphs.
    pub fn bytes_per_edge(&self) -> f64 {
        if self.arcs == 0 {
            0.0
        } else {
            self.total_bytes() as f64 / (self.arcs as f64 / 2.0)
        }
    }

    /// Neighbor-section bytes per arc — the Ligra+-style compression
    /// headline number (plain CSR is exactly 4.0).
    pub fn neighbor_bytes_per_arc(&self) -> f64 {
        if self.arcs == 0 {
            0.0
        } else {
            self.neighbor_bytes as f64 / self.arcs as f64
        }
    }
}

impl std::fmt::Display for MemoryFootprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} B total ({} offsets + {} neighbors + {} aux), {:.2} B/edge, {:.2} nbr-B/arc",
            self.backend,
            self.total_bytes(),
            self.offsets_bytes,
            self.neighbor_bytes,
            self.aux_bytes,
            self.bytes_per_edge(),
            self.neighbor_bytes_per_arc(),
        )
    }
}

/// Summary statistics of a graph's degree structure.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub n: usize,
    /// Number of directed arcs (2x undirected edges).
    pub arcs: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average degree in arcs per vertex (`arcs / n`).
    pub avg_degree: f64,
    /// Number of isolated (degree-0) vertices.
    pub isolated: usize,
    /// Degree at the 99th percentile.
    pub p99_degree: usize,
}

impl GraphStats {
    /// The memory footprint of any backend — a convenience forwarding
    /// to [`GraphBackend::memory`] so stats and memory reporting live
    /// in one module.
    pub fn memory<G: GraphBackend + ?Sized>(g: &G) -> MemoryFootprint {
        g.memory()
    }

    /// Computes statistics for `g` in one parallel pass plus a sort.
    pub fn compute(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        if n == 0 {
            return Self {
                n: 0,
                arcs: 0,
                edges: 0,
                max_degree: 0,
                avg_degree: 0.0,
                isolated: 0,
                p99_degree: 0,
            };
        }
        let mut degrees: Vec<usize> =
            (0..n).into_par_iter().map(|v| g.degree(v as VertexId)).collect();
        let isolated = degrees.par_iter().filter(|&&d| d == 0).count();
        degrees.par_sort_unstable();
        let p99 = degrees[((n - 1) as f64 * 0.99) as usize];
        Self {
            n,
            arcs: g.num_arcs(),
            edges: g.num_edges(),
            max_degree: *degrees.last().unwrap(),
            avg_degree: g.avg_degree(),
            isolated,
            p99_degree: p99,
        }
    }
}

/// Histogram of degrees in power-of-two buckets: `hist[i]` counts
/// vertices whose degree `d` satisfies `2^i <= d + 1 < 2^(i + 1)`
/// (so bucket 0 is degree 0, bucket 1 is degrees 1..=2, ...).
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let max_bucket = ((g.max_degree() + 1) as f64).log2().floor() as usize;
    let mut hist = vec![0usize; max_bucket + 1];
    for v in 0..n {
        let d = g.degree(v as VertexId);
        let b = ((d + 1) as f64).log2().floor() as usize;
        hist[b] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stats_of_grid() {
        let g = gen::grid2d(10, 10);
        let s = GraphStats::compute(&g);
        assert_eq!(s.n, 100);
        assert_eq!(s.edges, 180);
        assert_eq!(s.arcs, 360);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.isolated, 0);
        assert!((s.avg_degree - 3.6).abs() < 1e-9);
    }

    #[test]
    fn stats_of_empty() {
        let s = GraphStats::compute(&crate::CsrGraph::empty());
        assert_eq!(s.n, 0);
        assert_eq!(s.max_degree, 0);
    }

    #[test]
    fn stats_count_isolated() {
        let g = crate::GraphBuilder::new(5).edge(0, 1).build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.isolated, 3);
    }

    #[test]
    fn histogram_buckets_sum_to_n() {
        let g = gen::barabasi_albert(500, 3, 2);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 500);
    }

    #[test]
    fn histogram_of_star_has_hub_in_top_bucket() {
        let g = gen::star(65);
        let h = degree_histogram(&g);
        // 64 leaves with degree 1 (bucket 1), hub with degree 64 (bucket 6).
        assert_eq!(h[1], 64);
        assert_eq!(*h.last().unwrap(), 1);
    }
}
