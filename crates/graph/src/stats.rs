//! Degree statistics for benchmark tables.
//!
//! The paper's Tab. 2 reports `n`, `m`, `k_max`, and the peeling
//! complexity ρ per graph. `k_max` and ρ come from running the
//! decomposition itself; everything degree-shaped lives here.

use crate::csr::{CsrGraph, VertexId};
use rayon::prelude::*;

/// Summary statistics of a graph's degree structure.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub n: usize,
    /// Number of directed arcs (2x undirected edges).
    pub arcs: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average degree in arcs per vertex (`arcs / n`).
    pub avg_degree: f64,
    /// Number of isolated (degree-0) vertices.
    pub isolated: usize,
    /// Degree at the 99th percentile.
    pub p99_degree: usize,
}

impl GraphStats {
    /// Computes statistics for `g` in one parallel pass plus a sort.
    pub fn compute(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        if n == 0 {
            return Self {
                n: 0,
                arcs: 0,
                edges: 0,
                max_degree: 0,
                avg_degree: 0.0,
                isolated: 0,
                p99_degree: 0,
            };
        }
        let mut degrees: Vec<usize> =
            (0..n).into_par_iter().map(|v| g.degree(v as VertexId)).collect();
        let isolated = degrees.par_iter().filter(|&&d| d == 0).count();
        degrees.par_sort_unstable();
        let p99 = degrees[((n - 1) as f64 * 0.99) as usize];
        Self {
            n,
            arcs: g.num_arcs(),
            edges: g.num_edges(),
            max_degree: *degrees.last().unwrap(),
            avg_degree: g.avg_degree(),
            isolated,
            p99_degree: p99,
        }
    }
}

/// Histogram of degrees in power-of-two buckets: `hist[i]` counts
/// vertices whose degree `d` satisfies `2^i <= d + 1 < 2^(i + 1)`
/// (so bucket 0 is degree 0, bucket 1 is degrees 1..=2, ...).
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let max_bucket = ((g.max_degree() + 1) as f64).log2().floor() as usize;
    let mut hist = vec![0usize; max_bucket + 1];
    for v in 0..n {
        let d = g.degree(v as VertexId);
        let b = ((d + 1) as f64).log2().floor() as usize;
        hist[b] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stats_of_grid() {
        let g = gen::grid2d(10, 10);
        let s = GraphStats::compute(&g);
        assert_eq!(s.n, 100);
        assert_eq!(s.edges, 180);
        assert_eq!(s.arcs, 360);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.isolated, 0);
        assert!((s.avg_degree - 3.6).abs() < 1e-9);
    }

    #[test]
    fn stats_of_empty() {
        let s = GraphStats::compute(&crate::CsrGraph::empty());
        assert_eq!(s.n, 0);
        assert_eq!(s.max_degree, 0);
    }

    #[test]
    fn stats_count_isolated() {
        let g = crate::GraphBuilder::new(5).edge(0, 1).build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.isolated, 3);
    }

    #[test]
    fn histogram_buckets_sum_to_n() {
        let g = gen::barabasi_albert(500, 3, 2);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 500);
    }

    #[test]
    fn histogram_of_star_has_hub_in_top_bucket() {
        let g = gen::star(65);
        let h = degree_histogram(&g);
        // 64 leaves with degree 1 (bucket 1), hub with degree 64 (bucket 6).
        assert_eq!(h[1], 64);
        assert_eq!(*h.last().unwrap(), 1);
    }
}
