//! Read-only memory mapping for zero-copy graph loading.
//!
//! [`MmapRegion`] wraps a private, read-only `mmap` of a whole file.
//! The binary graph formats in [`crate::io`] were laid out so that
//! their array sections land on their natural alignment (the header is
//! 8-byte aligned and every section size is a multiple of its element
//! size), which lets [`crate::CsrGraph`] and [`crate::CompressedCsr`]
//! point their storage *into* the mapping instead of copying it to the
//! heap — datasets larger than RAM load lazily, one page fault at a
//! time, exactly the semi-external regime Julienne's bucketing was
//! designed for.
//!
//! The container has no `libc` crate, so the syscalls are declared
//! directly; on non-Unix platforms (or non-64-bit / big-endian
//! targets, where the on-disk `u64` arrays cannot alias `usize`) the
//! callers in `io` fall back to the copying readers.

use std::fs::File;
use std::io;

/// A read-only, privately mapped view of an entire file.
///
/// Dropping the region unmaps it; cloning is done by wrapping it in an
/// `Arc` (see the `Mapped` storage variants in `csr`/`compressed`).
pub struct MmapRegion {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE — immutable shared
// bytes, like a leaked `&'static [u8]` — so concurrent reads are safe.
unsafe impl Send for MmapRegion {}
unsafe impl Sync for MmapRegion {}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

impl MmapRegion {
    /// Maps the whole of `file` read-only.
    ///
    /// Fails with `Unsupported` on non-Unix targets (callers fall back
    /// to the copying readers) and with the OS error if `mmap` refuses.
    /// An empty file maps to an empty region without a syscall.
    pub fn map_file(file: &File) -> io::Result<Self> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "file exceeds address space"));
        }
        let len = len as usize;
        if len == 0 {
            return Ok(Self { ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(), len: 0 });
        }
        Self::map_nonempty(file, len)
    }

    #[cfg(unix)]
    fn map_nonempty(file: &File, len: usize) -> io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        // SAFETY: a fresh PROT_READ/MAP_PRIVATE mapping of `len` bytes
        // backed by an open fd; the result is checked against MAP_FAILED
        // before use, and unmapped exactly once in Drop.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 || ptr.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { ptr: ptr as *const u8, len })
    }

    #[cfg(not(unix))]
    fn map_nonempty(_file: &File, _len: usize) -> io::Result<Self> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "mmap is only available on unix"))
    }

    /// The mapped bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr` is valid for `len` bytes for the region's
        // lifetime (dangling only when len == 0, which is still a valid
        // empty slice).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Length of the mapping in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.len > 0 {
            // SAFETY: `ptr`/`len` came from a successful mmap and are
            // unmapped exactly once.
            unsafe { sys::munmap(self.ptr as *mut std::ffi::c_void, self.len) };
        }
    }
}

/// A raw `(ptr, len)` view into an [`MmapRegion`], used by the `Mapped`
/// storage variants to hold typed slices without a self-referential
/// lifetime. The owner must keep the region alive (they hold it in an
/// `Arc` next to the slice) and must have checked alignment and bounds
/// when constructing it.
pub(crate) struct RawSlice<T> {
    ptr: *const T,
    len: usize,
}

// SAFETY: points into an immutable shared mapping (see MmapRegion).
unsafe impl<T: Sync> Send for RawSlice<T> {}
unsafe impl<T: Sync> Sync for RawSlice<T> {}

impl<T> Clone for RawSlice<T> {
    fn clone(&self) -> Self {
        Self { ptr: self.ptr, len: self.len }
    }
}

impl<T> RawSlice<T> {
    /// Reinterprets `bytes[offset..offset + count * size_of::<T>()]` as
    /// `count` values of `T`.
    ///
    /// Returns `None` when the range is out of bounds or misaligned for
    /// `T` — callers turn that into an I/O error. `T` must be a plain
    /// primitive (`u32`/`u64`/`usize`) for which any bit pattern is
    /// valid; that invariant is the caller's.
    pub(crate) fn from_bytes(bytes: &[u8], offset: usize, count: usize) -> Option<Self> {
        let size = std::mem::size_of::<T>();
        let byte_len = count.checked_mul(size)?;
        let end = offset.checked_add(byte_len)?;
        if end > bytes.len() {
            return None;
        }
        let ptr = bytes[offset..].as_ptr();
        if ptr.align_offset(std::mem::align_of::<T>()) != 0 {
            return None;
        }
        Some(Self { ptr: ptr as *const T, len: count })
    }

    /// The slice view. Safe as long as the backing region outlives
    /// `self` (guaranteed by the owning struct holding the `Arc`).
    #[inline]
    pub(crate) fn as_slice(&self) -> &[T] {
        // SAFETY: constructed from an in-bounds, aligned range of a
        // live mapping holding only plain-old-data values.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn map_round_trips_bytes() {
        let dir = std::env::temp_dir().join("kcore_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bytes.bin");
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path).unwrap().write_all(&data).unwrap();
        let region = MmapRegion::map_file(&File::open(&path).unwrap()).unwrap();
        assert_eq!(region.bytes(), &data[..]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_maps_empty() {
        let dir = std::env::temp_dir().join("kcore_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::File::create(&path).unwrap();
        let region = MmapRegion::map_file(&File::open(&path).unwrap()).unwrap();
        assert!(region.is_empty());
        assert_eq!(region.bytes(), &[] as &[u8]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn raw_slice_rejects_out_of_bounds_and_misalignment() {
        let bytes = vec![0u8; 64];
        assert!(RawSlice::<u64>::from_bytes(&bytes, 0, 8).is_some());
        assert!(RawSlice::<u64>::from_bytes(&bytes, 0, 9).is_none(), "out of bounds");
        assert!(RawSlice::<u64>::from_bytes(&bytes, 60, 1).is_none(), "out of bounds");
        // A u64 view at offset 4 of an 8-aligned buffer is misaligned.
        if bytes.as_ptr().align_offset(8) == 0 {
            assert!(RawSlice::<u64>::from_bytes(&bytes, 4, 1).is_none(), "misaligned");
        }
    }
}
