//! Mutable edge-delta overlay over an immutable CSR base.
//!
//! [`OverlayGraph`] is the graph type behind batch-dynamic maintenance:
//! an immutable [`CsrGraph`] base plus a per-vertex delta layer. Vertices
//! whose adjacency never changed serve their neighbor slice straight from
//! the base CSR; a vertex touched by an insert or delete gets its merged,
//! sorted adjacency materialized once in the overlay and mutated in place
//! thereafter. The logical graph therefore always answers `neighbors(v)`
//! as a contiguous sorted slice — exactly the contract the peel engine's
//! unit-incidence path needs — without rebuilding the CSR per batch.
//!
//! The overlay grows with the touched set, not the batch count: repeated
//! edits to the same vertices reuse their materialized lists. When the
//! overlay's arc footprint becomes a large fraction of the logical graph,
//! callers *compact*: [`OverlayGraph::compact`] rebuilds the base through
//! the parallel builder ([`crate::builder::from_symmetric_arcs`]) and
//! drops the delta layer.

use crate::builder::from_symmetric_arcs;
use crate::csr::{CsrGraph, VertexId};
use rayon::prelude::*;

/// An undirected graph stored as an immutable CSR base plus a mutable
/// edge-delta overlay.
///
/// Invariants mirror [`CsrGraph`]: no self-loops, symmetric arcs, and
/// every adjacency list strictly increasing. Both are maintained by
/// construction on every [`OverlayGraph::insert_edge`] /
/// [`OverlayGraph::delete_edge`].
#[derive(Clone)]
pub struct OverlayGraph {
    /// Immutable snapshot most vertices still read from.
    base: CsrGraph,
    /// `touched[v]` is `Some(list)` once `v`'s adjacency diverged from
    /// the base (or `v` is a grown vertex); `list` is the full merged
    /// adjacency of `v`, sorted strictly increasing. Length is the
    /// logical vertex count, which may exceed the base's.
    touched: Vec<Option<Vec<VertexId>>>,
    /// Arcs held in materialized overlay lists (compaction pressure).
    overlay_arcs: usize,
    /// Arcs in the logical graph (base arcs ± applied deltas).
    logical_arcs: usize,
}

impl OverlayGraph {
    /// Wraps a base graph with an empty delta layer.
    pub fn new(base: CsrGraph) -> Self {
        let n = base.num_vertices();
        let logical_arcs = base.num_arcs();
        Self { base, touched: vec![None; n], overlay_arcs: 0, logical_arcs }
    }

    /// The immutable base snapshot (ignores pending deltas).
    pub fn base(&self) -> &CsrGraph {
        &self.base
    }

    /// Number of vertices in the logical graph.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.touched.len()
    }

    /// Number of directed arcs in the logical graph.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.logical_arcs
    }

    /// Number of undirected edges in the logical graph.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.logical_arcs / 2
    }

    /// Arcs currently materialized in the overlay layer. This is the
    /// compaction pressure gauge: it grows with the set of touched
    /// vertices (each materialization copies that vertex's base
    /// adjacency), not with the number of applied edits.
    pub fn overlay_arcs(&self) -> usize {
        self.overlay_arcs
    }

    /// Overlay arc footprint as a fraction of the logical arc count
    /// (0.0 for a pristine overlay; can exceed 1.0 after heavy deletion).
    pub fn dirty_fraction(&self) -> f64 {
        self.overlay_arcs as f64 / self.logical_arcs.max(1) as f64
    }

    /// The sorted neighbor list of `v` in the logical graph.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        match &self.touched[v as usize] {
            Some(list) => list,
            None => self.base.neighbors(v),
        }
    }

    /// Degree of `v` in the logical graph.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }

    /// Degrees of all vertices as a vector (parallel).
    pub fn degrees(&self) -> Vec<u32> {
        (0..self.num_vertices() as VertexId)
            .into_par_iter()
            .map(|v| self.degree(v) as u32)
            .collect()
    }

    /// Whether the undirected edge `{u, v}` is present in the logical
    /// graph (binary search).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        (u as usize) < self.num_vertices()
            && (v as usize) < self.num_vertices()
            && self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over the logical graph's undirected edges as `(u, v)`
    /// with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId).flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Extends the vertex universe to at least `n` vertices; new
    /// vertices start isolated.
    pub fn grow_to(&mut self, n: usize) {
        assert!(n <= VertexId::MAX as usize, "vertex count {n} exceeds the u32 id space");
        if n > self.touched.len() {
            // Grown vertices are "touched" with an empty list so that
            // `neighbors` never indexes past the base's offsets.
            self.touched.resize_with(n, || Some(Vec::new()));
        }
    }

    /// Materializes `v`'s adjacency in the overlay, copying the base
    /// slice on first touch.
    fn materialize(&mut self, v: VertexId) -> &mut Vec<VertexId> {
        let slot = &mut self.touched[v as usize];
        if slot.is_none() {
            let list = self.base.neighbors(v).to_vec();
            self.overlay_arcs += list.len();
            *slot = Some(list);
        }
        slot.as_mut().expect("just materialized")
    }

    /// Inserts the undirected edge `{u, v}`, growing the vertex universe
    /// if an endpoint is new. Returns `false` (and changes nothing) for
    /// self-loops and edges already present.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        self.grow_to(u.max(v) as usize + 1);
        if self.has_edge(u, v) {
            return false;
        }
        for (a, b) in [(u, v), (v, u)] {
            let list = self.materialize(a);
            let pos = list.binary_search(&b).expect_err("edge known absent");
            list.insert(pos, b);
        }
        self.overlay_arcs += 2;
        self.logical_arcs += 2;
        true
    }

    /// Deletes the undirected edge `{u, v}`. Returns `false` (and
    /// changes nothing) if the edge is not present.
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if !self.has_edge(u, v) {
            return false;
        }
        for (a, b) in [(u, v), (v, u)] {
            let list = self.materialize(a);
            let pos = list.binary_search(&b).expect("edge known present");
            list.remove(pos);
        }
        self.overlay_arcs -= 2;
        self.logical_arcs -= 2;
        true
    }

    /// Renders the logical graph as a standalone [`CsrGraph`] via the
    /// parallel builder. The overlay is unchanged.
    pub fn to_csr(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut arcs = Vec::with_capacity(self.logical_arcs);
        for u in 0..n as VertexId {
            arcs.extend(self.neighbors(u).iter().map(|&v| (u, v)));
        }
        from_symmetric_arcs(n, arcs)
    }

    /// Rebuilds the base CSR from the logical graph (parallel builder)
    /// and drops the delta layer, resetting [`OverlayGraph::overlay_arcs`]
    /// to zero.
    pub fn compact(&mut self) {
        self.base = self.to_csr();
        self.touched = vec![None; self.base.num_vertices()];
        self.overlay_arcs = 0;
        debug_assert_eq!(self.logical_arcs, self.base.num_arcs());
    }
}

impl crate::backend::GraphBackend for OverlayGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.num_vertices()
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        self.num_arcs()
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    #[inline]
    fn neighbors_slice(&self, v: VertexId) -> &[VertexId] {
        self.neighbors(v)
    }

    fn memory(&self) -> crate::stats::MemoryFootprint {
        let base = crate::backend::GraphBackend::memory(&self.base);
        // Delta layer: one Option slot per logical vertex plus the
        // materialized lists (capacity unknown; count live arcs).
        let aux = self.touched.len() * std::mem::size_of::<Option<Vec<VertexId>>>()
            + self.overlay_arcs * std::mem::size_of::<VertexId>();
        crate::stats::MemoryFootprint {
            backend: "overlay",
            offsets_bytes: base.offsets_bytes,
            neighbor_bytes: base.neighbor_bytes,
            aux_bytes: base.aux_bytes + aux,
            arcs: self.num_arcs(),
        }
    }
}

impl std::fmt::Debug for OverlayGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OverlayGraph")
            .field("n", &self.num_vertices())
            .field("arcs", &self.num_arcs())
            .field("overlay_arcs", &self.overlay_arcs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path4() -> CsrGraph {
        GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3)]).build()
    }

    #[test]
    fn pristine_overlay_mirrors_base() {
        let g = OverlayGraph::new(path4());
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.overlay_arcs(), 0);
        assert_eq!(g.dirty_fraction(), 0.0);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degrees(), vec![1, 2, 2, 1]);
        assert!(g.has_edge(2, 1));
        assert_eq!(g.to_csr(), path4());
    }

    #[test]
    fn insert_materializes_endpoints_only() {
        let mut g = OverlayGraph::new(path4());
        assert!(g.insert_edge(0, 3));
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.neighbors(3), &[0, 2]);
        assert_eq!(g.neighbors(1), &[0, 2], "untouched vertex still reads the base");
        // Each endpoint copied its base adjacency (1 arc each) plus the
        // two new arcs.
        assert_eq!(g.overlay_arcs(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(!g.insert_edge(0, 3), "duplicate insert is a no-op");
        assert!(!g.insert_edge(2, 2), "self-loop rejected");
        assert_eq!(g.num_edges(), 4);
        g.to_csr().validate();
    }

    #[test]
    fn delete_then_reinsert_round_trips() {
        let mut g = OverlayGraph::new(path4());
        assert!(g.delete_edge(1, 2));
        assert!(!g.has_edge(2, 1));
        assert!(!g.delete_edge(1, 2), "double delete is a no-op");
        assert_eq!(g.num_edges(), 2);
        assert!(g.insert_edge(2, 1));
        assert_eq!(g.to_csr(), path4());
    }

    #[test]
    fn insert_grows_vertex_universe() {
        let mut g = OverlayGraph::new(path4());
        assert!(g.insert_edge(3, 6));
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.degree(5), 0, "grown vertices start isolated");
        assert_eq!(g.neighbors(6), &[3]);
        let csr = g.to_csr();
        assert_eq!(csr.num_vertices(), 7);
        csr.validate();
    }

    #[test]
    fn compact_resets_overlay_and_preserves_graph() {
        let mut g = OverlayGraph::new(path4());
        g.insert_edge(0, 2);
        g.delete_edge(2, 3);
        g.insert_edge(1, 5);
        let before = g.to_csr();
        assert!(g.overlay_arcs() > 0);
        g.compact();
        assert_eq!(g.overlay_arcs(), 0);
        assert_eq!(g.dirty_fraction(), 0.0);
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.to_csr(), before);
        assert_eq!(g.base(), &before);
        // Still editable after compaction.
        assert!(g.delete_edge(0, 2));
        assert_eq!(g.num_edges(), before.num_edges() - 1);
    }

    #[test]
    fn edges_iterator_matches_csr() {
        let mut g = OverlayGraph::new(path4());
        g.insert_edge(0, 3);
        g.delete_edge(0, 1);
        let listed: Vec<_> = g.edges().collect();
        let csr: Vec<_> = g.to_csr().edges().collect();
        assert_eq!(listed, csr);
    }

    #[test]
    fn overlay_on_empty_base() {
        let mut g = OverlayGraph::new(CsrGraph::empty());
        assert_eq!(g.num_vertices(), 0);
        assert!(g.insert_edge(0, 1));
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
        g.compact();
        assert!(g.has_edge(0, 1));
    }
}
