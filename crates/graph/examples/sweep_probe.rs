//! Quick decode-throughput probe for the compressed backend: times a
//! full neighbor sweep over the same graph through the plain slice
//! path, the compressed scratch-ring slice path, and the streaming
//! `for_each_neighbor` path. Handy when tuning the varint decoder —
//! the slice/foreach split shows whether per-call overhead or per-gap
//! decode dominates.
//!
//! ```text
//! cargo run --release -p kcore-graph --example sweep_probe
//! ```

use kcore_graph::{gen, CompressedCsr};
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let g = gen::barabasi_albert(3000, 4, 42);
    let c = CompressedCsr::from_graph(&g);
    let n = g.num_vertices() as u32;

    let time = |label: &str, f: &mut dyn FnMut() -> u64| {
        for _ in 0..50 {
            black_box(f());
        }
        let t = Instant::now();
        let mut iters = 0u32;
        while t.elapsed().as_millis() < 300 {
            black_box(f());
            iters += 1;
        }
        println!(
            "{label:<22} {:>9} ns/iter ({iters} iters)",
            t.elapsed().as_nanos() as u64 / u64::from(iters)
        );
    };

    time("plain-slice", &mut || {
        let mut acc = 0u64;
        for v in 0..n {
            for &w in g.neighbors(v) {
                acc = acc.wrapping_add(u64::from(w));
            }
        }
        acc
    });
    time("compressed-slice", &mut || {
        let mut acc = 0u64;
        for v in 0..n {
            for &w in c.neighbors(v) {
                acc = acc.wrapping_add(u64::from(w));
            }
        }
        acc
    });
    time("compressed-foreach", &mut || {
        let mut acc = 0u64;
        for v in 0..n {
            c.for_each_neighbor(v, &mut |w| acc = acc.wrapping_add(u64::from(w)));
        }
        acc
    });
}
