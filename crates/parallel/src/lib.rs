//! Parallel primitives for k-core decomposition.
//!
//! This crate is the substrate layer under the decomposition algorithms
//! (the role parlaylib/GBBS utilities play for the original
//! implementation):
//!
//! * [`primitives`] — `pack`, prefix scans, and counting, the building
//!   blocks the paper assumes in Sec. 2 (“Parallel Primitives”).
//! * [`intersect`] — hybrid sorted-adjacency intersection kernels
//!   (merge / galloping / packed-bitset probe) with a per-pair
//!   dispatcher, the sequential core of triangle counting and k-truss
//!   peeling; selection overridable via `KCORE_TRI_KERNEL`.
//! * [`histogram`] — the `Histogram` primitive used by offline (Julienne
//!   style) peeling, substituting a sort-based implementation for the
//!   paper's parallel semisort.
//! * [`hashbag`] — the **parallel hash bag** (Sec. 2): concurrent inserts
//!   into geometrically growing chunks with `O(λ + t)` extraction; used
//!   for frontiers and, inside HBS, for bucket contents.
//! * [`instrument`] — work / subround / burdened-span accounting, the
//!   Cilkview substitute described in `DESIGN.md`.
//! * [`pool`] — helpers for running under a fixed rayon thread count
//!   plus the scheduler's steal/split counters (used by the scalability
//!   experiments).
//!
//! Scheduling is delegated to rayon's work-stealing fork–join runtime
//! (offline: the shim's persistent Chase–Lev pool), which matches the
//! paper's binary fork–join model (Sec. 2).

pub mod hashbag;
pub mod histogram;
pub mod instrument;
pub mod intersect;
pub mod pool;
pub mod primitives;

pub use hashbag::HashBag;
pub use instrument::{AtomicMax, RunStats, TechniqueCounters, UpdateCounter, OMEGA};
