//! The `Histogram` primitive of the offline peeling strategy.
//!
//! Julienne's offline `Peel` (Alg. 2) gathers every neighbor of the
//! frontier into a list `L` with duplicates and counts occurrences per
//! vertex. The paper computes this with a parallel semisort (`O(n)` work
//! whp). We provide two implementations with the same interface:
//!
//! * [`histogram_sort`] — parallel sort + run-length encode:
//!   `O(n log n)` work but branch-cheap and deterministic; the default.
//! * [`histogram_atomic`] — atomic counting into a dense `u32` domain:
//!   `O(n + domain)` work, matching the semisort bound when the domain is
//!   the vertex set (as it always is in peeling); used when the caller
//!   can afford the domain-sized counter array.
//!
//! Both return `(key, count)` pairs sorted by key, which is what the
//! offline peel consumes.

use kcore_check::sync::atomic::{AtomicU32, Ordering};
use rayon::prelude::*;

/// Counts occurrences of each key via parallel sort + run-length encode.
pub fn histogram_sort(mut keys: Vec<u32>) -> Vec<(u32, u32)> {
    if keys.is_empty() {
        return Vec::new();
    }
    keys.par_sort_unstable();
    // Run-length encode. Runs are found in parallel by marking run heads,
    // then each head counts its run.
    let n = keys.len();
    let heads: Vec<usize> =
        (0..n).into_par_iter().filter(|&i| i == 0 || keys[i] != keys[i - 1]).collect();
    heads
        .par_iter()
        .enumerate()
        .map(|(r, &start)| {
            let end = heads.get(r + 1).copied().unwrap_or(n);
            (keys[start], (end - start) as u32)
        })
        .collect()
}

/// Counts occurrences of each key (< `domain`) with atomic counters.
///
/// # Panics
///
/// Panics if any key is `>= domain`.
pub fn histogram_atomic(keys: &[u32], domain: usize) -> Vec<(u32, u32)> {
    let counters: Vec<AtomicU32> = (0..domain).map(|_| AtomicU32::new(0)).collect();
    keys.par_iter().for_each(|&k| {
        counters[k as usize].fetch_add(1, Ordering::Relaxed);
    });
    (0..domain as u32)
        .into_par_iter()
        .filter_map(|k| {
            let c = counters[k as usize].load(Ordering::Relaxed);
            (c > 0).then_some((k, c))
        })
        .collect()
}

/// Counts occurrences of each key (< `domain`), picking the cheaper
/// implementation: atomic counting when the key list is dense relative
/// to the domain (the `O(t + domain)` cost is dominated by `t`),
/// sort + run-length encode otherwise. This is the offline peeling
/// driver's default ([`histogram_sort`] / [`histogram_atomic`] remain
/// available for forced choices).
pub fn histogram_auto(keys: Vec<u32>, domain: usize) -> Vec<(u32, u32)> {
    // Dense enough that the domain-sized counter scan is amortized.
    if keys.len() * 4 >= domain {
        histogram_atomic(&keys, domain)
    } else {
        histogram_sort(keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn reference(keys: &[u32]) -> Vec<(u32, u32)> {
        let mut m: HashMap<u32, u32> = HashMap::new();
        for &k in keys {
            *m.entry(k).or_default() += 1;
        }
        let mut v: Vec<(u32, u32)> = m.into_iter().collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn sort_histogram_matches_reference() {
        let keys: Vec<u32> = (0..50_000u32).map(|i| (i * i) % 997).collect();
        assert_eq!(histogram_sort(keys.clone()), reference(&keys));
    }

    #[test]
    fn atomic_histogram_matches_reference() {
        let keys: Vec<u32> = (0..50_000u32).map(|i| (i * 7 + 3) % 1000).collect();
        assert_eq!(histogram_atomic(&keys, 1000), reference(&keys));
    }

    #[test]
    fn histogram_of_empty_is_empty() {
        assert!(histogram_sort(Vec::new()).is_empty());
        assert!(histogram_atomic(&[], 10).is_empty());
    }

    #[test]
    fn histogram_single_key() {
        let keys = vec![5u32; 1234];
        assert_eq!(histogram_sort(keys.clone()), vec![(5, 1234)]);
        assert_eq!(histogram_atomic(&keys, 6), vec![(5, 1234)]);
    }

    #[test]
    fn auto_histogram_matches_reference_on_both_regimes() {
        // Dense: 50k keys over a domain of 1000 -> atomic path.
        let dense: Vec<u32> = (0..50_000u32).map(|i| (i * 13 + 1) % 1000).collect();
        assert_eq!(histogram_auto(dense.clone(), 1000), reference(&dense));
        // Sparse: 100 keys over a domain of 1M -> sort path.
        let sparse: Vec<u32> = (0..100u32).map(|i| i * 9973).collect();
        assert_eq!(histogram_auto(sparse.clone(), 1_000_000), reference(&sparse));
    }

    #[test]
    fn histogram_all_distinct() {
        let keys: Vec<u32> = (0..1000).collect();
        let want: Vec<(u32, u32)> = (0..1000).map(|k| (k, 1)).collect();
        assert_eq!(histogram_sort(keys.clone()), want);
        assert_eq!(histogram_atomic(&keys, 1000), want);
    }
}
