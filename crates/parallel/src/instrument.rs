//! Scheduling and contention instrumentation — the Cilkview substitute.
//!
//! The paper analyzes parallelism through the **burdened span** (Sec. 2):
//! every fork/join (in practice, every global synchronization between
//! peeling subrounds) is charged a burden ω = 15 000 — Cilkview's default
//! — on top of unit costs for ordinary operations. The original paper
//! measures this with Cilkview on OpenCilk binaries; this reproduction
//! cannot run Cilkview, so the algorithms themselves account the same
//! quantity: each subround contributes `syncs · ω + chain` where `chain`
//! is the longest sequential dependency executed inside the subround
//! (the VGC local-search length; 1 without VGC). This reproduces the
//! paper's formulas `Õ(ρω)` (plain / offline) and `Õ(ρ′(ω + L))` (VGC)
//! over the *measured* round structure — exactly what Fig. 9 plots.
//!
//! [`UpdateCounter`] is the contention proxy: per-location update counts
//! whose maximum tracks the paper's contention definition (Sec. 2) well
//! enough to show sampling's effect (Sec. 4.1.5).

use kcore_check::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Burden charged per global synchronization (Cilkview's default ω).
pub const OMEGA: u64 = 15_000;

/// Atomic running maximum.
#[derive(Debug, Default)]
pub struct AtomicMax(AtomicU64);

impl AtomicMax {
    /// Creates a maximum tracker starting at 0.
    pub fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Raises the maximum to at least `v`.
    #[inline]
    pub fn update(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current maximum.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to 0.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Counters describing one decomposition run. Returned by every
/// algorithm in the `kcore` crate; the benchmark harness turns these
/// into the paper's Figs. 7, 9, 10 and the contention discussion.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Peeling rounds (distinct k values processed).
    pub rounds: u64,
    /// Total subrounds ρ (Tab. 2's peeling complexity when VGC is off).
    pub subrounds: u64,
    /// Global synchronization points (≥ subrounds; offline peeling has
    /// several per subround).
    pub global_syncs: u64,
    /// Operation-count proxy for work W: vertices touched + arcs
    /// traversed + active-set scans.
    pub work: u64,
    /// Burdened-span estimate: Σ per subround (syncs·ω + longest chain).
    pub burdened_span: u64,
    /// Largest frontier observed.
    pub max_frontier: usize,
    /// Longest VGC local-search chain observed anywhere in the run.
    pub peak_chain: u64,
    /// Subround count per round (Fig. 7's y/x-axis data).
    pub subrounds_per_round: Vec<u32>,
    /// Number of vertices that ever entered sample mode.
    pub sampled_vertices: u64,
    /// Resample operations performed.
    pub resamples: u64,
    /// Validation calls performed.
    pub validate_calls: u64,
    /// Sampling error-recovery restarts (expected 0; Las-Vegas safety).
    pub restarts: u64,
    /// Maximum atomic updates applied to any single memory location
    /// (contention proxy; only filled when tracking is enabled).
    pub max_updates_per_location: u64,
}

impl RunStats {
    /// Records one subround: its synchronization count and the longest
    /// sequential chain executed within it.
    pub fn record_subround(&mut self, syncs: u64, longest_chain: u64) {
        self.subrounds += 1;
        self.global_syncs += syncs;
        self.burdened_span += syncs * OMEGA + longest_chain;
        self.peak_chain = self.peak_chain.max(longest_chain);
    }

    /// Closes a round that consisted of `subrounds` subrounds.
    pub fn record_round(&mut self, subrounds: u32) {
        self.rounds += 1;
        self.subrounds_per_round.push(subrounds);
    }

    /// Predicted parallel time on `p` cores under the work–span model
    /// `T_p ≈ W/p + S_b` (in abstract operation units). Used by the
    /// scalability experiment to recover speedup *shape* on hardware
    /// with fewer cores than the paper's testbed.
    pub fn predicted_time(&self, p: u64) -> u64 {
        assert!(p > 0, "core count must be positive");
        self.work / p + self.burdened_span
    }

    /// Predicted self-relative speedup on `p` cores.
    pub fn predicted_speedup(&self, p: u64) -> f64 {
        self.predicted_time(1) as f64 / self.predicted_time(p) as f64
    }

    /// Publish every field as a `run.*` gauge in the `kcore-obs`
    /// metrics registry (no-op below `KCORE_TRACE=counters`), so a
    /// [`kcore_obs::TraceReport`] carries the run's structural stats
    /// next to the span timeline.
    pub fn publish_metrics(&self) {
        kcore_obs::MetricsRegistry::publish(
            "run",
            &[
                ("rounds", self.rounds),
                ("subrounds", self.subrounds),
                ("global_syncs", self.global_syncs),
                ("work", self.work),
                ("burdened_span", self.burdened_span),
                ("max_frontier", self.max_frontier as u64),
                ("peak_chain", self.peak_chain),
                ("sampled_vertices", self.sampled_vertices),
                ("resamples", self.resamples),
                ("validate_calls", self.validate_calls),
                ("restarts", self.restarts),
                ("max_updates_per_location", self.max_updates_per_location),
            ],
        );
    }
}

/// Atomic counters shared by the worker threads of one peeling run,
/// merged into [`RunStats`] between rounds. The sampling scheme bumps
/// [`TechniqueCounters::resamples`] / [`TechniqueCounters::validate_calls`]
/// from inside parallel subrounds; VGC feeds the per-subround settle
/// count, chased-work proxy, and longest local chain.
#[derive(Debug, Default)]
pub struct TechniqueCounters {
    /// Exact recounts of sample-mode vertices (trigger, frontier, and
    /// validation recounts alike).
    pub resamples: AtomicU64,
    /// End-of-round validation recounts.
    pub validate_calls: AtomicU64,
    /// Vertices settled in the current subround beyond the frontier
    /// itself (VGC chases). Reset per subround.
    pub chased: AtomicU64,
    /// Work proxy for chased vertices (vertices + arcs). Reset per
    /// subround.
    pub chased_work: AtomicU64,
    /// Longest sequential chase chain in the current subround. Reset per
    /// subround.
    pub chain: AtomicMax,
}

impl TechniqueCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the per-subround counters (`chased`, `chased_work`,
    /// `chain`); the run-long sampling counters keep accumulating.
    pub fn reset_subround(&self) {
        self.chased.store(0, Ordering::Relaxed);
        self.chased_work.store(0, Ordering::Relaxed);
        self.chain.reset();
    }

    /// Folds the run-long sampling counters into `stats`.
    pub fn merge_sampling_into(&self, stats: &mut RunStats) {
        stats.resamples += self.resamples.load(Ordering::Relaxed);
        stats.validate_calls += self.validate_calls.load(Ordering::Relaxed);
    }
}

/// Per-location update counter: the contention diagnostic.
///
/// `bump(i)` counts one atomic update against location `i`; `max()` is
/// the run's contention proxy. Enabled only in instrumented runs — the
/// counter array doubles the atomic traffic, so benchmark timings keep
/// it off.
#[derive(Debug)]
pub struct UpdateCounter {
    counts: Box<[AtomicU32]>,
}

impl UpdateCounter {
    /// Creates counters for `n` locations.
    pub fn new(n: usize) -> Self {
        Self { counts: (0..n).map(|_| AtomicU32::new(0)).collect() }
    }

    /// Records one update against location `i`.
    #[inline]
    pub fn bump(&self, i: usize) {
        self.counts[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Largest update count across locations.
    pub fn max(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed) as u64).max().unwrap_or(0)
    }

    /// Total updates recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed) as u64).sum()
    }

    /// Update count of location `i`.
    pub fn get(&self, i: usize) -> u64 {
        self.counts[i].load(Ordering::Relaxed) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn atomic_max_tracks_maximum() {
        let m = AtomicMax::new();
        (0..1000u64).into_par_iter().for_each(|i| m.update(i));
        assert_eq!(m.get(), 999);
        m.reset();
        assert_eq!(m.get(), 0);
    }

    #[test]
    fn subround_accounting() {
        let mut s = RunStats::default();
        s.record_subround(1, 10);
        s.record_subround(1, 50);
        s.record_round(2);
        assert_eq!(s.subrounds, 2);
        assert_eq!(s.rounds, 1);
        assert_eq!(s.burdened_span, 2 * OMEGA + 60);
        assert_eq!(s.peak_chain, 50);
        assert_eq!(s.subrounds_per_round, vec![2]);
    }

    #[test]
    fn offline_subrounds_charge_more_syncs() {
        let mut online = RunStats::default();
        let mut offline = RunStats::default();
        for _ in 0..10 {
            online.record_subround(1, 1);
            offline.record_subround(3, 1);
        }
        assert!(offline.burdened_span > online.burdened_span);
        assert_eq!(offline.burdened_span / online.burdened_span, 2); // ≈3x, integer div of (3ω+1)/(ω+1)
    }

    #[test]
    fn predicted_time_decreases_with_cores_until_span_bound() {
        let mut s = RunStats { work: 1_000_000, ..Default::default() };
        s.record_subround(1, 0);
        let t1 = s.predicted_time(1);
        let t4 = s.predicted_time(4);
        let t_inf = s.predicted_time(u64::MAX);
        assert!(t1 > t4);
        assert!(t4 > t_inf);
        assert_eq!(t_inf, s.burdened_span);
        assert!(s.predicted_speedup(4) > 1.0);
    }

    #[test]
    fn technique_counters_merge_and_reset() {
        let c = TechniqueCounters::new();
        (0..100u64).into_par_iter().for_each(|i| {
            c.resamples.fetch_add(1, Ordering::Relaxed);
            if i % 2 == 0 {
                c.validate_calls.fetch_add(1, Ordering::Relaxed);
            }
            c.chased.fetch_add(1, Ordering::Relaxed);
            c.chain.update(i);
        });
        let mut stats = RunStats::default();
        c.merge_sampling_into(&mut stats);
        assert_eq!(stats.resamples, 100);
        assert_eq!(stats.validate_calls, 50);
        assert_eq!(c.chain.get(), 99);
        c.reset_subround();
        assert_eq!(c.chased.load(Ordering::Relaxed), 0);
        assert_eq!(c.chain.get(), 0);
        // Sampling counters survive subround resets.
        assert_eq!(c.resamples.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn update_counter_counts_per_location() {
        let c = UpdateCounter::new(8);
        (0..800usize).into_par_iter().for_each(|i| c.bump(i % 8));
        assert_eq!(c.total(), 800);
        assert_eq!(c.max(), 100);
        assert_eq!(c.get(3), 100);
    }
}
