//! Thread-pool helpers and scheduler instrumentation for the
//! scalability experiments.
//!
//! The paper's Fig. 10 sweeps core counts (1, 2, 4, …, 96h). Rayon's
//! global pool is process-wide, so the sweep runs each configuration in
//! a dedicated local pool via [`with_threads`]. The work-stealing
//! runtime under the rayon shim exposes steal/split counters
//! ([`scheduler_stats`], [`scheduler_delta`]) so the benchmarks can
//! report *how* a skewed frontier was balanced, not just how fast it
//! ran.

/// Runs `f` inside a rayon pool with exactly `threads` worker threads.
///
/// Nested rayon operations inside `f` — including ones issued from the
/// pool's own worker threads — use that pool. Panics from `f` propagate.
pub fn with_threads<T, F>(threads: usize, f: F) -> T
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    assert!(threads >= 1, "need at least one thread");
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool");
    pool.install(f)
}

/// Number of threads rayon would use by default on this machine.
pub fn default_threads() -> usize {
    rayon::current_num_threads()
}

/// Work-stealing scheduler counters (monotonic, process-wide).
///
/// `steals` counts tasks taken from another worker's deque; `splits`
/// counts range tasks halved to publish stealable work; `parks`/`wakes`
/// count worker sleep episodes entered/exited on the idle condvar. All
/// come from the offline rayon shim's runtime — when swapping in the
/// real rayon crate, this module is the one shim-specific consumer to
/// gate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Tasks executed by a worker other than the one that published them.
    pub steals: u64,
    /// Task splits performed to expose stealable work.
    pub splits: u64,
    /// Worker sleep episodes entered (no work found anywhere).
    pub parks: u64,
    /// Worker sleep episodes exited; `wakes <= parks` always.
    pub wakes: u64,
}

/// Per-worker scheduler tallies (same fields as [`SchedulerStats`]),
/// indexed by worker, re-exported from the shim runtime.
pub use rayon::stats::WorkerSnapshot as WorkerStats;

/// Reads the scheduler counters accumulated since process start.
pub fn scheduler_stats() -> SchedulerStats {
    let snap = rayon::stats::snapshot();
    SchedulerStats {
        steals: snap.steals,
        splits: snap.splits,
        parks: snap.parks,
        wakes: snap.wakes,
    }
}

/// Per-worker tallies of the effective pool: the calling worker's own
/// pool inside [`with_threads`], else the global one. The process-wide
/// [`scheduler_stats`] totals are the sums of these over *all* pools
/// ever created.
pub fn per_worker_stats() -> Vec<WorkerStats> {
    rayon::stats::per_worker()
}

/// Runs `f` and returns its result along with the steal/split activity
/// it caused. Counter deltas include any concurrent parallel work in
/// the process; callers that need attribution should run alone (as the
/// benchmarks do).
pub fn scheduler_delta<T>(f: impl FnOnce() -> T) -> (T, SchedulerStats) {
    let before = scheduler_stats();
    let result = f();
    let after = scheduler_stats();
    (
        result,
        SchedulerStats {
            steals: after.steals - before.steals,
            splits: after.splits - before.splits,
            parks: after.parks - before.parks,
            wakes: after.wakes - before.wakes,
        },
    )
}

/// Publish the current [`scheduler_stats`] totals and per-worker
/// breakdown into the `kcore-obs` metrics registry (`scheduler.*`
/// gauges). No-op below `KCORE_TRACE=counters`.
pub fn publish_scheduler_metrics() {
    let s = scheduler_stats();
    kcore_obs::MetricsRegistry::publish(
        "scheduler",
        &[("steals", s.steals), ("splits", s.splits), ("parks", s.parks), ("wakes", s.wakes)],
    );
    for (i, w) in per_worker_stats().iter().enumerate() {
        kcore_obs::MetricsRegistry::publish(
            &format!("scheduler.worker{i}"),
            &[("steals", w.steals), ("splits", w.splits), ("parks", w.parks), ("wakes", w.wakes)],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn with_threads_controls_pool_size() {
        for t in [1usize, 2, 4] {
            let inside = with_threads(t, rayon::current_num_threads);
            assert_eq!(inside, t);
        }
    }

    #[test]
    fn parallel_work_runs_in_local_pool() {
        let sum: u64 = with_threads(2, || (0..1_000u64).into_par_iter().sum());
        assert_eq!(sum, 499_500);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        with_threads(0, || ());
    }

    #[test]
    fn worker_threads_see_pool_thread_count() {
        // Regression for the install-override bug: nested parallel
        // calls issued from worker threads must inherit the pool's
        // thread count, not the machine default.
        let counts: Vec<usize> = with_threads(3, || {
            (0u32..1 << 14).into_par_iter().map(|_| rayon::current_num_threads()).collect()
        });
        assert!(counts.iter().all(|&c| c == 3));
    }

    #[test]
    fn scheduler_delta_counts_splits_under_parallelism() {
        let (sum, delta) = scheduler_delta(|| {
            with_threads(4, || (0..200_000u64).into_par_iter().map(|x| x ^ 1).sum::<u64>())
        });
        assert_eq!(sum, (0..200_000u64).map(|x| x ^ 1).sum::<u64>());
        assert!(delta.splits > 0, "a 200k-element job on 4 threads must split");
    }

    #[test]
    fn per_worker_tallies_cover_the_effective_pool() {
        let per = with_threads(3, || {
            let _: u64 = (0..200_000u64).into_par_iter().map(|x| x | 1).sum();
            per_worker_stats()
        });
        assert_eq!(per.len(), 3, "one tally set per worker");
        let total = scheduler_stats();
        let splits: u64 = per.iter().map(|w| w.splits).sum();
        let steals: u64 = per.iter().map(|w| w.steals).sum();
        assert!(splits <= total.splits && steals <= total.steals);
        for w in &per {
            assert!(w.wakes <= w.parks, "a wake can only follow its park");
        }
    }

    #[test]
    fn wakes_never_exceed_parks() {
        let (_, delta) = scheduler_delta(|| {
            with_threads(2, || (0..100_000u64).into_par_iter().map(|x| x ^ 3).sum::<u64>())
        });
        let _ = delta;
        let s = scheduler_stats();
        assert!(s.wakes <= s.parks);
    }

    #[test]
    fn scheduler_stats_are_monotonic() {
        let a = scheduler_stats();
        with_threads(2, || {
            let _: u64 = (0..100_000u64).into_par_iter().sum();
        });
        let b = scheduler_stats();
        assert!(b.steals >= a.steals && b.splits >= a.splits);
    }
}
