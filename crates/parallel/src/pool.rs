//! Thread-pool helpers for the scalability experiments.
//!
//! The paper's Fig. 10 sweeps core counts (1, 2, 4, …, 96h). Rayon's
//! global pool is process-wide, so the sweep runs each configuration in
//! a dedicated local pool via [`with_threads`].

/// Runs `f` inside a rayon pool with exactly `threads` worker threads.
///
/// Nested rayon operations inside `f` use that pool. Panics from `f`
/// propagate.
pub fn with_threads<T, F>(threads: usize, f: F) -> T
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    assert!(threads >= 1, "need at least one thread");
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool");
    pool.install(f)
}

/// Number of threads rayon would use by default on this machine.
pub fn default_threads() -> usize {
    rayon::current_num_threads()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn with_threads_controls_pool_size() {
        for t in [1usize, 2, 4] {
            let inside = with_threads(t, rayon::current_num_threads);
            assert_eq!(inside, t);
        }
    }

    #[test]
    fn parallel_work_runs_in_local_pool() {
        let sum: u64 = with_threads(2, || (0..1_000u64).into_par_iter().sum());
        assert_eq!(sum, 499_500);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        with_threads(0, || ());
    }
}
