//! The parallel hash bag (paper Sec. 2).
//!
//! A hash bag maintains a multiset of `u32` elements under concurrent
//! insertion, and supports extracting everything into a flat array. Per
//! the paper: the backing array is conceptually divided into chunks of
//! geometrically growing sizes `λ, 2λ, 4λ, …`; inserts target the
//! current chunk with linear probing, and once the chunk reaches its
//! load-factor limit the bag moves on to the next chunk. Extraction only
//! touches the used prefix of chunks, so it costs `O(λ + t)` for `t`
//! stored elements rather than `O(capacity)` — the property that makes
//! per-subround frontier extraction cheap even on tiny frontiers.
//!
//! Concurrency protocol:
//! * [`HashBag::insert`] takes `&self`: a reservation counter per chunk
//!   guarantees a free slot before probing, so probing always terminates.
//! * [`HashBag::extract_all`] / [`HashBag::clear`] take `&mut self`:
//!   extraction is phase-separated from insertion in every peeling
//!   algorithm (inserts happen inside a subround, extraction between
//!   subrounds), and the exclusive borrow enforces that discipline at
//!   compile time.

use kcore_check::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use rayon::prelude::*;

/// Sentinel marking an empty slot. Element value `u32::MAX` is therefore
/// not storable; vertex ids never reach it.
const EMPTY: u32 = u32::MAX;

/// First-chunk size λ. The paper's implementation uses 2^8.
pub const LAMBDA: usize = 256;

/// Maximum fraction of a chunk filled before moving to the next chunk.
const LOAD_NUM: usize = 3;
const LOAD_DEN: usize = 4;

/// A concurrent bag of `u32` values with chunked geometric growth.
pub struct HashBag {
    slots: Box<[AtomicU32]>,
    /// Half-open slot ranges per chunk.
    chunks: Box<[(usize, usize)]>,
    /// Insertion reservations per chunk (may overshoot the limit; only
    /// reservations below the limit correspond to performed inserts).
    reserved: Box<[AtomicUsize]>,
    /// Index of the chunk currently receiving inserts.
    cur: AtomicUsize,
}

impl HashBag {
    /// Creates a bag able to hold at least `capacity` elements at once.
    ///
    /// Allocates `O(capacity)` slots: chunk sizes λ, 2λ, 4λ, … until the
    /// usable space (load limit) covers `capacity`.
    pub fn new(capacity: usize) -> Self {
        let mut sizes = Vec::new();
        let mut usable = 0usize;
        let mut size = LAMBDA;
        while usable * LOAD_NUM / LOAD_DEN < capacity.max(1) {
            sizes.push(size);
            usable += size;
            size *= 2;
        }
        // One spare chunk so the "advance past a full chunk" path always
        // has somewhere to go even at exactly `capacity` elements.
        sizes.push(size);
        let total: usize = sizes.iter().sum();
        let slots: Box<[AtomicU32]> = (0..total).map(|_| AtomicU32::new(EMPTY)).collect();
        let mut chunks = Vec::with_capacity(sizes.len());
        let mut start = 0usize;
        for s in sizes {
            chunks.push((start, start + s));
            start += s;
        }
        Self {
            slots,
            reserved: (0..chunks.len()).map(|_| AtomicUsize::new(0)).collect(),
            chunks: chunks.into_boxed_slice(),
            cur: AtomicUsize::new(0),
        }
    }

    /// Total allocated slots (diagnostic).
    pub fn capacity_slots(&self) -> usize {
        self.slots.len()
    }

    /// Inserts `v` (duplicates allowed — this is a bag).
    ///
    /// Lock-free: reserves a slot in the current chunk via a per-chunk
    /// counter; if the chunk is at its load limit, advances to the next
    /// chunk and retries.
    ///
    /// # Panics
    ///
    /// Panics if `v == u32::MAX` (the empty sentinel) or if the bag is
    /// truly full (more inserts than the constructed capacity).
    pub fn insert(&self, v: u32) {
        assert_ne!(v, EMPTY, "u32::MAX is reserved as the empty sentinel");
        let mut c = self.cur.load(Ordering::Relaxed);
        loop {
            assert!(c < self.chunks.len(), "hash bag overflow: capacity exceeded");
            let (lo, hi) = self.chunks[c];
            let size = hi - lo;
            let limit = size * LOAD_NUM / LOAD_DEN;
            let ticket = self.reserved[c].fetch_add(1, Ordering::Relaxed);
            if ticket >= limit {
                // Chunk exhausted; move the shared cursor forward (CAS so
                // it only advances) and retry in the next chunk.
                let _ = self.cur.compare_exchange(c, c + 1, Ordering::Relaxed, Ordering::Relaxed);
                c = self.cur.load(Ordering::Relaxed).max(c + 1);
                continue;
            }
            // A slot is guaranteed: at most `limit` successful
            // reservations exist and the chunk has `size > limit` slots.
            let mut idx = lo + (hash32(v) as usize) % size;
            loop {
                match self.slots[idx].compare_exchange(
                    EMPTY,
                    v,
                    Ordering::Release,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(_) => {
                        idx += 1;
                        if idx == hi {
                            idx = lo;
                        }
                    }
                }
            }
        }
    }

    /// Number of elements currently stored (exact; counts only performed
    /// inserts, not overshoot reservations).
    pub fn len(&self) -> usize {
        self.chunks
            .iter()
            .zip(self.reserved.iter())
            .map(|(&(lo, hi), r)| {
                let limit = (hi - lo) * LOAD_NUM / LOAD_DEN;
                r.load(Ordering::Relaxed).min(limit)
            })
            .sum()
    }

    /// Whether the bag holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extracts every element into a vector and resets the bag.
    ///
    /// Cost is `O(λ + t)` for `t` elements: only the used chunk prefix is
    /// scanned. Output order is the slot order (deterministic for a
    /// fixed insertion history, unspecified otherwise).
    pub fn extract_all(&mut self) -> Vec<u32> {
        let used_chunks = (self.cur.load(Ordering::Relaxed) + 1).min(self.chunks.len());
        let end = self.chunks[used_chunks - 1].1;
        let slots = &self.slots[..end];
        let out: Vec<u32> = slots
            .par_iter()
            .filter_map(|s| {
                let v = s.load(Ordering::Acquire);
                (v != EMPTY).then_some(v)
            })
            .collect();
        self.reset(end);
        out
    }

    /// Discards all contents.
    pub fn clear(&mut self) {
        let used_chunks = (self.cur.load(Ordering::Relaxed) + 1).min(self.chunks.len());
        let end = self.chunks[used_chunks - 1].1;
        self.reset(end);
    }

    fn reset(&mut self, used_slots: usize) {
        self.slots[..used_slots].par_iter().for_each(|s| s.store(EMPTY, Ordering::Relaxed));
        for r in self.reserved.iter() {
            r.store(0, Ordering::Relaxed);
        }
        self.cur.store(0, Ordering::Relaxed);
    }
}

/// Fibonacci-style 32-bit hash (Knuth's multiplicative method with an
/// xor-fold); cheap and good enough for linear probing over vertex ids.
#[inline]
fn hash32(x: u32) -> u32 {
    let h = x.wrapping_mul(0x9E37_79B9);
    h ^ (h >> 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_extract_small() {
        let mut bag = HashBag::new(100);
        for v in 0..50u32 {
            bag.insert(v);
        }
        let mut got = bag.extract_all();
        got.sort_unstable();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        assert!(bag.is_empty());
    }

    #[test]
    fn bag_allows_duplicates() {
        let mut bag = HashBag::new(10);
        bag.insert(7);
        bag.insert(7);
        bag.insert(7);
        let got = bag.extract_all();
        assert_eq!(got, vec![7, 7, 7]);
    }

    #[test]
    fn reuse_after_extract() {
        let mut bag = HashBag::new(1000);
        for round in 0..5u32 {
            for v in 0..200u32 {
                bag.insert(round * 1000 + v);
            }
            let got = bag.extract_all();
            assert_eq!(got.len(), 200, "round {round}");
        }
    }

    #[test]
    fn grows_through_multiple_chunks() {
        // λ = 256 at ¾ load = 192 usable in chunk 0; 3000 elements need
        // several chunks.
        let mut bag = HashBag::new(3000);
        for v in 0..3000u32 {
            bag.insert(v);
        }
        assert_eq!(bag.len(), 3000);
        let mut got = bag.extract_all();
        got.sort_unstable();
        assert_eq!(got, (0..3000).collect::<Vec<_>>());
    }

    #[test]
    fn fill_to_exact_capacity() {
        let cap = 10_000;
        let mut bag = HashBag::new(cap);
        for v in 0..cap as u32 {
            bag.insert(v);
        }
        assert_eq!(bag.extract_all().len(), cap);
    }

    #[test]
    fn concurrent_insert_storm_loses_nothing() {
        let n = 100_000u32;
        let mut bag = HashBag::new(n as usize);
        (0..n).into_par_iter().for_each(|v| bag.insert(v));
        let mut got = bag.extract_all();
        got.sort_unstable();
        assert_eq!(got.len(), n as usize);
        assert_eq!(got, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_duplicate_inserts_all_kept() {
        let mut bag = HashBag::new(40_000);
        (0..40_000u32).into_par_iter().for_each(|i| bag.insert(i % 97));
        let got = bag.extract_all();
        assert_eq!(got.len(), 40_000);
        // Every value is one of the 97 inserted keys.
        assert!(got.iter().all(|&v| v < 97));
    }

    #[test]
    fn clear_discards_contents() {
        let mut bag = HashBag::new(100);
        bag.insert(1);
        bag.insert(2);
        bag.clear();
        assert!(bag.is_empty());
        assert!(bag.extract_all().is_empty());
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn rejects_sentinel_value() {
        let bag = HashBag::new(10);
        bag.insert(u32::MAX);
    }

    #[test]
    fn probes_wrap_within_chunk_boundaries() {
        // Boundary audit: a probe sequence starting near the top of a
        // chunk must wrap to the chunk's own first slot (`lo`), never
        // walk into the next chunk — walking on would break both the
        // reservation-guarantees-a-slot invariant (the reservation was
        // taken in *this* chunk) and the O(λ + t) extraction bound
        // (elements would land beyond the scanned prefix). Forcing the
        // wrap: chunk 0 is [0, 256); insert many values whose hash all
        // lands on the last few slots so their probes must wrap to 0.
        let mut colliders: Vec<u32> =
            (0..u32::MAX).filter(|&v| hash32(v) as usize % LAMBDA >= LAMBDA - 4).take(64).collect();
        assert_eq!(colliders.len(), 64);
        let mut bag = HashBag::new(LAMBDA); // chunk 0 usable = 192 > 64
        for &v in &colliders {
            bag.insert(v);
        }
        assert_eq!(bag.len(), 64);
        let mut got = bag.extract_all();
        got.sort_unstable();
        colliders.sort_unstable();
        assert_eq!(got, colliders, "a wrapped probe lost or duplicated an element");
    }

    #[test]
    fn boundary_collisions_across_chunk_advance() {
        // Same audit one chunk deeper: fill chunk 0 past its load limit
        // so inserts advance to chunk 1 ([256, 768), size 512), then
        // aim at chunk 1's top slots and verify the wrap stays inside
        // [256, 768).
        let chunk1_size = 2 * LAMBDA;
        let colliders: Vec<u32> = (0..u32::MAX)
            .filter(|&v| hash32(v) as usize % chunk1_size >= chunk1_size - 4)
            .take(96)
            .collect();
        let fill = LAMBDA as u32; // > chunk 0's 192-slot load limit
        let mut bag = HashBag::new(1000);
        let mut expected: Vec<u32> = Vec::new();
        for v in 0..fill {
            // Offset the filler so it cannot collide with `colliders`.
            let v = v + 1_000_000_000;
            bag.insert(v);
            expected.push(v);
        }
        for &v in &colliders {
            bag.insert(v);
            expected.push(v);
        }
        let mut got = bag.extract_all();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn extraction_cost_scales_with_contents_not_capacity() {
        // Behavioral proxy for the O(λ + t) claim: a huge-capacity bag
        // with one element must only scan the first chunk. We assert the
        // scan bound indirectly via used-chunk accounting.
        let mut bag = HashBag::new(1 << 20);
        bag.insert(42);
        assert_eq!(bag.extract_all(), vec![42]);
    }
}
