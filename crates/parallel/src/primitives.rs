//! Order-preserving parallel `pack`, prefix scans, and counting.
//!
//! `Pack` is the workhorse primitive of the paper's framework (Alg. 1
//! extracts frontiers and refines the active set with it, and Thm. 3.1's
//! work bound assumes it costs `O(|A|)`). The implementation here is the
//! textbook three-phase blocked pack: per-block count, exclusive scan
//! over block counts, per-block write — `O(n)` work, `O(log n)` span,
//! and stable (output preserves input order), which keeps every
//! algorithm in this workspace deterministic run-to-run.

use rayon::prelude::*;

/// Block size for the blocked pack/scan phases. Large enough that the
/// per-block bookkeeping vanishes, small enough to load-balance.
const BLOCK: usize = 4096;

/// Returns all elements of `input` satisfying `pred`, preserving order.
pub fn pack<T, F>(input: &[T], pred: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> bool + Sync,
{
    let n = input.len();
    if n <= BLOCK {
        return input.iter().copied().filter(|x| pred(x)).collect();
    }
    let blocks = n.div_ceil(BLOCK);
    let counts: Vec<usize> = (0..blocks)
        .into_par_iter()
        .map(|b| {
            let lo = b * BLOCK;
            let hi = (lo + BLOCK).min(n);
            input[lo..hi].iter().filter(|x| pred(x)).count()
        })
        .collect();
    let (offsets, total) = exclusive_scan(&counts);
    let mut out: Vec<T> = Vec::with_capacity(total);
    #[allow(clippy::uninit_vec)]
    // SAFETY: every slot in 0..total is written exactly once below —
    // block b writes the contiguous range offsets[b]..offsets[b]+counts[b],
    // and the scan guarantees those ranges tile 0..total.
    unsafe {
        out.set_len(total);
    }
    let out_ptr = SendPtr(out.as_mut_ptr());
    (0..blocks).into_par_iter().for_each(|b| {
        let lo = b * BLOCK;
        let hi = (lo + BLOCK).min(n);
        let mut pos = offsets[b];
        let ptr = out_ptr; // capture the Send wrapper by copy
        for x in &input[lo..hi] {
            if pred(x) {
                // SAFETY: disjoint ranges per block, see above.
                unsafe { ptr.0.add(pos).write(*x) };
                pos += 1;
            }
        }
    });
    out
}

/// Returns the indices `i` in `0..n` for which `pred(i)` holds, in order.
///
/// This is the form used to extract frontiers ("all active vertices with
/// induced degree k") without materializing the candidate array first.
pub fn pack_index<F>(n: usize, pred: F) -> Vec<u32>
where
    F: Fn(usize) -> bool + Sync,
{
    if n <= BLOCK {
        return (0..n).filter(|&i| pred(i)).map(|i| i as u32).collect();
    }
    let blocks = n.div_ceil(BLOCK);
    let counts: Vec<usize> = (0..blocks)
        .into_par_iter()
        .map(|b| {
            let lo = b * BLOCK;
            let hi = (lo + BLOCK).min(n);
            (lo..hi).filter(|&i| pred(i)).count()
        })
        .collect();
    let (offsets, total) = exclusive_scan(&counts);
    let mut out: Vec<u32> = Vec::with_capacity(total);
    #[allow(clippy::uninit_vec)]
    // SAFETY: as in `pack`: block ranges tile 0..total exactly.
    unsafe {
        out.set_len(total);
    }
    let out_ptr = SendPtr(out.as_mut_ptr());
    (0..blocks).into_par_iter().for_each(|b| {
        let lo = b * BLOCK;
        let hi = (lo + BLOCK).min(n);
        let mut pos = offsets[b];
        let ptr = out_ptr;
        for i in lo..hi {
            if pred(i) {
                // SAFETY: disjoint ranges per block.
                unsafe { ptr.0.add(pos).write(i as u32) };
                pos += 1;
            }
        }
    });
    out
}

/// Raw pointer wrapper that lets disjoint-range writers share a buffer
/// across rayon tasks.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: the wrapper is only used with the disjoint-write discipline
// documented at each use site.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Exclusive prefix sum; returns `(prefix, total)`.
///
/// Sequential — callers only scan per-*block* aggregates (a few thousand
/// entries), never per-element arrays, so a parallel scan would cost
/// more in fork overhead than it saves.
pub fn exclusive_scan(counts: &[usize]) -> (Vec<usize>, usize) {
    let mut prefix = Vec::with_capacity(counts.len());
    let mut acc = 0usize;
    for &c in counts {
        prefix.push(acc);
        acc += c;
    }
    (prefix, acc)
}

/// Calls `f(i, j)` for every value present in both strictly increasing
/// slices, where `i` / `j` are the value's positions in `a` / `b`.
///
/// Linear two-pointer merge, `O(|a| + |b|)`. This is the sequential
/// kernel of triangle enumeration: callers parallelize *across* edges
/// (one intersection per edge) rather than within one intersection,
/// which matches the paper's flat fork–join model — intersections are
/// tiny compared to the edge set.
#[inline]
pub fn intersect_sorted_positions<F>(a: &[u32], b: &[u32], mut f: F)
where
    F: FnMut(usize, usize),
{
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                f(i, j);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Size of the intersection of two strictly increasing slices.
#[inline]
pub fn intersection_size(a: &[u32], b: &[u32]) -> usize {
    let mut count = 0usize;
    intersect_sorted_positions(a, b, |_, _| count += 1);
    count
}

/// Counts the indices in `0..n` satisfying `pred`, in parallel.
pub fn par_count<F>(n: usize, pred: F) -> usize
where
    F: Fn(usize) -> bool + Sync,
{
    (0..n).into_par_iter().filter(|&i| pred(i)).count()
}

/// Parallel maximum of `f(i)` over `0..n`; `None` when `n == 0`.
pub fn par_max_by<F, T>(n: usize, f: F) -> Option<T>
where
    F: Fn(usize) -> T + Sync,
    T: Ord + Send,
{
    (0..n).into_par_iter().map(&f).max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_small_and_large_agree_with_filter() {
        for n in [0usize, 1, 10, BLOCK - 1, BLOCK, BLOCK + 1, 3 * BLOCK + 17] {
            let input: Vec<u64> = (0..n as u64).collect();
            let got = pack(&input, |&x| x % 3 == 0);
            let want: Vec<u64> = input.iter().copied().filter(|&x| x % 3 == 0).collect();
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn pack_preserves_order() {
        let input: Vec<u32> = (0..(2 * BLOCK as u32 + 5)).rev().collect();
        let got = pack(&input, |&x| x % 2 == 1);
        let mut sorted = got.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(got, sorted, "descending input must stay descending");
    }

    #[test]
    fn pack_all_and_none() {
        let input: Vec<u32> = (0..10_000).collect();
        assert_eq!(pack(&input, |_| true), input);
        assert!(pack(&input, |_| false).is_empty());
    }

    #[test]
    fn pack_index_matches_pack() {
        let n = 2 * BLOCK + 123;
        let vals: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let by_index = pack_index(n, |i| vals[i].is_multiple_of(7));
        let by_value: Vec<u32> =
            (0..n as u32).filter(|&i| vals[i as usize].is_multiple_of(7)).collect();
        assert_eq!(by_index, by_value);
    }

    #[test]
    fn exclusive_scan_basics() {
        let (p, t) = exclusive_scan(&[3, 0, 2, 5]);
        assert_eq!(p, vec![0, 3, 3, 5]);
        assert_eq!(t, 10);
        let (p, t) = exclusive_scan(&[]);
        assert!(p.is_empty());
        assert_eq!(t, 0);
    }

    #[test]
    fn intersection_matches_naive() {
        let a: Vec<u32> = (0..200).filter(|x| x % 3 == 0).collect();
        let b: Vec<u32> = (0..200).filter(|x| x % 5 == 0).collect();
        let mut hits = Vec::new();
        intersect_sorted_positions(&a, &b, |i, j| {
            assert_eq!(a[i], b[j]);
            hits.push(a[i]);
        });
        let want: Vec<u32> = (0..200).filter(|x| x % 15 == 0).collect();
        assert_eq!(hits, want);
        assert_eq!(intersection_size(&a, &b), want.len());
        assert_eq!(intersection_size(&a, &[]), 0);
        assert_eq!(intersection_size(&[], &b), 0);
    }

    #[test]
    fn par_count_and_max() {
        assert_eq!(par_count(100, |i| i % 10 == 0), 10);
        assert_eq!(par_max_by(100, |i| i * 2), Some(198));
        assert_eq!(par_max_by(0, |i| i), None);
    }
}
