//! Hybrid sorted-set intersection kernels for triangle enumeration.
//!
//! Every triangle computation in this workspace reduces to intersecting
//! two sorted adjacency lists. One kernel does not fit all pairs:
//!
//! * [`intersect_sorted_positions`](crate::primitives::intersect_sorted_positions)
//!   — the linear two-pointer **merge**, optimal when the lists have
//!   similar sizes (`O(|a| + |b|)`).
//! * [`intersect_gallop_positions`] — **galloping** (exponential search
//!   from a moving cursor): drives the smaller list and searches the
//!   larger one, `O(s · log(b / s))` for sizes `s ≤ b`. Wins when the
//!   pair is skewed, the common case for power-law graphs where one
//!   endpoint is a hub.
//! * [`intersect_bitset_positions`] — probes a pre-built packed-`u64`
//!   [`PackedBitset`] of the larger list, `O(s)` with one word load per
//!   probe. Wins when the larger side is a hub whose membership
//!   structure is reused across many intersections (the per-hub maps in
//!   `kcore_graph::dodg` are built lazily and amortized over the whole
//!   k-truss peel).
//!
//! [`choose`] picks per pair from the measured size ratio; the choice
//! policy is overridable process-wide via the `KCORE_TRI_KERNEL`
//! environment variable ([`TriKernel::from_env`], values
//! `auto|merge|gallop|bitset`) so each kernel is independently testable
//! and benchable. Kernel-choice tallies are published as
//! `tri.kernel.{merge,gallop,bitset}` counters through `kcore-obs`.
//!
//! All kernels enumerate the same set of matches — only the order of
//! work differs — so every consumer is bit-identical across kernels;
//! `kcore`'s `tri_kernels` test matrix pins that equivalence.

use kcore_obs::counter;

/// Intersection-kernel selection policy, parsed from `KCORE_TRI_KERNEL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriKernel {
    /// Pick per pair from the size ratio (the default).
    Auto,
    /// Always the linear two-pointer merge.
    Merge,
    /// Always galloping search (smaller list drives).
    Gallop,
    /// Always the packed-bitset probe, building hub maps on demand for
    /// *every* larger side regardless of degree — the forced-threshold
    /// test leg that pushes each pair through the bitset path.
    Bitset,
}

/// Minimum larger-side length before `Auto` considers the bitset
/// kernel: below this a hub map costs more to build than it saves.
/// The maps are rank-prefix structures built in `O(n/64 + d)`, so the
/// break-even is low; measured on the power-law benches, 32 captures
/// the whole hub tail without flooding tiny vertices with maps.
pub const BITSET_MIN_LEN: usize = 32;

/// Minimum size ratio (`larger / smaller`) before `Auto` prefers the
/// bitset probe over merging: a probe costs ~3 ops (word load,
/// popcount, payload index) against the merge's ~1 op per element, so
/// the probe wins once the larger side is at least twice the smaller.
pub const BITSET_SKEW: usize = 2;

/// Minimum size ratio before `Auto` prefers galloping over merging
/// when no hub map is warranted (larger side under
/// [`BITSET_MIN_LEN`]).
pub const GALLOP_SKEW: usize = 4;

impl TriKernel {
    /// All accepted `KCORE_TRI_KERNEL` tokens, in panic-message order.
    pub const TOKENS: [&'static str; 4] = ["auto", "merge", "gallop", "bitset"];

    /// Parses a `KCORE_TRI_KERNEL` value.
    ///
    /// # Panics
    ///
    /// Panics on unknown tokens, listing the valid ones — a misspelled
    /// CI override must fail loudly, not silently bench the default
    /// (mirroring `KCORE_TECHNIQUES` parsing).
    pub fn parse(spec: &str) -> Self {
        match spec.trim() {
            "" | "auto" => TriKernel::Auto,
            "merge" => TriKernel::Merge,
            "gallop" => TriKernel::Gallop,
            "bitset" => TriKernel::Bitset,
            other => panic!(
                "KCORE_TRI_KERNEL: unknown kernel {other:?} (valid: auto, merge, gallop, bitset)"
            ),
        }
    }

    /// The process-wide kernel selection from the `KCORE_TRI_KERNEL`
    /// environment variable (read once; `Auto` when unset).
    pub fn from_env() -> Self {
        static FROM_ENV: std::sync::OnceLock<TriKernel> = std::sync::OnceLock::new();
        *FROM_ENV.get_or_init(|| match std::env::var("KCORE_TRI_KERNEL") {
            Ok(spec) => TriKernel::parse(&spec),
            Err(_) => TriKernel::Auto,
        })
    }

    /// Human name, as accepted by `KCORE_TRI_KERNEL`.
    pub fn as_str(self) -> &'static str {
        match self {
            TriKernel::Auto => "auto",
            TriKernel::Merge => "merge",
            TriKernel::Gallop => "gallop",
            TriKernel::Bitset => "bitset",
        }
    }
}

/// The concrete kernel [`choose`] resolved for one pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChosenKernel {
    /// Linear two-pointer merge.
    Merge,
    /// Galloping search, smaller list driving.
    Gallop,
    /// Packed-bitset probe of the larger side's hub map.
    Bitset,
}

/// Resolves the kernel for one pair of list lengths and tallies the
/// choice (`tri.kernel.*` counters).
///
/// Under [`TriKernel::Auto`] the decision is by size ratio: heavily
/// skewed pairs with a hub-sized larger side take the bitset probe,
/// moderately skewed pairs gallop, and similar-sized pairs merge.
/// Forced policies always return their kernel, so the caller must be
/// prepared to build a hub map for any vertex under `Bitset`.
#[inline]
pub fn choose(policy: TriKernel, len_a: usize, len_b: usize) -> ChosenKernel {
    let chosen = match policy {
        TriKernel::Merge => ChosenKernel::Merge,
        TriKernel::Gallop => ChosenKernel::Gallop,
        TriKernel::Bitset => ChosenKernel::Bitset,
        TriKernel::Auto => {
            let (small, big) = (len_a.min(len_b).max(1), len_a.max(len_b));
            if big >= BITSET_MIN_LEN && big >= BITSET_SKEW * small {
                ChosenKernel::Bitset
            } else if big >= GALLOP_SKEW * small {
                ChosenKernel::Gallop
            } else {
                ChosenKernel::Merge
            }
        }
    };
    match chosen {
        ChosenKernel::Merge => counter!("tri.kernel.merge", 1),
        ChosenKernel::Gallop => counter!("tri.kernel.gallop", 1),
        ChosenKernel::Bitset => counter!("tri.kernel.bitset", 1),
    }
    chosen
}

/// Calls `f(i, j)` for every value present in both strictly increasing
/// slices (`a[i] == b[j]`), by galloping: the smaller slice drives, and
/// each element is located in the larger one by exponential search from
/// a monotonically advancing cursor.
///
/// Matches are emitted in increasing value order, exactly like the
/// merge kernel; only the comparison count differs. `O(s · log(b / s))`
/// comparisons for sizes `s ≤ b` — strictly better than the merge's
/// `O(s + b)` once the pair is skewed.
#[inline]
pub fn intersect_gallop_positions<F>(a: &[u32], b: &[u32], mut f: F)
where
    F: FnMut(usize, usize),
{
    if a.len() <= b.len() {
        gallop_driver(a, b, f);
    } else {
        gallop_driver(b, a, |j, i| f(i, j));
    }
}

/// Galloping core: iterates `small`, searches `big`. Reports positions
/// as `(pos_in_small, pos_in_big)`.
fn gallop_driver<F>(small: &[u32], big: &[u32], mut f: F)
where
    F: FnMut(usize, usize),
{
    let mut base = 0usize;
    for (i, &x) in small.iter().enumerate() {
        let rest = &big[base..];
        if rest.is_empty() {
            break;
        }
        // Exponential probe: grow `hi` until big[base + hi] >= x (or
        // the slice ends). After the loop, everything below `hi / 2`
        // is known `< x`, so the binary search runs on [hi/2, hi].
        let mut hi = 1usize;
        while hi < rest.len() && rest[hi] < x {
            hi <<= 1;
        }
        let lo = hi >> 1;
        let hi = (hi + 1).min(rest.len());
        let pos = lo + rest[lo..hi].partition_point(|&y| y < x);
        if pos < rest.len() && rest[pos] == x {
            f(i, base + pos);
            base += pos + 1;
        } else {
            base += pos;
        }
    }
}

/// A packed-`u64` membership bitset over a dense `u32` universe.
///
/// The probe side of the bitset intersection kernel: one word load and
/// a shift per candidate. `kcore_graph::dodg` builds one per hub
/// vertex (lazily) and reuses it across every intersection that hub
/// participates in.
#[derive(Debug, Clone)]
pub struct PackedBitset {
    words: Box<[u64]>,
}

impl PackedBitset {
    /// An empty bitset over `0..universe`.
    pub fn new(universe: usize) -> Self {
        Self { words: vec![0u64; universe.div_ceil(64)].into_boxed_slice() }
    }

    /// Builds the bitset of a sorted (or unsorted — order is
    /// irrelevant) list of members drawn from `0..universe`.
    pub fn from_members(members: &[u32], universe: usize) -> Self {
        let mut bits = Self::new(universe);
        for &x in members {
            bits.set(x);
        }
        bits
    }

    /// Inserts `x`.
    #[inline]
    pub fn set(&mut self, x: u32) {
        self.words[(x >> 6) as usize] |= 1u64 << (x & 63);
    }

    /// Membership probe.
    #[inline]
    pub fn contains(&self, x: u32) -> bool {
        (self.words[(x >> 6) as usize] >> (x & 63)) & 1 != 0
    }

    /// The packed words, little-endian within each `u64` — for
    /// rank/popcount structures layered on top (the hub maps resolve a
    /// member's position in the sorted source list from a per-word
    /// popcount prefix over exactly these words).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Calls `f(i)` for every `a[i]` contained in `bits`, in increasing
/// position order. The caller resolves the larger side's payload (edge
/// ids) through whatever map accompanies the bitset.
#[inline]
pub fn intersect_bitset_positions<F>(a: &[u32], bits: &PackedBitset, mut f: F)
where
    F: FnMut(usize),
{
    for (i, &x) in a.iter().enumerate() {
        if bits.contains(x) {
            f(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::intersect_sorted_positions;

    fn merge_pairs(a: &[u32], b: &[u32]) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        intersect_sorted_positions(a, b, |i, j| out.push((i, j)));
        out
    }

    fn gallop_pairs(a: &[u32], b: &[u32]) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        intersect_gallop_positions(a, b, |i, j| out.push((i, j)));
        out
    }

    #[test]
    fn gallop_matches_merge_both_orientations() {
        let a: Vec<u32> = (0..400).filter(|x| x % 3 == 0).collect();
        let b: Vec<u32> = (0..400).filter(|x| x % 7 == 0).collect();
        assert_eq!(gallop_pairs(&a, &b), merge_pairs(&a, &b));
        assert_eq!(gallop_pairs(&b, &a), merge_pairs(&b, &a));
        assert_eq!(gallop_pairs(&a, &[]), vec![]);
        assert_eq!(gallop_pairs(&[], &b), vec![]);
    }

    #[test]
    fn gallop_handles_extreme_skew() {
        // A tiny driver against a long run, hits at both ends.
        let small = [0u32, 999];
        let big: Vec<u32> = (0..1000).collect();
        assert_eq!(gallop_pairs(&small, &big), vec![(0, 0), (1, 999)]);
        // No hits at all.
        let odd: Vec<u32> = (0..1000).filter(|x| x % 2 == 1).collect();
        assert_eq!(gallop_pairs(&[0, 500, 998], &odd), vec![]);
    }

    #[test]
    fn gallop_matches_merge_on_adversarial_layouts() {
        // Clustered matches, then a gap, then matches again — exercises
        // cursor advancement past large skipped regions.
        let a: Vec<u32> = [0, 1, 2, 5000, 5001, 9999].to_vec();
        let b: Vec<u32> = (0..10_000).filter(|x| x % 2 == 0 || *x > 4990).collect();
        assert_eq!(gallop_pairs(&a, &b), merge_pairs(&a, &b));
    }

    #[test]
    fn bitset_probe_matches_merge() {
        let a: Vec<u32> = (0..500).filter(|x| x % 3 == 0).collect();
        let b: Vec<u32> = (0..500).filter(|x| x % 5 == 0).collect();
        let bits = PackedBitset::from_members(&b, 500);
        let mut hits = Vec::new();
        intersect_bitset_positions(&a, &bits, |i| hits.push(i));
        let want: Vec<usize> = merge_pairs(&a, &b).into_iter().map(|(i, _)| i).collect();
        assert_eq!(hits, want);
        assert!(bits.contains(495));
        assert!(!bits.contains(496));
    }

    #[test]
    fn bitset_word_boundaries() {
        let members = [0u32, 63, 64, 127, 128, 191];
        let bits = PackedBitset::from_members(&members, 192);
        for x in 0..192u32 {
            assert_eq!(bits.contains(x), members.contains(&x), "x = {x}");
        }
    }

    #[test]
    fn parse_accepts_all_tokens() {
        assert_eq!(TriKernel::parse("auto"), TriKernel::Auto);
        assert_eq!(TriKernel::parse(""), TriKernel::Auto);
        assert_eq!(TriKernel::parse(" merge "), TriKernel::Merge);
        assert_eq!(TriKernel::parse("gallop"), TriKernel::Gallop);
        assert_eq!(TriKernel::parse("bitset"), TriKernel::Bitset);
        for t in TriKernel::TOKENS {
            assert_eq!(TriKernel::parse(t).as_str(), t);
        }
    }

    #[test]
    #[should_panic(expected = "valid: auto, merge, gallop, bitset")]
    fn parse_rejects_unknown_tokens_listing_valid_ones() {
        let _ = TriKernel::parse("bitmap");
    }

    #[test]
    fn choose_respects_forced_policies() {
        for (policy, want) in [
            (TriKernel::Merge, ChosenKernel::Merge),
            (TriKernel::Gallop, ChosenKernel::Gallop),
            (TriKernel::Bitset, ChosenKernel::Bitset),
        ] {
            // Forced policies ignore the pair shape entirely.
            assert_eq!(choose(policy, 1, 1), want);
            assert_eq!(choose(policy, 10_000, 1), want);
        }
    }

    #[test]
    fn choose_auto_follows_the_size_ratio() {
        // Similar sizes: merge.
        assert_eq!(choose(TriKernel::Auto, 100, 150), ChosenKernel::Merge);
        // Skewed but the big side is below the hub floor: gallop.
        assert_eq!(choose(TriKernel::Auto, 4, BITSET_MIN_LEN - 1), ChosenKernel::Gallop);
        // Hub-sized big side with enough skew: bitset (symmetric in
        // argument order).
        assert_eq!(choose(TriKernel::Auto, 4, BITSET_MIN_LEN), ChosenKernel::Bitset);
        assert_eq!(choose(TriKernel::Auto, 1000, 4), ChosenKernel::Bitset);
        // Hub-sized but not skewed enough: merge.
        assert_eq!(choose(TriKernel::Auto, 200, 300), ChosenKernel::Merge);
        // Empty driver still resolves (small clamps to 1).
        assert_eq!(choose(TriKernel::Auto, 0, BITSET_MIN_LEN), ChosenKernel::Bitset);
    }
}
