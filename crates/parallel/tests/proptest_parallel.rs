//! Property-based tests for the parallel substrate: pack equals filter,
//! histogram equals a hash-map count, and the hash bag never loses or
//! invents elements under arbitrary insert/extract schedules.

use kcore_parallel::hashbag::HashBag;
use kcore_parallel::histogram::{histogram_atomic, histogram_sort};
use kcore_parallel::primitives::{exclusive_scan, pack, pack_index};
use proptest::prelude::*;
use rayon::prelude::*;
use std::collections::HashMap;

proptest! {
    #[test]
    fn pack_equals_sequential_filter(input in proptest::collection::vec(any::<u32>(), 0..8192),
                                     modulus in 1u32..16) {
        let got = pack(&input, |&x| x % modulus == 0);
        let want: Vec<u32> = input.iter().copied().filter(|&x| x % modulus == 0).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn pack_index_equals_sequential(n in 0usize..10_000, modulus in 1usize..16) {
        let got = pack_index(n, |i| i % modulus == 0);
        let want: Vec<u32> = (0..n).filter(|i| i % modulus == 0).map(|i| i as u32).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn scan_is_prefix_sum(counts in proptest::collection::vec(0usize..100, 0..512)) {
        let (prefix, total) = exclusive_scan(&counts);
        prop_assert_eq!(prefix.len(), counts.len());
        let mut acc = 0usize;
        for (p, c) in prefix.iter().zip(&counts) {
            prop_assert_eq!(*p, acc);
            acc += c;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn histograms_agree_with_reference(keys in proptest::collection::vec(0u32..500, 0..4096)) {
        let mut reference: HashMap<u32, u32> = HashMap::new();
        for &k in &keys {
            *reference.entry(k).or_default() += 1;
        }
        let mut want: Vec<(u32, u32)> = reference.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(histogram_sort(keys.clone()), want.clone());
        prop_assert_eq!(histogram_atomic(&keys, 500), want);
    }

    #[test]
    fn hashbag_preserves_multiset(values in proptest::collection::vec(0u32..1_000_000, 0..4096)) {
        let mut bag = HashBag::new(values.len());
        values.par_iter().for_each(|&v| bag.insert(v));
        let mut got = bag.extract_all();
        got.sort_unstable();
        let mut want = values.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn hashbag_round_robin_phases(batches in proptest::collection::vec(
        proptest::collection::vec(0u32..100_000, 0..512), 1..6))
    {
        // Multiple insert/extract phases against one bag: each phase must
        // return exactly its own batch.
        let cap = batches.iter().map(Vec::len).max().unwrap_or(1).max(1);
        let mut bag = HashBag::new(cap);
        for batch in &batches {
            batch.par_iter().for_each(|&v| bag.insert(v));
            let mut got = bag.extract_all();
            got.sort_unstable();
            let mut want = batch.clone();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
