//! The sequential Batagelj–Zaveršnik (BZ) peeling algorithm.
//!
//! BZ (2003) computes every coreness in `O(n + m)` time with a
//! bucket-sorted vertex array: process vertices in increasing order of
//! current degree; each processed vertex's degree is final (it equals
//! the coreness), and every higher-degree neighbor is decremented and
//! swapped one bucket down. This is the paper's sequential baseline
//! (Tab. 1) and the correctness oracle for every parallel variant in
//! this workspace.

use kcore_graph::CsrGraph;

/// Coreness of every vertex, computed sequentially.
pub fn bz_coreness(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut deg: Vec<u32> = g.degrees();
    let max_deg = deg.iter().copied().max().unwrap_or(0) as usize;

    // Bucket-sort vertices by degree. `bin[d]` is the start of the
    // degree-`d` block in `vert`; `pos[v]` is `v`'s index in `vert`.
    let mut bin = vec![0usize; max_deg + 1];
    for &d in &deg {
        bin[d as usize] += 1;
    }
    let mut start = 0usize;
    for b in bin.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut vert = vec![0u32; n];
    let mut pos = vec![0usize; n];
    for v in 0..n {
        let d = deg[v] as usize;
        pos[v] = bin[d];
        vert[bin[d]] = v as u32;
        bin[d] += 1;
    }
    // Undo the fill's advance so bin[d] is a block start again.
    for d in (1..=max_deg).rev() {
        bin[d] = bin[d - 1];
    }
    bin[0] = 0;

    for i in 0..n {
        let v = vert[i];
        for &u in g.neighbors(v) {
            let u = u as usize;
            if deg[u] > deg[v as usize] {
                // Swap u with the first vertex of its degree block,
                // then shrink the block: u moves one bucket down.
                let du = deg[u] as usize;
                let pu = pos[u];
                let pw = bin[du];
                let w = vert[pw] as usize;
                if u != w {
                    vert[pu] = w as u32;
                    vert[pw] = u as u32;
                    pos[u] = pw;
                    pos[w] = pu;
                }
                bin[du] += 1;
                deg[u] -= 1;
            }
        }
    }
    // Degrees are now frozen at peel time, i.e. the coreness.
    deg
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcore_graph::{gen, GraphBuilder};

    #[test]
    fn empty_and_isolated() {
        assert!(bz_coreness(&CsrGraph::empty()).is_empty());
        let g = GraphBuilder::new(4).build();
        assert_eq!(bz_coreness(&g), vec![0, 0, 0, 0]);
    }

    #[test]
    fn path_and_cycle() {
        assert_eq!(bz_coreness(&gen::path(5)), vec![1; 5]);
        assert_eq!(bz_coreness(&gen::cycle(6)), vec![2; 6]);
    }

    #[test]
    fn complete_graph_coreness_is_n_minus_1() {
        assert_eq!(bz_coreness(&gen::complete(7)), vec![6; 7]);
    }

    #[test]
    fn star_hub_and_leaves_are_all_1_core() {
        assert_eq!(bz_coreness(&gen::star(10)), vec![1; 10]);
    }

    #[test]
    fn complete_bipartite_coreness_is_min_side() {
        assert_eq!(bz_coreness(&gen::complete_bipartite(3, 8)), vec![3; 11]);
    }

    #[test]
    fn grid_is_a_2_core() {
        let c = bz_coreness(&gen::grid2d(10, 10));
        assert_eq!(c.iter().copied().max(), Some(2));
        // Corners start at degree 2 and the whole grid peels to 2.
        assert!(c.iter().all(|&x| (1..=2).contains(&x)));
    }

    #[test]
    fn hcns_has_one_vertex_per_coreness_level() {
        let kmax = 12u32;
        let c = bz_coreness(&gen::hcns(kmax as usize));
        // Clique members 0..=kmax all have coreness kmax.
        for (v, &cv) in c.iter().enumerate().take(kmax as usize + 1) {
            assert_eq!(cv, kmax, "clique vertex {v}");
        }
        // Chain vertex for level i has coreness exactly i.
        for i in 1..kmax as usize {
            assert_eq!(c[kmax as usize + 1 + i - 1], i as u32, "chain vertex for level {i}");
        }
    }

    #[test]
    fn triangle_with_tail() {
        // Triangle {0,1,2} plus a pendant 3: triangle is 2-core, tail 1.
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 2), (0, 2), (2, 3)]).build();
        assert_eq!(bz_coreness(&g), vec![2, 2, 2, 1]);
    }
}
