//! Decomposition configuration.

use kcore_buckets::BucketStrategy;

/// Configuration for a [`crate::PeelEngine`] run — shared by every
/// problem behind the [`crate::Decomposition`] builder.
///
/// The defaults reproduce the paper's final design: the adaptive
/// bucketing strategy (plain scanning until the θ-core, HBS beyond it)
/// with statistics collection on and the Sec. 4 techniques off.
/// Techniques that do not apply to a problem are ignored (sampling and
/// VGC assume unit incidences and are skipped for k-truss). Enable
/// the techniques through [`Config::techniques`]:
///
/// ```
/// use kcore::{Config, Decomposition, Techniques};
/// use kcore_graph::gen;
///
/// let g = gen::barabasi_albert(2000, 4, 7);
/// let config = Config { techniques: Techniques::all_online(), ..Config::default() };
/// let result = Decomposition::kcore(&g).exact_config(config).run();
/// assert!(result.stats().sampled_vertices > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// How per-round initial frontiers are produced (the third axis of
    /// the paper's Tab. 3 ablation).
    pub bucket_strategy: BucketStrategy,
    /// Round at which [`BucketStrategy::Adaptive`] switches from the
    /// flat active array to HBS (the paper's θ; Sec. 5.3). Ignored by
    /// the other strategies.
    pub adaptive_theta: u32,
    /// Whether to fill [`kcore_parallel::RunStats`] (rounds, subrounds,
    /// work, burdened span). Cheap relative to the peeling itself, so
    /// on by default; benchmarks can turn it off.
    pub collect_stats: bool,
    /// The paper's Sec. 4 practical techniques (sampling, vertical
    /// granularity control) and the online/offline driver choice.
    pub techniques: Techniques,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            bucket_strategy: BucketStrategy::Adaptive,
            adaptive_theta: 16,
            collect_stats: true,
            techniques: Techniques::default(),
        }
    }
}

impl Config {
    /// Config using a specific bucketing strategy, other fields default.
    pub fn with_strategy(strategy: BucketStrategy) -> Self {
        Self { bucket_strategy: strategy, ..Self::default() }
    }

    /// Config using a specific techniques block, other fields default.
    pub fn with_techniques(techniques: Techniques) -> Self {
        Self { techniques, ..Self::default() }
    }

    /// Applies the `KCORE_TECHNIQUES` environment override, if set.
    ///
    /// The variable holds a comma-separated subset of `sampling`, `vgc`,
    /// `offline`, or the shorthand `all` (= `sampling,vgc`). CI uses it
    /// to force the techniques subsystem on for the whole test suite, so
    /// the default-off configuration cannot silently rot. Overrides only
    /// ever *enable* features (with their default parameters); an unset
    /// or empty variable leaves the config untouched.
    pub fn apply_env_overrides(self) -> Self {
        self.apply_env_overrides_filtered(&["sampling", "vgc", "offline"])
    }

    /// Applies the `KCORE_TECHNIQUES` environment override restricted
    /// to `supported` tokens; known-but-unsupported tokens are dropped,
    /// unknown tokens still panic.
    ///
    /// This is the env-override entry for problem facades whose axes
    /// reject some techniques outright ([`crate::ApproxDensest`],
    /// [`crate::KhCore`]): the engine panics on an *explicitly*
    /// configured sampling/offline block under threshold rounds or
    /// recompute incidences, but a CI matrix leg forcing
    /// `KCORE_TECHNIQUES=offline` over the whole suite is a blanket
    /// request, not a per-problem one — those facades honor the tokens
    /// that apply to them and drop the rest, so the forced legs still
    /// exercise every problem instead of tripping the combination
    /// guard.
    pub fn apply_env_overrides_filtered(self, supported: &[&str]) -> Self {
        match std::env::var("KCORE_TECHNIQUES") {
            Ok(spec) => self.apply_techniques_spec_filtered(&spec, supported),
            Err(_) => self,
        }
    }

    /// Applies a `KCORE_TECHNIQUES`-style spec string (see
    /// [`Config::apply_env_overrides`]). Split out so the parsing is
    /// testable without mutating process environment.
    ///
    /// # Panics
    ///
    /// Panics on unknown tokens — a misspelled CI override should fail
    /// loudly, not silently run the baseline.
    pub fn apply_techniques_spec(self, spec: &str) -> Self {
        self.apply_techniques_spec_filtered(spec, &["sampling", "vgc", "offline"])
    }

    /// Spec application restricted to `supported` tokens (the testable
    /// core of [`Config::apply_env_overrides_filtered`]). The `all`
    /// shorthand expands to `sampling,vgc` first and each component is
    /// filtered individually.
    ///
    /// # Panics
    ///
    /// Panics on unknown tokens, exactly like
    /// [`Config::apply_techniques_spec`].
    pub fn apply_techniques_spec_filtered(mut self, spec: &str, supported: &[&str]) -> Self {
        let on = |name: &str| supported.contains(&name);
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match token {
                "sampling" if on("sampling") => {
                    self.techniques.sampling.get_or_insert_with(Sampling::default);
                }
                "vgc" if on("vgc") => {
                    self.techniques.vgc.get_or_insert_with(Vgc::default);
                }
                "offline" if on("offline") => {
                    self.techniques.mode = PeelMode::Offline(Offline::default());
                }
                "all" => {
                    if on("sampling") {
                        self.techniques.sampling.get_or_insert_with(Sampling::default);
                    }
                    if on("vgc") {
                        self.techniques.vgc.get_or_insert_with(Vgc::default);
                    }
                }
                // Known token, filtered out for this problem's axes.
                "sampling" | "vgc" | "offline" => {}
                other => panic!(
                    "KCORE_TECHNIQUES: unknown token {other:?} \
                     (valid: sampling, vgc, offline, all)"
                ),
            }
        }
        self
    }
}

/// The Sec. 4 techniques block: which practical refinements the peeling
/// framework runs with. Everything defaults to *off*, which is the plain
/// framework of Alg. 1; [`Techniques::all_online`] is the paper's full
/// online design.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Techniques {
    /// Sec. 4.1: approximate induced-degree tracking on high-degree
    /// vertices via edge sampling, with exact recounts at peel decisions.
    pub sampling: Option<Sampling>,
    /// Sec. 4.2: vertical granularity control — collapse hash-bag
    /// subrounds by chasing local peel chains sequentially.
    pub vgc: Option<Vgc>,
    /// Online (hash-bag subrounds) or offline (Julienne-style histogram)
    /// peeling driver.
    pub mode: PeelMode,
}

impl Techniques {
    /// Sampling + VGC with default parameters, online driver — the
    /// paper's full practical design.
    pub fn all_online() -> Self {
        Self {
            sampling: Some(Sampling::default()),
            vgc: Some(Vgc::default()),
            mode: PeelMode::Online,
        }
    }

    /// Offline histogram peeling with default parameters (sampling and
    /// VGC are online-only and stay off).
    pub fn offline() -> Self {
        Self { sampling: None, vgc: None, mode: PeelMode::Offline(Offline::default()) }
    }
}

/// Which peeling driver executes the rounds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PeelMode {
    /// Alg. 1: atomic clamped decrements + hash-bag subrounds.
    #[default]
    Online,
    /// Julienne-style offline peeling: per subround, gather the
    /// frontier's neighborhood, histogram it, and apply bulk decrements
    /// — no per-edge atomics, more global synchronizations.
    Offline(Offline),
}

/// Parameters of the sampling scheme (Sec. 4.1).
///
/// A vertex whose initial degree is at least [`Sampling::threshold`]
/// enters *sample mode*: instead of an exact induced degree maintained
/// by per-edge atomic decrements (the contention hotspot), it tracks the
/// count of *sampled* incident edges — each edge is in the sample with
/// probability `2^-rate_log2`, decided by a deterministic hash of the
/// endpoints and [`Sampling::seed`]. Removals of sampled edges decrement
/// the counter (clamped at zero); when the counter crosses a watermark
/// near the current round, the vertex is exactly re-counted
/// ([`kcore_parallel::RunStats::resamples`]). A vertex in sample mode is
/// only ever peeled after an exact recount confirms its induced degree,
/// and an undershoot discovered in a round's initial frontier (the
/// vertex should have been peeled earlier — the frontier is *polluted*)
/// triggers a Las-Vegas restart without sampling
/// ([`kcore_parallel::RunStats::restarts`], expected 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sampling {
    /// Minimum initial degree for a vertex to enter sample mode.
    pub threshold: u32,
    /// Sampling rate exponent: each edge is sampled with probability
    /// `2^-rate_log2`.
    pub rate_log2: u32,
    /// Additive slack on the recount watermarks. Larger slack means
    /// earlier recounts (more exact work, smaller failure probability).
    pub slack: u32,
    /// End-of-round validation policy.
    pub validation: Validation,
    /// Seed of the deterministic edge-sampling hash.
    pub seed: u64,
}

impl Default for Sampling {
    fn default() -> Self {
        Self {
            threshold: 128,
            rate_log2: 2,
            slack: 32,
            validation: Validation::Full,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl Sampling {
    /// Sampling with a degree threshold of `threshold`, other parameters
    /// default. Tests use low thresholds to force sample mode on small
    /// graphs.
    pub fn with_threshold(threshold: u32) -> Self {
        Self { threshold, ..Self::default() }
    }
}

/// How sample-mode vertices are validated at the end of each round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Validation {
    /// Exactly re-count **every** live sample-mode vertex when a round's
    /// frontier drains. Deterministically exact (the round-start
    /// invariant "every live vertex has induced degree > k" is verified
    /// outright), at `O(Σ d(v))` extra work over sampled vertices per
    /// round. The default, and the mode the oracle test matrix runs.
    #[default]
    Full,
    /// Re-count only vertices whose sampled counter sits below the
    /// validation watermark — the paper's fast path. Correct with high
    /// probability; a miss that surfaces in a later round's frontier is
    /// caught by the frontier recount and repaired by a Las-Vegas
    /// restart with sampling disabled.
    Watermark,
}

/// Parameters of vertical granularity control (Sec. 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vgc {
    /// Maximum number of vertices one worker chases sequentially within
    /// a subround before spilling back to the hash bag. Bounds the
    /// per-subround chain term of the burdened span
    /// (`Õ(ρ′(ω + L))`, Tab. 2).
    pub chain_limit: u32,
}

impl Default for Vgc {
    fn default() -> Self {
        Self { chain_limit: 128 }
    }
}

/// Parameters of the offline (Julienne-style) driver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Offline {
    /// Which histogram implementation counts the gathered neighborhood.
    pub histogram: HistogramKind,
}

/// Histogram implementation selector for offline peeling (see
/// [`kcore_parallel::histogram`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum HistogramKind {
    /// Pick per subround: atomic counting when the gathered list is
    /// dense relative to the vertex set, sort + run-length encode
    /// otherwise.
    #[default]
    Auto,
    /// Always parallel sort + run-length encode (`O(t log t)` work).
    Sort,
    /// Always atomic counting into a vertex-indexed array
    /// (`O(t + n)` work).
    Atomic,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_papers_final_design() {
        let c = Config::default();
        assert_eq!(c.bucket_strategy, BucketStrategy::Adaptive);
        assert_eq!(c.adaptive_theta, 16);
        assert!(c.collect_stats);
        // Techniques are opt-in: the default config is the plain
        // framework (the ablation baseline).
        assert_eq!(c.techniques, Techniques::default());
        assert!(c.techniques.sampling.is_none());
        assert!(c.techniques.vgc.is_none());
        assert_eq!(c.techniques.mode, PeelMode::Online);
    }

    #[test]
    fn with_strategy_overrides_only_the_strategy() {
        let c = Config::with_strategy(BucketStrategy::Fixed(16));
        assert_eq!(c.bucket_strategy, BucketStrategy::Fixed(16));
        assert_eq!(c.adaptive_theta, Config::default().adaptive_theta);
    }

    #[test]
    fn all_online_enables_sampling_and_vgc() {
        let t = Techniques::all_online();
        assert!(t.sampling.is_some());
        assert!(t.vgc.is_some());
        assert_eq!(t.mode, PeelMode::Online);
        assert_eq!(t.sampling.unwrap().validation, Validation::Full);
    }

    #[test]
    fn offline_preset_selects_the_offline_driver() {
        let t = Techniques::offline();
        assert!(matches!(t.mode, PeelMode::Offline(_)));
        assert!(t.sampling.is_none());
    }

    #[test]
    fn with_techniques_overrides_only_techniques() {
        let c = Config::with_techniques(Techniques::offline());
        assert!(matches!(c.techniques.mode, PeelMode::Offline(_)));
        assert_eq!(c.bucket_strategy, Config::default().bucket_strategy);
    }

    #[test]
    fn techniques_spec_enables_features() {
        let c = Config::default().apply_techniques_spec("sampling,vgc");
        assert!(c.techniques.sampling.is_some());
        assert!(c.techniques.vgc.is_some());
        assert_eq!(c.techniques.mode, PeelMode::Online);

        let c = Config::default().apply_techniques_spec("all,offline");
        assert!(c.techniques.sampling.is_some());
        assert!(c.techniques.vgc.is_some());
        assert!(matches!(c.techniques.mode, PeelMode::Offline(_)));

        // Empty spec and stray separators are no-ops.
        assert_eq!(Config::default().apply_techniques_spec(" , "), Config::default());
    }

    #[test]
    fn techniques_spec_does_not_downgrade_explicit_settings() {
        // A config that already enables sampling with custom parameters
        // keeps them; the spec only fills gaps.
        let custom = Sampling::with_threshold(7);
        let base =
            Config::with_techniques(Techniques { sampling: Some(custom), ..Techniques::default() });
        let c = base.apply_techniques_spec("sampling,vgc");
        assert_eq!(c.techniques.sampling, Some(custom));
        assert!(c.techniques.vgc.is_some());
    }

    #[test]
    #[should_panic(expected = "unknown token")]
    fn techniques_spec_rejects_typos() {
        let _ = Config::default().apply_techniques_spec("samplign");
    }

    #[test]
    fn filtered_spec_drops_unsupported_tokens() {
        let c = Config::default().apply_techniques_spec_filtered("sampling,vgc,offline", &["vgc"]);
        assert!(c.techniques.sampling.is_none(), "sampling filtered out");
        assert!(c.techniques.vgc.is_some(), "vgc passes the filter");
        assert_eq!(c.techniques.mode, PeelMode::Online, "offline filtered out");
        // The `all` shorthand filters per component.
        let c = Config::default().apply_techniques_spec_filtered("all", &["vgc"]);
        assert!(c.techniques.sampling.is_none());
        assert!(c.techniques.vgc.is_some());
    }

    #[test]
    #[should_panic(expected = "unknown token")]
    fn filtered_spec_still_rejects_typos() {
        let _ = Config::default().apply_techniques_spec_filtered("offlien", &["vgc"]);
    }
}
