//! Decomposition configuration.

use kcore_buckets::BucketStrategy;

/// Configuration for a [`crate::KCore`] run.
///
/// The defaults reproduce the paper's final design: the adaptive
/// bucketing strategy (plain scanning until the θ-core, HBS beyond it)
/// with statistics collection on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// How per-round initial frontiers are produced (the third axis of
    /// the paper's Tab. 3 ablation).
    pub bucket_strategy: BucketStrategy,
    /// Round at which [`BucketStrategy::Adaptive`] switches from the
    /// flat active array to HBS (the paper's θ; Sec. 5.3). Ignored by
    /// the other strategies.
    pub adaptive_theta: u32,
    /// Whether to fill [`kcore_parallel::RunStats`] (rounds, subrounds,
    /// work, burdened span). Cheap relative to the peeling itself, so
    /// on by default; benchmarks can turn it off.
    pub collect_stats: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self { bucket_strategy: BucketStrategy::Adaptive, adaptive_theta: 16, collect_stats: true }
    }
}

impl Config {
    /// Config using a specific bucketing strategy, other fields default.
    pub fn with_strategy(strategy: BucketStrategy) -> Self {
        Self { bucket_strategy: strategy, ..Self::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_papers_final_design() {
        let c = Config::default();
        assert_eq!(c.bucket_strategy, BucketStrategy::Adaptive);
        assert_eq!(c.adaptive_theta, 16);
        assert!(c.collect_stats);
    }

    #[test]
    fn with_strategy_overrides_only_the_strategy() {
        let c = Config::with_strategy(BucketStrategy::Fixed(16));
        assert_eq!(c.bucket_strategy, BucketStrategy::Fixed(16));
        assert_eq!(c.adaptive_theta, Config::default().adaptive_theta);
    }
}
