//! k-truss decomposition as a [`PeelProblem`] — *edge* peeling, the
//! workload that forces the engine beyond unit incidences.
//!
//! The **k-truss** of a graph is the maximal subgraph in which every
//! edge participates in at least `k - 2` triangles (within the
//! subgraph); an edge's **trussness** is the largest `k` for which it
//! belongs to the k-truss. Peeling computes it exactly like coreness:
//! elements are undirected edges ([`kcore_graph::EdgeIndex`] provides
//! the dense id space), the initial priority is the edge's triangle
//! support, and round `r` peels every edge whose surviving support is
//! `r` — its trussness is `r + 2`.
//!
//! Setup (edge ids + supports) comes from the fused
//! [`TriangleCtx`] build over the degree-ordered orientation, whose
//! discovery sweep dispatches the hybrid intersection kernels
//! (`KCORE_TRI_KERNEL`). Per-death triangle enumeration walks the
//! context's cached companion lists when materialized and re-derives
//! them through the kernels otherwise; every kernel enumerates
//! identically, so the decomposition is kernel-independent bit for
//! bit. A context built once can be supplied via
//! [`crate::Decomposition::with_ctx`], dropping setup out of the
//! peel's critical path.
//!
//! The decrement rule is *not* a unit incidence: when edge `e` dies,
//! the two other edges of each triangle through `e` lose one support
//! unit — but only if that triangle was still alive, and a triangle
//! losing several edges in the same subround must be charged to the
//! survivors exactly once. This is exactly the [`SnapshotRule`]
//! contract: the engine settles the whole frontier, globally
//! synchronizes, and then evaluates the rule against the frozen
//! [`SettleView`]:
//!
//! * any triangle edge settled in an *earlier* subround already charged
//!   this triangle when it died — skip;
//! * both other edges settling *now* ([`ElementState::Peer`]): no
//!   survivor to charge;
//! * one peer, one survivor: the dying pair `{e, peer}` would both see
//!   the triangle, so only the smaller edge id emits the decrement;
//! * two survivors: `e` is the only death — charge both.
//!
//! Because the snapshot is identical for every worker, the emitted
//! multiset — and therefore the whole decomposition — is deterministic.

use crate::peel::engine::{
    ElementState, Incidence, PeelEngine, PeelProblem, SettleView, SnapshotRule,
};
use crate::Config;
use kcore_graph::triangles::for_each_triangle_of_edge;
use kcore_graph::{CsrGraph, EdgeIndex, TriangleCtx};
use kcore_parallel::RunStats;

/// The k-truss decomposition problem over one graph.
struct KTrussProblem<'g> {
    g: &'g CsrGraph,
    ctx: &'g TriangleCtx,
}

impl PeelProblem for KTrussProblem<'_> {
    type Output = (Vec<u32>, RunStats);

    fn name(&self) -> &'static str {
        "k-truss"
    }

    fn num_elements(&self) -> usize {
        self.ctx.num_edges()
    }

    fn init_priorities(&self) -> Vec<u32> {
        self.ctx.supports().to_vec()
    }

    fn incidence(&self) -> Incidence<'_> {
        Incidence::Snapshot(self)
    }

    fn assemble(&self, rounds: Vec<u32>, stats: RunStats) -> Self::Output {
        (rounds, stats)
    }
}

impl SnapshotRule for KTrussProblem<'_> {
    fn for_each_decrement(
        &self,
        e: u32,
        _k: u32,
        view: &SettleView<'_>,
        emit: &mut dyn FnMut(u32),
    ) {
        let mut consider = |fe: u32, ge: u32| match (view.state(fe), view.state(ge)) {
            // Triangle already destroyed by an earlier death, which
            // charged the survivors then.
            (ElementState::Dead, _) | (_, ElementState::Dead) => {}
            // All three edges die this subround: no survivor.
            (ElementState::Peer, ElementState::Peer) => {}
            // {e, fe} die together; the smaller id charges ge.
            (ElementState::Peer, ElementState::Alive) => {
                if e < fe {
                    emit(ge);
                }
            }
            // {e, ge} die together; the smaller id charges fe.
            (ElementState::Alive, ElementState::Peer) => {
                if e < ge {
                    emit(fe);
                }
            }
            // e is the only death: both survivors lose the triangle.
            (ElementState::Alive, ElementState::Alive) => {
                emit(fe);
                emit(ge);
            }
        };
        // The rule is order-insensitive over e's triangle set, so the
        // cached flat list and the kernel enumeration are equivalent;
        // the cache keeps re-intersection off the peel's critical path.
        if let Some(triangles) = self.ctx.edge_triangles(e) {
            for &[fe, ge] in triangles {
                consider(fe, ge);
            }
        } else {
            self.ctx.for_each_triangle_of_edge(self.g, e, |fe, ge, _w| consider(fe, ge));
        }
    }
}

/// The parallel k-truss decomposition framework.
///
/// Runs on the same [`PeelEngine`] (and accepts the same [`Config`]) as
/// [`crate::KCore`]: all four bucket strategies and the offline
/// histogram driver apply. Sampling and VGC are unit-incidence
/// techniques and are ignored for edge peeling.
#[derive(Debug, Clone, Default)]
pub struct KTruss {
    config: Config,
}

/// Runs the k-truss decomposition with `config` exactly as given — the
/// shared core behind [`crate::Decomposition::ktruss`]. Builds the
/// fused triangle setup itself; callers that already hold a
/// [`TriangleCtx`] use [`run_ktruss_with_ctx`].
pub(crate) fn run_ktruss(g: &CsrGraph, config: Config) -> TrussnessResult {
    run_ktruss_with_ctx(g, &TriangleCtx::build(g), config)
}

/// Runs the k-truss peel over a pre-built triangle setup, keeping the
/// orientation/supports build out of the measured critical path.
pub(crate) fn run_ktruss_with_ctx(
    g: &CsrGraph,
    ctx: &TriangleCtx,
    config: Config,
) -> TrussnessResult {
    let problem = KTrussProblem { g, ctx };
    let (rounds, stats) = PeelEngine::new(&problem, config).run();
    let trussness = rounds.into_iter().map(|r| r + 2).collect();
    TrussnessResult { index: ctx.edge_index().clone(), trussness, stats }
}

impl KTruss {
    /// Creates the framework with the given configuration, after
    /// applying the `KCORE_TECHNIQUES` environment override.
    #[deprecated(since = "0.2.0", note = "use `Decomposition::ktruss(&g).config(c).run()`")]
    pub fn new(config: Config) -> Self {
        Self { config: config.apply_env_overrides() }
    }

    /// Creates the framework with `config` exactly as given (see
    /// [`crate::Decomposition::exact_config`]).
    #[deprecated(since = "0.2.0", note = "use `Decomposition::ktruss(&g).exact_config(c).run()`")]
    pub fn with_exact_config(config: Config) -> Self {
        Self { config }
    }

    /// The configuration this instance runs with.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Decomposes `g`, returning every edge's trussness.
    pub fn run(&self, g: &CsrGraph) -> TrussnessResult {
        run_ktruss(g, self.config)
    }
}

/// The result of a k-truss decomposition: per-edge trussness (indexed
/// by [`EdgeIndex`] edge id) plus the run's instrumentation counters.
#[derive(Debug, Clone)]
pub struct TrussnessResult {
    index: EdgeIndex,
    trussness: Vec<u32>,
    stats: RunStats,
}

impl TrussnessResult {
    /// Trussness of every edge, indexed by edge id. Edges in no
    /// triangle have trussness 2 (every edge is trivially a 2-truss).
    pub fn trussness(&self) -> &[u32] {
        &self.trussness
    }

    /// The edge-id space the trussness array is indexed by.
    pub fn edge_index(&self) -> &EdgeIndex {
        &self.index
    }

    /// Number of edges decomposed.
    pub fn num_edges(&self) -> usize {
        self.trussness.len()
    }

    /// The largest trussness of any edge (0 for an edgeless graph).
    pub fn max_trussness(&self) -> u32 {
        self.trussness.iter().copied().max().unwrap_or(0)
    }

    /// Iterator over `((u, v), trussness)` for every edge.
    pub fn edges(&self) -> impl Iterator<Item = ((u32, u32), u32)> + '_ {
        self.trussness.iter().enumerate().map(|(e, &t)| (self.index.endpoints(e as u32), t))
    }

    /// Run counters (rounds, subrounds, work, burdened span, ...).
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }
}

impl crate::result::DecompositionResult for TrussnessResult {
    fn num_elements(&self) -> usize {
        self.trussness.len()
    }

    fn stats(&self) -> &RunStats {
        &self.stats
    }
}

/// Sequential triangle-recount peeler: the k-truss oracle.
///
/// Maintains no incremental support state at all — every peel decision
/// re-counts the candidate edge's surviving triangles from the alive
/// set, so a bookkeeping bug in the parallel rule cannot be mirrored
/// here. Quadratic-ish (`O(m)` recounts per removal); use on test-sized
/// graphs only.
pub fn sequential_trussness(g: &CsrGraph) -> Vec<u32> {
    let idx = EdgeIndex::build(g);
    let m = idx.num_edges();
    let mut alive = vec![true; m];
    let mut trussness = vec![0u32; m];
    let recount = |e: u32, alive: &[bool]| -> u32 {
        let mut support = 0u32;
        for_each_triangle_of_edge(g, &idx, e, |fe, ge, _w| {
            if alive[fe as usize] && alive[ge as usize] {
                support += 1;
            }
        });
        support
    };
    let mut removed = 0usize;
    let mut k = 0u32;
    while removed < m {
        // Remove, one at a time, any alive edge whose recounted support
        // is <= k; when none remains, advance the round.
        'peel: loop {
            for e in 0..m as u32 {
                if alive[e as usize] && recount(e, &alive) <= k {
                    alive[e as usize] = false;
                    trussness[e as usize] = k + 2;
                    removed += 1;
                    continue 'peel;
                }
            }
            break;
        }
        k += 1;
    }
    trussness
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the shim facades stay covered until removal

    use super::*;
    use crate::config::Techniques;
    use kcore_buckets::BucketStrategy;
    use kcore_graph::{gen, GraphBuilder};

    fn all_configs() -> Vec<Config> {
        let mut out = Vec::new();
        for strategy in [
            BucketStrategy::Single,
            BucketStrategy::Fixed(16),
            BucketStrategy::Hierarchical,
            BucketStrategy::Adaptive,
        ] {
            for techniques in [Techniques::default(), Techniques::offline()] {
                out.push(Config { bucket_strategy: strategy, techniques, ..Config::default() });
            }
        }
        out
    }

    fn assert_matches_oracle(g: &CsrGraph, label: &str) {
        let want = sequential_trussness(g);
        for config in all_configs() {
            let got = KTruss::with_exact_config(config).run(g);
            assert_eq!(
                got.trussness(),
                want.as_slice(),
                "{label}: {} + {:?} disagrees with the recount oracle",
                config.bucket_strategy,
                config.techniques.mode
            );
        }
    }

    #[test]
    fn empty_and_edgeless() {
        let r = KTruss::new(Config::default()).run(&CsrGraph::empty());
        assert_eq!(r.num_edges(), 0);
        assert_eq!(r.max_trussness(), 0);
        let r = KTruss::new(Config::default()).run(&GraphBuilder::new(5).build());
        assert_eq!(r.num_edges(), 0);
    }

    #[test]
    fn triangle_free_graphs_are_all_twos() {
        for g in [gen::path(30), gen::star(20), gen::complete_bipartite(4, 6)] {
            let r = KTruss::new(Config::default()).run(&g);
            assert!(r.trussness().iter().all(|&t| t == 2), "no triangles => trussness 2");
        }
    }

    #[test]
    fn complete_graph_trussness_is_n() {
        // Every edge of K_n sits in n-2 triangles and the whole clique
        // peels in one round: trussness n for every edge.
        for n in [3usize, 5, 8] {
            let r = KTruss::new(Config::default()).run(&gen::complete(n));
            assert!(r.trussness().iter().all(|&t| t as usize == n), "K{n}");
            assert_eq!(r.max_trussness() as usize, n);
        }
    }

    #[test]
    fn two_triangles_sharing_an_edge() {
        // 0-1 shared by triangles {0,1,2} and {0,1,3}: the shared edge
        // has support 2, the outer edges support 1. All peel at round 1
        // (removing any outer edge drops the rest), trussness 3.
        let g = GraphBuilder::new(4).edges([(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)]).build();
        let r = KTruss::new(Config::default()).run(&g);
        assert_eq!(r.trussness(), sequential_trussness(&g).as_slice());
        assert!(r.trussness().iter().all(|&t| t == 3));
    }

    #[test]
    fn generator_families_match_oracle() {
        assert_matches_oracle(&gen::complete(7), "K7");
        assert_matches_oracle(&gen::planted_core(60, 2, 12, 3), "planted_core");
        assert_matches_oracle(&gen::barabasi_albert(80, 3, 7), "barabasi_albert");
        assert_matches_oracle(&gen::rmat(6, 6, 0.57, 0.19, 0.19, 1), "rmat");
        assert_matches_oracle(&gen::grid2d(6, 7), "grid2d");
        assert_matches_oracle(&gen::mesh(7, 7), "mesh");
        assert_matches_oracle(&gen::hcns(8), "hcns");
    }

    #[test]
    fn truss_is_deterministic() {
        let g = gen::barabasi_albert(150, 4, 2);
        let a = KTruss::new(Config::default()).run(&g);
        let b = KTruss::new(Config::default()).run(&g);
        assert_eq!(a.trussness(), b.trussness());
    }

    #[test]
    fn trussness_satisfies_the_truss_property() {
        // Within the subgraph of edges with trussness >= t(e), edge e
        // must sit in >= t(e) - 2 triangles.
        let g = gen::planted_core(80, 2, 15, 5);
        let r = KTruss::new(Config::default()).run(&g);
        let idx = r.edge_index();
        for e in 0..r.num_edges() as u32 {
            let t = r.trussness()[e as usize];
            let mut within = 0u32;
            for_each_triangle_of_edge(&g, idx, e, |fe, ge, _w| {
                if r.trussness()[fe as usize] >= t && r.trussness()[ge as usize] >= t {
                    within += 1;
                }
            });
            assert!(within >= t - 2, "edge {e} has only {within} triangles in its own {t}-truss");
        }
    }

    #[test]
    fn sampling_and_vgc_requests_are_ignored_for_edge_peeling() {
        // Unit-incidence techniques cannot apply to the snapshot rule;
        // forcing them on must not change the output (this is what the
        // KCORE_TECHNIQUES=sampling,vgc CI leg exercises).
        let g = gen::planted_core(60, 2, 12, 3);
        let want = KTruss::with_exact_config(Config::default()).run(&g);
        let forced = Config::default().apply_techniques_spec("sampling,vgc");
        let got = KTruss::with_exact_config(forced).run(&g);
        assert_eq!(got.trussness(), want.trussness());
        assert_eq!(got.stats().sampled_vertices, 0);
        assert_eq!(got.stats().resamples, 0);
    }

    #[test]
    fn two_phase_subrounds_charge_two_syncs() {
        let g = gen::planted_core(60, 2, 12, 3);
        let r = KTruss::with_exact_config(Config::default()).run(&g);
        let s = r.stats();
        assert!(s.subrounds > 0);
        assert_eq!(s.global_syncs, 2 * s.subrounds, "settle + rule phases");
    }
}
