//! Greedy densest subgraph as a [`PeelProblem`] — min-degree peeling
//! with running density tracking, a 2-approximation.
//!
//! Charikar's greedy algorithm repeatedly removes a minimum-degree
//! vertex and returns the densest suffix of the removal order; the
//! densest of those suffixes has density at least `ρ* / 2` (half the
//! optimum). The engine's round structure *is* a min-degree greedy
//! order — every vertex is settled while its induced degree equals the
//! current minimum — and the suffix standing at the start of round `k`
//! is exactly the k-core. So the parallel formulation is: peel as for
//! k-core, track the density of each round's standing subgraph, and
//! return the best core.
//!
//! The approximation argument survives the coarser (per-round)
//! checkpoints: consider an optimal subgraph `S*` with density `ρ*`,
//! and the first round `k` in which some vertex of `S*` settles. All of
//! `S*` is still standing at that round's start, so the settling vertex
//! has induced degree `>= ρ*`, hence `k >= ρ*`; the standing subgraph
//! (the k-core) has minimum degree `>= k`, and a graph with minimum
//! degree `δ` has density `>= δ/2`. Therefore
//! `max_k density(k-core) >= ρ*/2`.
//!
//! The density curve is assembled from the peel's output in one
//! `O(n + m + k_max)` post-pass: a vertex stands in round `k`'s
//! subgraph iff its coreness is `>= k`, and an edge survives iff the
//! smaller endpoint coreness is `>= k` — suffix sums over two
//! histograms give `(n_k, m_k)` for every round at once, which is the
//! running density the greedy tracks, at round granularity.

use crate::peel::engine::{Incidence, PeelEngine, PeelProblem};
use crate::Config;
use kcore_graph::{env_backend, BackendKind, CompressedCsr, CsrGraph, GraphBackend};
use kcore_parallel::RunStats;

/// The greedy densest-subgraph problem over one graph, generic over
/// the adjacency backend.
struct DensestProblem<'g, G = CsrGraph> {
    g: &'g G,
}

impl<G: GraphBackend> PeelProblem for DensestProblem<'_, G> {
    type Output = DensestResult;

    fn name(&self) -> &'static str {
        "densest-subgraph"
    }

    fn num_elements(&self) -> usize {
        self.g.num_vertices()
    }

    fn init_priorities(&self) -> Vec<u32> {
        self.g.degrees()
    }

    fn incidence(&self) -> Incidence<'_> {
        Incidence::Unit(self.g)
    }

    fn assemble(&self, rounds: Vec<u32>, stats: RunStats) -> DensestResult {
        // rounds[v] is v's coreness. Count, per round k, the standing
        // vertices (coreness >= k) and surviving edges (both endpoint
        // corenesses >= k) by suffix-summing histograms.
        let coreness = rounds;
        let kmax = coreness.iter().copied().max().unwrap_or(0) as usize;
        let mut n_hist = vec![0u64; kmax + 2];
        for &c in &coreness {
            n_hist[c as usize] += 1;
        }
        let mut m_hist = vec![0u64; kmax + 2];
        self.g.for_each_edge(&mut |u, v| {
            let lvl = coreness[u as usize].min(coreness[v as usize]) as usize;
            m_hist[lvl] += 1;
        });
        // Suffix sums: n_at[k] / m_at[k] = standing counts at round k.
        let (mut n_at, mut m_at) = (0u64, 0u64);
        let mut densities = vec![0f64; kmax + 1];
        let mut best_k = 0u32;
        let mut best = f64::NEG_INFINITY;
        for k in (0..=kmax).rev() {
            n_at += n_hist[k];
            m_at += m_hist[k];
            let d = if n_at == 0 { 0.0 } else { m_at as f64 / n_at as f64 };
            densities[k] = d;
            // `>=` while walking k downward: ties resolve to the
            // smallest k, i.e. the largest among equally dense cores.
            if d >= best {
                best = d;
                best_k = k as u32;
            }
        }
        let membership = coreness.iter().map(|&c| c >= best_k).collect();
        DensestResult { coreness, densities, membership, best_k, stats }
    }
}

/// Greedy densest-subgraph extraction on the peel engine.
///
/// Same [`Config`] surface as [`crate::KCore`] — bucket strategies,
/// sampling, VGC, and the offline driver all apply, since the peel
/// itself is plain min-degree (unit-incidence) peeling.
#[derive(Debug, Clone, Default)]
pub struct DensestSubgraph {
    config: Config,
}

/// Runs greedy densest-subgraph extraction over exactly the backend
/// given — no environment override.
pub(crate) fn run_densest_on<G: GraphBackend>(g: &G, config: Config) -> DensestResult {
    PeelEngine::new(&DensestProblem { g }, config).run()
}

/// Runs greedy densest-subgraph extraction with `config` exactly as
/// given — the shared core behind [`crate::Decomposition::densest`].
/// A plain-CSR graph is re-encoded through the `KCORE_BACKEND`-forced
/// backend first; any other backend runs as-is.
pub(crate) fn run_densest<G: GraphBackend>(g: &G, config: Config) -> DensestResult {
    if env_backend() == BackendKind::Compressed {
        if let Some(plain) = g.as_plain() {
            return run_densest_on(&CompressedCsr::from_graph(plain), config);
        }
    }
    run_densest_on(g, config)
}

impl DensestSubgraph {
    /// Creates the framework with the given configuration, after
    /// applying the `KCORE_TECHNIQUES` environment override.
    #[deprecated(since = "0.2.0", note = "use `Decomposition::densest(&g).config(c).run()`")]
    pub fn new(config: Config) -> Self {
        Self { config: config.apply_env_overrides() }
    }

    /// Creates the framework with `config` exactly as given (see
    /// [`crate::Decomposition::exact_config`]).
    #[deprecated(since = "0.2.0", note = "use `Decomposition::densest(&g).exact_config(c).run()`")]
    pub fn with_exact_config(config: Config) -> Self {
        Self { config }
    }

    /// The configuration this instance runs with.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Peels `g` and returns the densest core found along the way —
    /// a 2-approximation of the densest subgraph.
    pub fn run(&self, g: &CsrGraph) -> DensestResult {
        run_densest(g, self.config)
    }
}

/// The result of a greedy densest-subgraph run.
#[derive(Debug, Clone, Default)]
pub struct DensestResult {
    coreness: Vec<u32>,
    /// `densities[k]` = density (edges / vertices) of the subgraph
    /// standing at the start of round `k`, i.e. of the k-core.
    densities: Vec<f64>,
    membership: Vec<bool>,
    best_k: u32,
    stats: RunStats,
}

impl DensestResult {
    /// Density (undirected edges per vertex) of the returned subgraph —
    /// at least half the optimum.
    pub fn density(&self) -> f64 {
        self.densities.get(self.best_k as usize).copied().unwrap_or(0.0)
    }

    /// The round whose standing subgraph (the `best_k`-core) is
    /// returned.
    pub fn best_k(&self) -> u32 {
        self.best_k
    }

    /// Membership mask of the returned subgraph (`true` = vertex is in
    /// the densest core found).
    pub fn members(&self) -> &[bool] {
        &self.membership
    }

    /// Number of vertices in the returned subgraph.
    pub fn num_members(&self) -> usize {
        self.membership.iter().filter(|&&m| m).count()
    }

    /// The running density curve: `densities()[k]` is the density of
    /// the k-core, for `k` in `0..=kmax`.
    pub fn densities(&self) -> &[f64] {
        &self.densities
    }

    /// The underlying coreness array (the peel order certificate).
    pub fn coreness(&self) -> &[u32] {
        &self.coreness
    }

    /// Run counters (rounds, subrounds, work, burdened span, ...).
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }
}

impl crate::result::DecompositionResult for DensestResult {
    fn num_elements(&self) -> usize {
        self.coreness.len()
    }

    fn stats(&self) -> &RunStats {
        &self.stats
    }
}

/// Sequential greedy densest-subgraph oracle: remove a minimum-degree
/// vertex one at a time (smallest id among minima, for determinism) and
/// return the best density over *every* suffix of the removal order.
///
/// This checks strictly more prefixes than the parallel per-round
/// checkpoints, so it upper-bounds [`DensestResult::density`]; both are
/// within a factor 2 of the optimum, giving the sandwich
/// `oracle / 2 <= parallel <= oracle` that the tests assert.
pub fn sequential_greedy_density(g: &CsrGraph) -> f64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v as u32)).collect();
    let mut alive = vec![true; n];
    let mut edges_left = g.num_edges();
    let mut vertices_left = n;
    let mut best = edges_left as f64 / vertices_left as f64;
    while vertices_left > 1 {
        let v =
            (0..n).filter(|&v| alive[v]).min_by_key(|&v| degree[v]).expect("a live vertex remains");
        alive[v] = false;
        vertices_left -= 1;
        edges_left -= degree[v];
        for &u in g.neighbors(v as u32) {
            if alive[u as usize] {
                degree[u as usize] -= 1;
            }
        }
        best = best.max(edges_left as f64 / vertices_left as f64);
    }
    best
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the shim facades stay covered until removal

    use super::*;
    use crate::bz::bz_coreness;
    use crate::config::Techniques;
    use kcore_buckets::BucketStrategy;
    use kcore_graph::{gen, GraphBuilder};

    fn assert_sandwich(g: &CsrGraph, label: &str) {
        let oracle = sequential_greedy_density(g);
        for strategy in [
            BucketStrategy::Single,
            BucketStrategy::Fixed(16),
            BucketStrategy::Hierarchical,
            BucketStrategy::Adaptive,
        ] {
            for techniques in [Techniques::default(), Techniques::offline()] {
                let config = Config { bucket_strategy: strategy, techniques, ..Config::default() };
                let r = DensestSubgraph::with_exact_config(config).run(g);
                let got = r.density();
                assert!(
                    got <= oracle + 1e-9,
                    "{label}/{strategy}: parallel {got} exceeds the finer greedy {oracle}"
                );
                assert!(
                    got * 2.0 + 1e-9 >= oracle,
                    "{label}/{strategy}: parallel {got} below oracle/2 ({oracle})"
                );
            }
        }
    }

    #[test]
    fn empty_and_trivial() {
        let r = DensestSubgraph::new(Config::default()).run(&CsrGraph::empty());
        assert_eq!(r.density(), 0.0);
        assert_eq!(r.num_members(), 0);
        let r = DensestSubgraph::new(Config::default()).run(&GraphBuilder::new(4).build());
        assert_eq!(r.density(), 0.0);
        assert_eq!(r.num_members(), 4, "isolated vertices form the (vacuous) 0-core");
    }

    #[test]
    fn clique_is_its_own_densest_subgraph() {
        // planted_core embeds a 50-clique (density ~24.5) in a sparse
        // BA(attach=2) halo whose shells top out around coreness 2-4:
        // the clique core dominates. Ties in the curve resolve to the
        // smallest k with that density, so best_k lands just above the
        // halo, not at the clique's coreness.
        let g = gen::planted_core(300, 2, 50, 21);
        let r = DensestSubgraph::new(Config::default()).run(&g);
        assert!(r.best_k() >= 3, "best core sits above the BA halo, got k = {}", r.best_k());
        assert!(r.density() >= 15.0, "clique density ~24.5, got {}", r.density());
        assert!(r.num_members() <= 80, "the dense core is small, got {}", r.num_members());
        // The returned subgraph really has that density.
        let members = r.members();
        let mk = g.edges().filter(|&(u, v)| members[u as usize] && members[v as usize]).count();
        assert_eq!(r.density(), mk as f64 / r.num_members() as f64);
    }

    #[test]
    fn density_curve_matches_independent_core_densities() {
        let g = gen::barabasi_albert(400, 3, 13);
        let r = DensestSubgraph::new(Config::default()).run(&g);
        let coreness = bz_coreness(&g);
        assert_eq!(r.coreness(), coreness.as_slice());
        for (k, &d) in r.densities().iter().enumerate() {
            let members: Vec<bool> = coreness.iter().map(|&c| c as usize >= k).collect();
            let nk = members.iter().filter(|&&m| m).count();
            let mk = g.edges().filter(|&(u, v)| members[u as usize] && members[v as usize]).count();
            let want = if nk == 0 { 0.0 } else { mk as f64 / nk as f64 };
            assert_eq!(d, want, "density of the {k}-core");
        }
        // The membership mask is exactly the best core.
        assert!(r.members().iter().zip(coreness.iter()).all(|(&m, &c)| m == (c >= r.best_k())));
    }

    #[test]
    fn sandwich_against_the_greedy_oracle() {
        assert_sandwich(&gen::barabasi_albert(200, 3, 7), "ba");
        assert_sandwich(&gen::erdos_renyi(150, 450, 3), "er");
        assert_sandwich(&gen::planted_core(150, 2, 30, 9), "planted");
        assert_sandwich(&gen::grid2d(12, 12), "grid");
        assert_sandwich(&gen::hcns(12), "hcns");
    }

    #[test]
    fn densest_is_deterministic() {
        let g = gen::rmat(8, 6, 0.57, 0.19, 0.19, 4);
        let a = DensestSubgraph::new(Config::default()).run(&g);
        let b = DensestSubgraph::new(Config::default()).run(&g);
        assert_eq!(a.coreness(), b.coreness());
        assert_eq!(a.best_k(), b.best_k());
        assert_eq!(a.densities(), b.densities());
    }

    #[test]
    fn techniques_do_not_change_the_answer() {
        let g = gen::barabasi_albert(300, 4, 5);
        let want = DensestSubgraph::with_exact_config(Config::default()).run(&g);
        for spec in ["sampling", "vgc", "all", "offline"] {
            let config = Config::default().apply_techniques_spec(spec);
            let got = DensestSubgraph::with_exact_config(config).run(&g);
            assert_eq!(got.best_k(), want.best_k(), "{spec}");
            assert_eq!(got.densities(), want.densities(), "{spec}");
        }
    }
}
