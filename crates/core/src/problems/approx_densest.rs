//! (2+ε)-approximate densest subgraph as a [`PeelProblem`] — the
//! threshold-policy client, peeling whole priority ranges per round.
//!
//! [`crate::DensestSubgraph`] peels min-degree rounds (Charikar's
//! greedy, a 2-approximation) and therefore runs as many rounds as the
//! degeneracy. The batched variant (Bahmani–Kumar–Vassilvitskii)
//! trades a factor in the guarantee for exponentially fewer rounds:
//! each round removes **every** vertex whose induced degree is at most
//! `(1 + ε/2) ·` (live average degree), which shrinks the vertex set
//! geometrically — `O(log₁₊ε n)` rounds — while the best standing
//! subgraph along the way has density at least `ρ* / (2 + ε)`.
//!
//! On the engine this is precisely [`RoundPolicy::Threshold`]: the
//! policy computes the round threshold from the live
//! [`RoundAggregates`] (`priority_sum / remaining` is the live average
//! degree), the bucket structure drains the whole range in one step,
//! and the clamp floors at the threshold, so a vertex dragged down to
//! it mid-round settles in the same round. The cascade makes every
//! round's standing set a *core* of the input graph (the maximal
//! sub-threshold-closed set), which yields the sandwich the tests
//! assert: every checkpoint is a suffix state of any sequential
//! min-degree greedy order, so
//! `oracle / (2+ε) <= parallel <= oracle`
//! against [`crate::sequential_greedy_density`] — the lower bound from
//! the Bahmani guarantee (`parallel >= ρ*/(2+ε) >= oracle/(2+ε)`), the
//! upper bound from checkpoint containment.
//!
//! Note the rate: the paper-named "(2+ε)-approximation" needs the peel
//! threshold `(1 + ε/2)·avg`, since a removal rate of `1 + β` gives a
//! `2(1 + β)`-approximation; `β = ε/2` makes the end-to-end factor
//! exactly `2 + ε`.

use crate::peel::engine::{
    Incidence, PeelEngine, PeelProblem, RoundAggregates, RoundPolicy, ThresholdPolicy,
};
use crate::Config;
use kcore_graph::CsrGraph;
use kcore_parallel::RunStats;

/// The canonical ε sweep shared by the proptest sandwich/rounds
/// assertions and the `bench_problems` timing entries — one list, so
/// the measured sweep and the asserted `O(log₁₊ε n)` law cannot drift
/// apart.
pub const SWEPT_EPSILONS: [f64; 3] = [0.1, 0.5, 1.0];

/// The batched densest-subgraph problem over one graph.
struct ApproxDensestProblem<'g> {
    g: &'g CsrGraph,
    /// Removal rate `1 + ε/2`.
    rate: f64,
}

impl ThresholdPolicy for ApproxDensestProblem<'_> {
    fn threshold(&self, agg: &RoundAggregates) -> u32 {
        if agg.remaining == 0 {
            return agg.floor;
        }
        let avg = agg.priority_sum as f64 / agg.remaining as f64;
        // floor(rate · avg) >= the live minimum degree (an integer at
        // most avg <= rate·avg), so every round settles at least the
        // minimum-degree vertex: progress needs no special casing.
        (self.rate * avg).floor() as u32
    }
}

impl PeelProblem for ApproxDensestProblem<'_> {
    type Output = ApproxDensestResult;

    fn name(&self) -> &'static str {
        "approx-densest"
    }

    fn num_elements(&self) -> usize {
        self.g.num_vertices()
    }

    fn init_priorities(&self) -> Vec<u32> {
        self.g.degrees()
    }

    fn incidence(&self) -> Incidence<'_> {
        Incidence::Unit(self.g)
    }

    fn round_policy(&self) -> RoundPolicy<'_> {
        RoundPolicy::Threshold(self)
    }

    fn assemble(&self, rounds: Vec<u32>, stats: RunStats) -> ApproxDensestResult {
        // rounds[v] is the batch round in which v settled; the standing
        // set at the start of round r is {v : rounds[v] >= r}. Count
        // its vertices and surviving edges for every r at once by
        // suffix-summing histograms, exactly like the exact greedy.
        let rmax = rounds.iter().copied().max().unwrap_or(0) as usize;
        let mut n_hist = vec![0u64; rmax + 2];
        for &r in &rounds {
            n_hist[r as usize] += 1;
        }
        let mut m_hist = vec![0u64; rmax + 2];
        for (u, v) in self.g.edges() {
            let lvl = rounds[u as usize].min(rounds[v as usize]) as usize;
            m_hist[lvl] += 1;
        }
        let (mut n_at, mut m_at) = (0u64, 0u64);
        let mut densities = vec![0f64; rmax + 1];
        let mut best_round = 0u32;
        let mut best = f64::NEG_INFINITY;
        for r in (0..=rmax).rev() {
            n_at += n_hist[r];
            m_at += m_hist[r];
            let d = if n_at == 0 { 0.0 } else { m_at as f64 / n_at as f64 };
            densities[r] = d;
            // `>=` while walking r downward: ties resolve to the
            // earliest round, i.e. the largest standing subgraph.
            if d >= best {
                best = d;
                best_round = r as u32;
            }
        }
        let membership = rounds.iter().map(|&r| r >= best_round).collect();
        ApproxDensestResult { rounds, densities, membership, best_round, stats }
    }
}

/// The batched (2+ε)-approximate densest-subgraph framework.
///
/// Runs on [`RoundPolicy::Threshold`]: all four bucket strategies
/// apply through their native threshold drains, and VGC composes with
/// the in-round cascade. Sampling and the offline driver do not apply
/// to threshold rounds and are rejected by the engine (the
/// `KCORE_TECHNIQUES` env override is filtered accordingly, so the CI
/// matrix legs run this problem with the inapplicable tokens dropped).
#[derive(Debug, Clone)]
pub struct ApproxDensest {
    config: Config,
    epsilon: f64,
}

/// Env-override tokens that apply to threshold peeling.
pub(crate) const SUPPORTED_TECHNIQUES: &[&str] = &["vgc"];

/// Runs batched approximate densest-subgraph with `config` exactly as
/// given — the shared core behind
/// [`crate::Decomposition::approx_densest`].
pub(crate) fn run_approx_densest(
    g: &CsrGraph,
    config: Config,
    epsilon: f64,
) -> ApproxDensestResult {
    let problem = ApproxDensestProblem { g, rate: 1.0 + epsilon / 2.0 };
    PeelEngine::new(&problem, config).run()
}

impl ApproxDensest {
    /// Creates the framework targeting a `2 + epsilon` approximation
    /// factor, after applying the `KCORE_TECHNIQUES` override
    /// restricted to the techniques threshold rounds support.
    ///
    /// # Panics
    ///
    /// Panics unless `epsilon` is finite and non-negative (`0.0` is
    /// allowed: it degenerates to per-average rounds with the plain
    /// factor 2), or if the configuration explicitly enables sampling
    /// or the offline driver (rejected by the engine on `run`).
    #[deprecated(
        since = "0.2.0",
        note = "use `Decomposition::approx_densest(&g, epsilon).config(c).run()`"
    )]
    pub fn new(config: Config, epsilon: f64) -> Self {
        assert!(epsilon.is_finite() && epsilon >= 0.0, "epsilon must be finite and >= 0");
        Self { config: config.apply_env_overrides_filtered(SUPPORTED_TECHNIQUES), epsilon }
    }

    /// Creates the framework with `config` exactly as given (see
    /// [`crate::Decomposition::exact_config`]).
    #[deprecated(
        since = "0.2.0",
        note = "use `Decomposition::approx_densest(&g, epsilon).exact_config(c).run()`"
    )]
    pub fn with_exact_config(config: Config, epsilon: f64) -> Self {
        assert!(epsilon.is_finite() && epsilon >= 0.0, "epsilon must be finite and >= 0");
        Self { config, epsilon }
    }

    /// The configuration this instance runs with.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The approximation slack ε (factor `2 + ε`).
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Peels `g` in threshold-batched rounds and returns the densest
    /// standing subgraph observed — a `(2 + ε)`-approximation of the
    /// densest subgraph, in `O(log₁₊ε n)` rounds.
    pub fn run(&self, g: &CsrGraph) -> ApproxDensestResult {
        run_approx_densest(g, self.config, self.epsilon)
    }
}

/// The result of a batched approximate densest-subgraph run.
#[derive(Debug, Clone, Default)]
pub struct ApproxDensestResult {
    rounds: Vec<u32>,
    /// `densities[r]` = density of the subgraph standing at the start
    /// of batch round `r`.
    densities: Vec<f64>,
    membership: Vec<bool>,
    best_round: u32,
    stats: RunStats,
}

impl ApproxDensestResult {
    /// Density (undirected edges per vertex) of the returned subgraph —
    /// at least `optimum / (2 + ε)`.
    pub fn density(&self) -> f64 {
        self.densities.get(self.best_round as usize).copied().unwrap_or(0.0)
    }

    /// The batch round whose standing subgraph is returned.
    pub fn best_round(&self) -> u32 {
        self.best_round
    }

    /// Membership mask of the returned subgraph.
    pub fn members(&self) -> &[bool] {
        &self.membership
    }

    /// Number of vertices in the returned subgraph.
    pub fn num_members(&self) -> usize {
        self.membership.iter().filter(|&&m| m).count()
    }

    /// The per-round density curve of the standing subgraphs.
    pub fn densities(&self) -> &[f64] {
        &self.densities
    }

    /// Each vertex's settle (batch) round — the removal-order
    /// certificate.
    pub fn rounds(&self) -> &[u32] {
        &self.rounds
    }

    /// Number of batch rounds the peel ran — the `O(log₁₊ε n)`
    /// quantity the rounds-vs-ε sweep measures.
    pub fn num_rounds(&self) -> u64 {
        self.stats.rounds
    }

    /// Run counters (rounds, subrounds, work, burdened span, ...).
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }
}

impl crate::result::DecompositionResult for ApproxDensestResult {
    fn num_elements(&self) -> usize {
        self.membership.len()
    }

    fn stats(&self) -> &RunStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the shim facades stay covered until removal

    use super::*;
    use crate::config::{Sampling, Techniques};
    use crate::problems::densest::sequential_greedy_density;
    use kcore_buckets::BucketStrategy;
    use kcore_graph::{gen, CsrGraph, GraphBuilder};

    const EPSILONS: [f64; 3] = SWEPT_EPSILONS;

    fn strategies() -> Vec<BucketStrategy> {
        vec![
            BucketStrategy::Single,
            BucketStrategy::Fixed(16),
            BucketStrategy::Hierarchical,
            BucketStrategy::Adaptive,
        ]
    }

    fn assert_sandwich(g: &CsrGraph, label: &str) {
        let oracle = sequential_greedy_density(g);
        for eps in EPSILONS {
            for strategy in strategies() {
                let config = Config::with_strategy(strategy);
                let r = ApproxDensest::with_exact_config(config, eps).run(g);
                let got = r.density();
                assert!(
                    got <= oracle + 1e-9,
                    "{label}/{strategy}/eps {eps}: parallel {got} exceeds the greedy {oracle}"
                );
                assert!(
                    got * (2.0 + eps) + 1e-9 >= oracle,
                    "{label}/{strategy}/eps {eps}: parallel {got} below oracle/(2+eps) ({oracle})"
                );
            }
        }
    }

    #[test]
    fn sandwich_on_generator_families() {
        assert_sandwich(&gen::barabasi_albert(200, 3, 7), "ba");
        assert_sandwich(&gen::erdos_renyi(150, 450, 3), "er");
        assert_sandwich(&gen::planted_core(150, 2, 30, 9), "planted");
        assert_sandwich(&gen::grid2d(12, 12), "grid");
        assert_sandwich(&gen::hcns(12), "hcns");
    }

    #[test]
    fn rounds_shrink_as_epsilon_grows() {
        for (label, g) in [
            ("ba", gen::barabasi_albert(2000, 4, 13)),
            ("hcns", gen::hcns(40)),
            ("planted", gen::planted_core(800, 3, 60, 5)),
        ] {
            let rounds: Vec<u64> = EPSILONS
                .iter()
                .map(|&eps| {
                    ApproxDensest::with_exact_config(Config::default(), eps).run(&g).num_rounds()
                })
                .collect();
            assert!(
                rounds.windows(2).all(|w| w[1] <= w[0]),
                "{label}: rounds must not grow with eps, got {rounds:?}"
            );
            // The O(log_{1+eps/2} n) bound, with slack for the +1-ish
            // boundary rounds.
            for (&eps, &r) in EPSILONS.iter().zip(&rounds) {
                let bound = (g.num_vertices() as f64).ln() / (1.0 + eps / 2.0).ln() + 2.0;
                assert!(
                    (r as f64) <= bound,
                    "{label}/eps {eps}: {r} rounds exceeds the log bound {bound:.1}"
                );
            }
        }
    }

    #[test]
    fn far_fewer_rounds_than_the_exact_greedy() {
        let g = gen::hcns(40); // degeneracy ~40: many min-bucket rounds
        let exact = crate::DensestSubgraph::with_exact_config(Config::default()).run(&g);
        let batched = ApproxDensest::with_exact_config(Config::default(), 0.5).run(&g);
        assert!(
            batched.num_rounds() * 3 < exact.stats().rounds,
            "batching must collapse rounds: {} vs {}",
            batched.num_rounds(),
            exact.stats().rounds
        );
    }

    #[test]
    fn returned_subgraph_really_has_the_reported_density() {
        let g = gen::planted_core(300, 2, 50, 21);
        let r = ApproxDensest::with_exact_config(Config::default(), 0.5).run(&g);
        let members = r.members();
        let mk = g.edges().filter(|&(u, v)| members[u as usize] && members[v as usize]).count();
        assert_eq!(r.density(), mk as f64 / r.num_members() as f64);
        assert!(r.density() >= 15.0, "the planted 50-clique dominates, got {}", r.density());
    }

    #[test]
    fn epsilon_zero_still_terminates_with_factor_two() {
        let g = gen::barabasi_albert(150, 3, 3);
        let oracle = sequential_greedy_density(&g);
        let r = ApproxDensest::with_exact_config(Config::default(), 0.0).run(&g);
        assert!(r.density() <= oracle + 1e-9);
        assert!(r.density() * 2.0 + 1e-9 >= oracle);
    }

    #[test]
    fn vgc_composes_with_threshold_rounds() {
        let g = gen::barabasi_albert(400, 3, 9);
        let plain = ApproxDensest::with_exact_config(Config::default(), 0.5).run(&g);
        let vgc = Config::default().apply_techniques_spec("vgc");
        let chased = ApproxDensest::with_exact_config(vgc, 0.5).run(&g);
        assert_eq!(plain.rounds(), chased.rounds(), "VGC only reorders work within a round");
        assert_eq!(plain.densities(), chased.densities());
    }

    #[test]
    fn deterministic_for_fixed_input() {
        let g = gen::rmat(8, 6, 0.57, 0.19, 0.19, 4);
        let a = ApproxDensest::with_exact_config(Config::default(), 0.5).run(&g);
        let b = ApproxDensest::with_exact_config(Config::default(), 0.5).run(&g);
        assert_eq!(a.rounds(), b.rounds());
        assert_eq!(a.best_round(), b.best_round());
        assert_eq!(a.densities(), b.densities());
    }

    #[test]
    fn empty_and_trivial() {
        let r = ApproxDensest::with_exact_config(Config::default(), 0.5).run(&CsrGraph::empty());
        assert_eq!(r.density(), 0.0);
        assert_eq!(r.num_members(), 0);
        let r = ApproxDensest::with_exact_config(Config::default(), 0.5)
            .run(&GraphBuilder::new(4).build());
        assert_eq!(r.density(), 0.0);
        assert_eq!(r.num_rounds(), 1, "isolated vertices all drain in round 0");
    }

    #[test]
    #[should_panic(expected = "RoundPolicy::Threshold does not support the sampling technique")]
    fn explicit_sampling_is_rejected() {
        let techniques =
            Techniques { sampling: Some(Sampling::with_threshold(4)), ..Techniques::default() };
        let _ = ApproxDensest::with_exact_config(Config::with_techniques(techniques), 0.5)
            .run(&gen::path(10));
    }

    #[test]
    #[should_panic(expected = "RoundPolicy::Threshold does not support the offline driver")]
    fn explicit_offline_is_rejected() {
        let _ =
            ApproxDensest::with_exact_config(Config::with_techniques(Techniques::offline()), 0.5)
                .run(&gen::path(10));
    }

    #[test]
    fn forced_env_tokens_are_filtered_not_fatal() {
        let g = gen::barabasi_albert(120, 3, 5);
        let config = Config::default()
            .apply_techniques_spec_filtered("sampling,vgc,offline", SUPPORTED_TECHNIQUES);
        let got = ApproxDensest::with_exact_config(config, 0.5).run(&g);
        let want = ApproxDensest::with_exact_config(Config::default(), 0.5).run(&g);
        assert_eq!(got.rounds(), want.rounds());
    }
}
