//! k-core decomposition as a [`PeelProblem`] — the engine's first and
//! reference client.
//!
//! Elements are vertices, the initial priority is the degree, and the
//! incidence relation is the graph's adjacency under unit decrements
//! ([`Incidence::Unit`]): every settled neighbor costs one degree unit,
//! which is precisely the paper's Alg. 1. The settle round of a vertex
//! *is* its coreness, so `assemble` is the identity wrap into
//! [`CorenessResult`]. Every Sec. 4 technique applies: sampling (vertex
//! degrees over edges), VGC chains, and the offline histogram driver.

use crate::config::PeelMode;
use crate::peel::engine::{Incidence, PeelEngine, PeelProblem};
use crate::peel::offline;
use crate::{Config, CorenessResult};
use kcore_graph::{env_backend, BackendKind, CompressedCsr, CsrGraph, GraphBackend};
use kcore_parallel::RunStats;

/// The k-core decomposition problem over one graph, generic over the
/// adjacency backend (plain/mmapped CSR, overlay, compressed).
pub(crate) struct KCoreProblem<'g, G = CsrGraph> {
    pub(crate) g: &'g G,
}

impl<G: GraphBackend> PeelProblem for KCoreProblem<'_, G> {
    type Output = CorenessResult;

    fn name(&self) -> &'static str {
        "k-core"
    }

    fn num_elements(&self) -> usize {
        self.g.num_vertices()
    }

    fn init_priorities(&self) -> Vec<u32> {
        self.g.degrees()
    }

    fn incidence(&self) -> Incidence<'_> {
        Incidence::Unit(self.g)
    }

    fn assemble(&self, rounds: Vec<u32>, stats: RunStats) -> CorenessResult {
        CorenessResult::new(rounds, stats)
    }
}

/// Runs the k-core decomposition over exactly the backend given —
/// no environment override.
pub(crate) fn run_kcore_on<G: GraphBackend>(g: &G, config: Config) -> CorenessResult {
    PeelEngine::new(&KCoreProblem { g }, config).run()
}

/// Runs the k-core decomposition with `config` exactly as given — the
/// shared core behind [`crate::Decomposition::kcore`] (env resolution
/// happens in the builder). A plain-CSR graph is re-encoded through the
/// `KCORE_BACKEND`-forced backend first (CI's compressed leg); any
/// other backend runs as-is.
pub(crate) fn run_kcore<G: GraphBackend>(g: &G, config: Config) -> CorenessResult {
    if env_backend() == BackendKind::Compressed {
        if let Some(plain) = g.as_plain() {
            return run_kcore_on(&CompressedCsr::from_graph(plain), config);
        }
    }
    run_kcore_on(g, config)
}

/// Membership of the `k`-core (`true` = vertex has coreness `>= k`),
/// computed directly by offline range peeling: every vertex of degree
/// below `k` is extracted in one bulk range step and the cascade is
/// driven by histogram decrements. Much cheaper than a full
/// decomposition when only one core is needed (the serving path for
/// "give me the k-core" queries). Applies the `KCORE_BACKEND` override
/// like [`run_kcore`].
pub(crate) fn members<G: GraphBackend>(g: &G, config: &Config, k: u32) -> Vec<bool> {
    let off = match config.techniques.mode {
        PeelMode::Offline(off) => off,
        PeelMode::Online => crate::config::Offline::default(),
    };
    if env_backend() == BackendKind::Compressed {
        if let Some(plain) = g.as_plain() {
            let c = CompressedCsr::from_graph(plain);
            return offline::range_membership(&c, &c.degrees(), k, off);
        }
    }
    offline::range_membership(g, &g.degrees(), k, off)
}

/// The parallel k-core decomposition framework.
#[derive(Debug, Clone, Default)]
pub struct KCore {
    config: Config,
}

impl KCore {
    /// Creates the framework with the given configuration, after
    /// applying the `KCORE_TECHNIQUES` environment override (see
    /// [`Config::apply_env_overrides`]).
    #[deprecated(since = "0.2.0", note = "use `Decomposition::kcore(&g).config(c).run()`")]
    pub fn new(config: Config) -> Self {
        Self { config: config.apply_env_overrides() }
    }

    /// Creates the framework with `config` exactly as given, bypassing
    /// the `KCORE_TECHNIQUES` environment override. For callers (and
    /// tests) that assert technique-specific behavior.
    #[deprecated(since = "0.2.0", note = "use `Decomposition::kcore(&g).exact_config(c).run()`")]
    pub fn with_exact_config(config: Config) -> Self {
        Self { config }
    }

    /// The configuration this instance runs with.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Decomposes `g`, returning every vertex's coreness.
    ///
    /// [`RunStats`] describe the successful attempt;
    /// [`RunStats::restarts`] additionally counts aborted sampling
    /// attempts (expected 0 — see [`crate::Sampling`]).
    pub fn run(&self, g: &CsrGraph) -> CorenessResult {
        run_kcore(g, self.config)
    }

    /// See [`crate::Decomposition::members`] — the serving path for
    /// "give me the k-core" queries.
    pub fn kcore_members(&self, g: &CsrGraph, k: u32) -> Vec<bool> {
        members(g, &self.config, k)
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the shim facades stay covered until removal

    use super::*;
    use crate::bz::bz_coreness;
    use crate::config::{PeelMode, Sampling, Techniques, Validation, Vgc};
    use kcore_buckets::BucketStrategy;
    use kcore_graph::{gen, GraphBuilder};
    use kcore_parallel::pool::with_threads;

    /// Every bucketing strategy the framework supports.
    fn strategies() -> Vec<BucketStrategy> {
        vec![
            BucketStrategy::Single,
            BucketStrategy::Fixed(16),
            BucketStrategy::Hierarchical,
            BucketStrategy::Adaptive,
        ]
    }

    /// Technique variants the oracle tests sweep. Sampling uses a low
    /// threshold so sample mode actually engages on test-sized graphs.
    fn technique_variants() -> Vec<(Techniques, &'static str)> {
        let sampling = Some(Sampling::with_threshold(4));
        vec![
            (Techniques::default(), "baseline"),
            (Techniques { sampling, ..Techniques::default() }, "sampling"),
            (Techniques { vgc: Some(Vgc::default()), ..Techniques::default() }, "vgc"),
            (
                Techniques { sampling, vgc: Some(Vgc { chain_limit: 8 }), ..Techniques::default() },
                "sampling+vgc",
            ),
            (Techniques::offline(), "offline"),
        ]
    }

    /// Asserts that every strategy × technique combination agrees with
    /// the BZ oracle on `g`.
    fn assert_matches_oracle(g: &CsrGraph, label: &str) {
        let want = bz_coreness(g);
        for strategy in strategies() {
            for (techniques, tname) in technique_variants() {
                let config = Config { bucket_strategy: strategy, techniques, ..Config::default() };
                let got = KCore::new(config).run(g);
                assert_eq!(
                    got.coreness(),
                    want.as_slice(),
                    "{label}: strategy {strategy} + {tname} disagrees with BZ"
                );
            }
        }
    }

    #[test]
    fn empty_graph() {
        let r = KCore::new(Config::default()).run(&CsrGraph::empty());
        assert_eq!(r.num_vertices(), 0);
        assert_eq!(r.kmax(), 0);
    }

    #[test]
    fn isolated_vertices_have_coreness_zero() {
        let g = GraphBuilder::new(5).build();
        let r = KCore::new(Config::default()).run(&g);
        assert_eq!(r.coreness(), &[0; 5]);
        assert_eq!(r.kmax(), 0);
    }

    #[test]
    fn structural_graphs_match_oracle() {
        assert_matches_oracle(&gen::path(40), "path");
        assert_matches_oracle(&gen::cycle(33), "cycle");
        assert_matches_oracle(&gen::star(65), "star");
        assert_matches_oracle(&gen::complete(20), "complete");
        assert_matches_oracle(&gen::complete_bipartite(4, 9), "bipartite");
    }

    #[test]
    fn grid_families_match_oracle() {
        assert_matches_oracle(&gen::grid2d(24, 17), "grid2d");
        assert_matches_oracle(&gen::grid3d(6, 7, 8), "grid3d");
        assert_matches_oracle(&gen::mesh(15, 15), "mesh");
        assert_matches_oracle(&gen::road(20, 20, 0.15, 0.1, 7), "road");
    }

    #[test]
    fn random_families_match_oracle() {
        assert_matches_oracle(&gen::erdos_renyi(300, 900, 3), "erdos_renyi");
        assert_matches_oracle(&gen::barabasi_albert(400, 3, 11), "barabasi_albert");
        assert_matches_oracle(&gen::rmat(9, 8, 0.57, 0.19, 0.19, 5), "rmat");
        assert_matches_oracle(&gen::knn(250, 4, 13), "knn");
        assert_matches_oracle(&gen::planted_core(200, 2, 40, 9), "planted_core");
    }

    #[test]
    fn hcns_exercises_deep_bucket_hierarchies() {
        assert_matches_oracle(&gen::hcns(40), "hcns");
    }

    #[test]
    fn grid_kmax_is_2() {
        let g = gen::grid2d(100, 100);
        let r = KCore::new(Config::default()).run(&g);
        assert_eq!(r.kmax(), 2);
    }

    #[test]
    fn stats_are_collected_by_default() {
        let g = gen::grid2d(30, 30);
        let r = KCore::new(Config::default()).run(&g);
        let s = r.stats();
        assert!(s.rounds >= 3, "grid peels over rounds 0..=2, got {}", s.rounds);
        assert!(s.subrounds >= s.rounds);
        assert!(s.work as usize >= g.num_vertices() + g.num_arcs());
        assert!(s.max_frontier > 0);
        assert_eq!(s.subrounds_per_round.len(), s.rounds as usize);
    }

    #[test]
    fn stats_can_be_disabled() {
        let g = gen::grid2d(10, 10);
        let config = Config { collect_stats: false, ..Config::default() };
        let r = KCore::new(config).run(&g);
        assert_eq!(r.stats().rounds, 0);
        assert_eq!(r.stats().work, 0);
        // Coreness is still correct.
        assert_eq!(r.coreness(), bz_coreness(&g).as_slice());
    }

    #[test]
    fn adaptive_switchover_crosses_theta() {
        // planted_core has kmax >= 39 > θ = 16, so Adaptive upgrades to
        // HBS mid-run; the result must be unaffected.
        let g = gen::planted_core(300, 2, 60, 21);
        let adaptive = KCore::new(Config::default()).run(&g);
        assert_eq!(adaptive.coreness(), bz_coreness(&g).as_slice());
        assert!(adaptive.kmax() >= 16);
    }

    #[test]
    fn peeling_is_deterministic_for_fixed_input() {
        let g = gen::rmat(8, 6, 0.57, 0.19, 0.19, 2);
        let a = KCore::new(Config::default()).run(&g);
        let b = KCore::new(Config::default()).run(&g);
        assert_eq!(a.coreness(), b.coreness());
    }

    #[test]
    fn sampling_counters_populate_on_power_law() {
        let g = gen::barabasi_albert(3000, 4, 11);
        let techniques = Techniques {
            sampling: Some(Sampling::with_threshold(16)),
            vgc: Some(Vgc::default()),
            mode: PeelMode::Online,
        };
        let r = KCore::with_exact_config(Config::with_techniques(techniques)).run(&g);
        assert_eq!(r.coreness(), bz_coreness(&g).as_slice());
        let s = r.stats();
        assert!(s.sampled_vertices > 0, "hubs above the threshold must enter sample mode");
        assert!(s.resamples > 0, "sample-mode vertices are only peeled after exact recounts");
        assert!(s.validate_calls > 0, "end-of-round validation must have run");
        assert!(s.peak_chain >= 1, "subround chains feed peak_chain");
        assert_eq!(s.restarts, 0, "full validation never restarts");
    }

    #[test]
    fn sampling_full_validation_is_exact_under_concurrency() {
        // Hammer the concurrent recount paths: low threshold samples
        // most of a dense power-law graph.
        for seed in 0..5 {
            let g = gen::barabasi_albert(1200, 6, seed);
            let techniques =
                Techniques { sampling: Some(Sampling::with_threshold(8)), ..Techniques::default() };
            let r = KCore::with_exact_config(Config::with_techniques(techniques)).run(&g);
            assert_eq!(r.coreness(), bz_coreness(&g).as_slice(), "seed {seed}");
        }
    }

    #[test]
    fn vgc_collapses_subrounds_on_a_path() {
        // A path peels inward from both ends: without VGC that is ~n/2
        // subrounds of 2 vertices; with VGC one worker chases the whole
        // chain. Run single-threaded for a deterministic chain shape.
        let g = gen::path(400);
        let (plain, chased) = with_threads(1, || {
            let plain = KCore::with_exact_config(Config::default()).run(&g);
            let vgc = Techniques { vgc: Some(Vgc { chain_limit: 1000 }), ..Techniques::default() };
            let chased = KCore::with_exact_config(Config::with_techniques(vgc)).run(&g);
            (plain, chased)
        });
        assert_eq!(plain.coreness(), chased.coreness());
        let (ps, cs) = (plain.stats(), chased.stats());
        assert!(
            cs.subrounds < ps.subrounds / 4,
            "VGC must collapse subrounds: {} vs {}",
            cs.subrounds,
            ps.subrounds
        );
        assert!(cs.peak_chain > 8, "long chains must be recorded, got {}", cs.peak_chain);
        assert!(cs.burdened_span < ps.burdened_span, "fewer syncs must shrink the burdened span");
    }

    #[test]
    fn vgc_chain_limit_bounds_the_chain() {
        let g = gen::path(400);
        let vgc = Techniques { vgc: Some(Vgc { chain_limit: 10 }), ..Techniques::default() };
        let r = with_threads(1, || KCore::with_exact_config(Config::with_techniques(vgc)).run(&g));
        assert_eq!(r.coreness(), bz_coreness(&g).as_slice());
        assert!(r.stats().peak_chain <= 10, "chain {} exceeds limit", r.stats().peak_chain);
    }

    #[test]
    fn offline_charges_more_syncs_per_subround() {
        let g = gen::mesh(20, 20);
        let online = KCore::with_exact_config(Config::default()).run(&g);
        let offline =
            KCore::with_exact_config(Config::with_techniques(Techniques::offline())).run(&g);
        assert_eq!(online.coreness(), offline.coreness());
        let (on, off) = (online.stats(), offline.stats());
        assert_eq!(on.global_syncs, on.subrounds);
        assert_eq!(off.global_syncs, 3 * off.subrounds, "gather + histogram + apply");
        assert!(off.burdened_span > on.burdened_span);
    }

    #[test]
    fn watermark_sampling_restarts_and_stays_exact() {
        // Zero slack + coarse rate makes undershoot detection miss often
        // enough that polluted frontiers actually occur; the Las-Vegas
        // restart must repair every one of them. Single-threaded so the
        // recount schedule (and thus the restart count) is reproducible.
        let mut restarts = 0u64;
        for seed in 0..6 {
            let g = gen::barabasi_albert(600, 4, seed);
            let techniques = Techniques {
                sampling: Some(Sampling {
                    threshold: 4,
                    rate_log2: 3,
                    slack: 0,
                    validation: Validation::Watermark,
                    seed,
                }),
                ..Techniques::default()
            };
            let r = with_threads(1, || {
                KCore::with_exact_config(Config::with_techniques(techniques)).run(&g)
            });
            assert_eq!(r.coreness(), bz_coreness(&g).as_slice(), "seed {seed}");
            restarts += r.stats().restarts;
        }
        assert!(restarts > 0, "zero slack must pollute at least one frontier across seeds");
    }

    #[test]
    fn watermark_sampling_with_default_slack_does_not_restart() {
        let g = gen::barabasi_albert(2000, 5, 3);
        let techniques = Techniques {
            sampling: Some(Sampling {
                validation: Validation::Watermark,
                ..Sampling::with_threshold(32)
            }),
            ..Techniques::default()
        };
        let r = KCore::with_exact_config(Config::with_techniques(techniques)).run(&g);
        assert_eq!(r.coreness(), bz_coreness(&g).as_slice());
        assert_eq!(r.stats().restarts, 0, "default slack keeps the failure probability negligible");
    }

    #[test]
    fn kcore_members_agree_with_coreness() {
        let kc = KCore::new(Config::default());
        for (label, g) in [
            ("ba", gen::barabasi_albert(500, 3, 7)),
            ("mesh", gen::mesh(20, 20)),
            ("hcns", gen::hcns(30)),
        ] {
            let coreness = kc.run(&g);
            for k in [0, 1, 2, 3, 5, coreness.kmax(), coreness.kmax() + 1] {
                let members = kc.kcore_members(&g, k);
                let want: Vec<bool> = coreness.coreness().iter().map(|&c| c >= k).collect();
                assert_eq!(members, want, "{label}: {k}-core membership");
            }
        }
    }

    #[test]
    fn engine_is_reusable_through_the_generic_entry_point() {
        // Drive the engine directly (as a new problem's author would)
        // and check it matches the facade.
        let g = gen::barabasi_albert(400, 3, 5);
        let via_facade = KCore::with_exact_config(Config::default()).run(&g);
        let problem = KCoreProblem { g: &g };
        let via_engine = PeelEngine::new(&problem, Config::default()).run();
        assert_eq!(via_facade.coreness(), via_engine.coreness());
    }
}
