//! (k,h)-core decomposition as a [`PeelProblem`] — the recompute-flavor
//! client, with priorities that drop by *many* units per death.
//!
//! The **(k,h)-core** (distance-generalized core decomposition) is the
//! maximal subgraph in which every vertex has at least `k` vertices
//! within distance `h` — its *h-hop degree*, counted through surviving
//! vertices only. For `h = 1` this is exactly the k-core; for larger
//! `h` the priority is an h-index-style quantity that cannot be
//! maintained by unit decrements: removing one vertex can disconnect
//! whole branches of a ball, collapsing a neighbor's h-hop degree by
//! an arbitrary amount. The peel therefore runs on
//! [`Incidence::Recompute`]: when a vertex dies, every vertex whose
//! ball could have contained it (the static h-hop ball around the
//! death — a superset of the affected set) gets its priority
//! *recomputed* from scratch over the survivors, and the engine's
//! generalized CAS clamp enforces the monotone decrease.
//!
//! The h-hop degree is monotone in the surviving set (removing
//! vertices only removes paths), so the standard generalized-core
//! argument applies: round-`k` peeling yields each vertex's
//! **kh-coreness** — the largest `k` such that it belongs to the
//! (k,h)-core — and the decomposition is deterministic because every
//! recompute is a pure function of the engine's settle snapshot.
//!
//! [`sequential_kh_coreness`] is the oracle: a recount peeler that
//! maintains no incremental state at all, so a parallel bookkeeping
//! bug cannot be mirrored.

use crate::peel::engine::{Incidence, PeelEngine, PeelProblem, RecomputeRule, SettleView};
use crate::Config;
use kcore_graph::CsrGraph;
use kcore_parallel::RunStats;
use rayon::prelude::*;
use std::cell::RefCell;

/// One thread's ball-BFS scratch: visited stamps, the BFS queue, and
/// the current epoch (see [`with_ball_scratch`]).
struct BallScratch {
    stamps: Vec<u32>,
    queue: Vec<u32>,
    epoch: u32,
}

impl BallScratch {
    const fn new() -> Self {
        Self { stamps: Vec::new(), queue: Vec::new(), epoch: 0 }
    }
}

thread_local! {
    /// Epoch-stamped visited buffers shared by every ball BFS on a
    /// worker: `stamps[v] == epoch` means "visited in the current
    /// call", so a fresh traversal costs one epoch bump instead of an
    /// `O(n)` clear/allocation. Two independent traversals can nest on
    /// one thread (a target-emission BFS triggers recompute BFSes from
    /// inside the engine's emit callback), so each level borrows its
    /// own buffer: index 0 for target emission, 1 for recomputes.
    static BALL_SCRATCH: [RefCell<BallScratch>; 2] =
        const { [RefCell::new(BallScratch::new()), RefCell::new(BallScratch::new())] };
}

/// Runs `body` with this thread's ball-BFS scratch at nesting `level`:
/// a visited-stamp array sized to `n`, a queue, and the fresh epoch.
fn with_ball_scratch<R>(
    level: usize,
    n: usize,
    body: impl FnOnce(&mut [u32], &mut Vec<u32>, u32) -> R,
) -> R {
    BALL_SCRATCH.with(|cells| {
        let mut scratch = cells[level].borrow_mut();
        let BallScratch { stamps, queue, epoch } = &mut *scratch;
        if stamps.len() < n {
            stamps.resize(n, 0);
        }
        *epoch = epoch.wrapping_add(1);
        if *epoch == 0 {
            // Epoch wrap: stale stamps could collide; reset once per
            // 2^32 traversals.
            stamps.fill(0);
            *epoch = 1;
        }
        queue.clear();
        body(stamps, queue, *epoch)
    })
}

/// Number of vertices within distance `h` of `v` (excluding `v`),
/// counting only vertices for which `alive` holds and walking only
/// through such vertices. `v` itself is assumed alive by the caller.
/// `O(|ball|)` per call via the thread-local epoch-stamped scratch.
fn ball_size<F: Fn(u32) -> bool>(g: &CsrGraph, v: u32, h: u32, alive: &F) -> u32 {
    if h == 1 {
        // The common fast path: the 1-hop ball is the live degree.
        return g.neighbors(v).iter().filter(|&&u| alive(u)).count() as u32;
    }
    with_ball_scratch(1, g.num_vertices(), |stamps, queue, epoch| {
        stamps[v as usize] = epoch;
        queue.push(v);
        let mut count = 0u32;
        // BFS by levels over the scratch queue: `lo..hi` is the
        // current depth's slice.
        let (mut lo, mut hi) = (0usize, 1usize);
        for _ in 0..h {
            for i in lo..hi {
                let u = queue[i];
                for &w in g.neighbors(u) {
                    if stamps[w as usize] != epoch && alive(w) {
                        stamps[w as usize] = epoch;
                        count += 1;
                        queue.push(w);
                    }
                }
            }
            (lo, hi) = (hi, queue.len());
            if lo == hi {
                break;
            }
        }
        count
    })
}

/// The (k,h)-core decomposition problem over one graph.
pub(crate) struct KhCoreProblem<'g> {
    pub(crate) g: &'g CsrGraph,
    pub(crate) h: u32,
}

impl KhCoreProblem<'_> {
    /// Emits every vertex within distance `depth` of `v` exactly once
    /// (a visited-bounded BFS, not a walk enumeration — `O(|ball|)`
    /// emit calls per death). Walked over the *static* graph: a
    /// superset of the affected set is allowed, and using the original
    /// adjacency keeps the target list independent of racing settles.
    fn emit_ball(&self, v: u32, depth: u32, emit: &mut dyn FnMut(u32)) {
        with_ball_scratch(0, self.g.num_vertices(), |stamps, queue, epoch| {
            stamps[v as usize] = epoch;
            queue.push(v);
            let (mut lo, mut hi) = (0usize, 1usize);
            for _ in 0..depth {
                for i in lo..hi {
                    // Index instead of iterate: `emit` may re-enter
                    // scratch level 1, never this one.
                    let u = queue[i];
                    for &w in self.g.neighbors(u) {
                        if stamps[w as usize] != epoch {
                            stamps[w as usize] = epoch;
                            queue.push(w);
                        }
                    }
                }
                for &w in &queue[hi..] {
                    emit(w);
                }
                (lo, hi) = (hi, queue.len());
                if lo == hi {
                    break;
                }
            }
        });
    }
}

impl PeelProblem for KhCoreProblem<'_> {
    type Output = KhCoreResult;

    fn name(&self) -> &'static str {
        "kh-core"
    }

    fn num_elements(&self) -> usize {
        self.g.num_vertices()
    }

    fn init_priorities(&self) -> Vec<u32> {
        (0..self.g.num_vertices() as u32)
            .into_par_iter()
            .map(|v| ball_size(self.g, v, self.h, &|_| true))
            .collect()
    }

    fn incidence(&self) -> Incidence<'_> {
        Incidence::Recompute(self)
    }

    fn assemble(&self, rounds: Vec<u32>, stats: RunStats) -> KhCoreResult {
        KhCoreResult { kh_coreness: rounds, h: self.h, stats }
    }
}

impl RecomputeRule for KhCoreProblem<'_> {
    fn for_each_target(&self, e: u32, emit: &mut dyn FnMut(u32)) {
        // A death at distance <= h can shrink a ball, and every path it
        // sat on starts within the static h-hop ball around it.
        self.emit_ball(e, self.h, emit);
    }

    fn recompute(&self, t: u32, view: &SettleView<'_>) -> u32 {
        ball_size(self.g, t, self.h, &|u| view.alive(u))
    }
}

/// The parallel (k,h)-core decomposition framework.
///
/// Same [`Config`] surface as [`crate::KCore`] for the bucket
/// strategies; sampling and the offline driver do not apply to
/// recomputed priorities and are rejected by the engine (the
/// `KCORE_TECHNIQUES` env override is filtered accordingly, so the CI
/// matrix legs run this problem with the inapplicable tokens dropped).
#[derive(Debug, Clone)]
pub struct KhCore {
    config: Config,
    h: u32,
}

/// Env-override tokens that apply to recompute peeling. (VGC is
/// accepted and then ignored by the two-phase driver, mirroring the
/// snapshot-rule problems; sampling/offline would panic.)
pub(crate) const SUPPORTED_TECHNIQUES: &[&str] = &["vgc"];

/// Runs the (k,h)-core decomposition with `config` exactly as given —
/// the shared core behind [`crate::Decomposition::khcore`].
pub(crate) fn run_khcore(g: &CsrGraph, config: Config, h: u32) -> KhCoreResult {
    PeelEngine::new(&KhCoreProblem { g, h }, config).run()
}

impl KhCore {
    /// Creates the framework for the (·,h)-core family with the given
    /// configuration, after applying the `KCORE_TECHNIQUES` override
    /// restricted to the techniques recompute peeling supports.
    ///
    /// # Panics
    ///
    /// Panics if `h == 0` (a 0-hop ball is always empty) or if the
    /// configuration explicitly enables sampling or the offline driver
    /// (rejected by the engine when `run` is called).
    #[deprecated(since = "0.2.0", note = "use `Decomposition::khcore(&g, h).config(c).run()`")]
    pub fn new(config: Config, h: u32) -> Self {
        assert!(h > 0, "the (k,h)-core needs a positive hop bound h");
        Self { config: config.apply_env_overrides_filtered(SUPPORTED_TECHNIQUES), h }
    }

    /// Creates the framework with `config` exactly as given (see
    /// [`crate::Decomposition::exact_config`]).
    #[deprecated(
        since = "0.2.0",
        note = "use `Decomposition::khcore(&g, h).exact_config(c).run()`"
    )]
    pub fn with_exact_config(config: Config, h: u32) -> Self {
        assert!(h > 0, "the (k,h)-core needs a positive hop bound h");
        Self { config, h }
    }

    /// The configuration this instance runs with.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The hop bound `h`.
    pub fn h(&self) -> u32 {
        self.h
    }

    /// Decomposes `g`, returning every vertex's kh-coreness.
    pub fn run(&self, g: &CsrGraph) -> KhCoreResult {
        run_khcore(g, self.config, self.h)
    }
}

/// The result of a (k,h)-core decomposition.
#[derive(Debug, Clone)]
pub struct KhCoreResult {
    kh_coreness: Vec<u32>,
    h: u32,
    stats: RunStats,
}

impl KhCoreResult {
    /// Every vertex's kh-coreness: the largest `k` with the vertex in
    /// the (k,h)-core. For `h = 1` this is the classical coreness.
    pub fn kh_coreness(&self) -> &[u32] {
        &self.kh_coreness
    }

    /// The hop bound the decomposition ran with.
    pub fn h(&self) -> u32 {
        self.h
    }

    /// Number of vertices decomposed.
    pub fn num_vertices(&self) -> usize {
        self.kh_coreness.len()
    }

    /// The largest kh-coreness of any vertex.
    pub fn kmax(&self) -> u32 {
        self.kh_coreness.iter().copied().max().unwrap_or(0)
    }

    /// Membership of the (k,h)-core (`true` = kh-coreness `>= k`).
    pub fn members(&self, k: u32) -> Vec<bool> {
        self.kh_coreness.iter().map(|&c| c >= k).collect()
    }

    /// Run counters (rounds, subrounds, work, burdened span, ...).
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }
}

impl crate::result::DecompositionResult for KhCoreResult {
    fn num_elements(&self) -> usize {
        self.kh_coreness.len()
    }

    fn stats(&self) -> &RunStats {
        &self.stats
    }
}

/// Sequential recount oracle for the (k,h)-core decomposition.
///
/// Maintains no incremental state: every peel decision re-counts the
/// candidate's h-hop ball over the current survivor set. `O(n)`
/// recounts per removal, each a depth-`h` BFS — strictly for
/// test-sized graphs.
pub fn sequential_kh_coreness(g: &CsrGraph, h: u32) -> Vec<u32> {
    assert!(h > 0, "the (k,h)-core needs a positive hop bound h");
    let n = g.num_vertices();
    let mut alive = vec![true; n];
    let mut coreness = vec![0u32; n];
    let mut removed = 0usize;
    let mut k = 0u32;
    while removed < n {
        'peel: loop {
            for v in 0..n as u32 {
                if alive[v as usize] && ball_size(g, v, h, &|u| alive[u as usize]) <= k {
                    alive[v as usize] = false;
                    coreness[v as usize] = k;
                    removed += 1;
                    continue 'peel;
                }
            }
            break;
        }
        k += 1;
    }
    coreness
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the shim facades stay covered until removal

    use super::*;
    use crate::bz::bz_coreness;
    use crate::config::{Sampling, Techniques};
    use kcore_buckets::BucketStrategy;
    use kcore_graph::{gen, GraphBuilder};

    fn strategies() -> Vec<BucketStrategy> {
        vec![
            BucketStrategy::Single,
            BucketStrategy::Fixed(16),
            BucketStrategy::Hierarchical,
            BucketStrategy::Adaptive,
        ]
    }

    #[test]
    fn h1_is_exactly_the_k_core() {
        for (label, g) in [
            ("ba", gen::barabasi_albert(300, 3, 7)),
            ("grid", gen::grid2d(18, 15)),
            ("planted", gen::planted_core(200, 2, 40, 9)),
            ("hcns", gen::hcns(30)),
        ] {
            let want = bz_coreness(&g);
            for strategy in strategies() {
                let got = KhCore::with_exact_config(Config::with_strategy(strategy), 1).run(&g);
                assert_eq!(got.kh_coreness(), want.as_slice(), "{label} under {strategy}");
            }
        }
    }

    #[test]
    fn h2_matches_the_recount_oracle_on_families() {
        for (label, g) in [
            ("path", gen::path(25)),
            ("cycle", gen::cycle(18)),
            ("grid", gen::grid2d(6, 6)),
            ("ba", gen::barabasi_albert(40, 2, 3)),
            ("planted", gen::planted_core(35, 2, 10, 5)),
        ] {
            let want = sequential_kh_coreness(&g, 2);
            for strategy in strategies() {
                let got = KhCore::with_exact_config(Config::with_strategy(strategy), 2).run(&g);
                assert_eq!(got.kh_coreness(), want.as_slice(), "{label} under {strategy}");
            }
        }
    }

    #[test]
    fn kh_coreness_grows_with_h() {
        // Balls are nested in h, so priorities — and the cores — only
        // grow with the hop bound.
        let g = gen::barabasi_albert(60, 2, 11);
        let h1 = KhCore::with_exact_config(Config::default(), 1).run(&g);
        let h2 = KhCore::with_exact_config(Config::default(), 2).run(&g);
        let h3 = KhCore::with_exact_config(Config::default(), 3).run(&g);
        for v in 0..g.num_vertices() {
            assert!(h1.kh_coreness()[v] <= h2.kh_coreness()[v], "vertex {v}: h=1 vs h=2");
            assert!(h2.kh_coreness()[v] <= h3.kh_coreness()[v], "vertex {v}: h=2 vs h=3");
        }
        assert!(h2.kmax() > h1.kmax(), "2-hop balls must open deeper cores on a BA graph");
    }

    #[test]
    fn star_and_complete_sanity() {
        // K_n: everyone is within one hop of everyone — kh-coreness is
        // n-1 for every h.
        for h in [1u32, 2, 3] {
            let r = KhCore::with_exact_config(Config::default(), h).run(&gen::complete(9));
            assert!(r.kh_coreness().iter().all(|&c| c == 8), "K9 at h = {h}");
        }
        // A star at h = 2: every leaf sees the hub plus the other
        // leaves, the hub sees the leaves — the whole star is one
        // (n-1, 2)-core.
        let r = KhCore::with_exact_config(Config::default(), 2).run(&gen::star(12));
        assert_eq!(r.kh_coreness(), sequential_kh_coreness(&gen::star(12), 2).as_slice());
        assert!(r.kh_coreness().iter().all(|&c| c == 11), "the star collapses in one round");
    }

    #[test]
    fn deterministic_for_fixed_input() {
        let g = gen::rmat(7, 5, 0.57, 0.19, 0.19, 2);
        let a = KhCore::with_exact_config(Config::default(), 2).run(&g);
        let b = KhCore::with_exact_config(Config::default(), 2).run(&g);
        assert_eq!(a.kh_coreness(), b.kh_coreness());
        assert_eq!(a.stats().subrounds, b.stats().subrounds);
    }

    #[test]
    fn empty_and_isolated() {
        let r =
            KhCore::with_exact_config(Config::default(), 2).run(&kcore_graph::CsrGraph::empty());
        assert_eq!(r.num_vertices(), 0);
        let r = KhCore::with_exact_config(Config::default(), 2).run(&GraphBuilder::new(4).build());
        assert_eq!(r.kh_coreness(), &[0; 4]);
    }

    #[test]
    fn two_phase_subrounds_charge_two_syncs() {
        let g = gen::planted_core(60, 2, 12, 3);
        let r = KhCore::with_exact_config(Config::default(), 2).run(&g);
        let s = r.stats();
        assert!(s.subrounds > 0);
        assert_eq!(s.global_syncs, 2 * s.subrounds, "settle + recompute phases");
    }

    #[test]
    #[should_panic(expected = "Incidence::Recompute does not support the sampling technique")]
    fn explicit_sampling_is_rejected() {
        let techniques =
            Techniques { sampling: Some(Sampling::with_threshold(4)), ..Techniques::default() };
        let _ =
            KhCore::with_exact_config(Config::with_techniques(techniques), 2).run(&gen::path(10));
    }

    #[test]
    #[should_panic(expected = "Incidence::Recompute does not support the offline driver")]
    fn explicit_offline_is_rejected() {
        let _ = KhCore::with_exact_config(Config::with_techniques(Techniques::offline()), 2)
            .run(&gen::path(10));
    }

    #[test]
    fn forced_env_tokens_are_filtered_not_fatal() {
        // What the KCORE_TECHNIQUES CI legs exercise, without mutating
        // the environment: the facade's filter drops sampling/offline
        // and the run stays oracle-correct.
        let g = gen::barabasi_albert(40, 2, 5);
        let config = Config::default()
            .apply_techniques_spec_filtered("sampling,vgc,offline", SUPPORTED_TECHNIQUES);
        let got = KhCore::with_exact_config(config, 2).run(&g);
        assert_eq!(got.kh_coreness(), sequential_kh_coreness(&g, 2).as_slice());
    }
}
