//! The peeling problems shipped on the [`crate::PeelEngine`].
//!
//! Each module pairs a [`crate::PeelProblem`] implementation with a
//! public facade type mirroring the original `KCore` API (`new` /
//! `with_exact_config` / `config` / `run`) and, where useful, a
//! sequential oracle for testing:
//!
//! * [`kcore`] — vertex peeling by induced degree (the paper's
//!   subject); unit incidence, every technique applies.
//! * [`ktruss`] — edge peeling by triangle support; the snapshot-rule
//!   client that exercises the two-phase driver.
//! * [`densest`] — min-degree peeling with running density tracking;
//!   Charikar's greedy 2-approximation at round granularity.
//! * [`khcore`] — (k,h)-core / distance-generalized core; the
//!   recompute-incidence client, h-hop ball priorities recomputed over
//!   survivors through the generalized CAS clamp.
//! * [`approx_densest`] — (2+ε)-approximate densest subgraph; the
//!   threshold-policy client, peeling everything at or below
//!   `(1+ε/2)·`avg-degree per round in `O(log₁₊ε n)` rounds.
//!
//! ## Adding a problem
//!
//! 1. Define the element universe (anything countable: vertices, edges,
//!    hyperedges, cells) and a monotone integer priority.
//! 2. Implement [`crate::PeelProblem`]: sizes, initial priorities, and
//!    the decrement rule — [`crate::Incidence::Unit`] if settling an
//!    element costs each incident element exactly one unit (you get
//!    sampling + VGC for free), [`crate::Incidence::Snapshot`] if the
//!    rule needs to observe settle states (you get the two-phase
//!    driver; make the rule deterministic under the snapshot and
//!    tie-break shared charges by element id), or
//!    [`crate::Incidence::Recompute`] if a death invalidates incident
//!    priorities outright (emit a superset of affected elements and
//!    recompute each from the settle snapshot; the engine deduplicates
//!    and clamps).
//! 3. Pick the round structure via [`crate::PeelProblem::round_policy`]:
//!    the default [`crate::RoundPolicy::MinBucket`] peels exact
//!    priorities; [`crate::RoundPolicy::Threshold`] batches whole
//!    priority ranges from a threshold you compute out of the live
//!    [`crate::RoundAggregates`] (unit incidences only — see
//!    [`approx_densest`] for the worked example).
//! 4. Assemble your result from the per-element settle rounds.
//! 5. Wrap a facade that applies [`crate::Config::apply_env_overrides`]
//!    — or its `_filtered` variant when your axes reject sampling or
//!    offline — and test against a sequential oracle across all bucket
//!    strategies (see `tests/proptest_problems.rs`).

pub mod approx_densest;
pub mod densest;
pub mod kcore;
pub mod khcore;
pub mod ktruss;

pub use approx_densest::{ApproxDensest, ApproxDensestResult, SWEPT_EPSILONS};
pub use densest::{sequential_greedy_density, DensestResult, DensestSubgraph};
pub use kcore::KCore;
pub use khcore::{sequential_kh_coreness, KhCore, KhCoreResult};
pub use ktruss::{sequential_trussness, KTruss, TrussnessResult};
