//! The peeling problems shipped on the [`crate::PeelEngine`].
//!
//! Each module pairs a [`crate::PeelProblem`] implementation with a
//! public facade type mirroring the original `KCore` API (`new` /
//! `with_exact_config` / `config` / `run`) and, where useful, a
//! sequential oracle for testing:
//!
//! * [`kcore`] — vertex peeling by induced degree (the paper's
//!   subject); unit incidence, every technique applies.
//! * [`ktruss`] — edge peeling by triangle support; the snapshot-rule
//!   client that exercises the two-phase driver.
//! * [`densest`] — min-degree peeling with running density tracking;
//!   Charikar's greedy 2-approximation at round granularity.
//!
//! ## Adding a problem
//!
//! 1. Define the element universe (anything countable: vertices, edges,
//!    hyperedges, cells) and a monotone integer priority.
//! 2. Implement [`crate::PeelProblem`]: sizes, initial priorities, and
//!    the decrement rule — [`crate::Incidence::Unit`] if settling an
//!    element costs each incident element exactly one unit (you get
//!    sampling + VGC for free), [`crate::Incidence::Snapshot`] if the
//!    rule needs to observe settle states (you get the two-phase
//!    driver; make the rule deterministic under the snapshot and
//!    tie-break shared charges by element id).
//! 3. Assemble your result from the per-element settle rounds.
//! 4. Wrap a facade that applies [`crate::Config::apply_env_overrides`]
//!    and test against a sequential oracle across all bucket
//!    strategies (see `tests/proptest_problems.rs`).

pub mod densest;
pub mod kcore;
pub mod ktruss;

pub use densest::{sequential_greedy_density, DensestResult, DensestSubgraph};
pub use kcore::KCore;
pub use ktruss::{sequential_trussness, KTruss, TrussnessResult};
