//! The unified decomposition facade.
//!
//! Every decomposition in this crate is launched the same way: pick the
//! problem, optionally adjust the configuration, run.
//!
//! ```
//! use kcore::{BucketStrategy, Config, Decomposition};
//! use kcore_graph::gen;
//!
//! let g = gen::grid2d(40, 40);
//!
//! // A 40x40 grid is a 2-core once the boundary peels inward.
//! let coreness = Decomposition::kcore(&g).run();
//! assert_eq!(coreness.kmax(), 2);
//!
//! // Same entry point for every problem; builder methods tweak the
//! // config without spelling out a whole `Config`.
//! let truss = Decomposition::ktruss(&g).strategy(BucketStrategy::Hierarchical).run();
//! assert_eq!(truss.max_trussness(), 2, "grids are triangle-free");
//! assert!(Decomposition::densest(&g).run().density() > 1.9);
//! assert!(Decomposition::approx_densest(&g, 0.5).run().density() * 2.5 >= 1.9);
//! assert!(Decomposition::khcore(&g, 2).run().kmax() >= 2);
//! ```
//!
//! This replaces the per-problem constructor sprawl (`KCore::new`,
//! `KTruss::new`, ...), each of which hand-rolled the same env/config
//! handling; those entry points remain as thin deprecated shims for one
//! release.
//!
//! # Configuration resolution
//!
//! [`Decomposition::config`] (or the field shortcuts
//! [`Decomposition::strategy`] / [`Decomposition::techniques`]) applies
//! the `KCORE_TECHNIQUES` environment override at [`Decomposition::run`]
//! — filtered to the techniques the chosen problem supports, so CI's
//! forced-techniques matrix reaches every code path without panicking on
//! inapplicable tokens. [`Decomposition::exact_config`] opts out of the
//! override for callers (and tests) that assert technique-specific
//! behavior.

use crate::config::Techniques;
use crate::problems::{approx_densest, densest, kcore, khcore, ktruss};
use crate::{
    ApproxDensestResult, Config, CorenessResult, DensestResult, KhCoreResult, TrussnessResult,
};
use kcore_buckets::BucketStrategy;
use kcore_graph::{CsrGraph, GraphBackend, TriangleCtx};
use std::fmt;

/// Problem selector for k-core (see [`Decomposition::kcore`]).
#[derive(Debug, Clone, Copy)]
pub struct KcoreSpec(());

/// Problem selector for k-truss (see [`Decomposition::ktruss`]).
#[derive(Debug, Clone, Copy)]
pub struct KtrussSpec<'g> {
    /// Pre-built triangle setup supplied by [`Decomposition::with_ctx`];
    /// `None` builds one inside `run`.
    ctx: Option<&'g TriangleCtx>,
}

/// Problem selector for greedy densest subgraph (see
/// [`Decomposition::densest`]).
#[derive(Debug, Clone, Copy)]
pub struct DensestSpec(());

/// Problem selector for the (k,h)-core (see [`Decomposition::khcore`]).
#[derive(Debug, Clone, Copy)]
pub struct KhCoreSpec {
    h: u32,
}

/// Problem selector for the batched (2+ε)-approximate densest subgraph
/// (see [`Decomposition::approx_densest`]).
#[derive(Debug, Clone, Copy)]
pub struct ApproxDensestSpec {
    epsilon: f64,
}

/// A decomposition about to run: one graph, one problem, one
/// configuration. Construct through the problem selectors
/// ([`Decomposition::kcore`], [`Decomposition::ktruss`],
/// [`Decomposition::densest`], [`Decomposition::khcore`],
/// [`Decomposition::approx_densest`]), then `run`.
///
/// For a *maintained* k-core decomposition under edge batches, see
/// [`crate::maintain::DynamicGraph`] instead.
///
/// The k-core and densest-subgraph selectors accept any
/// [`GraphBackend`] (plain/mmapped CSR, [`kcore_graph::CompressedCsr`])
/// — the backend defaults to [`CsrGraph`] and is inferred from the
/// graph argument. Triangle-based problems (k-truss) and the BFS-ball
/// problems (kh-core, approx-densest) require plain CSR.
#[must_use = "a Decomposition does nothing until `run`"]
pub struct Decomposition<'g, P, G = CsrGraph> {
    g: &'g G,
    problem: P,
    config: Config,
    exact: bool,
}

// Manual impls: deriving would bound `G: Debug`/`G: Clone`, but only a
// reference to `G` is held (and graphs are intentionally not `Clone`).
impl<P: fmt::Debug, G> fmt::Debug for Decomposition<'_, P, G> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Decomposition")
            .field("problem", &self.problem)
            .field("config", &self.config)
            .field("exact", &self.exact)
            .finish_non_exhaustive()
    }
}

impl<P: Clone, G> Clone for Decomposition<'_, P, G> {
    fn clone(&self) -> Self {
        Self { g: self.g, problem: self.problem.clone(), config: self.config, exact: self.exact }
    }
}

impl<'g, P, G> Decomposition<'g, P, G> {
    fn with(g: &'g G, problem: P) -> Self {
        Self { g, problem, config: Config::default(), exact: false }
    }

    /// Replaces the whole configuration (bucket strategy, techniques,
    /// stats collection). The `KCORE_TECHNIQUES` environment override
    /// still applies at `run`; use [`Decomposition::exact_config`] to
    /// bypass it.
    pub fn config(mut self, config: Config) -> Self {
        self.config = config;
        self
    }

    /// Replaces the whole configuration and bypasses the
    /// `KCORE_TECHNIQUES` environment override — for callers (and
    /// tests) that assert technique-specific behavior.
    pub fn exact_config(mut self, config: Config) -> Self {
        self.config = config;
        self.exact = true;
        self
    }

    /// Sets just the bucket strategy.
    pub fn strategy(mut self, strategy: BucketStrategy) -> Self {
        self.config.bucket_strategy = strategy;
        self
    }

    /// Sets just the techniques block.
    pub fn techniques(mut self, techniques: Techniques) -> Self {
        self.config.techniques = techniques;
        self
    }

    /// Disables run-statistics collection (benchmark timings).
    pub fn without_stats(mut self) -> Self {
        self.config.collect_stats = false;
        self
    }

    /// The configuration as currently staged (before env resolution).
    pub fn staged_config(&self) -> &Config {
        &self.config
    }

    /// Resolves the effective config: env override unless exact, with
    /// unsupported tokens dropped per problem.
    fn resolve(&self, supported: Option<&'static [&'static str]>) -> Config {
        if self.exact {
            self.config
        } else {
            match supported {
                None => self.config.apply_env_overrides(),
                Some(tokens) => self.config.apply_env_overrides_filtered(tokens),
            }
        }
    }
}

impl<'g, G: GraphBackend> Decomposition<'g, KcoreSpec, G> {
    /// k-core decomposition of `g`: per-vertex coreness. Accepts any
    /// [`GraphBackend`]; the `KCORE_BACKEND` environment variable
    /// re-encodes plain CSR inputs through the forced backend at `run`.
    pub fn kcore(g: &'g G) -> Self {
        Self::with(g, KcoreSpec(()))
    }

    /// Runs the decomposition.
    pub fn run(self) -> CorenessResult {
        kcore::run_kcore(self.g, self.resolve(None))
    }

    /// Membership of the `k`-core (`true` = coreness `>= k`), computed
    /// directly by offline range peeling — much cheaper than a full
    /// decomposition when only one core is needed.
    pub fn members(self, k: u32) -> Vec<bool> {
        let config = self.resolve(None);
        kcore::members(self.g, &config, k)
    }
}

impl<'g> Decomposition<'g, KtrussSpec<'g>> {
    /// k-truss decomposition of `g`: per-edge trussness.
    pub fn ktruss(g: &'g CsrGraph) -> Self {
        Self::with(g, KtrussSpec { ctx: None })
    }

    /// Supplies a pre-built [`TriangleCtx`] (edge ids + supports +
    /// orientation), so `run` goes straight to the peel — the setup
    /// drops out of the critical path and one context can be reused
    /// across several configurations.
    ///
    /// The context must have been built from the same graph passed to
    /// [`Decomposition::ktruss`]; a mismatched context produces
    /// meaningless trussness (or panics on out-of-range edge ids).
    pub fn with_ctx(mut self, ctx: &'g TriangleCtx) -> Self {
        self.problem.ctx = Some(ctx);
        self
    }

    /// Runs the decomposition.
    pub fn run(self) -> TrussnessResult {
        let config = self.resolve(None);
        match self.problem.ctx {
            Some(ctx) => ktruss::run_ktruss_with_ctx(self.g, ctx, config),
            None => ktruss::run_ktruss(self.g, config),
        }
    }
}

impl<'g, G: GraphBackend> Decomposition<'g, DensestSpec, G> {
    /// Charikar's greedy densest subgraph on `g` (a 2-approximation).
    /// Accepts any [`GraphBackend`], like [`Decomposition::kcore`].
    pub fn densest(g: &'g G) -> Self {
        Self::with(g, DensestSpec(()))
    }

    /// Runs the decomposition.
    pub fn run(self) -> DensestResult {
        densest::run_densest(self.g, self.resolve(None))
    }
}

impl<'g> Decomposition<'g, KhCoreSpec> {
    /// (k,h)-core decomposition of `g` with hop bound `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h == 0` (a 0-hop ball is always empty).
    pub fn khcore(g: &'g CsrGraph, h: u32) -> Self {
        assert!(h > 0, "the (k,h)-core needs a positive hop bound h");
        Self::with(g, KhCoreSpec { h })
    }

    /// The hop bound `h`.
    pub fn h(&self) -> u32 {
        self.problem.h
    }

    /// Runs the decomposition.
    pub fn run(self) -> KhCoreResult {
        let config = self.resolve(Some(khcore::SUPPORTED_TECHNIQUES));
        khcore::run_khcore(self.g, config, self.problem.h)
    }
}

impl<'g> Decomposition<'g, ApproxDensestSpec> {
    /// Batched (2+ε)-approximate densest subgraph on `g`.
    ///
    /// # Panics
    ///
    /// Panics unless `epsilon` is finite and non-negative (`0.0` is
    /// allowed: it degenerates to per-average rounds with the plain
    /// factor 2).
    pub fn approx_densest(g: &'g CsrGraph, epsilon: f64) -> Self {
        assert!(epsilon.is_finite() && epsilon >= 0.0, "epsilon must be finite and >= 0");
        Self::with(g, ApproxDensestSpec { epsilon })
    }

    /// The approximation slack ε (factor `2 + ε`).
    pub fn epsilon(&self) -> f64 {
        self.problem.epsilon
    }

    /// Runs the decomposition.
    pub fn run(self) -> ApproxDensestResult {
        let config = self.resolve(Some(approx_densest::SUPPORTED_TECHNIQUES));
        approx_densest::run_approx_densest(self.g, config, self.problem.epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bz::bz_coreness;
    use crate::config::{Sampling, Vgc};
    use kcore_graph::gen;

    #[test]
    fn builder_matches_the_per_problem_facades() {
        #![allow(deprecated)]
        use crate::{ApproxDensest, DensestSubgraph, KCore, KTruss, KhCore};
        let g = gen::barabasi_albert(300, 3, 17);
        let config = Config { bucket_strategy: BucketStrategy::Fixed(16), ..Config::default() };
        assert_eq!(
            Decomposition::kcore(&g).exact_config(config).run().coreness(),
            KCore::with_exact_config(config).run(&g).coreness()
        );
        assert_eq!(
            Decomposition::ktruss(&g).exact_config(config).run().trussness(),
            KTruss::with_exact_config(config).run(&g).trussness()
        );
        assert_eq!(
            Decomposition::densest(&g).exact_config(config).run().density(),
            DensestSubgraph::with_exact_config(config).run(&g).density()
        );
        assert_eq!(
            Decomposition::khcore(&g, 2).exact_config(config).run().kh_coreness(),
            KhCore::with_exact_config(config, 2).run(&g).kh_coreness()
        );
        assert_eq!(
            Decomposition::approx_densest(&g, 0.5).exact_config(config).run().density(),
            ApproxDensest::with_exact_config(config, 0.5).run(&g).density()
        );
    }

    #[test]
    fn builder_shortcuts_stage_config_fields() {
        let g = gen::cycle(12);
        let d = Decomposition::kcore(&g)
            .strategy(BucketStrategy::Hierarchical)
            .techniques(Techniques {
                sampling: Some(Sampling::with_threshold(8)),
                vgc: Some(Vgc::default()),
                ..Techniques::default()
            })
            .without_stats();
        assert_eq!(d.staged_config().bucket_strategy, BucketStrategy::Hierarchical);
        assert!(d.staged_config().techniques.sampling.is_some());
        assert!(!d.staged_config().collect_stats);
        let r = d.run();
        assert_eq!(r.coreness(), bz_coreness(&g).as_slice());
        assert_eq!(r.stats().rounds, 0, "stats disabled");
    }

    #[test]
    fn members_and_parameter_accessors() {
        let g = gen::planted_core(200, 2, 40, 9);
        let coreness = Decomposition::kcore(&g).run();
        let members = Decomposition::kcore(&g).members(3);
        let want: Vec<bool> = coreness.coreness().iter().map(|&c| c >= 3).collect();
        assert_eq!(members, want);
        assert_eq!(Decomposition::khcore(&g, 2).h(), 2);
        assert_eq!(Decomposition::approx_densest(&g, 0.25).epsilon(), 0.25);
    }

    #[test]
    #[should_panic(expected = "positive hop bound")]
    fn khcore_rejects_zero_hops() {
        let g = gen::cycle(4);
        let _ = Decomposition::khcore(&g, 0);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn approx_densest_rejects_negative_epsilon() {
        let g = gen::cycle(4);
        let _ = Decomposition::approx_densest(&g, -1.0);
    }
}
