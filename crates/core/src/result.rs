//! Decomposition output.

use kcore_parallel::RunStats;
use rayon::prelude::*;

/// The result of a k-core decomposition: per-vertex coreness plus the
/// run's instrumentation counters.
#[derive(Debug, Clone, Default)]
pub struct CorenessResult {
    coreness: Vec<u32>,
    stats: RunStats,
}

impl CorenessResult {
    pub(crate) fn new(coreness: Vec<u32>, stats: RunStats) -> Self {
        Self { coreness, stats }
    }

    /// Coreness of every vertex, indexed by vertex id.
    pub fn coreness(&self) -> &[u32] {
        &self.coreness
    }

    /// Consumes the result, returning the coreness array.
    pub fn into_coreness(self) -> Vec<u32> {
        self.coreness
    }

    /// The degeneracy `k_max`: the largest coreness of any vertex
    /// (0 for the empty graph).
    pub fn kmax(&self) -> u32 {
        self.coreness.par_iter().map(|&c| c).max().unwrap_or(0)
    }

    /// Number of vertices decomposed.
    pub fn num_vertices(&self) -> usize {
        self.coreness.len()
    }

    /// Number of vertices with coreness at least `k` (the k-core size).
    pub fn core_size(&self, k: u32) -> usize {
        self.coreness.par_iter().filter(|&&c| c >= k).count()
    }

    /// Run counters (rounds, subrounds, work, burdened span, ...).
    /// All-zero when the run was configured with `collect_stats: false`.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmax_of_empty_is_zero() {
        let r = CorenessResult::default();
        assert_eq!(r.kmax(), 0);
        assert_eq!(r.num_vertices(), 0);
    }

    #[test]
    fn kmax_and_core_sizes() {
        let r = CorenessResult::new(vec![0, 1, 1, 2, 3, 3], RunStats::default());
        assert_eq!(r.kmax(), 3);
        assert_eq!(r.num_vertices(), 6);
        assert_eq!(r.core_size(0), 6);
        assert_eq!(r.core_size(1), 5);
        assert_eq!(r.core_size(2), 3);
        assert_eq!(r.core_size(3), 2);
        assert_eq!(r.core_size(4), 0);
        assert_eq!(r.coreness(), &[0, 1, 1, 2, 3, 3]);
        assert_eq!(r.into_coreness(), vec![0, 1, 1, 2, 3, 3]);
    }
}
