//! Decomposition output.
//!
//! Every decomposition in this crate returns a result type implementing
//! [`DecompositionResult`]: a uniform surface (element count, run
//! counters, version) over the problem-specific payloads, so caching
//! layers — the future `kcore-server` — can hold heterogeneous results
//! behind one trait object.
//!
//! [`CorenessResult`] is additionally *versioned and updatable in
//! place*: batch-dynamic maintenance ([`crate::maintain::DynamicGraph`])
//! keeps one standing result per graph and splices re-peeled coreness
//! values into it, bumping [`CorenessResult::version`] per batch. The
//! coreness array is copy-on-write ([`std::sync::Arc`]): readers holding
//! a [`CorenessResult::shared`] handle keep the snapshot they took while
//! the maintainer splices into its own (possibly cloned) copy.

use kcore_parallel::RunStats;
use rayon::prelude::*;
use std::sync::Arc;

/// Shared surface of all decomposition results (coreness, trussness,
/// density, (k,h)-core): the accessors a result cache needs without
/// knowing the payload.
pub trait DecompositionResult {
    /// Number of peeled elements — vertices for vertex problems,
    /// edges for k-truss.
    fn num_elements(&self) -> usize;

    /// Run counters of the pass that produced (or last updated) this
    /// result. All-zero when the run was configured with
    /// `collect_stats: false`.
    fn stats(&self) -> &RunStats;

    /// Monotone update counter: 0 for a one-shot decomposition, bumped
    /// by every maintenance splice. Results that are never maintained
    /// keep the default.
    fn version(&self) -> u64 {
        0
    }
}

/// The result of a k-core decomposition: per-vertex coreness plus the
/// run's instrumentation counters, versioned for in-place maintenance.
#[derive(Debug, Clone, Default)]
pub struct CorenessResult {
    coreness: Arc<Vec<u32>>,
    version: u64,
    stats: RunStats,
}

impl CorenessResult {
    pub(crate) fn new(coreness: Vec<u32>, stats: RunStats) -> Self {
        Self { coreness: Arc::new(coreness), version: 0, stats }
    }

    /// Coreness of every vertex, indexed by vertex id.
    pub fn coreness(&self) -> &[u32] {
        &self.coreness
    }

    /// Cheap shared handle to the coreness array as of this version.
    /// Later splices copy-on-write, leaving the handle's snapshot
    /// untouched.
    pub fn shared(&self) -> Arc<Vec<u32>> {
        Arc::clone(&self.coreness)
    }

    /// Consumes the result, returning the coreness array (cloning only
    /// if a [`CorenessResult::shared`] handle is still alive).
    pub fn into_coreness(self) -> Vec<u32> {
        Arc::try_unwrap(self.coreness).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Update counter: 0 as produced by a decomposition run, bumped by
    /// every [`CorenessResult::splice`].
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Splices updated coreness values in place, growing the vertex
    /// universe to `new_len` first (new vertices start at coreness 0),
    /// and bumps the version. Copy-on-write: a shared handle taken
    /// before the splice keeps observing the pre-splice snapshot.
    ///
    /// Returns the new version.
    ///
    /// # Panics
    ///
    /// Panics if `new_len` shrinks the array or an update is out of
    /// range.
    pub fn splice<I>(&mut self, new_len: usize, updates: I) -> u64
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        assert!(new_len >= self.coreness.len(), "splice cannot shrink the vertex universe");
        let coreness = Arc::make_mut(&mut self.coreness);
        coreness.resize(new_len, 0);
        for (v, c) in updates {
            coreness[v as usize] = c;
        }
        self.version += 1;
        self.version
    }

    /// Replaces the run counters (maintenance installs the counters of
    /// the re-peel that produced the latest splice).
    pub(crate) fn set_stats(&mut self, stats: RunStats) {
        self.stats = stats;
    }

    /// The degeneracy `k_max`: the largest coreness of any vertex
    /// (0 for the empty graph).
    pub fn kmax(&self) -> u32 {
        self.coreness.par_iter().map(|&c| c).max().unwrap_or(0)
    }

    /// Number of vertices decomposed.
    pub fn num_vertices(&self) -> usize {
        self.coreness.len()
    }

    /// Number of vertices with coreness at least `k` (the k-core size).
    pub fn core_size(&self, k: u32) -> usize {
        self.coreness.par_iter().filter(|&&c| c >= k).count()
    }

    /// Run counters (rounds, subrounds, work, burdened span, ...).
    /// All-zero when the run was configured with `collect_stats: false`.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }
}

impl DecompositionResult for CorenessResult {
    fn num_elements(&self) -> usize {
        self.coreness.len()
    }

    fn stats(&self) -> &RunStats {
        &self.stats
    }

    fn version(&self) -> u64 {
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmax_of_empty_is_zero() {
        let r = CorenessResult::default();
        assert_eq!(r.kmax(), 0);
        assert_eq!(r.num_vertices(), 0);
        assert_eq!(r.version(), 0);
    }

    #[test]
    fn kmax_and_core_sizes() {
        let r = CorenessResult::new(vec![0, 1, 1, 2, 3, 3], RunStats::default());
        assert_eq!(r.kmax(), 3);
        assert_eq!(r.num_vertices(), 6);
        assert_eq!(r.core_size(0), 6);
        assert_eq!(r.core_size(1), 5);
        assert_eq!(r.core_size(2), 3);
        assert_eq!(r.core_size(3), 2);
        assert_eq!(r.core_size(4), 0);
        assert_eq!(r.coreness(), &[0, 1, 1, 2, 3, 3]);
        assert_eq!(r.into_coreness(), vec![0, 1, 1, 2, 3, 3]);
    }

    #[test]
    fn splice_updates_grow_and_bump_version() {
        let mut r = CorenessResult::new(vec![1, 2, 2], RunStats::default());
        assert_eq!(r.splice(5, [(1, 3), (4, 1)]), 1);
        assert_eq!(r.coreness(), &[1, 3, 2, 0, 1]);
        assert_eq!(r.splice(5, []), 2);
        assert_eq!(r.version(), 2);
    }

    #[test]
    fn splice_is_copy_on_write_for_shared_readers() {
        let mut r = CorenessResult::new(vec![1, 2, 2], RunStats::default());
        let snapshot = r.shared();
        r.splice(3, [(0, 9)]);
        assert_eq!(snapshot.as_slice(), &[1, 2, 2], "reader keeps its version");
        assert_eq!(r.coreness(), &[9, 2, 2]);
        drop(snapshot);
        assert_eq!(r.into_coreness(), vec![9, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "shrink")]
    fn splice_rejects_shrinking() {
        let mut r = CorenessResult::new(vec![1, 2], RunStats::default());
        r.splice(1, []);
    }

    #[test]
    fn trait_surface_matches_inherent_accessors() {
        let r = CorenessResult::new(vec![1, 2], RunStats::default());
        let dyn_r: &dyn DecompositionResult = &r;
        assert_eq!(dyn_r.num_elements(), 2);
        assert_eq!(dyn_r.version(), 0);
        assert_eq!(dyn_r.stats().rounds, 0);
    }
}
