//! The work-efficient parallel peeling framework (paper Alg. 1).
//!
//! Round `k` peels every vertex of induced degree `k` until none
//! remain, then advances to `k + 1`. Within a round, each *subround*
//! peels the current frontier in parallel:
//!
//! 1. every frontier vertex settles (its coreness is `k`),
//! 2. each of its still-active neighbors gets an atomic **clamped
//!    decrement** — the induced degree decreases only while it exceeds
//!    `k`, so it never drops below the current round and every
//!    intermediate value is observed by exactly one decrementing
//!    thread,
//! 3. the unique thread that moves a neighbor *to* `k` inserts it into
//!    the parallel hash bag, which becomes the next subround's
//!    frontier; decrements that stay above `k` are reported to the
//!    bucket structure instead.
//!
//! Initial per-round frontiers come from a pluggable
//! [`BucketStructure`]; total work is `O(n + m)` plus the structure's
//! maintenance cost (Thm. 3.1).

use crate::{Config, CorenessResult};
use kcore_buckets::{BucketStrategy, BucketStructure, DegreeView, HierarchicalBuckets};
use kcore_graph::CsrGraph;
use kcore_parallel::primitives::pack_index;
use kcore_parallel::{HashBag, RunStats};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Coreness sentinel for vertices that have not settled yet.
const UNSET: u32 = u32::MAX;

/// Live peeling state exposed to bucket structures.
struct LiveView<'a> {
    deg: &'a [AtomicU32],
    coreness: &'a [AtomicU32],
}

impl DegreeView for LiveView<'_> {
    fn key(&self, v: u32) -> u32 {
        self.deg[v as usize].load(Ordering::Relaxed)
    }

    fn alive(&self, v: u32) -> bool {
        self.coreness[v as usize].load(Ordering::Relaxed) == UNSET
    }
}

/// The parallel k-core decomposition framework.
#[derive(Debug, Clone, Default)]
pub struct KCore {
    config: Config,
}

impl KCore {
    /// Creates the framework with the given configuration.
    pub fn new(config: Config) -> Self {
        Self { config }
    }

    /// The configuration this instance runs with.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Decomposes `g`, returning every vertex's coreness.
    pub fn run(&self, g: &CsrGraph) -> CorenessResult {
        let n = g.num_vertices();
        let mut stats = RunStats::default();
        if n == 0 {
            return CorenessResult::new(Vec::new(), stats);
        }
        let init_degrees = g.degrees();
        let deg: Vec<AtomicU32> = init_degrees.iter().map(|&d| AtomicU32::new(d)).collect();
        let coreness: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNSET)).collect();

        // Adaptive starts on the flat array and upgrades to HBS at the
        // θ-core; the other strategies are fixed for the whole run.
        let mut bucket: Box<dyn BucketStructure> = self.config.bucket_strategy.build(&init_degrees);
        let mut adaptive_pending = matches!(self.config.bucket_strategy, BucketStrategy::Adaptive);

        let mut bag = HashBag::new(n);
        let collect_stats = self.config.collect_stats;
        let max_deg = *init_degrees.iter().max().unwrap_or(&0);
        let mut remaining = n;
        let mut k = 0u32;
        while remaining > 0 {
            assert!(
                k <= max_deg,
                "peeling stalled: {remaining} vertices left after round {max_deg}"
            );
            let view = LiveView { deg: &deg, coreness: &coreness };
            if adaptive_pending && k >= self.config.adaptive_theta {
                let live = pack_index(n, |v| view.alive(v as u32));
                let entries = live.iter().map(|&v| (v, view.key(v)));
                bucket = Box::new(HierarchicalBuckets::with_entries(k, entries));
                adaptive_pending = false;
            }
            let mut frontier = bucket.next_frontier(k, &view);
            let mut subrounds = 0u32;
            while !frontier.is_empty() {
                subrounds += 1;
                remaining -= frontier.len();
                if collect_stats {
                    stats.max_frontier = stats.max_frontier.max(frontier.len());
                    let arcs: usize = frontier.iter().map(|&v| g.degree(v)).sum();
                    stats.work += (frontier.len() + arcs) as u64;
                    stats.record_subround(1, 1);
                }
                let bag_ref = &bag;
                let bucket_ref = &*bucket;
                frontier.par_iter().for_each(|&v| {
                    coreness[v as usize].store(k, Ordering::Relaxed);
                    for &u in g.neighbors(v) {
                        // Clamped decrement: only while above k. Dead
                        // vertices already sit at their (lower) peel
                        // round, so the guard also excludes them.
                        let prev = deg[u as usize].fetch_update(
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                            |d| {
                                if d > k {
                                    Some(d - 1)
                                } else {
                                    None
                                }
                            },
                        );
                        if let Ok(prev) = prev {
                            if prev == k + 1 {
                                // This thread moved u to k: u joins the
                                // next subround exactly once.
                                bag_ref.insert(u);
                            } else {
                                bucket_ref.on_decrease(u, prev - 1, k);
                            }
                        }
                    }
                });
                frontier = bag.extract_all();
            }
            if collect_stats {
                stats.record_round(subrounds);
            }
            k += 1;
        }

        let coreness: Vec<u32> = coreness.into_iter().map(AtomicU32::into_inner).collect();
        CorenessResult::new(coreness, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bz::bz_coreness;
    use kcore_graph::{gen, GraphBuilder};

    /// Every bucketing strategy the framework supports.
    fn strategies() -> Vec<BucketStrategy> {
        vec![
            BucketStrategy::Single,
            BucketStrategy::Fixed(16),
            BucketStrategy::Hierarchical,
            BucketStrategy::Adaptive,
        ]
    }

    /// Asserts that every strategy agrees with the BZ oracle on `g`.
    fn assert_matches_oracle(g: &CsrGraph, label: &str) {
        let want = bz_coreness(g);
        for strategy in strategies() {
            let got = KCore::new(Config::with_strategy(strategy)).run(g);
            assert_eq!(
                got.coreness(),
                want.as_slice(),
                "{label}: strategy {strategy} disagrees with BZ"
            );
        }
    }

    #[test]
    fn empty_graph() {
        let r = KCore::new(Config::default()).run(&CsrGraph::empty());
        assert_eq!(r.num_vertices(), 0);
        assert_eq!(r.kmax(), 0);
    }

    #[test]
    fn isolated_vertices_have_coreness_zero() {
        let g = GraphBuilder::new(5).build();
        let r = KCore::new(Config::default()).run(&g);
        assert_eq!(r.coreness(), &[0; 5]);
        assert_eq!(r.kmax(), 0);
    }

    #[test]
    fn structural_graphs_match_oracle() {
        assert_matches_oracle(&gen::path(40), "path");
        assert_matches_oracle(&gen::cycle(33), "cycle");
        assert_matches_oracle(&gen::star(65), "star");
        assert_matches_oracle(&gen::complete(20), "complete");
        assert_matches_oracle(&gen::complete_bipartite(4, 9), "bipartite");
    }

    #[test]
    fn grid_families_match_oracle() {
        assert_matches_oracle(&gen::grid2d(24, 17), "grid2d");
        assert_matches_oracle(&gen::grid3d(6, 7, 8), "grid3d");
        assert_matches_oracle(&gen::mesh(15, 15), "mesh");
        assert_matches_oracle(&gen::road(20, 20, 0.15, 0.1, 7), "road");
    }

    #[test]
    fn random_families_match_oracle() {
        assert_matches_oracle(&gen::erdos_renyi(300, 900, 3), "erdos_renyi");
        assert_matches_oracle(&gen::barabasi_albert(400, 3, 11), "barabasi_albert");
        assert_matches_oracle(&gen::rmat(9, 8, 0.57, 0.19, 0.19, 5), "rmat");
        assert_matches_oracle(&gen::knn(250, 4, 13), "knn");
        assert_matches_oracle(&gen::planted_core(200, 2, 40, 9), "planted_core");
    }

    #[test]
    fn hcns_exercises_deep_bucket_hierarchies() {
        assert_matches_oracle(&gen::hcns(40), "hcns");
    }

    #[test]
    fn grid_kmax_is_2() {
        let g = gen::grid2d(100, 100);
        let r = KCore::new(Config::default()).run(&g);
        assert_eq!(r.kmax(), 2);
    }

    #[test]
    fn stats_are_collected_by_default() {
        let g = gen::grid2d(30, 30);
        let r = KCore::new(Config::default()).run(&g);
        let s = r.stats();
        assert!(s.rounds >= 3, "grid peels over rounds 0..=2, got {}", s.rounds);
        assert!(s.subrounds >= s.rounds);
        assert!(s.work as usize >= g.num_vertices() + g.num_arcs());
        assert!(s.max_frontier > 0);
        assert_eq!(s.subrounds_per_round.len(), s.rounds as usize);
    }

    #[test]
    fn stats_can_be_disabled() {
        let g = gen::grid2d(10, 10);
        let config = Config { collect_stats: false, ..Config::default() };
        let r = KCore::new(config).run(&g);
        assert_eq!(r.stats().rounds, 0);
        assert_eq!(r.stats().work, 0);
        // Coreness is still correct.
        assert_eq!(r.coreness(), bz_coreness(&g).as_slice());
    }

    #[test]
    fn adaptive_switchover_crosses_theta() {
        // planted_core has kmax >= 39 > θ = 16, so Adaptive upgrades to
        // HBS mid-run; the result must be unaffected.
        let g = gen::planted_core(300, 2, 60, 21);
        let adaptive = KCore::new(Config::default()).run(&g);
        assert_eq!(adaptive.coreness(), bz_coreness(&g).as_slice());
        assert!(adaptive.kmax() >= 16);
    }

    #[test]
    fn peeling_is_deterministic_for_fixed_input() {
        let g = gen::rmat(8, 6, 0.57, 0.19, 0.19, 2);
        let a = KCore::new(Config::default()).run(&g);
        let b = KCore::new(Config::default()).run(&g);
        assert_eq!(a.coreness(), b.coreness());
    }
}
