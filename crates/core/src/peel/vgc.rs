//! Vertical granularity control (paper Sec. 4.2) and the fused
//! settle-and-decrement hot path of the unit-incidence driver.
//!
//! On sparse inputs most subrounds move a handful of elements: the
//! global synchronization between subrounds (burden ω in the span
//! model) dwarfs the peeling itself, and the round dissolves into a
//! long chain of tiny fork–joins. VGC collapses them *vertically*: when
//! a worker's clamped decrement moves an incident element down to the
//! current round, the worker keeps going — it settles that element
//! immediately and expands it in the same task, chasing the local peel
//! chain sequentially instead of bouncing each hop through the hash
//! bag.
//!
//! The chase is bounded by [`crate::Vgc::chain_limit`]: past the bound,
//! discovered elements spill to the hash bag and the next subround
//! picks them up, so one worker can never serialize more than `L`
//! settles. The subround's longest chase is the `chain` term of the
//! burdened span (`Õ(ρ′(ω + L))`, Tab. 2) and feeds
//! [`kcore_parallel::RunStats::peak_chain`].
//!
//! Correctness is unchanged from Alg. 1: the clamped decrement already
//! guarantees a unique thread moves each element to `k`, and that
//! thread peeling it immediately (instead of a later subround) only
//! reorders work within the round — the settle round at round `k` is
//! `k` either way. This is exactly why the fused driver is restricted
//! to [`crate::Incidence::Unit`] problems: unit decrements over static
//! lists commute, so no settle barrier is needed.

use super::engine::{clamped_decrement, OnlineCtx, PeelProblem};
use kcore_check::sync::atomic::Ordering;
use kcore_obs::{counter, gauge_max};

/// Settles `v` at round `round`, processes its removals, and — with
/// VGC enabled (`ctx.chain_limit > 0`) — chases the local peel chain
/// up to the chain bound. The plain framework is the `chain_limit == 0`
/// case: every discovered element goes straight to the hash bag.
///
/// `floor` is the round's clamp value: equal to `round` under
/// [`crate::RoundPolicy::MinBucket`] (the historical behavior), the
/// round's peel threshold under [`crate::RoundPolicy::Threshold`] —
/// there an element dragged down to the *threshold* settles in the
/// current round even though its recorded settle round is the round
/// index.
pub(crate) fn peel_from<P: PeelProblem>(ctx: &OnlineCtx<'_, P>, v: u32, round: u32, floor: u32) {
    let mut pending: Vec<u32> = Vec::new();
    let mut chased = 0u64;
    let mut chased_work = 0u64;
    let limit = ctx.chain_limit as u64;
    let mut cur = v;
    loop {
        ctx.settled[cur as usize].store(round, Ordering::Relaxed);
        ctx.problem.on_settle(cur, round);
        for &u in ctx.inc.incident(cur) {
            if let Some(s) = ctx.sampling {
                if s.in_sample_mode(u) {
                    s.on_neighbor_removed(cur, u, floor, ctx);
                    continue;
                }
            }
            // Clamped decrement: only while above the floor. Dead
            // elements already sit at or below it, so the guard also
            // excludes them.
            if let Some(prev) = clamped_decrement(&ctx.prio[u as usize], floor) {
                if prev == floor + 1 {
                    // This thread moved u to the floor: u is peeled
                    // exactly once — chased locally under VGC, else via
                    // the bag.
                    if chased < limit {
                        pending.push(u);
                    } else {
                        ctx.bag.insert(u);
                    }
                } else {
                    ctx.bucket.on_decrease(u, prev, prev - 1, floor);
                }
            }
        }
        match pending.pop() {
            Some(next) if chased < limit => {
                chased += 1;
                chased_work += 1 + ctx.inc.num_incident(next) as u64;
                cur = next;
            }
            Some(next) => {
                // Chain budget exhausted mid-expansion: spill the rest.
                ctx.bag.insert(next);
                for u in pending.drain(..) {
                    ctx.bag.insert(u);
                }
                break;
            }
            None => break,
        }
    }
    if chased > 0 {
        counter!(ctx.counters.chased, "vgc.chased", chased);
        counter!(ctx.counters.chased_work, "vgc.chased_work", chased_work);
        gauge_max!(ctx.counters.chain, "vgc.chain", chased);
    }
}
