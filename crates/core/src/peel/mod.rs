//! The work-efficient parallel peeling framework (paper Alg. 1) and its
//! Sec. 4 techniques subsystem.
//!
//! Round `k` peels every vertex of induced degree `k` until none
//! remain, then advances to `k + 1`. Within a round, each *subround*
//! peels the current frontier in parallel:
//!
//! 1. every frontier vertex settles (its coreness is `k`),
//! 2. each of its still-active neighbors gets an atomic **clamped
//!    decrement** — the induced degree decreases only while it exceeds
//!    `k`, so it never drops below the current round and every
//!    intermediate value is observed by exactly one decrementing
//!    thread,
//! 3. the unique thread that moves a neighbor *to* `k` inserts it into
//!    the parallel hash bag, which becomes the next subround's
//!    frontier; decrements that stay above `k` are reported to the
//!    bucket structure instead.
//!
//! Initial per-round frontiers come from a pluggable
//! [`BucketStructure`]; total work is `O(n + m)` plus the structure's
//! maintenance cost (Thm. 3.1).
//!
//! The techniques subsystem plugs into this loop behind
//! [`crate::Techniques`]:
//!
//! * [`sampling`] — Sec. 4.1's sampling scheme: high-degree vertices
//!   track an approximate induced degree over a hashed edge sample, and
//!   are only peeled after an exact recount.
//! * [`vgc`] — Sec. 4.2's vertical granularity control: a worker chases
//!   the local peel chain sequentially instead of bouncing every
//!   frontier hit through the hash bag.
//! * [`offline`] — the Julienne-style offline driver: per subround,
//!   gather the frontier's neighborhood, histogram it, and apply bulk
//!   decrements without per-edge atomics.

pub mod offline;
pub mod sampling;
pub mod vgc;

use crate::config::PeelMode;
use crate::{Config, CorenessResult};
use kcore_buckets::{BucketStrategy, BucketStructure, DegreeView, HierarchicalBuckets};
use kcore_graph::CsrGraph;
use kcore_parallel::primitives::pack_index;
use kcore_parallel::{HashBag, RunStats, TechniqueCounters};
use rayon::prelude::*;
use sampling::SamplingState;
use std::sync::atomic::{AtomicU32, Ordering};

/// Coreness sentinel for vertices that have not settled yet.
pub(crate) const UNSET: u32 = u32::MAX;

/// Live peeling state exposed to bucket structures.
pub(crate) struct LiveView<'a> {
    pub(crate) deg: &'a [AtomicU32],
    pub(crate) coreness: &'a [AtomicU32],
}

impl DegreeView for LiveView<'_> {
    fn key(&self, v: u32) -> u32 {
        self.deg[v as usize].load(Ordering::Relaxed)
    }

    fn alive(&self, v: u32) -> bool {
        self.coreness[v as usize].load(Ordering::Relaxed) == UNSET
    }
}

/// Error raised when a round's initial frontier contains a sample-mode
/// vertex whose exact induced degree is *below* the round — the vertex
/// should have been peeled earlier, so every coreness settled since is
/// suspect. The run is repeated without sampling (Las-Vegas recovery).
pub(crate) struct Polluted;

/// The parallel k-core decomposition framework.
#[derive(Debug, Clone, Default)]
pub struct KCore {
    config: Config,
}

impl KCore {
    /// Creates the framework with the given configuration, after
    /// applying the `KCORE_TECHNIQUES` environment override (see
    /// [`Config::apply_env_overrides`]).
    pub fn new(config: Config) -> Self {
        Self { config: config.apply_env_overrides() }
    }

    /// Creates the framework with `config` exactly as given, bypassing
    /// the `KCORE_TECHNIQUES` environment override. For callers (and
    /// tests) that assert technique-specific behavior; prefer
    /// [`KCore::new`] everywhere else so CI's forced-techniques matrix
    /// reaches your code path.
    pub fn with_exact_config(config: Config) -> Self {
        Self { config }
    }

    /// The configuration this instance runs with.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Decomposes `g`, returning every vertex's coreness.
    ///
    /// [`RunStats`] describe the successful attempt;
    /// [`RunStats::restarts`] additionally counts aborted sampling
    /// attempts (expected 0 — see [`crate::Sampling`]).
    pub fn run(&self, g: &CsrGraph) -> CorenessResult {
        if g.num_vertices() == 0 {
            return CorenessResult::new(Vec::new(), RunStats::default());
        }
        let mut config = self.config;
        let mut restarts = 0u64;
        loop {
            let mut stats = RunStats::default();
            let attempt = match config.techniques.mode {
                PeelMode::Online => online_run(&config, g, &mut stats),
                PeelMode::Offline(off) => Ok(offline::run(&config, off, g, &mut stats)),
            };
            match attempt {
                Ok(coreness) => {
                    stats.restarts = restarts;
                    return CorenessResult::new(coreness, stats);
                }
                Err(Polluted) => {
                    restarts += 1;
                    config.techniques.sampling = None;
                }
            }
        }
    }

    /// Membership of the `k`-core (`true` = vertex has coreness `>= k`),
    /// computed directly by offline range peeling: every vertex of
    /// degree below `k` is extracted in one bulk range step and the
    /// cascade is driven by histogram decrements. Much cheaper than a
    /// full decomposition when only one core is needed (the serving
    /// path for "give me the k-core" queries).
    pub fn kcore_members(&self, g: &CsrGraph, k: u32) -> Vec<bool> {
        let off = match self.config.techniques.mode {
            PeelMode::Offline(off) => off,
            PeelMode::Online => crate::config::Offline::default(),
        };
        offline::kcore_membership(g, k, off)
    }
}

/// Swaps the adaptive strategy's flat array for HBS once round `k`
/// reaches θ. Shared by the online and offline drivers.
pub(crate) fn upgrade_adaptive_if_due(
    bucket: &mut Box<dyn BucketStructure>,
    pending: &mut bool,
    k: u32,
    theta: u32,
    n: usize,
    view: &LiveView<'_>,
) {
    if *pending && k >= theta {
        let live = pack_index(n, |v| view.alive(v as u32));
        let entries = live.iter().map(|&v| (v, view.key(v)));
        *bucket = Box::new(HierarchicalBuckets::with_entries(k, entries));
        *pending = false;
    }
}

/// Shared references threaded through one online subround's parallel
/// peel (and the sampling recounts it triggers).
pub(crate) struct OnlineCtx<'a> {
    pub(crate) g: &'a CsrGraph,
    pub(crate) deg: &'a [AtomicU32],
    pub(crate) coreness: &'a [AtomicU32],
    pub(crate) bag: &'a HashBag,
    pub(crate) bucket: &'a dyn BucketStructure,
    pub(crate) sampling: Option<&'a SamplingState>,
    pub(crate) counters: &'a TechniqueCounters,
    /// VGC chain bound; 0 disables chasing.
    pub(crate) chain_limit: u32,
}

/// The online (hash-bag) driver: Alg. 1 with the sampling and VGC hooks.
fn online_run(config: &Config, g: &CsrGraph, stats: &mut RunStats) -> Result<Vec<u32>, Polluted> {
    let n = g.num_vertices();
    let init_degrees = g.degrees();
    let deg: Vec<AtomicU32> = init_degrees.iter().map(|&d| AtomicU32::new(d)).collect();
    let coreness: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNSET)).collect();

    let mut sampling =
        config.techniques.sampling.and_then(|cfg| SamplingState::build(g, &init_degrees, cfg));
    if let Some(s) = &sampling {
        stats.sampled_vertices = s.num_sampled() as u64;
    }
    let counters = TechniqueCounters::new();
    let chain_limit = config.techniques.vgc.map_or(0, |v| v.chain_limit);

    // Adaptive starts on the flat array and upgrades to HBS at the
    // θ-core; the other strategies are fixed for the whole run.
    let mut bucket: Box<dyn BucketStructure> = config.bucket_strategy.build(&init_degrees);
    let mut adaptive_pending = matches!(config.bucket_strategy, BucketStrategy::Adaptive);

    let mut bag = HashBag::new(n);
    let collect_stats = config.collect_stats;
    let max_deg = *init_degrees.iter().max().unwrap_or(&0);
    let mut remaining = n;
    let mut k = 0u32;
    while remaining > 0 {
        assert!(k <= max_deg, "peeling stalled: {remaining} vertices left after round {max_deg}");
        let view = LiveView { deg: &deg, coreness: &coreness };
        upgrade_adaptive_if_due(
            &mut bucket,
            &mut adaptive_pending,
            k,
            config.adaptive_theta,
            n,
            &view,
        );
        let mut frontier = bucket.next_frontier(k, &view);
        if let Some(s) = &sampling {
            // Sample-mode vertices surface with their last recounted
            // degree; confirm it exactly before peeling them.
            s.validate_frontier(&frontier, k, g, &coreness, &counters)?;
        }
        let mut subrounds = 0u32;
        loop {
            if frontier.is_empty() {
                // End-of-round validation: exact recounts of sample-mode
                // vertices near the boundary (all of them under
                // `Validation::Full`). Anything caught at `<= k` belongs
                // to this round and re-opens it.
                let caught = match sampling.as_mut() {
                    Some(s) => s.validate_round_end(k, g, &deg, &coreness, &*bucket, &counters),
                    None => Vec::new(),
                };
                if caught.is_empty() {
                    break;
                }
                frontier = caught;
            }
            subrounds += 1;
            counters.reset_subround();
            remaining -= frontier.len();
            if collect_stats {
                stats.max_frontier = stats.max_frontier.max(frontier.len());
                let arcs: usize = frontier.iter().map(|&v| g.degree(v)).sum();
                stats.work += (frontier.len() + arcs) as u64;
            }
            let ctx = OnlineCtx {
                g,
                deg: &deg,
                coreness: &coreness,
                bag: &bag,
                bucket: &*bucket,
                sampling: sampling.as_ref(),
                counters: &counters,
                chain_limit,
            };
            frontier.par_iter().for_each(|&v| vgc::peel_from(&ctx, v, k));
            remaining -= counters.chased.load(Ordering::Relaxed) as usize;
            if collect_stats {
                stats.work += counters.chased_work.load(Ordering::Relaxed);
                stats.record_subround(1, counters.chain.get().max(1));
            }
            frontier = bag.extract_all();
        }
        if collect_stats {
            stats.record_round(subrounds);
        }
        k += 1;
    }
    counters.merge_sampling_into(stats);
    Ok(coreness.into_iter().map(AtomicU32::into_inner).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bz::bz_coreness;
    use crate::config::{PeelMode, Sampling, Techniques, Validation, Vgc};
    use kcore_graph::{gen, GraphBuilder};
    use kcore_parallel::pool::with_threads;

    /// Every bucketing strategy the framework supports.
    fn strategies() -> Vec<BucketStrategy> {
        vec![
            BucketStrategy::Single,
            BucketStrategy::Fixed(16),
            BucketStrategy::Hierarchical,
            BucketStrategy::Adaptive,
        ]
    }

    /// Technique variants the oracle tests sweep. Sampling uses a low
    /// threshold so sample mode actually engages on test-sized graphs.
    fn technique_variants() -> Vec<(Techniques, &'static str)> {
        let sampling = Some(Sampling::with_threshold(4));
        vec![
            (Techniques::default(), "baseline"),
            (Techniques { sampling, ..Techniques::default() }, "sampling"),
            (Techniques { vgc: Some(Vgc::default()), ..Techniques::default() }, "vgc"),
            (
                Techniques { sampling, vgc: Some(Vgc { chain_limit: 8 }), ..Techniques::default() },
                "sampling+vgc",
            ),
            (Techniques::offline(), "offline"),
        ]
    }

    /// Asserts that every strategy × technique combination agrees with
    /// the BZ oracle on `g`.
    fn assert_matches_oracle(g: &CsrGraph, label: &str) {
        let want = bz_coreness(g);
        for strategy in strategies() {
            for (techniques, tname) in technique_variants() {
                let config = Config { bucket_strategy: strategy, techniques, ..Config::default() };
                let got = KCore::new(config).run(g);
                assert_eq!(
                    got.coreness(),
                    want.as_slice(),
                    "{label}: strategy {strategy} + {tname} disagrees with BZ"
                );
            }
        }
    }

    #[test]
    fn empty_graph() {
        let r = KCore::new(Config::default()).run(&CsrGraph::empty());
        assert_eq!(r.num_vertices(), 0);
        assert_eq!(r.kmax(), 0);
    }

    #[test]
    fn isolated_vertices_have_coreness_zero() {
        let g = GraphBuilder::new(5).build();
        let r = KCore::new(Config::default()).run(&g);
        assert_eq!(r.coreness(), &[0; 5]);
        assert_eq!(r.kmax(), 0);
    }

    #[test]
    fn structural_graphs_match_oracle() {
        assert_matches_oracle(&gen::path(40), "path");
        assert_matches_oracle(&gen::cycle(33), "cycle");
        assert_matches_oracle(&gen::star(65), "star");
        assert_matches_oracle(&gen::complete(20), "complete");
        assert_matches_oracle(&gen::complete_bipartite(4, 9), "bipartite");
    }

    #[test]
    fn grid_families_match_oracle() {
        assert_matches_oracle(&gen::grid2d(24, 17), "grid2d");
        assert_matches_oracle(&gen::grid3d(6, 7, 8), "grid3d");
        assert_matches_oracle(&gen::mesh(15, 15), "mesh");
        assert_matches_oracle(&gen::road(20, 20, 0.15, 0.1, 7), "road");
    }

    #[test]
    fn random_families_match_oracle() {
        assert_matches_oracle(&gen::erdos_renyi(300, 900, 3), "erdos_renyi");
        assert_matches_oracle(&gen::barabasi_albert(400, 3, 11), "barabasi_albert");
        assert_matches_oracle(&gen::rmat(9, 8, 0.57, 0.19, 0.19, 5), "rmat");
        assert_matches_oracle(&gen::knn(250, 4, 13), "knn");
        assert_matches_oracle(&gen::planted_core(200, 2, 40, 9), "planted_core");
    }

    #[test]
    fn hcns_exercises_deep_bucket_hierarchies() {
        assert_matches_oracle(&gen::hcns(40), "hcns");
    }

    #[test]
    fn grid_kmax_is_2() {
        let g = gen::grid2d(100, 100);
        let r = KCore::new(Config::default()).run(&g);
        assert_eq!(r.kmax(), 2);
    }

    #[test]
    fn stats_are_collected_by_default() {
        let g = gen::grid2d(30, 30);
        let r = KCore::new(Config::default()).run(&g);
        let s = r.stats();
        assert!(s.rounds >= 3, "grid peels over rounds 0..=2, got {}", s.rounds);
        assert!(s.subrounds >= s.rounds);
        assert!(s.work as usize >= g.num_vertices() + g.num_arcs());
        assert!(s.max_frontier > 0);
        assert_eq!(s.subrounds_per_round.len(), s.rounds as usize);
    }

    #[test]
    fn stats_can_be_disabled() {
        let g = gen::grid2d(10, 10);
        let config = Config { collect_stats: false, ..Config::default() };
        let r = KCore::new(config).run(&g);
        assert_eq!(r.stats().rounds, 0);
        assert_eq!(r.stats().work, 0);
        // Coreness is still correct.
        assert_eq!(r.coreness(), bz_coreness(&g).as_slice());
    }

    #[test]
    fn adaptive_switchover_crosses_theta() {
        // planted_core has kmax >= 39 > θ = 16, so Adaptive upgrades to
        // HBS mid-run; the result must be unaffected.
        let g = gen::planted_core(300, 2, 60, 21);
        let adaptive = KCore::new(Config::default()).run(&g);
        assert_eq!(adaptive.coreness(), bz_coreness(&g).as_slice());
        assert!(adaptive.kmax() >= 16);
    }

    #[test]
    fn peeling_is_deterministic_for_fixed_input() {
        let g = gen::rmat(8, 6, 0.57, 0.19, 0.19, 2);
        let a = KCore::new(Config::default()).run(&g);
        let b = KCore::new(Config::default()).run(&g);
        assert_eq!(a.coreness(), b.coreness());
    }

    #[test]
    fn sampling_counters_populate_on_power_law() {
        let g = gen::barabasi_albert(3000, 4, 11);
        let techniques = Techniques {
            sampling: Some(Sampling::with_threshold(16)),
            vgc: Some(Vgc::default()),
            mode: PeelMode::Online,
        };
        let r = KCore::with_exact_config(Config::with_techniques(techniques)).run(&g);
        assert_eq!(r.coreness(), bz_coreness(&g).as_slice());
        let s = r.stats();
        assert!(s.sampled_vertices > 0, "hubs above the threshold must enter sample mode");
        assert!(s.resamples > 0, "sample-mode vertices are only peeled after exact recounts");
        assert!(s.validate_calls > 0, "end-of-round validation must have run");
        assert!(s.peak_chain >= 1, "subround chains feed peak_chain");
        assert_eq!(s.restarts, 0, "full validation never restarts");
    }

    #[test]
    fn sampling_full_validation_is_exact_under_concurrency() {
        // Hammer the concurrent recount paths: low threshold samples
        // most of a dense power-law graph.
        for seed in 0..5 {
            let g = gen::barabasi_albert(1200, 6, seed);
            let techniques =
                Techniques { sampling: Some(Sampling::with_threshold(8)), ..Techniques::default() };
            let r = KCore::with_exact_config(Config::with_techniques(techniques)).run(&g);
            assert_eq!(r.coreness(), bz_coreness(&g).as_slice(), "seed {seed}");
        }
    }

    #[test]
    fn vgc_collapses_subrounds_on_a_path() {
        // A path peels inward from both ends: without VGC that is ~n/2
        // subrounds of 2 vertices; with VGC one worker chases the whole
        // chain. Run single-threaded for a deterministic chain shape.
        let g = gen::path(400);
        let (plain, chased) = with_threads(1, || {
            let plain = KCore::with_exact_config(Config::default()).run(&g);
            let vgc = Techniques { vgc: Some(Vgc { chain_limit: 1000 }), ..Techniques::default() };
            let chased = KCore::with_exact_config(Config::with_techniques(vgc)).run(&g);
            (plain, chased)
        });
        assert_eq!(plain.coreness(), chased.coreness());
        let (ps, cs) = (plain.stats(), chased.stats());
        assert!(
            cs.subrounds < ps.subrounds / 4,
            "VGC must collapse subrounds: {} vs {}",
            cs.subrounds,
            ps.subrounds
        );
        assert!(cs.peak_chain > 8, "long chains must be recorded, got {}", cs.peak_chain);
        assert!(cs.burdened_span < ps.burdened_span, "fewer syncs must shrink the burdened span");
    }

    #[test]
    fn vgc_chain_limit_bounds_the_chain() {
        let g = gen::path(400);
        let vgc = Techniques { vgc: Some(Vgc { chain_limit: 10 }), ..Techniques::default() };
        let r = with_threads(1, || KCore::with_exact_config(Config::with_techniques(vgc)).run(&g));
        assert_eq!(r.coreness(), bz_coreness(&g).as_slice());
        assert!(r.stats().peak_chain <= 10, "chain {} exceeds limit", r.stats().peak_chain);
    }

    #[test]
    fn offline_charges_more_syncs_per_subround() {
        let g = gen::mesh(20, 20);
        let online = KCore::with_exact_config(Config::default()).run(&g);
        let offline =
            KCore::with_exact_config(Config::with_techniques(Techniques::offline())).run(&g);
        assert_eq!(online.coreness(), offline.coreness());
        let (on, off) = (online.stats(), offline.stats());
        assert_eq!(on.global_syncs, on.subrounds);
        assert_eq!(off.global_syncs, 3 * off.subrounds, "gather + histogram + apply");
        assert!(off.burdened_span > on.burdened_span);
    }

    #[test]
    fn watermark_sampling_restarts_and_stays_exact() {
        // Zero slack + coarse rate makes undershoot detection miss often
        // enough that polluted frontiers actually occur; the Las-Vegas
        // restart must repair every one of them. Single-threaded so the
        // recount schedule (and thus the restart count) is reproducible.
        let mut restarts = 0u64;
        for seed in 0..6 {
            let g = gen::barabasi_albert(600, 4, seed);
            let techniques = Techniques {
                sampling: Some(Sampling {
                    threshold: 4,
                    rate_log2: 3,
                    slack: 0,
                    validation: Validation::Watermark,
                    seed,
                }),
                ..Techniques::default()
            };
            let r = with_threads(1, || {
                KCore::with_exact_config(Config::with_techniques(techniques)).run(&g)
            });
            assert_eq!(r.coreness(), bz_coreness(&g).as_slice(), "seed {seed}");
            restarts += r.stats().restarts;
        }
        assert!(restarts > 0, "zero slack must pollute at least one frontier across seeds");
    }

    #[test]
    fn watermark_sampling_with_default_slack_does_not_restart() {
        let g = gen::barabasi_albert(2000, 5, 3);
        let techniques = Techniques {
            sampling: Some(Sampling {
                validation: Validation::Watermark,
                ..Sampling::with_threshold(32)
            }),
            ..Techniques::default()
        };
        let r = KCore::with_exact_config(Config::with_techniques(techniques)).run(&g);
        assert_eq!(r.coreness(), bz_coreness(&g).as_slice());
        assert_eq!(r.stats().restarts, 0, "default slack keeps the failure probability negligible");
    }

    #[test]
    fn kcore_members_agree_with_coreness() {
        let kc = KCore::new(Config::default());
        for (label, g) in [
            ("ba", gen::barabasi_albert(500, 3, 7)),
            ("mesh", gen::mesh(20, 20)),
            ("hcns", gen::hcns(30)),
        ] {
            let coreness = kc.run(&g);
            for k in [0, 1, 2, 3, 5, coreness.kmax(), coreness.kmax() + 1] {
                let members = kc.kcore_members(&g, k);
                let want: Vec<bool> = coreness.coreness().iter().map(|&c| c >= k).collect();
                assert_eq!(members, want, "{label}: {k}-core membership");
            }
        }
    }
}
