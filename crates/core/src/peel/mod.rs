//! The work-efficient parallel peeling layer: the problem-agnostic
//! [`engine`] plus the paper's Sec. 4 techniques.
//!
//! Round `k` peels every element of priority `k` until none remain,
//! then advances to `k + 1`. Within a round, each *subround* peels the
//! current frontier in parallel:
//!
//! 1. every frontier element settles (its settle round is `k`),
//! 2. the problem's decrement rule lowers incident elements' priorities
//!    through atomic **clamped decrements** — a priority decreases only
//!    while it exceeds `k`, so it never drops below the current round
//!    and every intermediate value is observed by exactly one
//!    decrementing thread,
//! 3. the unique thread that moves an element *to* `k` inserts it into
//!    the parallel hash bag, which becomes the next subround's
//!    frontier; decrements that stay above `k` are reported to the
//!    bucket structure instead.
//!
//! Initial per-round frontiers come from a pluggable
//! [`kcore_buckets::BucketStructure`]; total work is `O(n + m)` plus
//! the structure's maintenance cost (Thm. 3.1).
//!
//! The modules:
//!
//! * [`engine`] — [`engine::PeelProblem`] and [`engine::PeelEngine`]:
//!   the subround loop, frontier plumbing, and technique dispatch. The
//!   concrete problems (k-core, k-truss, densest subgraph) live in
//!   [`crate::problems`].
//! * [`sampling`] — Sec. 4.1's sampling scheme: high-priority elements
//!   track an approximate priority over a hashed incidence sample, and
//!   are only peeled after an exact recount.
//! * [`vgc`] — Sec. 4.2's vertical granularity control: a worker chases
//!   the local peel chain sequentially instead of bouncing every
//!   frontier hit through the hash bag.
//! * [`offline`] — the Julienne-style offline driver: per subround,
//!   gather the frontier's decrements, histogram them, and apply bulk
//!   updates without per-target atomics.

pub mod engine;
pub mod offline;
pub mod sampling;
pub mod vgc;

pub use engine::{
    ElementState, Incidence, PeelEngine, PeelProblem, RecomputeRule, RoundAggregates, RoundPolicy,
    SettleView, SnapshotRule, ThresholdPolicy, UnitIncidence,
};
