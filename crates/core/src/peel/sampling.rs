//! The sampling scheme (paper Sec. 4.1).
//!
//! Peeling a high-priority element's incidence list funnels thousands
//! of atomic decrements into one cache line — the contention hotspot
//! the paper measures in Sec. 4.1.5. The sampling scheme removes it: an
//! element whose initial priority reaches the configured threshold
//! enters **sample mode** and stops maintaining an exact priority.
//! Instead it tracks the number of *sampled* live incident elements,
//! where each incidence is in the sample with probability `2^-r`,
//! decided by a deterministic endpoint hash. A removal then touches the
//! shared counter only for sampled incidences — a `2^r`-fold contention
//! reduction — with a clamped (floor-0) atomic decrement.
//!
//! The scheme applies to [`crate::Incidence::Unit`] problems (each dead
//! incident element costs one unit, so the sampled counter estimates
//! the live priority); the engine gates it off for snapshot rules. For
//! k-core the "incidences" are exactly the graph's edges, matching the
//! paper's presentation.
//!
//! Exactness is restored at the decision points, all of which re-count
//! the true priority ([`kcore_parallel::RunStats::resamples`]):
//!
//! * **Trigger recounts** fire inside a subround when the sampled
//!   counter crosses the trigger watermark (see below). A recount at
//!   `<= k` means the element belongs to the current round: it is
//!   claimed and joins the next subround through the hash bag. A
//!   recount above `k` refreshes the stored priority (monotonically
//!   decreasing) and re-files the element in the bucket structure.
//! * **End-of-round validation** re-counts sample-mode elements when a
//!   round's frontier drains — every live one under
//!   [`Validation::Full`] (deterministically exact, the default), or
//!   only those under the validation watermark for the paper-faithful
//!   [`Validation::Watermark`] fast path
//!   ([`kcore_parallel::RunStats::validate_calls`]).
//! * **Frontier validation** re-counts sample-mode elements surfacing
//!   in a round's initial frontier. Their stored priority is always an
//!   upper bound on the truth, so a recount *below* the round proves an
//!   earlier round missed the element — the frontier is polluted, and
//!   the engine restarts the run without sampling
//!   ([`kcore_parallel::RunStats::restarts`]; a Las-Vegas recovery that
//!   the watermark deviation term makes vanishingly rare, and full
//!   validation makes impossible).
//!
//! A sample-mode element is therefore **never peeled on approximate
//! evidence** — every settle is preceded by an exact recount — which is
//! how the scheme stays oracle-identical while shedding contention.
//!
//! ## Watermark constants
//!
//! With sampling rate `2^-r`, an element of true live priority `d` has
//! a sampled counter concentrated around `d / 2^r`. The paper's
//! watermarks sit at the expected counter of the round boundary plus a
//! Chernoff-style `O(√(μ log n))` deviation, which is what makes
//! [`Validation::Watermark`] correct with high probability. We
//! reproduce that shape exactly:
//!
//! * trigger: `((k+1) >> r) + ceil(√(3 · ((k+1) >> r) · log₂ n)) +
//!   slack`,
//! * validation: `2 ×` the trigger (the extra factor covers trigger
//!   crossings that were skipped because the watermark moves up as `k`
//!   grows).
//!
//! **Delta from the paper:** earlier revisions of this module replaced
//! the deviation term with the flat additive [`Sampling::slack`] alone
//! (trigger `((k+1) >> r) + slack`, validation `2×`), which made the
//! failure probability depend on the configured slack rather than on
//! `n`. The Chernoff deviation is now computed per round as above;
//! `slack` is retained on top as a tunable safety floor (default 32,
//! set it to 0 to run the bare paper constants). The paper also keeps
//! sampled counters in per-thread shards before they hit the shared
//! counter; we take the hit on the shared atomic directly, which only
//! strengthens the concentration argument (no shard staleness).

use super::engine::{OnlineCtx, PeelProblem, Polluted, UnitIncidence, UNSET};
use crate::config::{Sampling, Validation};
use kcore_buckets::BucketStructure;
use kcore_check::sync::atomic::{AtomicBool, AtomicU32, AtomicU8, Ordering};
use kcore_obs::{counter, span};
use kcore_parallel::primitives::pack_index;
use kcore_parallel::TechniqueCounters;
use rayon::prelude::*;

/// Element tracks its exact priority (the plain Alg. 1 path).
const EXACT: u8 = 0;
/// Element tracks the sampled counter; the stored priority holds the
/// last exact recount (an upper bound on the live value).
const SAMPLED: u8 = 1;
/// A worker holds the element's recount token.
const RECOUNT: u8 = 2;
/// An exact recount confirmed the element peels in the current round;
/// it sits in the frontier or hash bag and takes no further recounts.
const CLAIMED: u8 = 3;

/// Per-run state of the sampling scheme.
pub(crate) struct SamplingState {
    cfg: Sampling,
    /// `2^rate_log2 - 1`: an incidence is sampled iff its hash ANDs to
    /// zero.
    mask: u64,
    /// `ceil(log2 n)` of the element universe — the deviation term's
    /// `log n` factor.
    log2_n: u32,
    /// Per-element mode (see the `EXACT` … `CLAIMED` constants).
    state: Vec<AtomicU8>,
    /// Sampled live incidences per element (sample-mode only).
    approx: Vec<AtomicU32>,
    /// Elements that entered sample mode, pruned of dead entries at
    /// each end-of-round validation.
    sampled: Vec<u32>,
}

impl SamplingState {
    /// Builds sample-mode state for every element whose initial
    /// priority reaches the threshold; `None` when no element qualifies
    /// (the run then skips the sampling hooks entirely).
    pub(crate) fn build(
        inc: &dyn UnitIncidence,
        init_priorities: &[u32],
        cfg: Sampling,
    ) -> Option<Self> {
        let n = init_priorities.len();
        let sampled = pack_index(n, |v| init_priorities[v] >= cfg.threshold);
        if sampled.is_empty() {
            return None;
        }
        let mask = (1u64 << cfg.rate_log2) - 1;
        let log2_n = (usize::BITS - n.max(2).next_power_of_two().leading_zeros() - 1).max(1);
        let state: Vec<AtomicU8> = init_priorities
            .iter()
            .map(|&d| AtomicU8::new(if d >= cfg.threshold { SAMPLED } else { EXACT }))
            .collect();
        let approx: Vec<AtomicU32> = (0..n as u32)
            .into_par_iter()
            .map(|v| {
                let mut count = 0u32;
                if init_priorities[v as usize] >= cfg.threshold {
                    // Streaming walk: no incident slice is held, so this
                    // is safe on decode-on-the-fly backends.
                    inc.for_each_incident(v, &mut |u| {
                        if edge_sampled(v, u, cfg.seed, mask) {
                            count += 1;
                        }
                    });
                }
                AtomicU32::new(count)
            })
            .collect();
        Some(Self { cfg, mask, log2_n, state, approx, sampled })
    }

    /// Number of elements that entered sample mode.
    pub(crate) fn num_sampled(&self) -> usize {
        self.sampled.len()
    }

    /// Whether removals targeting `u` take the sampled path. `RECOUNT`
    /// and `CLAIMED` count as sampled: their exact priority is never
    /// maintained, so the exact decrement path must not touch them.
    #[inline]
    pub(crate) fn in_sample_mode(&self, u: u32) -> bool {
        self.state[u as usize].load(Ordering::Relaxed) != EXACT
    }

    /// Processes the removal of incidence `(src, u)` for a sample-mode
    /// `u`: decrement the sampled counter if the incidence is in the
    /// sample, and recount exactly when the counter crosses the trigger
    /// watermark (or bottoms out — past zero the approximation carries
    /// no signal).
    #[inline]
    pub(crate) fn on_neighbor_removed<P: PeelProblem>(
        &self,
        src: u32,
        u: u32,
        k: u32,
        ctx: &OnlineCtx<'_, P>,
    ) {
        if !edge_sampled(src, u, self.cfg.seed, self.mask) {
            return;
        }
        let prev =
            self.approx[u as usize].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |a| {
                if a > 0 {
                    Some(a - 1)
                } else {
                    None
                }
            });
        if let Ok(prev) = prev {
            let now = prev - 1;
            // `==` rather than `<=`: the counter only decreases between
            // recounts, so this fires once per crossing instead of on
            // every removal below the watermark.
            if now == self.trigger_watermark(k) || now == 0 {
                self.recount_in_round(u, k, ctx);
            }
        }
    }

    /// Claims the recount token for `u` and re-counts exactly,
    /// mid-round.
    fn recount_in_round<P: PeelProblem>(&self, u: u32, k: u32, ctx: &OnlineCtx<'_, P>) {
        if self.state[u as usize]
            .compare_exchange(SAMPLED, RECOUNT, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            // Someone else is recounting, or the element is already
            // claimed for this round.
            return;
        }
        counter!(ctx.counters.resamples, "sampling.resamples", 1);
        let (exact, fresh) = self.count_exact(u, ctx.inc, ctx.settled);
        if exact <= k {
            // The round-start invariant puts the priority at >= k when
            // the round opened, so the drop to <= k happened during this
            // round: the settle round is k. Claim before inserting so no
            // second recount (or a stale bucket copy) can double-peel.
            ctx.bag.insert(u);
            self.state[u as usize].store(CLAIMED, Ordering::Relaxed);
        } else {
            if let Some(old) = store_decreased(&ctx.prio[u as usize], exact) {
                self.approx[u as usize].store(fresh, Ordering::Relaxed);
                ctx.bucket.on_decrease(u, old, exact, k);
            }
            self.state[u as usize].store(SAMPLED, Ordering::Relaxed);
        }
    }

    /// Confirms every sample-mode element in a round's initial frontier
    /// by exact recount. Runs in the sequential gap between rounds, so
    /// the counts are exact truths: an element below the round proves
    /// the frontier polluted (an earlier round missed it) and aborts
    /// the attempt.
    pub(crate) fn validate_frontier(
        &self,
        frontier: &[u32],
        k: u32,
        inc: &dyn UnitIncidence,
        settled: &[AtomicU32],
        counters: &TechniqueCounters,
    ) -> Result<(), Polluted> {
        let _validate = span!("sampling.validate_frontier", frontier.len());
        let polluted = AtomicBool::new(false);
        frontier.par_iter().for_each(|&v| {
            let state = self.state[v as usize].load(Ordering::Relaxed);
            debug_assert_ne!(state, CLAIMED, "claimed elements settle within their round");
            if state != SAMPLED {
                return;
            }
            counter!(counters.resamples, "sampling.resamples", 1);
            let (exact, _) = self.count_exact(v, inc, settled);
            if exact < k {
                polluted.store(true, Ordering::Relaxed);
            } else {
                // The stored priority (== k, or the bucket would not
                // have surfaced v) upper-bounds the truth, so exact == k.
                debug_assert_eq!(exact, k);
                self.state[v as usize].store(CLAIMED, Ordering::Relaxed);
            }
        });
        if polluted.load(Ordering::Relaxed) {
            Err(Polluted)
        } else {
            Ok(())
        }
    }

    /// End-of-round validation: exactly re-counts live sample-mode
    /// elements (all of them under [`Validation::Full`], those under
    /// the validation watermark otherwise) and returns the ones whose
    /// true priority already reached `k` — they re-open the round. Runs
    /// in the sequential gap, so counts are exact.
    pub(crate) fn validate_round_end(
        &mut self,
        k: u32,
        inc: &dyn UnitIncidence,
        prio: &[AtomicU32],
        settled: &[AtomicU32],
        bucket: &dyn BucketStructure,
        counters: &TechniqueCounters,
    ) -> Vec<u32> {
        self.sampled.retain(|&v| settled[v as usize].load(Ordering::Relaxed) == UNSET);
        let _validate = span!("sampling.validate_round_end", self.sampled.len());
        let full = self.cfg.validation == Validation::Full;
        let vwm = self.validation_watermark(k);
        let this = &*self;
        this.sampled
            .par_iter()
            .filter_map(|&v| {
                if this.state[v as usize].load(Ordering::Relaxed) != SAMPLED {
                    return None;
                }
                if !full && this.approx[v as usize].load(Ordering::Relaxed) > vwm {
                    return None;
                }
                counter!(counters.validate_calls, "sampling.validate_calls", 1);
                counter!(counters.resamples, "sampling.resamples", 1);
                let (exact, fresh) = this.count_exact(v, inc, settled);
                if exact <= k {
                    this.state[v as usize].store(CLAIMED, Ordering::Relaxed);
                    Some(v)
                } else {
                    if let Some(old) = store_decreased(&prio[v as usize], exact) {
                        this.approx[v as usize].store(fresh, Ordering::Relaxed);
                        bucket.on_decrease(v, old, exact, k);
                    }
                    None
                }
            })
            .collect()
    }

    /// Exact live-incidence count of `v`, plus the count restricted to
    /// sampled incidences (the refreshed approximation). During a
    /// subround a concurrent settle can be missed — counted as still
    /// alive — so the result only ever *over*states the truth, which
    /// keeps the stored priority an upper bound; in the sequential gaps
    /// it is exact.
    fn count_exact(&self, v: u32, inc: &dyn UnitIncidence, settled: &[AtomicU32]) -> (u32, u32) {
        let mut exact = 0u32;
        let mut fresh = 0u32;
        // Streaming walk: recounts fire *inside* a neighbor walk of the
        // peel loop (`on_neighbor_removed` → `recount_in_round`), so the
        // outer `incident` slice is live — the buffer-free form is
        // required here on decode-on-the-fly backends.
        inc.for_each_incident(v, &mut |w| {
            if settled[w as usize].load(Ordering::Relaxed) == UNSET {
                exact += 1;
                if edge_sampled(v, w, self.cfg.seed, self.mask) {
                    fresh += 1;
                }
            }
        });
        (exact, fresh)
    }

    /// Sampled-counter level at which a mid-round removal triggers a
    /// recount: the expected counter at the round boundary, plus the
    /// Chernoff deviation term, plus the configured flat slack (see the
    /// module docs for the delta discussion).
    fn trigger_watermark(&self, k: u32) -> u32 {
        let base = (k + 1) >> self.cfg.rate_log2;
        base + deviation(base, self.log2_n) + self.cfg.slack
    }

    /// More generous end-of-round bound: catches elements whose trigger
    /// crossing was skipped (the watermark moves up as `k` grows).
    fn validation_watermark(&self, k: u32) -> u32 {
        self.trigger_watermark(k) * 2
    }
}

/// Chernoff deviation `ceil(√(3 · base · log₂ n))`: a counter with mean
/// `base` stays within this of its mean with probability `1 - n^-Ω(1)`.
fn deviation(base: u32, log2_n: u32) -> u32 {
    ceil_sqrt(3 * base as u64 * log2_n as u64)
}

/// `ceil(√x)` over integers (no float rounding surprises).
fn ceil_sqrt(x: u64) -> u32 {
    let s = x.isqrt();
    (s + u64::from(s * s < x)) as u32
}

/// Monotonically-decreasing store of a recounted priority, returning
/// the replaced value. The guard keeps bucket notifications distinct
/// (each stored value is strictly smaller than the last) and the stored
/// value an upper bound.
fn store_decreased(slot: &AtomicU32, exact: u32) -> Option<u32> {
    slot.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| (exact < d).then_some(exact)).ok()
}

/// Whether incidence `{a, b}` is in the sample: a SplitMix64-style mix
/// of the sorted id pair and the seed, accepted when the low
/// `rate_log2` bits clear. Deterministic, so the init count and every
/// removal agree on the sample without storing it.
#[inline]
fn edge_sampled(a: u32, b: u32, seed: u64, mask: u64) -> bool {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let mut h = ((lo as u64) << 32 | hi as u64) ^ seed;
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    h & mask == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcore_graph::gen;

    #[test]
    fn edge_sampling_is_symmetric_and_deterministic() {
        let mask = (1u64 << 2) - 1;
        for (a, b) in [(0u32, 1u32), (5, 900), (123_456, 7)] {
            assert_eq!(edge_sampled(a, b, 42, mask), edge_sampled(b, a, 42, mask));
            assert_eq!(edge_sampled(a, b, 42, mask), edge_sampled(a, b, 42, mask));
        }
    }

    #[test]
    fn edge_sampling_rate_is_roughly_two_to_minus_r() {
        for r in [1u32, 2, 3] {
            let mask = (1u64 << r) - 1;
            let hits = (0..40_000u32).filter(|&i| edge_sampled(i, i + 1, 7, mask)).count();
            let expect = 40_000 >> r;
            assert!(
                hits > expect / 2 && hits < expect * 2,
                "rate 2^-{r}: {hits} hits vs expected ~{expect}"
            );
        }
    }

    #[test]
    fn build_samples_only_above_threshold() {
        let g = gen::star(50); // hub degree 49, leaves degree 1
        let degrees = g.degrees();
        let s = SamplingState::build(&g, &degrees, Sampling::with_threshold(10)).unwrap();
        assert_eq!(s.num_sampled(), 1);
        assert!(s.in_sample_mode(0), "the hub is vertex 0");
        assert!(!s.in_sample_mode(1));
        // The hub's sampled count reflects the hash sample of its edges.
        let approx = s.approx[0].load(Ordering::Relaxed);
        assert!(approx <= 49);
        let manual =
            (1..50u32).filter(|&leaf| edge_sampled(0, leaf, s.cfg.seed, s.mask)).count() as u32;
        assert_eq!(approx, manual);
    }

    #[test]
    fn build_returns_none_when_nothing_qualifies() {
        let g = gen::path(10);
        let degrees = g.degrees();
        assert!(SamplingState::build(&g, &degrees, Sampling::with_threshold(100)).is_none());
    }

    #[test]
    fn store_decreased_is_monotone() {
        let slot = AtomicU32::new(10);
        assert_eq!(store_decreased(&slot, 7), Some(10));
        assert_eq!(store_decreased(&slot, 7), None, "equal values must not re-notify");
        assert_eq!(store_decreased(&slot, 9), None, "increases must be rejected");
        assert_eq!(store_decreased(&slot, 3), Some(7));
        assert_eq!(slot.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn ceil_sqrt_is_exact() {
        assert_eq!(ceil_sqrt(0), 0);
        assert_eq!(ceil_sqrt(1), 1);
        assert_eq!(ceil_sqrt(2), 2);
        assert_eq!(ceil_sqrt(4), 2);
        assert_eq!(ceil_sqrt(5), 3);
        assert_eq!(ceil_sqrt(36), 6);
        assert_eq!(ceil_sqrt(37), 7);
        for x in 0..2000u64 {
            let s = ceil_sqrt(x) as u64;
            assert!(s * s >= x && (s == 0 || (s - 1) * (s - 1) < x), "x = {x}");
        }
    }

    #[test]
    fn watermarks_scale_with_round_deviation_and_slack() {
        let g = gen::star(40); // n = 40 -> log2_n = 6
        let degrees = g.degrees();
        let cfg = Sampling { rate_log2: 2, slack: 5, ..Sampling::with_threshold(10) };
        let s = SamplingState::build(&g, &degrees, cfg).unwrap();
        assert_eq!(s.log2_n, 6);
        // Round 0: base = 1 >> 2 = 0, so no deviation term — only slack.
        assert_eq!(s.trigger_watermark(0), 5);
        // Round 7: base = 8 >> 2 = 2, deviation = ceil(sqrt(3*2*6)) = 6.
        assert_eq!(s.trigger_watermark(7), 2 + 6 + 5);
        assert_eq!(s.validation_watermark(7), (2 + 6 + 5) * 2);
    }

    #[test]
    fn zero_slack_zero_base_recovers_bare_constants() {
        // With slack 0 and a coarse rate, small rounds have base 0 and
        // therefore no deviation term either: the trigger sits at 0 and
        // only the bottom-out recount fires — the configuration the
        // restart stress test relies on to actually produce pollution.
        let g = gen::star(40);
        let degrees = g.degrees();
        let cfg = Sampling { rate_log2: 3, slack: 0, ..Sampling::with_threshold(10) };
        let s = SamplingState::build(&g, &degrees, cfg).unwrap();
        assert_eq!(s.trigger_watermark(0), 0);
        assert_eq!(s.trigger_watermark(6), 0);
        assert!(s.trigger_watermark(15) >= 2, "base 2 brings the deviation with it");
    }
}
