//! The sampling scheme (paper Sec. 4.1).
//!
//! Peeling a high-degree vertex's neighborhood funnels thousands of
//! atomic decrements into one cache line — the contention hotspot the
//! paper measures in Sec. 4.1.5. The sampling scheme removes it: a
//! vertex whose initial degree reaches the configured threshold enters
//! **sample mode** and stops maintaining an exact induced degree.
//! Instead it tracks the number of *sampled* live incident edges, where
//! each edge is in the sample with probability `2^-r`, decided by a
//! deterministic endpoint hash. A removal then touches the shared
//! counter only for sampled edges — a `2^r`-fold contention reduction —
//! with a clamped (floor-0) atomic decrement.
//!
//! Exactness is restored at the decision points, all of which re-count
//! the true induced degree ([`kcore_parallel::RunStats::resamples`]):
//!
//! * **Trigger recounts** fire inside a subround when the sampled
//!   counter crosses the trigger watermark (≈ the round scaled by the
//!   sampling rate, plus slack). A recount at `<= k` means the vertex
//!   belongs to the current round: it is claimed and joins the next
//!   subround through the hash bag. A recount above `k` refreshes the
//!   stored degree (monotonically decreasing) and re-files the vertex
//!   in the bucket structure.
//! * **End-of-round validation** re-counts sample-mode vertices when a
//!   round's frontier drains — every live one under
//!   [`Validation::Full`] (deterministically exact, the default), or
//!   only those under the validation watermark for the paper-faithful
//!   [`Validation::Watermark`] fast path
//!   ([`kcore_parallel::RunStats::validate_calls`]).
//! * **Frontier validation** re-counts sample-mode vertices surfacing
//!   in a round's initial frontier. Their stored degree is always an
//!   upper bound on the truth, so a recount *below* the round proves an
//!   earlier round missed the vertex — the frontier is polluted, and
//!   the driver restarts the run without sampling
//!   ([`kcore_parallel::RunStats::restarts`]; a Las-Vegas recovery that
//!   watermark slack makes vanishingly rare, and full validation makes
//!   impossible).
//!
//! A sample-mode vertex is therefore **never peeled on approximate
//! evidence** — every settle is preceded by an exact recount — which is
//! how the scheme stays oracle-identical while shedding contention.

use super::{OnlineCtx, Polluted, UNSET};
use crate::config::{Sampling, Validation};
use kcore_buckets::BucketStructure;
use kcore_graph::CsrGraph;
use kcore_parallel::primitives::pack_index;
use kcore_parallel::TechniqueCounters;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU8, Ordering};

/// Vertex tracks its exact induced degree (the plain Alg. 1 path).
const EXACT: u8 = 0;
/// Vertex tracks the sampled-edge counter; `deg` holds the last exact
/// recount (an upper bound on the live degree).
const SAMPLED: u8 = 1;
/// A worker holds the vertex's recount token.
const RECOUNT: u8 = 2;
/// An exact recount confirmed the vertex peels in the current round; it
/// sits in the frontier or hash bag and takes no further recounts.
const CLAIMED: u8 = 3;

/// Per-run state of the sampling scheme.
pub(crate) struct SamplingState {
    cfg: Sampling,
    /// `2^rate_log2 - 1`: an edge is sampled iff its hash ANDs to zero.
    mask: u64,
    /// Per-vertex mode (see the `EXACT` … `CLAIMED` constants).
    state: Vec<AtomicU8>,
    /// Sampled live incident edges per vertex (sample-mode only).
    approx: Vec<AtomicU32>,
    /// Vertices that entered sample mode, pruned of dead entries at
    /// each end-of-round validation.
    sampled: Vec<u32>,
}

impl SamplingState {
    /// Builds sample-mode state for every vertex whose initial degree
    /// reaches the threshold; `None` when no vertex qualifies (the run
    /// then skips the sampling hooks entirely).
    pub(crate) fn build(g: &CsrGraph, init_degrees: &[u32], cfg: Sampling) -> Option<Self> {
        let n = init_degrees.len();
        let sampled = pack_index(n, |v| init_degrees[v] >= cfg.threshold);
        if sampled.is_empty() {
            return None;
        }
        let mask = (1u64 << cfg.rate_log2) - 1;
        let state: Vec<AtomicU8> = init_degrees
            .iter()
            .map(|&d| AtomicU8::new(if d >= cfg.threshold { SAMPLED } else { EXACT }))
            .collect();
        let approx: Vec<AtomicU32> = (0..n as u32)
            .into_par_iter()
            .map(|v| {
                let count = if init_degrees[v as usize] >= cfg.threshold {
                    g.neighbors(v).iter().filter(|&&u| edge_sampled(v, u, cfg.seed, mask)).count()
                } else {
                    0
                };
                AtomicU32::new(count as u32)
            })
            .collect();
        Some(Self { cfg, mask, state, approx, sampled })
    }

    /// Number of vertices that entered sample mode.
    pub(crate) fn num_sampled(&self) -> usize {
        self.sampled.len()
    }

    /// Whether removals targeting `u` take the sampled path. `RECOUNT`
    /// and `CLAIMED` count as sampled: their exact degree is never
    /// maintained, so the exact decrement path must not touch them.
    #[inline]
    pub(crate) fn in_sample_mode(&self, u: u32) -> bool {
        self.state[u as usize].load(Ordering::Relaxed) != EXACT
    }

    /// Processes the removal of edge `(src, u)` for a sample-mode `u`:
    /// decrement the sampled counter if the edge is in the sample, and
    /// recount exactly when the counter crosses the trigger watermark
    /// (or bottoms out — past zero the approximation carries no signal).
    #[inline]
    pub(crate) fn on_neighbor_removed(&self, src: u32, u: u32, k: u32, ctx: &OnlineCtx<'_>) {
        if !edge_sampled(src, u, self.cfg.seed, self.mask) {
            return;
        }
        let prev =
            self.approx[u as usize].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |a| {
                if a > 0 {
                    Some(a - 1)
                } else {
                    None
                }
            });
        if let Ok(prev) = prev {
            let now = prev - 1;
            // `==` rather than `<=`: the counter only decreases between
            // recounts, so this fires once per crossing instead of on
            // every removal below the watermark.
            if now == self.trigger_watermark(k) || now == 0 {
                self.recount_in_round(u, k, ctx);
            }
        }
    }

    /// Claims the recount token for `u` and re-counts exactly, mid-round.
    fn recount_in_round(&self, u: u32, k: u32, ctx: &OnlineCtx<'_>) {
        if self.state[u as usize]
            .compare_exchange(SAMPLED, RECOUNT, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            // Someone else is recounting, or the vertex is already
            // claimed for this round.
            return;
        }
        ctx.counters.resamples.fetch_add(1, Ordering::Relaxed);
        let (exact, fresh) = self.count_exact(u, ctx.g, ctx.coreness);
        if exact <= k {
            // The round-start invariant puts the degree at >= k when the
            // round opened, so the drop to <= k happened during this
            // round: the coreness is k. Claim before inserting so no
            // second recount (or a stale bucket copy) can double-peel.
            ctx.bag.insert(u);
            self.state[u as usize].store(CLAIMED, Ordering::Relaxed);
        } else {
            if let Some(old) = store_decreased(&ctx.deg[u as usize], exact) {
                self.approx[u as usize].store(fresh, Ordering::Relaxed);
                ctx.bucket.on_decrease(u, old, exact, k);
            }
            self.state[u as usize].store(SAMPLED, Ordering::Relaxed);
        }
    }

    /// Confirms every sample-mode vertex in a round's initial frontier
    /// by exact recount. Runs in the sequential gap between rounds, so
    /// the counts are exact truths: a vertex below the round proves the
    /// frontier polluted (an earlier round missed it) and aborts the
    /// attempt.
    pub(crate) fn validate_frontier(
        &self,
        frontier: &[u32],
        k: u32,
        g: &CsrGraph,
        coreness: &[AtomicU32],
        counters: &TechniqueCounters,
    ) -> Result<(), Polluted> {
        let polluted = AtomicBool::new(false);
        frontier.par_iter().for_each(|&v| {
            let state = self.state[v as usize].load(Ordering::Relaxed);
            debug_assert_ne!(state, CLAIMED, "claimed vertices settle within their round");
            if state != SAMPLED {
                return;
            }
            counters.resamples.fetch_add(1, Ordering::Relaxed);
            let (exact, _) = self.count_exact(v, g, coreness);
            if exact < k {
                polluted.store(true, Ordering::Relaxed);
            } else {
                // The stored degree (== k, or the bucket would not have
                // surfaced v) upper-bounds the truth, so exact == k.
                debug_assert_eq!(exact, k);
                self.state[v as usize].store(CLAIMED, Ordering::Relaxed);
            }
        });
        if polluted.load(Ordering::Relaxed) {
            Err(Polluted)
        } else {
            Ok(())
        }
    }

    /// End-of-round validation: exactly re-counts live sample-mode
    /// vertices (all of them under [`Validation::Full`], those under the
    /// validation watermark otherwise) and returns the ones whose true
    /// degree already reached `k` — they re-open the round. Runs in the
    /// sequential gap, so counts are exact.
    pub(crate) fn validate_round_end(
        &mut self,
        k: u32,
        g: &CsrGraph,
        deg: &[AtomicU32],
        coreness: &[AtomicU32],
        bucket: &dyn BucketStructure,
        counters: &TechniqueCounters,
    ) -> Vec<u32> {
        self.sampled.retain(|&v| coreness[v as usize].load(Ordering::Relaxed) == UNSET);
        let full = self.cfg.validation == Validation::Full;
        let vwm = self.validation_watermark(k);
        let this = &*self;
        this.sampled
            .par_iter()
            .filter_map(|&v| {
                if this.state[v as usize].load(Ordering::Relaxed) != SAMPLED {
                    return None;
                }
                if !full && this.approx[v as usize].load(Ordering::Relaxed) > vwm {
                    return None;
                }
                counters.validate_calls.fetch_add(1, Ordering::Relaxed);
                counters.resamples.fetch_add(1, Ordering::Relaxed);
                let (exact, fresh) = this.count_exact(v, g, coreness);
                if exact <= k {
                    this.state[v as usize].store(CLAIMED, Ordering::Relaxed);
                    Some(v)
                } else {
                    if let Some(old) = store_decreased(&deg[v as usize], exact) {
                        this.approx[v as usize].store(fresh, Ordering::Relaxed);
                        bucket.on_decrease(v, old, exact, k);
                    }
                    None
                }
            })
            .collect()
    }

    /// Exact live-neighbor count of `v`, plus the count restricted to
    /// sampled edges (the refreshed approximation). During a subround a
    /// concurrent settle can be missed — counted as still alive — so the
    /// result only ever *over*states the truth, which keeps the stored
    /// degree an upper bound; in the sequential gaps it is exact.
    fn count_exact(&self, v: u32, g: &CsrGraph, coreness: &[AtomicU32]) -> (u32, u32) {
        let mut exact = 0u32;
        let mut fresh = 0u32;
        for &w in g.neighbors(v) {
            if coreness[w as usize].load(Ordering::Relaxed) == UNSET {
                exact += 1;
                if edge_sampled(v, w, self.cfg.seed, self.mask) {
                    fresh += 1;
                }
            }
        }
        (exact, fresh)
    }

    /// Sampled-counter level at which a mid-round removal triggers a
    /// recount: the round boundary scaled by the sampling rate, plus
    /// slack.
    fn trigger_watermark(&self, k: u32) -> u32 {
        ((k + 1) >> self.cfg.rate_log2) + self.cfg.slack
    }

    /// More generous end-of-round bound: catches vertices whose trigger
    /// crossing was skipped (the watermark moves up as `k` grows).
    fn validation_watermark(&self, k: u32) -> u32 {
        self.trigger_watermark(k) * 2
    }
}

/// Monotonically-decreasing store of a recounted degree, returning the
/// replaced value. The guard keeps bucket notifications distinct (each
/// stored value is strictly smaller than the last) and the stored value
/// an upper bound.
fn store_decreased(slot: &AtomicU32, exact: u32) -> Option<u32> {
    slot.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| (exact < d).then_some(exact)).ok()
}

/// Whether edge `{a, b}` is in the sample: a SplitMix64-style mix of the
/// sorted endpoint pair and the seed, accepted when the low `rate_log2`
/// bits clear. Deterministic, so the init count and every removal agree
/// on the sample without storing it.
#[inline]
fn edge_sampled(a: u32, b: u32, seed: u64, mask: u64) -> bool {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let mut h = ((lo as u64) << 32 | hi as u64) ^ seed;
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    h & mask == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcore_graph::gen;

    #[test]
    fn edge_sampling_is_symmetric_and_deterministic() {
        let mask = (1u64 << 2) - 1;
        for (a, b) in [(0u32, 1u32), (5, 900), (123_456, 7)] {
            assert_eq!(edge_sampled(a, b, 42, mask), edge_sampled(b, a, 42, mask));
            assert_eq!(edge_sampled(a, b, 42, mask), edge_sampled(a, b, 42, mask));
        }
    }

    #[test]
    fn edge_sampling_rate_is_roughly_two_to_minus_r() {
        for r in [1u32, 2, 3] {
            let mask = (1u64 << r) - 1;
            let hits = (0..40_000u32).filter(|&i| edge_sampled(i, i + 1, 7, mask)).count();
            let expect = 40_000 >> r;
            assert!(
                hits > expect / 2 && hits < expect * 2,
                "rate 2^-{r}: {hits} hits vs expected ~{expect}"
            );
        }
    }

    #[test]
    fn build_samples_only_above_threshold() {
        let g = gen::star(50); // hub degree 49, leaves degree 1
        let degrees = g.degrees();
        let s = SamplingState::build(&g, &degrees, Sampling::with_threshold(10)).unwrap();
        assert_eq!(s.num_sampled(), 1);
        assert!(s.in_sample_mode(0), "the hub is vertex 0");
        assert!(!s.in_sample_mode(1));
        // The hub's sampled count reflects the hash sample of its edges.
        let approx = s.approx[0].load(Ordering::Relaxed);
        assert!(approx <= 49);
        let manual =
            (1..50u32).filter(|&leaf| edge_sampled(0, leaf, s.cfg.seed, s.mask)).count() as u32;
        assert_eq!(approx, manual);
    }

    #[test]
    fn build_returns_none_when_nothing_qualifies() {
        let g = gen::path(10);
        let degrees = g.degrees();
        assert!(SamplingState::build(&g, &degrees, Sampling::with_threshold(100)).is_none());
    }

    #[test]
    fn store_decreased_is_monotone() {
        let slot = AtomicU32::new(10);
        assert_eq!(store_decreased(&slot, 7), Some(10));
        assert_eq!(store_decreased(&slot, 7), None, "equal values must not re-notify");
        assert_eq!(store_decreased(&slot, 9), None, "increases must be rejected");
        assert_eq!(store_decreased(&slot, 3), Some(7));
        assert_eq!(slot.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn watermarks_scale_with_round_and_slack() {
        let g = gen::star(40);
        let degrees = g.degrees();
        let cfg = Sampling { rate_log2: 2, slack: 5, ..Sampling::with_threshold(10) };
        let s = SamplingState::build(&g, &degrees, cfg).unwrap();
        assert_eq!(s.trigger_watermark(0), 5);
        assert_eq!(s.trigger_watermark(7), 2 + 5);
        assert_eq!(s.validation_watermark(7), (2 + 5) * 2);
    }
}
