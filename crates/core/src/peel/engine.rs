//! The problem-agnostic peel engine.
//!
//! The paper presents its work-efficient bucketing framework (Alg. 1 +
//! the Sec. 4 techniques) in terms of k-core, but nothing in the hot
//! loop is vertex-specific: it peels an *element universe* by monotone
//! integer *priorities*, where settling an element lowers the priorities
//! of incident elements through a clamped-decrement rule. This module
//! factors that skeleton out:
//!
//! * [`PeelProblem`] — the plug-in surface: universe size, initial
//!   priorities, the decrement rule (an [`Incidence`]), an optional
//!   per-settle action, and result assembly. k-core, k-truss, and
//!   densest-subgraph are clients (see [`crate::problems`]).
//! * [`PeelEngine`] — owns everything else: the round/subround loop,
//!   the hash-bag frontier, the pluggable bucket structure, adaptive
//!   strategy upgrades, and the sampling / VGC / offline techniques
//!   with their Las-Vegas restart loop.
//!
//! Three incidence flavors cover the known peeling problems:
//!
//! * [`Incidence::Unit`] — "each settled incident element costs one
//!   priority unit" over static adjacency lists (k-core: vertex degree
//!   over neighbors; densest-subgraph: the same). The atomic clamped
//!   decrement makes settle + decrement race-free in a single fused
//!   task, so subrounds need one global sync, VGC may chase local
//!   chains, and the sampling scheme can approximate hub priorities.
//! * [`Incidence::Snapshot`] — the decrement rule depends on *other*
//!   elements' settle state (k-truss: a dying edge decrements the other
//!   two edges of a triangle only while the triangle is still alive,
//!   with tie-breaks among same-subround deaths). The engine then runs
//!   each subround in two phases — stamp every frontier element
//!   settled, global barrier, evaluate the rule against the frozen
//!   [`SettleView`] — charging 2 syncs per subround in the burdened
//!   span. Sampling and VGC assume unit semantics and are gated off.
//! * [`Incidence::Recompute`] — a settle does not *decrement* incident
//!   priorities; it invalidates them, and the problem *recomputes* each
//!   affected priority from scratch over the survivors ((k,h)-core:
//!   the live h-hop ball size, an h-index-style quantity that can drop
//!   by many units per death). The engine runs the same two-phase
//!   subround as snapshot rules and enforces monotone decrease with the
//!   generalized CAS clamp [`clamped_update`] — the unit
//!   [`clamped_decrement`] is now just its `d - 1` special case.
//!
//! Orthogonally, a [`RoundPolicy`] chooses the round structure:
//!
//! * [`RoundPolicy::MinBucket`] — today's behavior, bit-identical:
//!   round `k` peels the elements of priority exactly `k`.
//! * [`RoundPolicy::Threshold`] — each round batches a whole priority
//!   range: the policy computes a peel threshold `t` from the live
//!   [`RoundAggregates`] (remaining elements, remaining priority sum),
//!   the bucket structure drains everything at or below `t` in one
//!   step ([`kcore_buckets::BucketStructure::drain_threshold`]), and
//!   the clamp floor for the round is `t` instead of `k`. This is the
//!   `O(log n)`-round regime of the (2+ε)-approximate densest
//!   subgraph. Unit incidences only.
//!
//! Not every technique composes with the new axes: sampling and the
//! offline driver are rejected with a panic (see
//! [`PeelEngine::run`]); VGC composes with threshold rounds and is
//! ignored (like for snapshot rules) under recompute incidences.

use super::sampling::SamplingState;
use super::{offline, vgc};
use crate::config::PeelMode;
use crate::Config;
use kcore_buckets::{BucketStrategy, BucketStructure, HierarchicalBuckets, PriorityView};
use kcore_check::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use kcore_graph::GraphBackend;
use kcore_obs::span;
use kcore_parallel::primitives::pack_index;
use kcore_parallel::{HashBag, RunStats, TechniqueCounters};
use rayon::prelude::*;

/// Settle-round sentinel for elements that have not settled yet.
pub(crate) const UNSET: u32 = u32::MAX;

/// Live peeling state exposed to bucket structures.
pub(crate) struct LiveView<'a> {
    pub(crate) prio: &'a [AtomicU32],
    pub(crate) settled: &'a [AtomicU32],
}

impl PriorityView for LiveView<'_> {
    fn key(&self, v: u32) -> u32 {
        self.prio[v as usize].load(Ordering::Relaxed)
    }

    fn alive(&self, v: u32) -> bool {
        self.settled[v as usize].load(Ordering::Relaxed) == UNSET
    }
}

/// Error raised when a round's initial frontier contains a sample-mode
/// element whose exact priority is *below* the round — the element
/// should have been peeled earlier, so every settle since is suspect.
/// The run is repeated without sampling (Las-Vegas recovery).
pub(crate) struct Polluted;

/// Unit-decrement incidence: `incident(e)` lists the elements whose
/// settling costs `e` exactly one priority unit each (and vice versa —
/// the relation is symmetric in every current client).
///
/// For k-core this is the graph adjacency itself (every
/// [`GraphBackend`] implements the trait via the blanket impl below),
/// and a problem's priorities must start at `num_incident(e)` minus any
/// units already absent.
///
/// # Slice discipline
///
/// Decode-on-the-fly backends ([`kcore_graph::CompressedCsr`]) serve
/// [`UnitIncidence::incident`] from per-thread scratch, so a caller may
/// hold at most one `incident` slice per thread at a time. The engine's
/// outer loops already do; nested scans (recounts inside a neighbor
/// walk) and pure size queries must use
/// [`UnitIncidence::for_each_incident`] /
/// [`UnitIncidence::num_incident`], which never touch scratch.
pub trait UnitIncidence: Sync {
    /// Elements incident to `e`, in strictly increasing order. Hold at
    /// most one returned slice per thread (see the trait docs).
    fn incident(&self, e: u32) -> &[u32];

    /// Number of incident elements — O(1), no list materialization.
    #[inline]
    fn num_incident(&self, e: u32) -> usize {
        self.incident(e).len()
    }

    /// Streams the incident elements in increasing order without
    /// materializing a slice; safe to nest inside an `incident` walk.
    #[inline]
    fn for_each_incident(&self, e: u32, f: &mut dyn FnMut(u32)) {
        for &x in self.incident(e) {
            f(x);
        }
    }
}

// Every graph backend is a unit incidence: the adjacency itself.
// This one impl covers `CsrGraph` (owned and mmapped), the delta
// overlay (the engine peels the logical base ± deltas graph directly,
// so batch-dynamic maintenance never rebuilds a CSR just to re-peel),
// and the byte-compressed backend.
impl<G: GraphBackend> UnitIncidence for G {
    #[inline]
    fn incident(&self, v: u32) -> &[u32] {
        self.neighbors_slice(v)
    }

    #[inline]
    fn num_incident(&self, v: u32) -> usize {
        self.degree(v)
    }

    #[inline]
    fn for_each_incident(&self, v: u32, f: &mut dyn FnMut(u32)) {
        self.for_each_neighbor(v, f);
    }
}

/// Settle state of an element as seen from a [`SettleView`] snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElementState {
    /// Not settled in any subround so far.
    Alive,
    /// Settled in the *current* subround — dying together with the
    /// element being processed. Rules use this for tie-breaking so that
    /// a shared incidence (e.g. a triangle with two dying edges) is
    /// charged exactly once.
    Peer,
    /// Settled in an earlier subround (possibly an earlier round): its
    /// own settle processing already accounted for every incidence it
    /// participated in.
    Dead,
}

/// Consistent settle-state snapshot handed to [`SnapshotRule`]s.
///
/// All stamps for the current subround are written before any rule
/// runs (the engine inserts a global barrier between the phases), so
/// `state` answers identically no matter which worker asks or when.
pub struct SettleView<'a> {
    stamps: &'a [AtomicU32],
    current: u32,
}

impl<'a> SettleView<'a> {
    /// Crate-internal constructor: `current` identifies this subround's
    /// stamps as peers. Only the engine's drivers build views — the
    /// settle phase must have completed first.
    pub(crate) fn new(stamps: &'a [AtomicU32], current: u32) -> Self {
        Self { stamps, current }
    }

    /// Settle state of element `e` in this subround's snapshot.
    #[inline]
    pub fn state(&self, e: u32) -> ElementState {
        let s = self.stamps[e as usize].load(Ordering::Relaxed);
        if s == 0 {
            ElementState::Alive
        } else if s == self.current {
            ElementState::Peer
        } else {
            ElementState::Dead
        }
    }

    /// Whether `e` survives this subround (not settled in it or any
    /// earlier one). [`RecomputeRule`]s recompute priorities over
    /// exactly the elements for which this holds — peers are already
    /// dying and must not be counted.
    #[inline]
    pub fn alive(&self, e: u32) -> bool {
        self.stamps[e as usize].load(Ordering::Relaxed) == 0
    }
}

/// A decrement rule that must observe other elements' settle state.
///
/// Invoked once per settled element per subround, strictly after every
/// same-subround settle has been stamped. Implementations must be
/// deterministic given the snapshot: for any shared incidence among
/// concurrently dying elements, exactly one of them may emit the
/// decrement (tie-break on element id — see the k-truss rule).
pub trait SnapshotRule: Sync {
    /// Calls `emit(t)` once for every element `t` that loses one
    /// priority unit because `e` settled at round `k`.
    fn for_each_decrement(&self, e: u32, k: u32, view: &SettleView<'_>, emit: &mut dyn FnMut(u32));
}

/// A priority that is *recomputed* from the surviving elements rather
/// than maintained by decrements — the h-index-style flavor, where one
/// death can lower an incident priority by many units.
///
/// Invoked in the second phase of a two-phase subround, strictly after
/// every same-subround settle has been stamped, so
/// [`SettleView::alive`] answers identically for every worker and
/// `recompute` is a pure function of the snapshot. The engine
/// deduplicates: each affected element is recomputed at most once per
/// subround no matter how many dying elements name it as a target.
pub trait RecomputeRule: Sync {
    /// Calls `emit(t)` for every element whose priority may have
    /// dropped because `e` settled. A superset is fine (extra targets
    /// cost a recompute that finds nothing to lower); a miss is not —
    /// every element whose priority actually changed must be emitted
    /// by at least one same-subround death.
    fn for_each_target(&self, e: u32, emit: &mut dyn FnMut(u32));

    /// Recomputes `t`'s priority over the elements alive in `view`
    /// (see [`SettleView::alive`]; peers count as dead). The result
    /// must be monotone: recomputing after more deaths never yields a
    /// larger value.
    fn recompute(&self, t: u32, view: &SettleView<'_>) -> u32;
}

/// How settling an element lowers other elements' priorities — the
/// problem's clamped-decrement rule over its incidence relation.
pub enum Incidence<'p> {
    /// One unit per settled incident element over static lists; peeled
    /// by the fused single-sync driver with sampling + VGC available.
    Unit(&'p dyn UnitIncidence),
    /// Arbitrary rule against a consistent settle snapshot; peeled by
    /// the two-phase driver (settle barrier before rule evaluation).
    Snapshot(&'p dyn SnapshotRule),
    /// Priorities recomputed from scratch over the survivors; peeled by
    /// the two-phase driver with the generalized CAS clamp
    /// ([`clamped_update`]) enforcing monotone decrease.
    Recompute(&'p dyn RecomputeRule),
}

/// Live aggregates of the peel, maintained by the engine and handed to
/// [`ThresholdPolicy`] implementations at every round boundary.
#[derive(Debug, Clone, Copy)]
pub struct RoundAggregates {
    /// Index of the round about to start (also the settle round its
    /// frontier will receive).
    pub round: u32,
    /// Elements not yet settled.
    pub remaining: usize,
    /// Sum of the live elements' current priorities. For degree-like
    /// priorities this is twice the count of surviving incidences, so
    /// `priority_sum / remaining` is the live average degree.
    pub priority_sum: u64,
    /// Lower bound on every live priority: one past the previous
    /// round's peel threshold (0 at round 0).
    pub floor: u32,
}

/// Computes a round's peel threshold from the live aggregates — the
/// [`RoundPolicy::Threshold`] plug-in.
pub trait ThresholdPolicy: Sync {
    /// Peel threshold for the round described by `agg`: every live
    /// element with priority `<= threshold` settles this round
    /// (including elements dragged down to it by the cascade). Values
    /// below `agg.floor` are clamped up to it, so a round always has a
    /// chance to progress; returning at least the live minimum
    /// priority (any value `>= priority_sum / remaining` does) keeps
    /// every round non-empty.
    fn threshold(&self, agg: &RoundAggregates) -> u32;
}

/// How the engine forms rounds — the round-structure axis of the
/// framework, chosen by the problem via [`PeelProblem::round_policy`].
pub enum RoundPolicy<'p> {
    /// Round `k` peels priority exactly `k` (today's behavior,
    /// bit-identical to the pre-policy engine).
    MinBucket,
    /// Round `r` peels every priority at or below a threshold computed
    /// from the live aggregates; rounds batch whole priority ranges
    /// and the clamp floor is the threshold. Requires
    /// [`Incidence::Unit`].
    Threshold(&'p dyn ThresholdPolicy),
}

/// A peeling-with-monotone-priorities problem, pluggable into
/// [`PeelEngine`].
///
/// The contract mirrors the paper's framework: the engine repeatedly
/// extracts the minimum-priority frontier (round `k` takes every
/// element of priority exactly `k`), settles it, and applies the
/// problem's decrement rule, never letting a priority drop below the
/// current round (the clamp). `assemble` receives each element's settle
/// round — the generalized "coreness" — plus the run's instrumentation.
pub trait PeelProblem: Sync {
    /// What the peel produces (coreness array, trussness array, best
    /// density prefix, ...).
    type Output;

    /// Problem name for diagnostics and benchmark tables.
    fn name(&self) -> &'static str;

    /// Size of the element universe (vertices for k-core, undirected
    /// edges for k-truss).
    fn num_elements(&self) -> usize;

    /// Initial priority of every element (induced degree, triangle
    /// support, ...).
    fn init_priorities(&self) -> Vec<u32>;

    /// The decrement rule.
    fn incidence(&self) -> Incidence<'_>;

    /// The round structure. Default: [`RoundPolicy::MinBucket`], the
    /// exact-priority rounds every pre-policy problem ran with.
    #[inline]
    fn round_policy(&self) -> RoundPolicy<'_> {
        RoundPolicy::MinBucket
    }

    /// Settle action: invoked as element `e` settles at round `k`,
    /// possibly from parallel workers (keep it cheap and thread-safe).
    /// Default: no extra action beyond the engine's bookkeeping.
    #[inline]
    fn on_settle(&self, e: u32, k: u32) {
        let _ = (e, k);
    }

    /// Builds the problem's result from per-element settle rounds and
    /// the run statistics.
    fn assemble(&self, rounds: Vec<u32>, stats: RunStats) -> Self::Output;
}

/// The generic peeling engine: Alg. 1's round/subround loop with the
/// Sec. 4 techniques, parameterized by a [`PeelProblem`].
///
/// The engine runs `config` exactly as given — apply
/// [`Config::apply_env_overrides`] first if the `KCORE_TECHNIQUES`
/// override should be honored (the problem facades in
/// [`crate::problems`] do this in their `new` constructors).
pub struct PeelEngine<'p, P: PeelProblem> {
    problem: &'p P,
    config: Config,
}

impl<'p, P: PeelProblem> PeelEngine<'p, P> {
    /// Creates an engine over `problem` with `config` taken verbatim.
    pub fn new(problem: &'p P, config: Config) -> Self {
        Self { problem, config }
    }

    /// The configuration this engine runs with.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Peels the whole universe and assembles the problem's result.
    ///
    /// Sampling's Las-Vegas restart loop lives here: a polluted
    /// frontier aborts the attempt and the run repeats with sampling
    /// disabled ([`RunStats::restarts`] counts the aborts).
    ///
    /// # Panics
    ///
    /// Panics when the configured techniques cannot honor the
    /// problem's axes: sampling and the offline driver are
    /// `RoundPolicy::MinBucket` + `Unit`/`Snapshot` refinements and are
    /// rejected — never silently mis-run — under
    /// [`RoundPolicy::Threshold`] or [`Incidence::Recompute`] (see
    /// [`validate_combination`]).
    pub fn run(&self) -> P::Output {
        validate_combination(&self.config, &self.problem.round_policy(), &self.problem.incidence());
        if self.problem.num_elements() == 0 {
            return self.problem.assemble(Vec::new(), RunStats::default());
        }
        let mut config = self.config;
        let mut restarts = 0u64;
        loop {
            let mut stats = RunStats::default();
            let attempt = {
                // Run-root span, named after the problem (one per
                // Las-Vegas attempt); round/subround spans nest inside.
                let _run = kcore_obs::SpanGuard::begin_dyn(
                    self.problem.name(),
                    self.problem.num_elements() as u64,
                );
                match config.techniques.mode {
                    PeelMode::Online => online_run(&config, self.problem, &mut stats),
                    PeelMode::Offline(off) => {
                        Ok(offline::run(&config, off, self.problem, &mut stats))
                    }
                }
            };
            match attempt {
                Ok(rounds) => {
                    stats.restarts = restarts;
                    stats.publish_metrics();
                    return self.problem.assemble(rounds, stats);
                }
                Err(Polluted) => {
                    restarts += 1;
                    config.techniques.sampling = None;
                }
            }
        }
    }
}

/// Rejects technique × axis combinations the engine cannot honor,
/// mirroring the `KCORE_TECHNIQUES` unknown-token panic: fail loudly
/// with the valid combinations named, never silently produce a wrong
/// (or silently degraded) result.
///
/// Sampling approximates priorities that decrease by units, and the
/// offline driver histograms unit decrements — neither is defined for
/// threshold-batched rounds or recomputed priorities. VGC composes
/// with threshold rounds (the chase clamps to the round threshold) and
/// is ignored under snapshot/recompute incidences, as before.
pub(crate) fn validate_combination(
    config: &Config,
    policy: &RoundPolicy<'_>,
    incidence: &Incidence<'_>,
) {
    const VALID: &str = "valid combinations: sampling and offline require \
         RoundPolicy::MinBucket with Incidence::Unit or Incidence::Snapshot \
         (sampling applies to Unit only and is otherwise ignored); \
         RoundPolicy::Threshold requires Incidence::Unit and composes with vgc; \
         Incidence::Recompute runs the online MinBucket driver, vgc ignored";
    let axis = match (policy, incidence) {
        (RoundPolicy::MinBucket, Incidence::Unit(_) | Incidence::Snapshot(_)) => return,
        (RoundPolicy::Threshold(_), Incidence::Unit(_)) => "RoundPolicy::Threshold",
        (RoundPolicy::Threshold(_), Incidence::Snapshot(_) | Incidence::Recompute(_)) => {
            panic!("RoundPolicy::Threshold requires Incidence::Unit ({VALID})")
        }
        (RoundPolicy::MinBucket, Incidence::Recompute(_)) => "Incidence::Recompute",
    };
    if config.techniques.sampling.is_some() {
        panic!("{axis} does not support the sampling technique ({VALID})");
    }
    if matches!(config.techniques.mode, PeelMode::Offline(_)) {
        panic!("{axis} does not support the offline driver ({VALID})");
    }
}

/// Swaps the adaptive strategy's flat array for HBS once round `k`
/// reaches θ. Shared by the online and offline drivers.
pub(crate) fn upgrade_adaptive_if_due(
    bucket: &mut Box<dyn BucketStructure>,
    pending: &mut bool,
    k: u32,
    theta: u32,
    n: usize,
    view: &LiveView<'_>,
) {
    if *pending && k >= theta {
        let live = pack_index(n, |v| view.alive(v as u32));
        let entries = live.iter().map(|&v| (v, view.key(v)));
        *bucket = Box::new(HierarchicalBuckets::with_entries(k, entries));
        *pending = false;
    }
}

/// Shared references threaded through one fused (unit-incidence)
/// subround's parallel peel, and the sampling recounts it triggers.
pub(crate) struct OnlineCtx<'a, P: PeelProblem> {
    pub(crate) problem: &'a P,
    pub(crate) inc: &'a dyn UnitIncidence,
    pub(crate) prio: &'a [AtomicU32],
    pub(crate) settled: &'a [AtomicU32],
    pub(crate) bag: &'a HashBag,
    pub(crate) bucket: &'a dyn BucketStructure,
    pub(crate) sampling: Option<&'a SamplingState>,
    pub(crate) counters: &'a TechniqueCounters,
    /// VGC chain bound; 0 disables chasing.
    pub(crate) chain_limit: u32,
}

/// The online driver: dispatches on the problem's round policy and
/// incidence flavor (unsupported pairings were rejected up front by
/// [`validate_combination`]).
fn online_run<P: PeelProblem>(
    config: &Config,
    problem: &P,
    stats: &mut RunStats,
) -> Result<Vec<u32>, Polluted> {
    match (problem.round_policy(), problem.incidence()) {
        (RoundPolicy::MinBucket, Incidence::Unit(inc)) => online_unit(config, problem, inc, stats),
        (RoundPolicy::Threshold(policy), Incidence::Unit(inc)) => {
            Ok(online_threshold(config, problem, inc, policy, stats))
        }
        (RoundPolicy::MinBucket, Incidence::Snapshot(rule)) => {
            Ok(online_snapshot(config, problem, rule, stats))
        }
        (RoundPolicy::MinBucket, Incidence::Recompute(rule)) => {
            Ok(online_recompute(config, problem, rule, stats))
        }
        (RoundPolicy::Threshold(_), _) => unreachable!("rejected by validate_combination"),
    }
}

/// Fused driver for unit incidences: Alg. 1 with the sampling and VGC
/// hooks — settle and decrement run in one task per frontier element,
/// one global sync per subround.
fn online_unit<P: PeelProblem>(
    config: &Config,
    problem: &P,
    inc: &dyn UnitIncidence,
    stats: &mut RunStats,
) -> Result<Vec<u32>, Polluted> {
    let n = problem.num_elements();
    let init = problem.init_priorities();
    let prio: Vec<AtomicU32> = init.iter().map(|&d| AtomicU32::new(d)).collect();
    let settled: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNSET)).collect();

    let mut sampling =
        config.techniques.sampling.and_then(|cfg| SamplingState::build(inc, &init, cfg));
    if let Some(s) = &sampling {
        stats.sampled_vertices = s.num_sampled() as u64;
    }
    let counters = TechniqueCounters::new();
    let chain_limit = config.techniques.vgc.map_or(0, |v| v.chain_limit);

    // Adaptive starts on the flat array and upgrades to HBS at the
    // θ-core; the other strategies are fixed for the whole run.
    let mut bucket: Box<dyn BucketStructure> = config.bucket_strategy.build(&init);
    let mut adaptive_pending = matches!(config.bucket_strategy, BucketStrategy::Adaptive);

    let mut bag = HashBag::new(n);
    let collect_stats = config.collect_stats;
    let max_prio = *init.iter().max().unwrap_or(&0);
    let mut remaining = n;
    let mut k = 0u32;
    while remaining > 0 {
        assert!(k <= max_prio, "peeling stalled: {remaining} elements left after round {max_prio}");
        let _round = span!("round", k);
        let view = LiveView { prio: &prio, settled: &settled };
        upgrade_adaptive_if_due(
            &mut bucket,
            &mut adaptive_pending,
            k,
            config.adaptive_theta,
            n,
            &view,
        );
        let mut frontier = {
            let _drain = span!("bucket.drain", k);
            bucket.next_frontier(k, &view)
        };
        if let Some(s) = &sampling {
            // Sample-mode elements surface with their last recounted
            // priority; confirm it exactly before peeling them.
            s.validate_frontier(&frontier, k, inc, &settled, &counters)?;
        }
        let mut subrounds = 0u32;
        loop {
            if frontier.is_empty() {
                // End-of-round validation: exact recounts of sample-mode
                // elements near the boundary (all of them under
                // `Validation::Full`). Anything caught at `<= k` belongs
                // to this round and re-opens it.
                let caught = match sampling.as_mut() {
                    Some(s) => s.validate_round_end(k, inc, &prio, &settled, &*bucket, &counters),
                    None => Vec::new(),
                };
                if caught.is_empty() {
                    break;
                }
                frontier = caught;
            }
            subrounds += 1;
            let _subround = span!("subround", frontier.len());
            counters.reset_subround();
            remaining -= frontier.len();
            if collect_stats {
                stats.max_frontier = stats.max_frontier.max(frontier.len());
                let arcs: usize = frontier.iter().map(|&v| inc.num_incident(v)).sum();
                stats.work += (frontier.len() + arcs) as u64;
            }
            let ctx = OnlineCtx {
                problem,
                inc,
                prio: &prio,
                settled: &settled,
                bag: &bag,
                bucket: &*bucket,
                sampling: sampling.as_ref(),
                counters: &counters,
                chain_limit,
            };
            frontier.par_iter().for_each(|&v| vgc::peel_from(&ctx, v, k, k));
            remaining -= counters.chased.load(Ordering::Relaxed) as usize;
            if collect_stats {
                stats.work += counters.chased_work.load(Ordering::Relaxed);
                stats.record_subround(1, counters.chain.get().max(1));
            }
            frontier = {
                let _refile = span!("frontier.refile");
                bag.extract_all()
            };
        }
        if collect_stats {
            stats.record_round(subrounds);
        }
        k += 1;
    }
    counters.merge_sampling_into(stats);
    Ok(settled.into_iter().map(AtomicU32::into_inner).collect())
}

/// The generalized CAS clamp loop: lowers `slot` to
/// `max(proposed(current), floor)`, but only while the current value
/// sits above the floor and the proposal is an actual decrease.
/// Returns `(previous, stored)` for the single thread whose update
/// transitioned the slot, `None` otherwise — dead elements and
/// same-round frontier members are filtered by the clamp, never by an
/// explicit liveness check. `floor` is the round's clamp: the current
/// round `k` under [`RoundPolicy::MinBucket`], the round threshold
/// under [`RoundPolicy::Threshold`].
///
/// The unit decrement ([`clamped_decrement`]) is the `|d| d - 1`
/// special case; recompute incidences pass the freshly recomputed
/// priority as a constant proposal.
#[inline]
pub(crate) fn clamped_update(
    slot: &AtomicU32,
    floor: u32,
    proposed: impl Fn(u32) -> u32,
) -> Option<(u32, u32)> {
    let mut stored = floor;
    slot.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
        if d <= floor {
            return None;
        }
        let nd = proposed(d).max(floor);
        if nd >= d {
            return None;
        }
        stored = nd;
        Some(nd)
    })
    .ok()
    .map(|prev| (prev, stored))
}

/// Clamped unit decrement of `slot` while above `k`: returns the
/// replaced value, or `None` when the value already sits at or below
/// `k`. The historical hot-path form of [`clamped_update`].
#[inline]
pub(crate) fn clamped_decrement(slot: &AtomicU32, k: u32) -> Option<u32> {
    clamped_update(slot, k, |d| d - 1).map(|(prev, _)| prev)
}

/// Threshold-batched driver for unit incidences: round `r` computes a
/// peel threshold `t_r` from the live aggregates, drains every element
/// at or below it in one bulk bucket step, and cascades the round with
/// the clamp floored at `t_r` — an element whose priority is dragged
/// down to the threshold mid-round settles in the same round. Settle
/// rounds record the round *index*, not the threshold.
///
/// Because survivors always end a round with priority `> t_r` (the
/// clamp only ever stops a decrement exactly at the threshold, and
/// elements that reach it are peeled), live priorities stay exact
/// across rounds and the effective thresholds strictly increase:
/// `max(policy value, floor)` with `floor = t_{r-1} + 1`. Even a
/// pathological policy therefore terminates — each round either
/// settles elements or raises the floor, and a threshold at or above
/// the maximum priority drains everything. VGC applies (the chase
/// clamps to the threshold); sampling and offline were rejected up
/// front.
fn online_threshold<P: PeelProblem>(
    config: &Config,
    problem: &P,
    inc: &dyn UnitIncidence,
    policy: &dyn ThresholdPolicy,
    stats: &mut RunStats,
) -> Vec<u32> {
    let n = problem.num_elements();
    let init = problem.init_priorities();
    let prio: Vec<AtomicU32> = init.iter().map(|&d| AtomicU32::new(d)).collect();
    let settled: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNSET)).collect();

    let counters = TechniqueCounters::new();
    let chain_limit = config.techniques.vgc.map_or(0, |v| v.chain_limit);

    let mut bucket: Box<dyn BucketStructure> = config.bucket_strategy.build(&init);
    let mut adaptive_pending = matches!(config.bucket_strategy, BucketStrategy::Adaptive);

    let mut bag = HashBag::new(n);
    let collect_stats = config.collect_stats;
    let max_prio = *init.iter().max().unwrap_or(&0);
    let mut remaining = n;
    let mut floor_next = 0u32; // lower bound on live priorities
    let mut round = 0u32;
    while remaining > 0 {
        assert!(
            u64::from(round) <= u64::from(max_prio) + 1,
            "threshold peeling stalled: {remaining} elements left after round {round}"
        );
        let _round = span!("round", round);
        let view = LiveView { prio: &prio, settled: &settled };
        upgrade_adaptive_if_due(
            &mut bucket,
            &mut adaptive_pending,
            floor_next,
            config.adaptive_theta,
            n,
            &view,
        );
        // The live aggregates: a threshold run has O(log n) rounds, so
        // re-scanning the priority array at each boundary is noise next
        // to the peel itself — and keeps the subround hot path free of
        // aggregate bookkeeping (survivor priorities are exact, see the
        // driver docs, so the scan is the true live sum).
        let priority_sum: u64 = {
            let _agg = span!("aggregates");
            (0..n)
                .into_par_iter()
                .map(|v| {
                    if settled[v].load(Ordering::Relaxed) == UNSET {
                        prio[v].load(Ordering::Relaxed) as u64
                    } else {
                        0
                    }
                })
                .sum()
        };
        let agg = RoundAggregates { round, remaining, priority_sum, floor: floor_next };
        let t = policy.threshold(&agg).max(floor_next);
        let mut frontier = {
            let _drain = span!("bucket.drain", t);
            bucket.drain_threshold(t, &view)
        };
        let mut subrounds = 0u32;
        while !frontier.is_empty() {
            subrounds += 1;
            let _subround = span!("subround", frontier.len());
            counters.reset_subround();
            remaining -= frontier.len();
            if collect_stats {
                stats.max_frontier = stats.max_frontier.max(frontier.len());
                let arcs: usize = frontier.iter().map(|&v| inc.num_incident(v)).sum();
                stats.work += (frontier.len() + arcs) as u64;
            }
            let ctx = OnlineCtx {
                problem,
                inc,
                prio: &prio,
                settled: &settled,
                bag: &bag,
                bucket: &*bucket,
                sampling: None,
                counters: &counters,
                chain_limit,
            };
            frontier.par_iter().for_each(|&v| vgc::peel_from(&ctx, v, round, t));
            remaining -= counters.chased.load(Ordering::Relaxed) as usize;
            if collect_stats {
                stats.work += counters.chased_work.load(Ordering::Relaxed);
                stats.record_subround(1, counters.chain.get().max(1));
            }
            frontier = {
                let _refile = span!("frontier.refile");
                bag.extract_all()
            };
        }
        if collect_stats {
            stats.record_round(subrounds);
        }
        floor_next = t.saturating_add(1);
        round += 1;
    }
    settled.into_iter().map(AtomicU32::into_inner).collect()
}

/// Two-phase driver for recompute incidences: per subround, stamp the
/// whole frontier settled (phase 1), then — after the implicit global
/// barrier — recompute the priorities the deaths may have lowered
/// against the frozen snapshot and apply them through the generalized
/// CAS clamp (phase 2). Each affected element is recomputed at most
/// once per subround (a claim stamp deduplicates targets named by
/// several deaths), and because `recompute` is a pure function of the
/// snapshot, the stored value — and the whole decomposition — is
/// deterministic. Two global syncs per subround in the burdened span;
/// sampling and offline were rejected up front, VGC does not apply.
fn online_recompute<P: PeelProblem>(
    config: &Config,
    problem: &P,
    rule: &dyn RecomputeRule,
    stats: &mut RunStats,
) -> Vec<u32> {
    let n = problem.num_elements();
    let init = problem.init_priorities();
    let prio: Vec<AtomicU32> = init.iter().map(|&d| AtomicU32::new(d)).collect();
    let settled: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNSET)).collect();
    // Subround stamps: 0 = never settled; ids start at 1 and never
    // reset. `claimed` deduplicates per-subround recomputes.
    let stamps: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let claimed: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let mut subround_id = 0u32;

    let mut bucket: Box<dyn BucketStructure> = config.bucket_strategy.build(&init);
    let mut adaptive_pending = matches!(config.bucket_strategy, BucketStrategy::Adaptive);

    let mut bag = HashBag::new(n);
    let collect_stats = config.collect_stats;
    let recomputes = AtomicU64::new(0);
    let max_prio = *init.iter().max().unwrap_or(&0);
    let mut remaining = n;
    let mut k = 0u32;
    while remaining > 0 {
        assert!(k <= max_prio, "peeling stalled: {remaining} elements left after round {max_prio}");
        let _round = span!("round", k);
        let view = LiveView { prio: &prio, settled: &settled };
        upgrade_adaptive_if_due(
            &mut bucket,
            &mut adaptive_pending,
            k,
            config.adaptive_theta,
            n,
            &view,
        );
        let mut frontier = {
            let _drain = span!("bucket.drain", k);
            bucket.next_frontier(k, &view)
        };
        let mut subrounds = 0u32;
        while !frontier.is_empty() {
            subrounds += 1;
            subround_id += 1;
            let _subround = span!("subround", frontier.len());
            remaining -= frontier.len();
            if collect_stats {
                stats.max_frontier = stats.max_frontier.max(frontier.len());
                recomputes.store(0, Ordering::Relaxed);
            }
            // Phase 1: settle — every stamp lands before any recompute.
            let settle_span = span!("settle", frontier.len());
            frontier.par_iter().for_each(|&e| {
                settled[e as usize].store(k, Ordering::Relaxed);
                stamps[e as usize].store(subround_id, Ordering::Relaxed);
                problem.on_settle(e, k);
            });
            drop(settle_span);
            // Phase 2: recompute affected priorities from the snapshot.
            let recompute_span = span!("recompute", frontier.len());
            let sview = SettleView { stamps: &stamps, current: subround_id };
            frontier.par_iter().for_each(|&e| {
                let mut local = 0u64;
                rule.for_each_target(e, &mut |t| {
                    if stamps[t as usize].load(Ordering::Relaxed) != 0 {
                        return; // dead or dying alongside e
                    }
                    if claimed[t as usize].swap(subround_id, Ordering::Relaxed) == subround_id {
                        return; // another death already recomputed t
                    }
                    local += 1;
                    let fresh = rule.recompute(t, &sview);
                    if let Some((prev, stored)) = clamped_update(&prio[t as usize], k, |_| fresh) {
                        if stored == k {
                            // t dropped to the round: peeled exactly
                            // once, in the next subround.
                            bag.insert(t);
                        } else {
                            bucket.on_decrease(t, prev, stored, k);
                        }
                    }
                });
                if collect_stats && local > 0 {
                    recomputes.fetch_add(local, Ordering::Relaxed);
                }
            });
            drop(recompute_span);
            if collect_stats {
                stats.work += frontier.len() as u64 + recomputes.load(Ordering::Relaxed);
                stats.record_subround(2, 1);
            }
            frontier = {
                let _refile = span!("frontier.refile");
                bag.extract_all()
            };
        }
        if collect_stats {
            stats.record_round(subrounds);
        }
        k += 1;
    }
    settled.into_iter().map(AtomicU32::into_inner).collect()
}

/// Two-phase driver for snapshot rules: per subround, stamp the whole
/// frontier settled (phase 1), then — after the implicit global barrier
/// — evaluate the rule against the frozen snapshot and apply clamped
/// decrements (phase 2). Two global syncs per subround in the burdened
/// span; sampling and VGC do not apply.
fn online_snapshot<P: PeelProblem>(
    config: &Config,
    problem: &P,
    rule: &dyn SnapshotRule,
    stats: &mut RunStats,
) -> Vec<u32> {
    let n = problem.num_elements();
    let init = problem.init_priorities();
    let prio: Vec<AtomicU32> = init.iter().map(|&d| AtomicU32::new(d)).collect();
    let settled: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNSET)).collect();
    // Subround stamps: 0 = never settled; ids start at 1 and never
    // reset, so `SettleView::state` distinguishes peers from the dead.
    let stamps: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let mut subround_id = 0u32;

    let mut bucket: Box<dyn BucketStructure> = config.bucket_strategy.build(&init);
    let mut adaptive_pending = matches!(config.bucket_strategy, BucketStrategy::Adaptive);

    let mut bag = HashBag::new(n);
    let collect_stats = config.collect_stats;
    let emitted = AtomicU64::new(0);
    let max_prio = *init.iter().max().unwrap_or(&0);
    let mut remaining = n;
    let mut k = 0u32;
    while remaining > 0 {
        assert!(k <= max_prio, "peeling stalled: {remaining} elements left after round {max_prio}");
        let _round = span!("round", k);
        let view = LiveView { prio: &prio, settled: &settled };
        upgrade_adaptive_if_due(
            &mut bucket,
            &mut adaptive_pending,
            k,
            config.adaptive_theta,
            n,
            &view,
        );
        let mut frontier = {
            let _drain = span!("bucket.drain", k);
            bucket.next_frontier(k, &view)
        };
        let mut subrounds = 0u32;
        while !frontier.is_empty() {
            subrounds += 1;
            subround_id += 1;
            let _subround = span!("subround", frontier.len());
            remaining -= frontier.len();
            if collect_stats {
                stats.max_frontier = stats.max_frontier.max(frontier.len());
                emitted.store(0, Ordering::Relaxed);
            }
            // Phase 1: settle — every stamp lands before any rule runs.
            let settle_span = span!("settle", frontier.len());
            frontier.par_iter().for_each(|&e| {
                settled[e as usize].store(k, Ordering::Relaxed);
                stamps[e as usize].store(subround_id, Ordering::Relaxed);
                problem.on_settle(e, k);
            });
            drop(settle_span);
            // Phase 2: evaluate the rule against the frozen snapshot.
            let rule_span = span!("rule", frontier.len());
            let sview = SettleView { stamps: &stamps, current: subround_id };
            frontier.par_iter().for_each(|&e| {
                let mut local = 0u64;
                rule.for_each_decrement(e, k, &sview, &mut |t| {
                    local += 1;
                    if let Some(prev) = clamped_decrement(&prio[t as usize], k) {
                        if prev == k + 1 {
                            // This emit moved t to k: t is peeled
                            // exactly once, in the next subround.
                            bag.insert(t);
                        } else {
                            bucket.on_decrease(t, prev, prev - 1, k);
                        }
                    }
                });
                if collect_stats && local > 0 {
                    emitted.fetch_add(local, Ordering::Relaxed);
                }
            });
            drop(rule_span);
            if collect_stats {
                stats.work += frontier.len() as u64 + emitted.load(Ordering::Relaxed);
                stats.record_subround(2, 1);
            }
            frontier = {
                let _refile = span!("frontier.refile");
                bag.extract_all()
            };
        }
        if collect_stats {
            stats.record_round(subrounds);
        }
        k += 1;
    }
    settled.into_iter().map(AtomicU32::into_inner).collect()
}
