//! The problem-agnostic peel engine.
//!
//! The paper presents its work-efficient bucketing framework (Alg. 1 +
//! the Sec. 4 techniques) in terms of k-core, but nothing in the hot
//! loop is vertex-specific: it peels an *element universe* by monotone
//! integer *priorities*, where settling an element lowers the priorities
//! of incident elements through a clamped-decrement rule. This module
//! factors that skeleton out:
//!
//! * [`PeelProblem`] — the plug-in surface: universe size, initial
//!   priorities, the decrement rule (an [`Incidence`]), an optional
//!   per-settle action, and result assembly. k-core, k-truss, and
//!   densest-subgraph are clients (see [`crate::problems`]).
//! * [`PeelEngine`] — owns everything else: the round/subround loop,
//!   the hash-bag frontier, the pluggable bucket structure, adaptive
//!   strategy upgrades, and the sampling / VGC / offline techniques
//!   with their Las-Vegas restart loop.
//!
//! Two incidence flavors cover the known peeling problems:
//!
//! * [`Incidence::Unit`] — "each settled incident element costs one
//!   priority unit" over static adjacency lists (k-core: vertex degree
//!   over neighbors; densest-subgraph: the same). The atomic clamped
//!   decrement makes settle + decrement race-free in a single fused
//!   task, so subrounds need one global sync, VGC may chase local
//!   chains, and the sampling scheme can approximate hub priorities.
//! * [`Incidence::Snapshot`] — the decrement rule depends on *other*
//!   elements' settle state (k-truss: a dying edge decrements the other
//!   two edges of a triangle only while the triangle is still alive,
//!   with tie-breaks among same-subround deaths). The engine then runs
//!   each subround in two phases — stamp every frontier element
//!   settled, global barrier, evaluate the rule against the frozen
//!   [`SettleView`] — charging 2 syncs per subround in the burdened
//!   span. Sampling and VGC assume unit semantics and are gated off.

use super::sampling::SamplingState;
use super::{offline, vgc};
use crate::config::PeelMode;
use crate::Config;
use kcore_buckets::{BucketStrategy, BucketStructure, HierarchicalBuckets, PriorityView};
use kcore_graph::CsrGraph;
use kcore_parallel::primitives::pack_index;
use kcore_parallel::{HashBag, RunStats, TechniqueCounters};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Settle-round sentinel for elements that have not settled yet.
pub(crate) const UNSET: u32 = u32::MAX;

/// Live peeling state exposed to bucket structures.
pub(crate) struct LiveView<'a> {
    pub(crate) prio: &'a [AtomicU32],
    pub(crate) settled: &'a [AtomicU32],
}

impl PriorityView for LiveView<'_> {
    fn key(&self, v: u32) -> u32 {
        self.prio[v as usize].load(Ordering::Relaxed)
    }

    fn alive(&self, v: u32) -> bool {
        self.settled[v as usize].load(Ordering::Relaxed) == UNSET
    }
}

/// Error raised when a round's initial frontier contains a sample-mode
/// element whose exact priority is *below* the round — the element
/// should have been peeled earlier, so every settle since is suspect.
/// The run is repeated without sampling (Las-Vegas recovery).
pub(crate) struct Polluted;

/// Unit-decrement incidence: `incident(e)` lists the elements whose
/// settling costs `e` exactly one priority unit each (and vice versa —
/// the relation is symmetric in every current client).
///
/// For k-core this is the CSR adjacency itself ([`CsrGraph`] implements
/// the trait), and a problem's priorities must start at
/// `incident(e).len()` minus any units already absent.
pub trait UnitIncidence: Sync {
    /// Elements incident to `e`, in strictly increasing order.
    fn incident(&self, e: u32) -> &[u32];
}

impl UnitIncidence for CsrGraph {
    #[inline]
    fn incident(&self, v: u32) -> &[u32] {
        self.neighbors(v)
    }
}

/// Settle state of an element as seen from a [`SettleView`] snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElementState {
    /// Not settled in any subround so far.
    Alive,
    /// Settled in the *current* subround — dying together with the
    /// element being processed. Rules use this for tie-breaking so that
    /// a shared incidence (e.g. a triangle with two dying edges) is
    /// charged exactly once.
    Peer,
    /// Settled in an earlier subround (possibly an earlier round): its
    /// own settle processing already accounted for every incidence it
    /// participated in.
    Dead,
}

/// Consistent settle-state snapshot handed to [`SnapshotRule`]s.
///
/// All stamps for the current subround are written before any rule
/// runs (the engine inserts a global barrier between the phases), so
/// `state` answers identically no matter which worker asks or when.
pub struct SettleView<'a> {
    stamps: &'a [AtomicU32],
    current: u32,
}

impl<'a> SettleView<'a> {
    /// Crate-internal constructor: `current` identifies this subround's
    /// stamps as peers. Only the engine's drivers build views — the
    /// settle phase must have completed first.
    pub(crate) fn new(stamps: &'a [AtomicU32], current: u32) -> Self {
        Self { stamps, current }
    }

    /// Settle state of element `e` in this subround's snapshot.
    #[inline]
    pub fn state(&self, e: u32) -> ElementState {
        let s = self.stamps[e as usize].load(Ordering::Relaxed);
        if s == 0 {
            ElementState::Alive
        } else if s == self.current {
            ElementState::Peer
        } else {
            ElementState::Dead
        }
    }
}

/// A decrement rule that must observe other elements' settle state.
///
/// Invoked once per settled element per subround, strictly after every
/// same-subround settle has been stamped. Implementations must be
/// deterministic given the snapshot: for any shared incidence among
/// concurrently dying elements, exactly one of them may emit the
/// decrement (tie-break on element id — see the k-truss rule).
pub trait SnapshotRule: Sync {
    /// Calls `emit(t)` once for every element `t` that loses one
    /// priority unit because `e` settled at round `k`.
    fn for_each_decrement(&self, e: u32, k: u32, view: &SettleView<'_>, emit: &mut dyn FnMut(u32));
}

/// How settling an element lowers other elements' priorities — the
/// problem's clamped-decrement rule over its incidence relation.
pub enum Incidence<'p> {
    /// One unit per settled incident element over static lists; peeled
    /// by the fused single-sync driver with sampling + VGC available.
    Unit(&'p dyn UnitIncidence),
    /// Arbitrary rule against a consistent settle snapshot; peeled by
    /// the two-phase driver (settle barrier before rule evaluation).
    Snapshot(&'p dyn SnapshotRule),
}

/// A peeling-with-monotone-priorities problem, pluggable into
/// [`PeelEngine`].
///
/// The contract mirrors the paper's framework: the engine repeatedly
/// extracts the minimum-priority frontier (round `k` takes every
/// element of priority exactly `k`), settles it, and applies the
/// problem's decrement rule, never letting a priority drop below the
/// current round (the clamp). `assemble` receives each element's settle
/// round — the generalized "coreness" — plus the run's instrumentation.
pub trait PeelProblem: Sync {
    /// What the peel produces (coreness array, trussness array, best
    /// density prefix, ...).
    type Output;

    /// Problem name for diagnostics and benchmark tables.
    fn name(&self) -> &'static str;

    /// Size of the element universe (vertices for k-core, undirected
    /// edges for k-truss).
    fn num_elements(&self) -> usize;

    /// Initial priority of every element (induced degree, triangle
    /// support, ...).
    fn init_priorities(&self) -> Vec<u32>;

    /// The decrement rule.
    fn incidence(&self) -> Incidence<'_>;

    /// Settle action: invoked as element `e` settles at round `k`,
    /// possibly from parallel workers (keep it cheap and thread-safe).
    /// Default: no extra action beyond the engine's bookkeeping.
    #[inline]
    fn on_settle(&self, e: u32, k: u32) {
        let _ = (e, k);
    }

    /// Builds the problem's result from per-element settle rounds and
    /// the run statistics.
    fn assemble(&self, rounds: Vec<u32>, stats: RunStats) -> Self::Output;
}

/// The generic peeling engine: Alg. 1's round/subround loop with the
/// Sec. 4 techniques, parameterized by a [`PeelProblem`].
///
/// The engine runs `config` exactly as given — apply
/// [`Config::apply_env_overrides`] first if the `KCORE_TECHNIQUES`
/// override should be honored (the problem facades in
/// [`crate::problems`] do this in their `new` constructors).
pub struct PeelEngine<'p, P: PeelProblem> {
    problem: &'p P,
    config: Config,
}

impl<'p, P: PeelProblem> PeelEngine<'p, P> {
    /// Creates an engine over `problem` with `config` taken verbatim.
    pub fn new(problem: &'p P, config: Config) -> Self {
        Self { problem, config }
    }

    /// The configuration this engine runs with.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Peels the whole universe and assembles the problem's result.
    ///
    /// Sampling's Las-Vegas restart loop lives here: a polluted
    /// frontier aborts the attempt and the run repeats with sampling
    /// disabled ([`RunStats::restarts`] counts the aborts).
    pub fn run(&self) -> P::Output {
        if self.problem.num_elements() == 0 {
            return self.problem.assemble(Vec::new(), RunStats::default());
        }
        let mut config = self.config;
        let mut restarts = 0u64;
        loop {
            let mut stats = RunStats::default();
            let attempt = match config.techniques.mode {
                PeelMode::Online => online_run(&config, self.problem, &mut stats),
                PeelMode::Offline(off) => Ok(offline::run(&config, off, self.problem, &mut stats)),
            };
            match attempt {
                Ok(rounds) => {
                    stats.restarts = restarts;
                    return self.problem.assemble(rounds, stats);
                }
                Err(Polluted) => {
                    restarts += 1;
                    config.techniques.sampling = None;
                }
            }
        }
    }
}

/// Swaps the adaptive strategy's flat array for HBS once round `k`
/// reaches θ. Shared by the online and offline drivers.
pub(crate) fn upgrade_adaptive_if_due(
    bucket: &mut Box<dyn BucketStructure>,
    pending: &mut bool,
    k: u32,
    theta: u32,
    n: usize,
    view: &LiveView<'_>,
) {
    if *pending && k >= theta {
        let live = pack_index(n, |v| view.alive(v as u32));
        let entries = live.iter().map(|&v| (v, view.key(v)));
        *bucket = Box::new(HierarchicalBuckets::with_entries(k, entries));
        *pending = false;
    }
}

/// Shared references threaded through one fused (unit-incidence)
/// subround's parallel peel, and the sampling recounts it triggers.
pub(crate) struct OnlineCtx<'a, P: PeelProblem> {
    pub(crate) problem: &'a P,
    pub(crate) inc: &'a dyn UnitIncidence,
    pub(crate) prio: &'a [AtomicU32],
    pub(crate) settled: &'a [AtomicU32],
    pub(crate) bag: &'a HashBag,
    pub(crate) bucket: &'a dyn BucketStructure,
    pub(crate) sampling: Option<&'a SamplingState>,
    pub(crate) counters: &'a TechniqueCounters,
    /// VGC chain bound; 0 disables chasing.
    pub(crate) chain_limit: u32,
}

/// The online driver: dispatches on the problem's incidence flavor.
fn online_run<P: PeelProblem>(
    config: &Config,
    problem: &P,
    stats: &mut RunStats,
) -> Result<Vec<u32>, Polluted> {
    match problem.incidence() {
        Incidence::Unit(inc) => online_unit(config, problem, inc, stats),
        Incidence::Snapshot(rule) => Ok(online_snapshot(config, problem, rule, stats)),
    }
}

/// Fused driver for unit incidences: Alg. 1 with the sampling and VGC
/// hooks — settle and decrement run in one task per frontier element,
/// one global sync per subround.
fn online_unit<P: PeelProblem>(
    config: &Config,
    problem: &P,
    inc: &dyn UnitIncidence,
    stats: &mut RunStats,
) -> Result<Vec<u32>, Polluted> {
    let n = problem.num_elements();
    let init = problem.init_priorities();
    let prio: Vec<AtomicU32> = init.iter().map(|&d| AtomicU32::new(d)).collect();
    let settled: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNSET)).collect();

    let mut sampling =
        config.techniques.sampling.and_then(|cfg| SamplingState::build(inc, &init, cfg));
    if let Some(s) = &sampling {
        stats.sampled_vertices = s.num_sampled() as u64;
    }
    let counters = TechniqueCounters::new();
    let chain_limit = config.techniques.vgc.map_or(0, |v| v.chain_limit);

    // Adaptive starts on the flat array and upgrades to HBS at the
    // θ-core; the other strategies are fixed for the whole run.
    let mut bucket: Box<dyn BucketStructure> = config.bucket_strategy.build(&init);
    let mut adaptive_pending = matches!(config.bucket_strategy, BucketStrategy::Adaptive);

    let mut bag = HashBag::new(n);
    let collect_stats = config.collect_stats;
    let max_prio = *init.iter().max().unwrap_or(&0);
    let mut remaining = n;
    let mut k = 0u32;
    while remaining > 0 {
        assert!(k <= max_prio, "peeling stalled: {remaining} elements left after round {max_prio}");
        let view = LiveView { prio: &prio, settled: &settled };
        upgrade_adaptive_if_due(
            &mut bucket,
            &mut adaptive_pending,
            k,
            config.adaptive_theta,
            n,
            &view,
        );
        let mut frontier = bucket.next_frontier(k, &view);
        if let Some(s) = &sampling {
            // Sample-mode elements surface with their last recounted
            // priority; confirm it exactly before peeling them.
            s.validate_frontier(&frontier, k, inc, &settled, &counters)?;
        }
        let mut subrounds = 0u32;
        loop {
            if frontier.is_empty() {
                // End-of-round validation: exact recounts of sample-mode
                // elements near the boundary (all of them under
                // `Validation::Full`). Anything caught at `<= k` belongs
                // to this round and re-opens it.
                let caught = match sampling.as_mut() {
                    Some(s) => s.validate_round_end(k, inc, &prio, &settled, &*bucket, &counters),
                    None => Vec::new(),
                };
                if caught.is_empty() {
                    break;
                }
                frontier = caught;
            }
            subrounds += 1;
            counters.reset_subround();
            remaining -= frontier.len();
            if collect_stats {
                stats.max_frontier = stats.max_frontier.max(frontier.len());
                let arcs: usize = frontier.iter().map(|&v| inc.incident(v).len()).sum();
                stats.work += (frontier.len() + arcs) as u64;
            }
            let ctx = OnlineCtx {
                problem,
                inc,
                prio: &prio,
                settled: &settled,
                bag: &bag,
                bucket: &*bucket,
                sampling: sampling.as_ref(),
                counters: &counters,
                chain_limit,
            };
            frontier.par_iter().for_each(|&v| vgc::peel_from(&ctx, v, k));
            remaining -= counters.chased.load(Ordering::Relaxed) as usize;
            if collect_stats {
                stats.work += counters.chased_work.load(Ordering::Relaxed);
                stats.record_subround(1, counters.chain.get().max(1));
            }
            frontier = bag.extract_all();
        }
        if collect_stats {
            stats.record_round(subrounds);
        }
        k += 1;
    }
    counters.merge_sampling_into(stats);
    Ok(settled.into_iter().map(AtomicU32::into_inner).collect())
}

/// Clamped decrement of `slot` while above `k`: returns the replaced
/// value, or `None` when the value already sits at or below `k` (dead
/// elements and same-round frontier members are filtered by the clamp,
/// never by an explicit liveness check).
#[inline]
pub(crate) fn clamped_decrement(slot: &AtomicU32, k: u32) -> Option<u32> {
    slot.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| (d > k).then(|| d - 1)).ok()
}

/// Two-phase driver for snapshot rules: per subround, stamp the whole
/// frontier settled (phase 1), then — after the implicit global barrier
/// — evaluate the rule against the frozen snapshot and apply clamped
/// decrements (phase 2). Two global syncs per subround in the burdened
/// span; sampling and VGC do not apply.
fn online_snapshot<P: PeelProblem>(
    config: &Config,
    problem: &P,
    rule: &dyn SnapshotRule,
    stats: &mut RunStats,
) -> Vec<u32> {
    let n = problem.num_elements();
    let init = problem.init_priorities();
    let prio: Vec<AtomicU32> = init.iter().map(|&d| AtomicU32::new(d)).collect();
    let settled: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNSET)).collect();
    // Subround stamps: 0 = never settled; ids start at 1 and never
    // reset, so `SettleView::state` distinguishes peers from the dead.
    let stamps: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let mut subround_id = 0u32;

    let mut bucket: Box<dyn BucketStructure> = config.bucket_strategy.build(&init);
    let mut adaptive_pending = matches!(config.bucket_strategy, BucketStrategy::Adaptive);

    let mut bag = HashBag::new(n);
    let collect_stats = config.collect_stats;
    let emitted = AtomicU64::new(0);
    let max_prio = *init.iter().max().unwrap_or(&0);
    let mut remaining = n;
    let mut k = 0u32;
    while remaining > 0 {
        assert!(k <= max_prio, "peeling stalled: {remaining} elements left after round {max_prio}");
        let view = LiveView { prio: &prio, settled: &settled };
        upgrade_adaptive_if_due(
            &mut bucket,
            &mut adaptive_pending,
            k,
            config.adaptive_theta,
            n,
            &view,
        );
        let mut frontier = bucket.next_frontier(k, &view);
        let mut subrounds = 0u32;
        while !frontier.is_empty() {
            subrounds += 1;
            subround_id += 1;
            remaining -= frontier.len();
            if collect_stats {
                stats.max_frontier = stats.max_frontier.max(frontier.len());
                emitted.store(0, Ordering::Relaxed);
            }
            // Phase 1: settle — every stamp lands before any rule runs.
            frontier.par_iter().for_each(|&e| {
                settled[e as usize].store(k, Ordering::Relaxed);
                stamps[e as usize].store(subround_id, Ordering::Relaxed);
                problem.on_settle(e, k);
            });
            // Phase 2: evaluate the rule against the frozen snapshot.
            let sview = SettleView { stamps: &stamps, current: subround_id };
            frontier.par_iter().for_each(|&e| {
                let mut local = 0u64;
                rule.for_each_decrement(e, k, &sview, &mut |t| {
                    local += 1;
                    if let Some(prev) = clamped_decrement(&prio[t as usize], k) {
                        if prev == k + 1 {
                            // This emit moved t to k: t is peeled
                            // exactly once, in the next subround.
                            bag.insert(t);
                        } else {
                            bucket.on_decrease(t, prev, prev - 1, k);
                        }
                    }
                });
                if collect_stats && local > 0 {
                    emitted.fetch_add(local, Ordering::Relaxed);
                }
            });
            if collect_stats {
                stats.work += frontier.len() as u64 + emitted.load(Ordering::Relaxed);
                stats.record_subround(2, 1);
            }
            frontier = bag.extract_all();
        }
        if collect_stats {
            stats.record_round(subrounds);
        }
        k += 1;
    }
    settled.into_iter().map(AtomicU32::into_inner).collect()
}
