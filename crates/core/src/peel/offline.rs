//! Offline (Julienne-style) histogram peeling.
//!
//! The online driver discovers `DecreaseKey`s with per-edge atomic
//! decrements. The offline driver (Julienne's `Peel`, the paper's
//! online/offline ablation axis) avoids per-edge atomics entirely: per
//! subround it
//!
//! 1. settles the frontier,
//! 2. **gathers** every still-live neighbor of the frontier into one
//!    list `L` (with duplicates),
//! 3. **histograms** `L` — `(vertex, multiplicity)` pairs, the count of
//!    edges each vertex just lost (see [`kcore_parallel::histogram`];
//!    the paper uses a parallel semisort here),
//! 4. **applies** the bulk decrements: each vertex's degree drops by
//!    its multiplicity, clamped at the current round `k`; vertices
//!    landing on `k` form the next frontier, the rest re-file in the
//!    bucket structure.
//!
//! The price is synchronization: three global syncs per subround
//! instead of one, which is exactly how the burdened span accounts it
//! (`record_subround(3, …)`; Fig. 9's online/offline gap).
//!
//! [`kcore_membership`] reuses the machinery for the *range* form: to
//! extract one k-core, every vertex of degree `< k` is pulled in a
//! single bulk step ([`BucketStructure::next_frontier_range`]) and the
//! cascade needs no round ordering at all — the serving path for
//! individual core queries.

use super::{upgrade_adaptive_if_due, LiveView, UNSET};
use crate::config::{Config, HistogramKind, Offline};
use kcore_buckets::{BucketStrategy, BucketStructure, SingleBucket};
use kcore_graph::CsrGraph;
use kcore_parallel::histogram::{histogram_atomic, histogram_auto, histogram_sort};
use kcore_parallel::RunStats;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// The offline decomposition driver. Sampling and VGC are online-only
/// refinements (they exist to temper the online driver's atomics and
/// subround synchronization) and are ignored here.
pub(crate) fn run(config: &Config, off: Offline, g: &CsrGraph, stats: &mut RunStats) -> Vec<u32> {
    let n = g.num_vertices();
    let init_degrees = g.degrees();
    let deg: Vec<AtomicU32> = init_degrees.iter().map(|&d| AtomicU32::new(d)).collect();
    let coreness: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNSET)).collect();

    let mut bucket: Box<dyn BucketStructure> = config.bucket_strategy.build(&init_degrees);
    let mut adaptive_pending = matches!(config.bucket_strategy, BucketStrategy::Adaptive);

    let collect_stats = config.collect_stats;
    let max_deg = *init_degrees.iter().max().unwrap_or(&0);
    let mut remaining = n;
    let mut k = 0u32;
    while remaining > 0 {
        assert!(k <= max_deg, "peeling stalled: {remaining} vertices left after round {max_deg}");
        let view = LiveView { deg: &deg, coreness: &coreness };
        upgrade_adaptive_if_due(
            &mut bucket,
            &mut adaptive_pending,
            k,
            config.adaptive_theta,
            n,
            &view,
        );
        let mut frontier = bucket.next_frontier(k, &view);
        let mut subrounds = 0u32;
        while !frontier.is_empty() {
            subrounds += 1;
            remaining -= frontier.len();
            if collect_stats {
                stats.max_frontier = stats.max_frontier.max(frontier.len());
                let arcs: usize = frontier.iter().map(|&v| g.degree(v)).sum();
                stats.work += (frontier.len() + arcs) as u64;
            }
            // 1. settle — exclusive phase, so the gather below reads a
            // stable liveness snapshot.
            frontier.par_iter().for_each(|&v| coreness[v as usize].store(k, Ordering::Relaxed));
            // 2. gather the live neighborhood, with duplicates.
            let gathered = gather_live(g, &frontier, &coreness);
            // 3. histogram it.
            let hist = run_histogram(off.histogram, gathered, n);
            if collect_stats {
                stats.work += hist.len() as u64;
            }
            // 4. apply bulk decrements; hits on k form the next frontier.
            frontier = hist
                .par_iter()
                .filter_map(|&(u, c)| {
                    let u = u as usize;
                    if coreness[u].load(Ordering::Relaxed) != UNSET {
                        return None;
                    }
                    let d = deg[u].load(Ordering::Relaxed);
                    debug_assert!(d > k, "live non-frontier vertices sit above the round");
                    let nd = d.saturating_sub(c).max(k);
                    deg[u].store(nd, Ordering::Relaxed);
                    if nd == k {
                        Some(u as u32)
                    } else {
                        bucket.on_decrease(u as u32, d, nd, k);
                        None
                    }
                })
                .collect();
            if collect_stats {
                stats.record_subround(3, 1);
            }
        }
        if collect_stats {
            stats.record_round(subrounds);
        }
        k += 1;
    }
    coreness.into_iter().map(AtomicU32::into_inner).collect()
}

/// Membership of the `k`-core by offline **range** peeling: one bulk
/// extraction of every vertex below `k`, then histogram cascades until
/// a fixpoint. No round ordering — removal order does not affect the
/// fixpoint — so the whole sub-`k` range peels as one wave, which is
/// why this is far cheaper than a full decomposition for one query.
pub(crate) fn kcore_membership(g: &CsrGraph, k: u32, off: Offline) -> Vec<bool> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let init_degrees = g.degrees();
    let deg: Vec<AtomicU32> = init_degrees.iter().map(|&d| AtomicU32::new(d)).collect();
    // Reuse the coreness array as the peeled marker (0 = peeled).
    let peeled: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNSET)).collect();
    let mut bucket = SingleBucket::new(&init_degrees);
    let view = LiveView { deg: &deg, coreness: &peeled };
    let mut frontier = bucket.next_frontier_range(0, k, &view);
    while !frontier.is_empty() {
        frontier.par_iter().for_each(|&v| peeled[v as usize].store(0, Ordering::Relaxed));
        let gathered = gather_live(g, &frontier, &peeled);
        let hist = run_histogram(off.histogram, gathered, n);
        frontier = hist
            .par_iter()
            .filter_map(|&(u, c)| {
                let u = u as usize;
                if peeled[u].load(Ordering::Relaxed) != UNSET {
                    return None;
                }
                let d = deg[u].load(Ordering::Relaxed);
                let nd = d.saturating_sub(c);
                deg[u].store(nd, Ordering::Relaxed);
                // Only the crossing below k enters the frontier, so each
                // vertex cascades at most once.
                (d >= k && nd < k).then_some(u as u32)
            })
            .collect();
    }
    peeled.iter().map(|m| m.load(Ordering::Relaxed) == UNSET).collect()
}

/// Every still-live neighbor of the frontier, with duplicates — the
/// list `L` of Julienne's `Peel`. The settle phase completed before
/// this runs, so liveness reads are stable and the result is
/// deterministic.
fn gather_live(g: &CsrGraph, frontier: &[u32], coreness: &[AtomicU32]) -> Vec<u32> {
    let per_vertex: Vec<Vec<u32>> = frontier
        .par_iter()
        .map(|&v| {
            g.neighbors(v)
                .iter()
                .copied()
                .filter(|&u| coreness[u as usize].load(Ordering::Relaxed) == UNSET)
                .collect()
        })
        .collect();
    let total = per_vertex.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for part in per_vertex {
        out.extend(part);
    }
    out
}

/// Dispatches to the configured histogram implementation.
fn run_histogram(kind: HistogramKind, keys: Vec<u32>, domain: usize) -> Vec<(u32, u32)> {
    match kind {
        HistogramKind::Auto => histogram_auto(keys, domain),
        HistogramKind::Sort => histogram_sort(keys),
        HistogramKind::Atomic => histogram_atomic(&keys, domain),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bz::bz_coreness;
    use crate::config::Techniques;
    use crate::{Config, KCore};
    use kcore_graph::gen;

    fn offline_config(kind: HistogramKind) -> Config {
        Config::with_techniques(Techniques {
            mode: crate::config::PeelMode::Offline(Offline { histogram: kind }),
            ..Techniques::default()
        })
    }

    #[test]
    fn every_histogram_kind_matches_the_oracle() {
        let g = gen::rmat(9, 8, 0.57, 0.19, 0.19, 5);
        let want = bz_coreness(&g);
        for kind in [HistogramKind::Auto, HistogramKind::Sort, HistogramKind::Atomic] {
            let got = KCore::new(offline_config(kind)).run(&g);
            assert_eq!(got.coreness(), want.as_slice(), "{kind:?}");
        }
    }

    #[test]
    fn offline_is_deterministic() {
        let g = gen::barabasi_albert(500, 3, 9);
        let a = KCore::new(offline_config(HistogramKind::Auto)).run(&g);
        let b = KCore::new(offline_config(HistogramKind::Auto)).run(&g);
        assert_eq!(a.coreness(), b.coreness());
        assert_eq!(a.stats().subrounds, b.stats().subrounds);
    }

    #[test]
    fn membership_of_trivial_cores() {
        let g = gen::path(10);
        let members = kcore_membership(&g, 0, Offline::default());
        assert!(members.iter().all(|&m| m), "the 0-core is everything");
        let members = kcore_membership(&g, 2, Offline::default());
        assert!(members.iter().all(|&m| !m), "a path has no 2-core");
    }

    #[test]
    fn membership_cascade_crosses_the_whole_graph() {
        // A path with a triangle at the end: the 2-core is exactly the
        // triangle, and finding it requires the removal cascade to run
        // down the entire path.
        let mut edges: Vec<(u32, u32)> = (0..20u32).map(|i| (i, i + 1)).collect();
        edges.push((20, 21));
        edges.push((21, 22));
        edges.push((22, 20));
        let g = kcore_graph::GraphBuilder::new(23).edges(edges).build();
        let members = kcore_membership(&g, 2, Offline::default());
        for (v, &member) in members.iter().enumerate() {
            assert_eq!(member, v >= 20, "vertex {v}: only the triangle is in the 2-core");
        }
    }

    #[test]
    fn empty_graph_membership() {
        assert!(kcore_membership(&CsrGraph::empty(), 3, Offline::default()).is_empty());
    }
}
